"""Event-driven simulation of synchronization schemes.

Where :mod:`repro.core` reasons with bounds, this package *runs* systems:

* :mod:`repro.sim.events` / :mod:`repro.sim.engine` — a small discrete-event
  core (priority queue scheduler);
* :mod:`repro.sim.clock_distribution` — concrete clock tick arrival times at
  every cell, from a buffered tree and a period (pipelined clocking);
* :mod:`repro.sim.clocked` — executes systolic programs at those arrival
  times with real data wire delays, detecting setup (stale) and hold
  (race-through) violations and comparing results against the ideal
  lockstep semantics;
* :mod:`repro.sim.selftimed` — self-timed (handshake) arrays with random
  per-cell compute times (the Section I worst-case-path analysis);
* :mod:`repro.sim.hybrid_sim` — the Section VI element/handshake network;
* :mod:`repro.sim.inverter` — the Section VII 2048-inverter-string chip
  experiment (equipotential vs pipelined clocking).
"""

from repro.sim.events import EventQueue
from repro.sim.engine import Simulator
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import ClockedArraySimulator, ClockedRunResult, TimingViolation
from repro.sim.compiled import (
    CompiledClockedKernel,
    CompiledMaxPlus,
    CompiledRecurrence,
    compile_clocked,
)
from repro.sim.selftimed import (
    SelfTimedResult,
    simulate_selftimed_line,
    simulate_selftimed_wavefront,
    worst_case_path_probability,
)
from repro.sim.handshake import (
    HandshakeResult,
    run_handshake_pipeline,
    run_handshake_wavefront,
)
from repro.sim.hybrid_exec import HybridExecution, execute_program_hybrid
from repro.sim.two_phase import (
    min_two_phase_period,
    phase_separation,
    two_phase_simulator,
)
from repro.sim.hybrid_sim import HybridRunResult, simulate_hybrid
from repro.sim.inverter import (
    InverterString,
    InverterStringResult,
    fixed_yield_cycle_time,
    paper_calibrated_model,
)
from repro.sim.faults import (
    JitteredSchedule,
    ViolationSummary,
    slow_subtree,
    summarize_violations,
)

__all__ = [
    "EventQueue",
    "Simulator",
    "ClockSchedule",
    "ClockedArraySimulator",
    "ClockedRunResult",
    "TimingViolation",
    "CompiledClockedKernel",
    "CompiledMaxPlus",
    "CompiledRecurrence",
    "compile_clocked",
    "SelfTimedResult",
    "simulate_selftimed_line",
    "worst_case_path_probability",
    "HybridRunResult",
    "simulate_hybrid",
    "InverterString",
    "InverterStringResult",
    "paper_calibrated_model",
    "fixed_yield_cycle_time",
    "JitteredSchedule",
    "ViolationSummary",
    "slow_subtree",
    "summarize_violations",
    "simulate_selftimed_wavefront",
    "HandshakeResult",
    "run_handshake_pipeline",
    "run_handshake_wavefront",
    "HybridExecution",
    "execute_program_hybrid",
    "two_phase_simulator",
    "min_two_phase_period",
    "phase_separation",
]
