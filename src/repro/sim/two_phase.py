"""Two-phase (master-slave) execution of systolic programs.

Under the Mead-Conway two-phase discipline a cell's *master* latch captures
inputs on phase 1 and its *slave* drives outputs on phase 2, so new data
becomes visible to neighbors only ``phase_separation`` after the capturing
edge (half a period plus the non-overlap gap).  Functionally this is
equivalent to single-phase execution whose every output is delayed by the
phase separation — so the simulator composes :class:`ClockedArraySimulator`
with a uniform output delay, and the equivalence is the *point*: the same
machinery shows that

* a schedule that races under single-phase clocking (sender's clock leads
  by more than the data delay) runs **clean** under two-phase clocking once
  the phase separation exceeds the skew — hold fixed by the discipline, no
  data-path padding needed; and
* the price is paid in the period: the setup side must now cover the phase
  separation too (``min_safe_period`` grows by it).
"""

from __future__ import annotations

from typing import Optional

from repro.arrays.systolic import SystolicProgram
from repro.core.disciplines import TwoPhaseDiscipline
from repro.delay.wire import WireDelayModel
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import ClockedArraySimulator


def two_phase_simulator(
    program: SystolicProgram,
    schedule: ClockSchedule,
    discipline: TwoPhaseDiscipline,
    delta: float = 0.0,
    data_wire_model: Optional[WireDelayModel] = None,
) -> ClockedArraySimulator:
    """A clocked simulator realizing master-slave two-phase semantics.

    The phase separation — half the period plus the non-overlap gap — is
    added to every cell's output delay.  The returned simulator's
    ``hold_hazards()`` and ``run()`` then reflect two-phase behaviour
    directly.
    """
    separation = phase_separation(schedule.period, discipline)
    return ClockedArraySimulator(
        program,
        schedule,
        delta=delta + separation,
        data_wire_model=data_wire_model,
    )


def phase_separation(period: float, discipline: TwoPhaseDiscipline) -> float:
    """Delay from a cell's capturing edge to its outputs changing: half a
    period plus the non-overlap gap."""
    if period <= 0:
        raise ValueError("period must be positive")
    return period / 2.0 + discipline.nonoverlap


def min_two_phase_period(
    program: SystolicProgram,
    schedule: ClockSchedule,
    discipline: TwoPhaseDiscipline,
    delta: float = 0.0,
    data_wire_model: Optional[WireDelayModel] = None,
) -> float:
    """The smallest period at which the two-phase machine runs clean.

    With ``lead(u,v) = offset(u) - offset(v)`` (positive when the sender's
    clock leads) and ``separation(T) = T/2 + nonoverlap``, per edge:

    * **setup**: ``T >= lead + delta + wire + separation(T)``, i.e.
      ``T >= 2 * (lead + delta + wire + nonoverlap)``;
    * **hold**: ``delta + wire + separation(T) > -lead`` — a *receiver*-
      leading edge races unless the separation covers the lag, i.e.
      ``T >= 2 * (-lead - delta - wire - nonoverlap)``.

    Unlike single-phase clocking, *both* constraints are satisfiable by
    raising the period: the discipline converts race-through into a timing
    budget.  The returned value is the max over edges of both bounds.
    """
    from repro.core.padding import _edge_delays

    delays = _edge_delays(program.array, data_wire_model)
    worst = 0.0
    for (u, v), wire in delays.items():
        lead = schedule.offset(u) - schedule.offset(v)
        setup_bound = 2.0 * (lead + delta + wire + discipline.nonoverlap)
        hold_bound = 2.0 * (-lead - delta - wire - discipline.nonoverlap)
        worst = max(worst, setup_bound, hold_bound)
    return worst
