"""Event-level simulation of the hybrid synchronization network (Fig. 8).

Controllers run a neighbor-barrier handshake: element ``e`` may start its
global step ``k+1`` once it has finished step ``k`` *and* received "done(k)"
from every handshake neighbor.  Within a step, a controller distributes the
local clock (bounded by the element diameter), cells compute (``delta``),
and the controller signals done.

The recurrence

``start[e][k+1] = max(finish[e][k], max_nbr finish[nbr][k] + hs(e, nbr))``
``finish[e][k]  = start[e][k] + local_cost(e)``

is a max-plus linear system whose asymptotic cycle time is bounded by
``local_cost + max handshake`` — all element-local quantities, hence
*constant as the array grows*, which is the Section VI claim the
``bench_fig8_hybrid`` benchmark demonstrates against the equipotential
global clock's linear growth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.hybrid import HybridScheme
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer

ElementId = Tuple[int, int]


@dataclass(frozen=True)
class HybridRunResult:
    """Measured steady-state behaviour of the hybrid network."""

    elements: int
    steps: int
    completion_time: float
    cycle_time: float
    analytic_cycle_time: float

    @property
    def within_analytic_bound(self) -> bool:
        return self.cycle_time <= self.analytic_cycle_time + 1e-9


def simulate_hybrid(
    scheme: HybridScheme,
    steps: int,
    delta: float,
    m: float = 1.0,
    jitter: float = 0.0,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> HybridRunResult:
    """Run the controller handshake network for ``steps`` global steps.

    ``jitter`` adds a uniform random extension (up to the given fraction of
    ``delta``) to each element's per-step local cost — self-timed schemes
    absorb such variation without resynchronization, which is part of the
    scheme's robustness story (and would desynchronize pipelined clocking,
    A8).

    With a ``tracer``, every element emits a ``hybrid/step`` event per
    global step (start/finish times) plus a per-step ``hybrid`` /
    ``step_summary`` with the start-time spread (the de-facto skew of the
    handshake barrier); a ``metrics`` registry collects the spread
    histogram and the measured cycle-time gauge.  Defaults keep the run
    byte-identical to the uninstrumented simulator.
    """
    if steps < 2:
        raise ValueError("need at least two steps to measure a cycle")
    if delta < 0 or m <= 0 or jitter < 0:
        raise ValueError("delta >= 0, m > 0, jitter >= 0 required")
    rng = random.Random(seed)

    eids = list(scheme.elements.keys())
    # Per-element fixed local cost: clock down + compute + clock gathering up.
    base_cost: Dict[ElementId, float] = {
        e: 2.0 * m * scheme.local_trees[e].longest_root_to_leaf() + delta for e in eids
    }
    handshake: Dict[Tuple[ElementId, ElementId], float] = {}
    for a, b in scheme.element_graph.communicating_pairs():
        d = m * scheme.controllers[a].manhattan(scheme.controllers[b])
        handshake[(a, b)] = d
        handshake[(b, a)] = d

    tracer = tracer if tracer is not None else NULL_TRACER
    skew_hist = (
        metrics.histogram("hybrid.step_skew") if metrics is not None else None
    )

    # The neighbor barrier is a max-plus step — compiled to grouped array
    # maxima (identical values: max is order-free, the adds keep the
    # scalar association start + (base + jitter)).
    from repro.sim.compiled import CompiledMaxPlus

    kernel = CompiledMaxPlus(
        eids, {e: scheme.element_graph.neighbors(e) for e in eids}, handshake
    )
    base = np.asarray([base_cost[e] for e in eids], dtype=np.float64)

    finish = np.zeros(len(eids), dtype=np.float64)
    finish_times = []
    for step in range(steps):
        start = kernel.starts(finish)
        if jitter > 0:
            # One uniform draw per element in eids order — the exact RNG
            # consumption sequence of the scalar loop.
            cost = base + np.asarray(
                [rng.uniform(0.0, jitter * delta) for _ in eids]
            )
        else:
            cost = base
        finish = start + cost
        finish_times.append(float(finish.max()))
        if tracer.enabled:
            starts_list = start.tolist()
            finish_list = finish.tolist()
            for e, s, f in zip(eids, starts_list, finish_list):
                tracer.event(
                    f, "hybrid", "step", cell=e,
                    step=step, start=s, finish=f,
                )
            spread = max(starts_list) - min(starts_list)
            tracer.event(
                finish_times[-1], "hybrid", "step_summary",
                step=step, start_spread=spread, makespan=finish_times[-1],
            )
        if skew_hist is not None:
            skew_hist.observe(float(start.max()) - float(start.min()))

    half = steps // 2
    steady = finish_times[half:]
    if len(steady) >= 2:
        cycle = (steady[-1] - steady[0]) / (len(steady) - 1)
    else:
        cycle = finish_times[-1] / steps
    analytic = (
        max(base_cost.values())
        + (max(handshake.values()) if handshake else 0.0)
        + jitter * delta
    )
    if tracer.enabled:
        tracer.event(
            finish_times[-1], "hybrid", "run",
            elements=len(eids), steps=steps,
            cycle_time=cycle, analytic_cycle_time=analytic,
        )
    if metrics is not None:
        metrics.gauge("hybrid.cycle_time").set(cycle)
        metrics.counter("hybrid.steps").inc(steps)
    return HybridRunResult(
        elements=len(eids),
        steps=steps,
        completion_time=finish_times[-1],
        cycle_time=cycle,
        analytic_cycle_time=analytic,
    )
