"""Clock tick schedules: when does tick ``k`` reach each cell?

Under pipelined clocking the root launches an event every period ``T`` and
each event takes a fixed path delay to any node (assumption A8), so tick
``k`` arrives at cell ``c`` at ``arrival(c) + k * T``.  Equipotential
clocking has the same form with a much larger ``T`` (the tree must settle
between events, A6); the difference shows up in the *period*, not the
schedule's shape — which is exactly the paper's point that skew (arrival
spread) and distribution time (period floor) are the two separate issues.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Tuple

from repro.clocktree.buffered import BufferedClockTree

CellId = Hashable


class ClockSchedule:
    """Absolute arrival time of every clock tick at every clocked cell."""

    def __init__(self, arrivals: Mapping[CellId, float], period: float) -> None:
        if period <= 0:
            raise ValueError("clock period must be positive")
        if any(t < 0 for t in arrivals.values()):
            raise ValueError("arrival offsets must be non-negative")
        self._arrivals: Dict[CellId, float] = dict(arrivals)
        self.period = period

    @classmethod
    def from_buffered_tree(
        cls,
        buffered: BufferedClockTree,
        period: float,
        cells: Iterable[CellId],
    ) -> "ClockSchedule":
        """Pipelined clocking: offsets are the tree's concrete arrival times
        for the given cells."""
        return cls({c: buffered.arrival(c) for c in cells}, period)

    @classmethod
    def ideal(cls, cells: Iterable[CellId], period: float) -> "ClockSchedule":
        """Zero-skew reference schedule (every cell ticks simultaneously)."""
        return cls({c: 0.0 for c in cells}, period)

    def cells(self) -> Iterable[CellId]:
        return self._arrivals.keys()

    def offset(self, cell: CellId) -> float:
        return self._arrivals[cell]

    def tick_time(self, cell: CellId, k: int) -> float:
        """Absolute time of tick ``k`` (k >= 0) at ``cell``."""
        if k < 0:
            raise ValueError("tick index must be non-negative")
        return self._arrivals[cell] + k * self.period

    def skew(self, a: CellId, b: CellId) -> float:
        """Arrival offset difference — the concrete skew between two cells."""
        return abs(self._arrivals[a] - self._arrivals[b])

    def max_skew(self, pairs: Iterable[Tuple[CellId, CellId]]) -> float:
        return max((self.skew(a, b) for a, b in pairs), default=0.0)
