"""The Section VII inverter-string experiment, in simulation.

The paper fabricated an nMOS chip with a string of 2048 minimum inverters
and measured:

* equipotential single-phase clocking: cycle time ~= 34 microseconds (the
  whole string must settle each cycle);
* pipelined clocking: cycle time ~= 500 nanoseconds — **68x faster** — with
  the same speedup on five separate chips (design bias dominated random
  stage noise).

We model stage ``i`` as a :class:`~repro.delay.buffer.Buffer` with rise and
fall delays ``nominal +- (bias + noise)/2``; then

* the **equipotential cycle** is the time for both a rising and a falling
  edge to traverse the whole string (sum of all rise delays + sum of all
  fall delays);
* the **pipelined cycle** must keep the pulse alive along the string: a
  half-period must exceed the worst per-stage delay *plus* the worst
  cumulative rise/fall discrepancy over any prefix (the pulse shrinks by
  the running discrepancy sum), so
  ``T_pipe = 2 * (max stage delay + max |prefix discrepancy|)``.

With the calibrated constants of :func:`paper_calibrated_model` the n=2048
simulation reproduces 34 us / 500 ns / 68x; with zero bias the prefix sum
is a random walk and ``T_pipe`` scales as ``sqrt(n)`` at fixed yield
(:func:`fixed_yield_cycle_time`) — both Section VII claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.delay.buffer import Buffer, InverterPairModel

#: Calibration: 2 * 2048 * nominal = 34 us  =>  nominal ~= 8.3 ns.
PAPER_NOMINAL_STAGE_DELAY = 34.0e-6 / (2 * 2048)
#: Calibration: 2 * (nominal + 2048 * bias) = 500 ns  =>  bias ~= 0.118 ns.
PAPER_STAGE_BIAS = (500.0e-9 / 2 - PAPER_NOMINAL_STAGE_DELAY) / 2048
#: Random stage noise, small compared to the bias (the paper observed the
#: same 68x on five chips, i.e. bias-dominated behaviour).
PAPER_STAGE_NOISE_SD = PAPER_STAGE_BIAS / 20.0

PAPER_STRING_LENGTH = 2048
PAPER_EQUIPOTENTIAL_CYCLE = 34.0e-6
PAPER_PIPELINED_CYCLE = 500.0e-9
PAPER_SPEEDUP = 68.0


def paper_calibrated_model(seed: int = 0) -> InverterPairModel:
    """Stage model calibrated to the paper's measured 34 us / 500 ns chip."""
    return InverterPairModel(
        nominal=PAPER_NOMINAL_STAGE_DELAY,
        bias=PAPER_STAGE_BIAS,
        variance=PAPER_STAGE_NOISE_SD**2,
        seed=seed,
    )


@dataclass(frozen=True)
class InverterStringResult:
    """Cycle times of one simulated chip."""

    n: int
    equipotential_cycle: float
    pipelined_cycle: float
    max_stage_delay: float
    max_prefix_discrepancy: float

    @property
    def speedup(self) -> float:
        return self.equipotential_cycle / self.pipelined_cycle


class InverterString:
    """One simulated chip: ``n`` inverter stages with sampled delays."""

    def __init__(self, n: int, model: InverterPairModel) -> None:
        if n < 1:
            raise ValueError("string needs at least one stage")
        self.n = n
        self.stages: List[Buffer] = model.sample_string(n)

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def total_rise(self) -> float:
        return sum(stage.delay_rise for stage in self.stages)

    def total_fall(self) -> float:
        return sum(stage.delay_fall for stage in self.stages)

    def equipotential_cycle(self) -> float:
        """Single event in flight: the line settles through a full rising
        and a full falling traversal per cycle."""
        return self.total_rise() + self.total_fall()

    def total_discrepancy(self) -> float:
        """``|sum_i (rise_i - fall_i)|`` over the whole string — the
        endpoint of the Section VII random walk, the quantity whose
        ``N(0, n*V)`` distribution drives the fixed-yield analysis."""
        return abs(sum(stage.discrepancy for stage in self.stages))

    def max_prefix_discrepancy(self) -> float:
        """``max_k |sum_{i<=k} (rise_i - fall_i)|`` — how much a pulse can
        shrink (or stretch) on its way down the string."""
        running = 0.0
        worst = 0.0
        for stage in self.stages:
            running += stage.discrepancy
            worst = max(worst, abs(running))
        return worst

    def max_stage_delay(self) -> float:
        return max(stage.max_delay for stage in self.stages)

    def pipelined_cycle(self) -> float:
        """Minimum period keeping every pulse alive along the whole string:
        each half-period must cover one stage plus the worst accumulated
        pulse-width erosion."""
        return 2.0 * (self.max_stage_delay() + self.max_prefix_discrepancy())

    def result(self) -> InverterStringResult:
        return InverterStringResult(
            n=self.n,
            equipotential_cycle=self.equipotential_cycle(),
            pipelined_cycle=self.pipelined_cycle(),
            max_stage_delay=self.max_stage_delay(),
            max_prefix_discrepancy=self.max_prefix_discrepancy(),
        )

    # ------------------------------------------------------------------
    # functional check
    # ------------------------------------------------------------------
    def propagate_edges(self, launch_times: Sequence[float], rising_first: bool = True) -> List[float]:
        """Arrival times at the string output of edges launched at the given
        times (alternating rising/falling).  Used by tests to confirm that
        at the pipelined period edges arrive in order (no pulse collapse),
        and that below it they would reorder."""
        arrivals = []
        for index, t in enumerate(launch_times):
            rising = (index % 2 == 0) == rising_first
            total = t
            for stage in self.stages:
                total += stage.delay(rising)
            arrivals.append(total)
        return arrivals


def fixed_yield_cycle_time(
    n: int,
    variance: float,
    stage_delay: float,
    yield_fraction: float = 0.95,
) -> float:
    """Section VII's probabilistic analysis: with zero design bias, the sum
    of per-pair discrepancies over ``n`` stages is ``N(0, n * variance)``;
    accepting a fixed fraction of chips means accepting discrepancy sums up
    to ``z * sqrt(n * variance)``, so the pipelined cycle time at fixed
    yield grows as ``sqrt(n)``.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if variance < 0:
        raise ValueError("variance must be non-negative")
    if not 0.0 < yield_fraction < 1.0:
        raise ValueError("yield_fraction must be in (0, 1)")
    z = _normal_quantile(0.5 + yield_fraction / 2.0)
    return 2.0 * (stage_delay + z * math.sqrt(n * variance))


def _normal_quantile(p: float) -> float:
    """Inverse standard normal CDF (Acklam's rational approximation; max
    relative error ~1e-9, ample for yield curves)."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )
