"""Self-timed *functional* execution of systolic programs.

:mod:`repro.sim.selftimed` and :mod:`repro.sim.handshake` model the paper's
Section I timing arguments (tandem recurrences, request/acknowledge
protocols) but never execute a real workload.  This module closes that gap:
a :class:`SelfTimedProgramSimulator` runs any :class:`~repro.arrays.
systolic.SystolicProgram` data-driven on the discrete-event engine — each
cell fires its wave ``k`` as soon as it has finished wave ``k-1`` and every
predecessor's wave ``k-1`` token has arrived, with a per-(cell, wave)
service time.

The functional claim this realizes is the self-timed half of the paper's
equivalence: because every cell consumes exactly the generation ``k-1``
value on each input edge, the computation is the ideal lockstep semantics
(assumption A1) regardless of service-time variation — self-timing changes
*when* things happen, never *what* is computed.  The differential checker
(:mod:`repro.check.differential`) asserts exactly that, against the ideal
executor, the clocked simulator, and the hybrid executor.

Timing-wise the run obeys the unbuffered (infinite-FIFO) tandem recurrence

``start[c][k] = max(finish[c][k-1], max_pred finish[pred][k-1] + wire)``

— the ``blocking=False`` idealization of :func:`repro.sim.selftimed.
simulate_selftimed_line`, generalized from a line to any COMM graph.  The
checker verifies the engine-driven makespan against that recurrence
computed directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Mapping, Optional, Tuple

from repro.arrays.cells import PE
from repro.arrays.systolic import SystolicProgram
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.engine import Simulator

CellId = Hashable

#: Service-time callback: ``(cell, wave) -> duration``.  Deterministic
#: callables keep runs reproducible; see :func:`constant_service` and
#: :func:`hashed_service`.
ServiceTime = Callable[[CellId, int], float]


def constant_service(duration: float) -> ServiceTime:
    """Every (cell, wave) takes exactly ``duration``.

    The returned callable carries a ``constant_duration`` attribute so the
    compiled recurrence kernel (:mod:`repro.sim.compiled`) can skip
    tabulating a full (cell, wave) service matrix.
    """
    if duration < 0:
        raise ValueError("service time must be non-negative")

    def service(cell: CellId, wave: int) -> float:
        return duration

    service.constant_duration = float(duration)
    return service


def hashed_service(
    normal: float, worst: float, worst_probability: float, seed: int = 0
) -> ServiceTime:
    """The two-speed cell model of Section I, keyed deterministically on
    ``(seed, cell, wave)`` — stable across processes and iteration orders,
    like :func:`repro.sim.faults._stable_unit_noise`."""
    if normal <= 0 or worst < normal:
        raise ValueError("need 0 < normal <= worst")
    if not 0.0 <= worst_probability <= 1.0:
        raise ValueError("worst_probability must be a probability")
    from repro.sim.faults import _stable_unit_noise

    def sample(cell: CellId, wave: int) -> float:
        u = (_stable_unit_noise(seed, cell, wave) + 1.0) / 2.0  # [0, 1)
        return worst if u < worst_probability else normal

    return sample


@dataclass
class DataflowRunResult:
    """Outcome of a self-timed program run: payload plus timing."""

    result: Any
    waves: int
    makespan: float
    events_processed: int
    finish_times: Dict[CellId, float]  # completion of each cell's last wave

    @property
    def mean_cycle_time(self) -> float:
        """Makespan per wave — the crude throughput figure."""
        return self.makespan / self.waves if self.waves else 0.0


class _ResultFacade:
    """Quacks like a LockstepExecutor for ``SystolicProgram.read_result``
    (which only ever calls ``pe``)."""

    def __init__(self, pes: Mapping[CellId, PE]) -> None:
        self._pes = pes

    def pe(self, cell: CellId) -> PE:
        return self._pes[cell]


class SelfTimedProgramSimulator:
    """Run a systolic program data-driven on the event engine.

    ``service`` supplies the per-(cell, wave) compute time; ``wire_delay``
    is the token propagation time per COMM edge (uniform — the regular-array
    case).  Channels are unbounded FIFOs (no backpressure): the pure
    dataflow idealization, which keeps functional behaviour exactly
    lockstep while letting timing float.
    """

    def __init__(
        self,
        program: SystolicProgram,
        service: Optional[ServiceTime] = None,
        wire_delay: float = 0.0,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if wire_delay < 0:
            raise ValueError("wire delay must be non-negative")
        self._program = program
        self._comm = program.array.comm
        self._service = service if service is not None else constant_service(1.0)
        self._wire_delay = wire_delay
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics
        self._compiled: Any = None  # lazy CompiledRecurrence

    def run(self, waves: Optional[int] = None) -> DataflowRunResult:
        n_waves = waves if waves is not None else self._program.cycles
        if n_waves < 1:
            raise ValueError("need at least one wave")
        pes = self._program.pes
        for pe in pes.values():
            pe.reset()

        sim = Simulator(tracer=self._tracer, metrics=self._metrics)
        cells = self._comm.nodes()
        preds: Dict[CellId, Tuple[CellId, ...]] = {
            c: tuple(self._comm.predecessors(c)) for c in cells
        }
        # Per-cell progress: next wave to fire, busy-until flag, and the
        # arrived-but-unconsumed tokens per generation.
        next_wave: Dict[CellId, int] = {c: 0 for c in cells}
        busy: Dict[CellId, bool] = {c: False for c in cells}
        inbox: Dict[CellId, Dict[int, Dict[CellId, Any]]] = {c: {} for c in cells}
        finish_times: Dict[CellId, float] = {c: 0.0 for c in cells}
        tracer = self._tracer
        service_hist = (
            self._metrics.histogram("dataflow.service_time")
            if self._metrics is not None
            else None
        )

        def ready(cell: CellId) -> bool:
            k = next_wave[cell]
            if k >= n_waves or busy[cell]:
                return False
            if k == 0:
                return True  # wave 0 consumes the initial (empty) registers
            pending = inbox[cell].get(k - 1, {})
            return all(src in pending for src in preds[cell])

        def try_fire(
            cell: CellId, cause: str = "init", src: Optional[CellId] = None
        ) -> None:
            # ``cause``/``src`` name the state change that made this call:
            # the *last* enabling event is the binding constraint, so a
            # successful fire's cause is its critical dependency — exactly
            # what trace-driven critical-path extraction walks back over.
            if not ready(cell):
                return
            k = next_wave[cell]
            inputs: Dict[CellId, Any] = (
                inbox[cell].pop(k - 1, {}) if k > 0 else {}
            )
            # Lockstep semantics: an input edge with no token yet written
            # reads as None (the empty register before the first latch).
            fire_inputs = {src_c: inputs.get(src_c) for src_c in preds[cell]}
            outputs = pes[cell].fire(fire_inputs)
            duration = self._service(cell, k)
            if duration < 0:
                raise ValueError(f"negative service time for {cell!r} wave {k}")
            if service_hist is not None:
                service_hist.observe(duration)
            if tracer.enabled:
                # ``finish`` is the same float expression the engine uses
                # to schedule ``done`` (now + delay), so the recorded
                # chain telescopes to the reported makespan bit for bit.
                tracer.event(
                    sim.now, "dataflow", "fire", cell=cell, wave=k,
                    start=sim.now, service=duration,
                    finish=sim.now + duration, cause=cause, src=src,
                )
            next_wave[cell] = k + 1
            busy[cell] = True

            def deliver(dst: CellId, value: Any, gen: int = k) -> None:
                inbox[dst].setdefault(gen, {})[cell] = value
                try_fire(dst, "token", cell)

            def done() -> None:
                busy[cell] = False
                finish_times[cell] = sim.now
                for dst in self._comm.successors(cell):
                    value = outputs.get(dst) if outputs else None
                    sim.schedule(
                        self._wire_delay,
                        (lambda d=dst, v=value: deliver(d, v)),
                    )
                try_fire(cell, "self")

            sim.schedule(duration, done)

        for cell in cells:
            try_fire(cell)
        processed = sim.run(max_events=None)

        fired = [c for c in cells if next_wave[c] != n_waves]
        if fired:
            raise AssertionError(
                f"dataflow run stalled: {len(fired)} cells short of "
                f"{n_waves} waves (first: {fired[:3]!r})"
            )
        makespan = max(finish_times.values(), default=0.0)
        result = self._program.read_result(_ResultFacade(pes))
        if tracer.enabled:
            tracer.event(
                makespan, "dataflow", "run",
                waves=n_waves, cells=len(cells), makespan=makespan,
            )
        if self._metrics is not None:
            self._metrics.gauge("dataflow.makespan").set(makespan)
        return DataflowRunResult(
            result=result,
            waves=n_waves,
            makespan=makespan,
            events_processed=processed,
            finish_times=finish_times,
        )

    def compiled_recurrence(self):
        """The array-compiled tandem recurrence for this program's COMM
        graph (built once, cached; see
        :class:`repro.sim.compiled.CompiledRecurrence`)."""
        from repro.sim.compiled import CompiledRecurrence

        kernel = self._compiled
        if kernel is None or kernel.comm_version != self._comm.version:
            kernel = CompiledRecurrence(self._comm)
            self._compiled = kernel
        return kernel

    def recurrence_makespan(self, waves: Optional[int] = None) -> float:
        """The tandem-recurrence makespan computed directly (no engine):

        ``finish[c][k] = max(finish[c][k-1], max_pred finish[pred][k-1] +
        wire) + service(c, k)`` — the generalization of
        :func:`repro.sim.selftimed.simulate_selftimed_line` with
        ``blocking=False`` to an arbitrary COMM graph.  The differential
        checker asserts the engine-driven run lands on exactly this value.

        Evaluated wavefront-at-a-time by the compiled array kernel, which
        performs the identical float operations (``max`` is order-free, the
        single add is unreassociated) — :meth:`recurrence_makespan_scalar`
        is the reference it must equal exactly.
        """
        n_waves = waves if waves is not None else self._program.cycles
        return self.compiled_recurrence().makespan(
            self._service, self._wire_delay, n_waves
        )

    def critical_path(self, waves: Optional[int] = None):
        """The dependency chain behind this program's self-timed makespan
        (see :func:`repro.obs.critpath.selftimed_critical_path`): the same
        tandem recurrence, replayed with argmax bookkeeping, so the
        chain's endpoint equals :meth:`recurrence_makespan` — and the
        engine-driven :meth:`run` makespan — bit for bit."""
        from repro.obs.critpath import selftimed_critical_path

        n_waves = waves if waves is not None else self._program.cycles
        return selftimed_critical_path(
            self._comm,
            self._service,
            self._wire_delay,
            n_waves,
            reported=self.recurrence_makespan(n_waves),
        )

    def recurrence_makespan_scalar(self, waves: Optional[int] = None) -> float:
        """Reference (per-cell Python loop) evaluation of the tandem
        recurrence — the oracle for :meth:`recurrence_makespan`."""
        n_waves = waves if waves is not None else self._program.cycles
        cells = self._comm.nodes()
        finish: Dict[CellId, float] = {c: 0.0 for c in cells}
        for k in range(n_waves):
            new_finish: Dict[CellId, float] = {}
            for c in cells:
                start = finish[c]
                if k > 0:
                    for p in self._comm.predecessors(c):
                        start = max(start, finish[p] + self._wire_delay)
                new_finish[c] = start + self._service(c, k)
            # Wave k's start depends on wave k-1 finishes only, so the
            # whole wave updates atomically.
            finish = new_finish
        return max(finish.values(), default=0.0)
