"""Self-timed *functional* execution of systolic programs.

:mod:`repro.sim.selftimed` and :mod:`repro.sim.handshake` model the paper's
Section I timing arguments (tandem recurrences, request/acknowledge
protocols) but never execute a real workload.  This module closes that gap:
a :class:`SelfTimedProgramSimulator` runs any :class:`~repro.arrays.
systolic.SystolicProgram` data-driven on the discrete-event engine — each
cell fires its wave ``k`` as soon as it has finished wave ``k-1`` and every
predecessor's wave ``k-1`` token has arrived, with a per-(cell, wave)
service time.

The functional claim this realizes is the self-timed half of the paper's
equivalence: because every cell consumes exactly the generation ``k-1``
value on each input edge, the computation is the ideal lockstep semantics
(assumption A1) regardless of service-time variation — self-timing changes
*when* things happen, never *what* is computed.  The differential checker
(:mod:`repro.check.differential`) asserts exactly that, against the ideal
executor, the clocked simulator, and the hybrid executor.

Timing-wise the run obeys the tandem recurrence

``start[c][k] = max(finish[c][k-1], max_pred finish[pred][k-1] + wire)``

generalized from a line to any COMM graph, in one of two flow-control
regimes selected by ``channel_capacity``:

* ``channel_capacity=None`` (default) — unbounded FIFOs, the pure dataflow
  idealization (the ``blocking=False`` case of :func:`repro.sim.selftimed.
  simulate_selftimed_line`): a sender never waits for its consumers.
* ``channel_capacity=k`` — every COMM edge is a depth-``k`` FIFO (the wire
  counts as part of the channel's storage).  A cell may start wave ``w``
  only once each successor has *consumed* its generation ``w-k`` token,
  which in marked-graph/max-plus terms adds a capacity back-edge to the
  forward recurrence:

  ``start[c][w] >= start[succ][w-k+1]``  for every successor, ``w >= k``.

  This is backpressure: a slow consumer stalls its producers once the
  channel fills, and the stall propagates upstream — the finite-local-
  buffer contract real self-timed arrays run (and the reason the paper's
  Section I cites FIFO queueing between cells as the cost of self-timed
  layouts).  ``k=1`` on a *cyclic* COMM graph is a zero-token marked-graph
  cycle and deadlocks; the simulator rejects it with
  :class:`ChannelDeadlockError` instead of hanging.

The checker verifies the engine-driven makespan against the recurrence
computed directly (compiled and scalar) in both regimes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.arrays.cells import PE
from repro.arrays.systolic import SystolicProgram
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.engine import Simulator

CellId = Hashable
EdgeKey = Tuple[CellId, CellId]

#: Service-time callback: ``(cell, wave) -> duration``.  Deterministic
#: callables keep runs reproducible; see :func:`constant_service` and
#: :func:`hashed_service`.
ServiceTime = Callable[[CellId, int], float]

#: Flow-control spec: ``None`` (unbounded), a uniform int depth, or a
#: per-edge ``{(src, dst): depth}`` map (absent edges are unbounded).
CapacitySpec = Optional[Union[int, Mapping[EdgeKey, int]]]


class ChannelDeadlockError(RuntimeError):
    """Capacity-1 channels on a cyclic COMM graph can never make progress.

    Marked-graph liveness requires every directed cycle to carry at least
    one token of slack; with ``channel_capacity=1`` the credit back-edge
    ``start[c][w] >= start[succ][w]`` has dependency distance zero, so a
    COMM cycle becomes a zero-token cycle: each cell on it waits for the
    next to fire the *same* wave first.  Raised eagerly (at construction /
    kernel entry) instead of letting the event engine stall mid-run.
    """


def constant_service(duration: float) -> ServiceTime:
    """Every (cell, wave) takes exactly ``duration``.

    The returned callable carries a ``constant_duration`` attribute so the
    compiled recurrence kernel (:mod:`repro.sim.compiled`) can skip
    tabulating a full (cell, wave) service matrix.
    """
    if duration < 0:
        raise ValueError("service time must be non-negative")

    def service(cell: CellId, wave: int) -> float:
        return duration

    service.constant_duration = float(duration)  # type: ignore[attr-defined]
    return service


def per_cell_service(durations: Mapping[CellId, float]) -> ServiceTime:
    """Each cell takes its own wave-invariant duration.

    This is the heterogeneous-cell model the static flow analyzer
    (:mod:`repro.sta.flow`) works over: cycle-time bounds only exist when
    service times are wave-invariant, and per-cell constants are exactly
    that regime.  The returned callable carries a ``cell_durations``
    attribute so the compiled recurrence kernel can build its per-cell
    service column without tabulating a full (cell, wave) matrix.
    """
    table = {cell: float(d) for cell, d in durations.items()}
    for cell, duration in table.items():
        if duration < 0:
            raise ValueError(f"negative service time for {cell!r}")

    def service(cell: CellId, wave: int) -> float:
        return table[cell]

    service.cell_durations = table  # type: ignore[attr-defined]
    return service


def hashed_service(
    normal: float, worst: float, worst_probability: float, seed: int = 0
) -> ServiceTime:
    """The two-speed cell model of Section I, keyed deterministically on
    ``(seed, cell, wave)`` — stable across processes and iteration orders,
    like :func:`repro.sim.faults._stable_unit_noise`."""
    if normal <= 0 or worst < normal:
        raise ValueError("need 0 < normal <= worst")
    if not 0.0 <= worst_probability <= 1.0:
        raise ValueError("worst_probability must be a probability")
    from repro.sim.faults import _stable_unit_noise

    def sample(cell: CellId, wave: int) -> float:
        u = (_stable_unit_noise(seed, cell, wave) + 1.0) / 2.0  # [0, 1)
        return worst if u < worst_probability else normal

    return sample


def _reverse_topological(
    comm: Any, edges: Optional[List[Tuple[CellId, CellId]]] = None
) -> List[CellId]:
    """Cells in reverse topological order (consumers before producers) —
    the evaluation order the same-wave capacity-1 credit term needs.
    With ``edges`` the order is taken over that COMM-edge *subset* (the
    capacity-1 channels of a per-edge assignment); ``None`` means every
    edge.  Raises :class:`ChannelDeadlockError` when the (sub)graph is
    cyclic — a zero-token marked-graph cycle."""
    cells = comm.nodes()
    if edges is None:
        indegree: Dict[CellId, int] = {
            c: len(comm.predecessors(c)) for c in cells
        }
        succs: Dict[CellId, List[CellId]] = {
            c: list(comm.successors(c)) for c in cells
        }
    else:
        indegree = {c: 0 for c in cells}
        succs = {c: [] for c in cells}
        for u, v in edges:
            indegree[v] += 1
            succs[u].append(v)
    queue: List[CellId] = [c for c in cells if indegree[c] == 0]
    order: List[CellId] = []
    i = 0
    while i < len(queue):
        c = queue[i]
        i += 1
        order.append(c)
        for s in succs[c]:
            indegree[s] -= 1
            if indegree[s] == 0:
                queue.append(s)
    if len(order) != len(cells):
        raise ChannelDeadlockError(
            "capacity-1 channels form a directed COMM cycle: a zero-token "
            "marked-graph cycle (deadlock); raise some capacity on the "
            "cycle to >= 2"
        )
    order.reverse()
    return order


@dataclass
class DataflowRunResult:
    """Outcome of a self-timed program run: payload plus timing.

    ``channel_capacity``/``stall_time``/``max_occupancy`` describe the
    backpressure regime: under finite capacities, ``stall_time`` maps each
    cell to the total time it sat data-ready but credit-blocked (waiting
    for a consumer to drain a full channel) and ``max_occupancy`` is the
    deepest any channel got (always ``<= channel_capacity`` — the engine
    asserts it).  Both stay ``None`` for unbounded runs, whose behaviour
    is byte-identical to the pre-backpressure simulator.
    """

    result: Any
    waves: int
    makespan: float
    events_processed: int
    finish_times: Dict[CellId, float]  # completion of each cell's last wave
    channel_capacity: CapacitySpec = None
    stall_time: Optional[Dict[CellId, float]] = None
    max_occupancy: Optional[int] = None

    @property
    def mean_cycle_time(self) -> float:
        """Makespan per wave — the crude throughput figure."""
        return self.makespan / self.waves if self.waves else 0.0

    @property
    def throughput(self) -> float:
        """Waves completed per unit time (the reciprocal figure sweeps
        plot against channel capacity)."""
        return self.waves / self.makespan if self.makespan > 0 else 0.0

    @property
    def total_stall_time(self) -> float:
        """Summed credit-blocked time across cells (0.0 when unbounded)."""
        return sum(self.stall_time.values()) if self.stall_time else 0.0


class _ResultFacade:
    """Quacks like a LockstepExecutor for ``SystolicProgram.read_result``
    (which only ever calls ``pe``)."""

    def __init__(self, pes: Mapping[CellId, PE]) -> None:
        self._pes = pes

    def pe(self, cell: CellId) -> PE:
        return self._pes[cell]


class SelfTimedProgramSimulator:
    """Run a systolic program data-driven on the event engine.

    ``service`` supplies the per-(cell, wave) compute time; ``wire_delay``
    is the token propagation time per COMM edge (uniform — the regular-array
    case).  ``channel_capacity`` selects the flow-control regime: ``None``
    keeps every channel an unbounded FIFO (the pure dataflow idealization,
    byte-identical to the historical behaviour), while an integer ``k``
    bounds each COMM edge to ``k`` in-flight generations and stalls
    producers when a channel fills (see the module docstring for the
    marked-graph recurrence this realizes).  Functional behaviour is
    exactly lockstep either way — capacity changes *when* cells fire,
    never *what* they compute.
    """

    def __init__(
        self,
        program: SystolicProgram,
        service: Optional[ServiceTime] = None,
        wire_delay: float = 0.0,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        channel_capacity: CapacitySpec = None,
    ) -> None:
        if wire_delay < 0:
            raise ValueError("wire delay must be non-negative")
        self._program = program
        self._comm = program.array.comm
        self._service = service if service is not None else constant_service(1.0)
        self._wire_delay = wire_delay
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics
        self._capacity_map: Optional[Dict[EdgeKey, int]] = None
        if isinstance(channel_capacity, Mapping):
            edge_set = set(self._comm.edges())
            cap_map: Dict[EdgeKey, int] = {}
            for edge, cap in channel_capacity.items():
                if edge not in edge_set:
                    raise ValueError(
                        f"capacity for unknown COMM edge {edge!r}"
                    )
                cap = int(cap)
                if cap < 1:
                    raise ValueError(
                        f"per-edge channel capacity must be >= 1, got "
                        f"{cap} for edge {edge!r}"
                    )
                cap_map[edge] = cap
            cap1 = [e for e, cap in cap_map.items() if cap == 1]
            if cap1:
                # Eager deadlock detection, same contract as the uniform
                # case: a cyclic capacity-1 subgraph can never fire.
                _reverse_topological(self._comm, cap1)
            self._capacity_map = cap_map
            channel_capacity = None
        elif channel_capacity is not None:
            channel_capacity = int(channel_capacity)
            if channel_capacity < 1:
                raise ValueError("channel capacity must be >= 1 (or None)")
            if channel_capacity == 1 and not self._comm.is_acyclic():
                raise ChannelDeadlockError(
                    "channel_capacity=1 on a cyclic COMM graph is a "
                    "zero-token marked-graph cycle (deadlock); use "
                    "capacity >= 2"
                )
        self._channel_capacity: Optional[int] = channel_capacity
        self._compiled: Any = None  # lazy CompiledRecurrence

    @property
    def channel_capacity(self) -> CapacitySpec:
        if self._capacity_map is not None:
            return dict(self._capacity_map)
        return self._channel_capacity

    def run(self, waves: Optional[int] = None) -> DataflowRunResult:
        n_waves = waves if waves is not None else self._program.cycles
        if n_waves < 1:
            raise ValueError("need at least one wave")
        pes = self._program.pes
        for pe in pes.values():
            pe.reset()

        sim = Simulator(tracer=self._tracer, metrics=self._metrics)
        cells = self._comm.nodes()
        preds: Dict[CellId, Tuple[CellId, ...]] = {
            c: tuple(self._comm.predecessors(c)) for c in cells
        }
        # Per-cell progress: next wave to fire, busy-until flag, and the
        # arrived-but-unconsumed tokens per generation.
        next_wave: Dict[CellId, int] = {c: 0 for c in cells}
        busy: Dict[CellId, bool] = {c: False for c in cells}
        inbox: Dict[CellId, Dict[int, Dict[CellId, Any]]] = {c: {} for c in cells}
        finish_times: Dict[CellId, float] = {c: 0.0 for c in cells}
        tracer = self._tracer
        service_hist = (
            self._metrics.histogram("dataflow.service_time")
            if self._metrics is not None
            else None
        )

        # Backpressure state — only materialized for finite capacities so
        # the unbounded path stays byte-identical (same events, same order,
        # same floats) to the historical simulator.
        capacity = self._channel_capacity
        cap_map = self._capacity_map
        bounded = capacity is not None or cap_map is not None
        succs: Dict[CellId, Tuple[CellId, ...]] = {}
        outstanding: Dict[Tuple[CellId, CellId], int] = {}
        stall_time: Optional[Dict[CellId, float]] = None
        blocked_since: Dict[CellId, float] = {}
        max_occupancy = 0
        stall_hist = occupancy_hist = None
        if bounded:
            succs = {c: tuple(self._comm.successors(c)) for c in cells}
            outstanding = {(u, v): 0 for u, v in self._comm.edges()}
            stall_time = {c: 0.0 for c in cells}
            if self._metrics is not None:
                stall_hist = self._metrics.histogram("dataflow.stall_time")
                occupancy_hist = self._metrics.histogram(
                    "dataflow.channel_occupancy"
                )

        def ready(cell: CellId) -> bool:
            k = next_wave[cell]
            if k >= n_waves or busy[cell]:
                return False
            if k == 0:
                return True  # wave 0 consumes the initial (empty) registers
            pending = inbox[cell].get(k - 1, {})
            return all(src in pending for src in preds[cell])

        def credit_ready(cell: CellId) -> bool:
            # Capacity k: wave w needs each successor to have consumed
            # generation w-k, i.e. to have *fired* wave w-k+1 already
            # (``next_wave`` counts fires, so the threshold is w-k+2).
            k = next_wave[cell]
            if cap_map is not None:
                # Heterogeneous depths: each outgoing edge applies its own
                # threshold; edges absent from the map are unbounded.
                for s in succs[cell]:
                    cap_e = cap_map.get((cell, s))
                    if (
                        cap_e is not None
                        and k >= cap_e
                        and next_wave[s] < k - cap_e + 2
                    ):
                        return False
                return True
            if k < capacity:
                return True
            floor = k - capacity + 2
            for s in succs[cell]:
                if next_wave[s] < floor:
                    return False
            return True

        def try_fire(
            cell: CellId,
            cause: str = "init",
            src: Optional[CellId] = None,
            src_wave: Optional[int] = None,
        ) -> None:
            # ``cause``/``src`` name the state change that made this call:
            # the *last* enabling event is the binding constraint, so a
            # successful fire's cause is its critical dependency — exactly
            # what trace-driven critical-path extraction walks back over.
            # ``src_wave`` disambiguates credit causes, whose enabling
            # fire is ``src``'s wave ``w - capacity + 1``, not ``w - 1``.
            if not ready(cell):
                return
            k = next_wave[cell]
            if bounded and not credit_ready(cell):
                # Data-ready but the channel to some consumer is full:
                # the stall clock starts at the first blocked attempt.
                blocked_since.setdefault(cell, sim.now)
                return
            if bounded:
                t_blocked = blocked_since.pop(cell, None)
                if t_blocked is not None:
                    stalled = sim.now - t_blocked
                    stall_time[cell] += stalled
                    if stall_hist is not None:
                        stall_hist.observe(stalled)
            inputs: Dict[CellId, Any] = (
                inbox[cell].pop(k - 1, {}) if k > 0 else {}
            )
            if bounded and k > 0:
                # Consuming generation k-1 drains one slot per input edge.
                for p in preds[cell]:
                    outstanding[(p, cell)] -= 1
            # Lockstep semantics: an input edge with no token yet written
            # reads as None (the empty register before the first latch).
            fire_inputs = {src_c: inputs.get(src_c) for src_c in preds[cell]}
            outputs = pes[cell].fire(fire_inputs)
            duration = self._service(cell, k)
            if duration < 0:
                raise ValueError(f"negative service time for {cell!r} wave {k}")
            if service_hist is not None:
                service_hist.observe(duration)
            if tracer.enabled:
                # ``finish`` is the same float expression the engine uses
                # to schedule ``done`` (now + delay), so the recorded
                # chain telescopes to the reported makespan bit for bit.
                tracer.event(
                    sim.now, "dataflow", "fire", cell=cell, wave=k,
                    start=sim.now, service=duration,
                    finish=sim.now + duration, cause=cause, src=src,
                    src_wave=src_wave,
                )
            next_wave[cell] = k + 1
            busy[cell] = True
            if bounded:
                # This fire consumed a generation (and advanced the wave
                # front), which may return credits to the producers.
                # Trampoline through zero-delay events rather than direct
                # recursion so deep pipelines can't blow the stack; the
                # engine's FIFO tie-break keeps same-timestamp order
                # deterministic.
                for p in preds[cell]:
                    sim.schedule(
                        0.0,
                        (lambda pp=p, w=k: try_fire(pp, "credit", cell, w)),
                    )

            def deliver(dst: CellId, value: Any, gen: int = k) -> None:
                inbox[dst].setdefault(gen, {})[cell] = value
                try_fire(dst, "token", cell)

            def done() -> None:
                nonlocal max_occupancy
                busy[cell] = False
                finish_times[cell] = sim.now
                for dst in self._comm.successors(cell):
                    value = outputs.get(dst) if outputs else None
                    if bounded:
                        count = outstanding[(cell, dst)] + 1
                        outstanding[(cell, dst)] = count
                        limit = (
                            capacity
                            if cap_map is None
                            else cap_map.get((cell, dst))
                        )
                        if limit is not None and count > limit:
                            raise AssertionError(
                                f"channel ({cell!r} -> {dst!r}) exceeded "
                                f"capacity {limit}: {count} in flight"
                            )
                        if count > max_occupancy:
                            max_occupancy = count
                        if occupancy_hist is not None:
                            occupancy_hist.observe(float(count))
                    sim.schedule(
                        self._wire_delay,
                        (lambda d=dst, v=value: deliver(d, v)),
                    )
                try_fire(cell, "self")

            sim.schedule(duration, done)

        for cell in cells:
            try_fire(cell)
        processed = sim.run(max_events=None)

        fired = [c for c in cells if next_wave[c] != n_waves]
        if fired:
            raise AssertionError(
                f"dataflow run stalled: {len(fired)} cells short of "
                f"{n_waves} waves (first: {fired[:3]!r})"
            )
        makespan = max(finish_times.values(), default=0.0)
        result = self._program.read_result(_ResultFacade(pes))
        if tracer.enabled:
            tracer.event(
                makespan, "dataflow", "run",
                waves=n_waves, cells=len(cells), makespan=makespan,
                channel_capacity=self.channel_capacity,
            )
        if self._metrics is not None:
            self._metrics.gauge("dataflow.makespan").set(makespan)
            if makespan > 0:
                self._metrics.gauge("dataflow.throughput").set(
                    n_waves / makespan
                )
        return DataflowRunResult(
            result=result,
            waves=n_waves,
            makespan=makespan,
            events_processed=processed,
            finish_times=finish_times,
            channel_capacity=self.channel_capacity,
            stall_time=stall_time,
            max_occupancy=(max_occupancy if bounded else None),
        )

    def compiled_recurrence(self):
        """The array-compiled tandem recurrence for this program's COMM
        graph (built once, cached; see
        :class:`repro.sim.compiled.CompiledRecurrence`)."""
        from repro.sim.compiled import CompiledRecurrence

        kernel = self._compiled
        if kernel is None or kernel.comm_version != self._comm.version:
            kernel = CompiledRecurrence(self._comm)
            self._compiled = kernel
        return kernel

    def recurrence_makespan(self, waves: Optional[int] = None) -> float:
        """The tandem-recurrence makespan computed directly (no engine):

        ``finish[c][k] = max(finish[c][k-1], max_pred finish[pred][k-1] +
        wire) + service(c, k)`` — plus, under a finite
        ``channel_capacity=k``, the capacity back-edge
        ``start[c][w] >= start[succ][w-k+1]`` (the marked-graph credit
        constraint; see the module docstring).  The differential checker
        asserts the engine-driven run lands on exactly this value in both
        regimes.

        Evaluated wavefront-at-a-time by the compiled array kernel, which
        performs the identical float operations (``max`` is order-free, the
        single add is unreassociated) — :meth:`recurrence_makespan_scalar`
        is the reference it must equal exactly.
        """
        n_waves = waves if waves is not None else self._program.cycles
        capacity: CapacitySpec = (
            self._capacity_map
            if self._capacity_map is not None
            else self._channel_capacity
        )
        return self.compiled_recurrence().makespan(
            self._service,
            self._wire_delay,
            n_waves,
            capacity=capacity,
        )

    def critical_path(self, waves: Optional[int] = None):
        """The dependency chain behind this program's self-timed makespan
        (see :func:`repro.obs.critpath.selftimed_critical_path`): the same
        tandem recurrence, replayed with argmax bookkeeping, so the
        chain's endpoint equals :meth:`recurrence_makespan` — and the
        engine-driven :meth:`run` makespan — bit for bit.

        The replay models the unbounded recurrence; for bounded runs use
        trace-driven extraction (:func:`repro.obs.critpath.
        critical_path_from_trace`), whose ``credit`` cause annotations
        carry the capacity back-edges.
        """
        if self._channel_capacity is not None or self._capacity_map is not None:
            raise ValueError(
                "critical_path() replays the unbounded recurrence; for a "
                "bounded run record a trace and use "
                "repro.obs.critpath.critical_path_from_trace"
            )
        from repro.obs.critpath import selftimed_critical_path

        n_waves = waves if waves is not None else self._program.cycles
        return selftimed_critical_path(
            self._comm,
            self._service,
            self._wire_delay,
            n_waves,
            reported=self.recurrence_makespan(n_waves),
        )

    def recurrence_makespan_scalar(self, waves: Optional[int] = None) -> float:
        """Reference (per-cell Python loop) evaluation of the tandem
        recurrence — the oracle for :meth:`recurrence_makespan` — honouring
        ``channel_capacity`` exactly like the event engine."""
        n_waves = waves if waves is not None else self._program.cycles
        cells = self._comm.nodes()
        cap = self._channel_capacity
        finish: Dict[CellId, float] = {c: 0.0 for c in cells}
        if cap is None and self._capacity_map is None:
            for k in range(n_waves):
                new_finish: Dict[CellId, float] = {}
                for c in cells:
                    start = finish[c]
                    if k > 0:
                        for p in self._comm.predecessors(c):
                            start = max(start, finish[p] + self._wire_delay)
                    new_finish[c] = start + self._service(c, k)
                # Wave k's start depends on wave k-1 finishes only, so the
                # whole wave updates atomically.
                finish = new_finish
            return max(finish.values(), default=0.0)

        preds = {c: list(self._comm.predecessors(c)) for c in cells}
        succs = {c: list(self._comm.successors(c)) for c in cells}
        cap_map = self._capacity_map
        if cap_map is not None:
            # Heterogeneous depths: capacity-1 edges couple starts within a
            # wave (evaluate consumers-first over that subgraph); deeper
            # edges read start rows from a sliding window whose depth is
            # the largest finite capacity minus one.
            cap1 = [e for e, d in cap_map.items() if d == 1]
            order = _reverse_topological(self._comm, cap1) if cap1 else cells
            max_cap = max(cap_map.values(), default=1)
            window: deque = deque()
            for k in range(n_waves):
                starts: Dict[CellId, float] = {}
                for c in order:
                    start = finish[c]
                    if k > 0:
                        for p in preds[c]:
                            start = max(start, finish[p] + self._wire_delay)
                    for s in succs[c]:
                        d = cap_map.get((c, s))
                        if d is None or k < d:
                            continue
                        if d == 1:
                            start = max(start, starts[s])
                        else:
                            # window[-1] is wave k-1, so wave k-d+1 sits at
                            # index -(d-1); valid because k >= d.
                            start = max(start, window[-(d - 1)][s])
                    starts[c] = start
                finish = {c: starts[c] + self._service(c, k) for c in cells}
                if max_cap >= 2:
                    window.append(starts)
                    if len(window) > max_cap - 1:
                        window.popleft()
            return max(finish.values(), default=0.0)
        # Capacity 1 couples starts *within* a wave (distance k-1 = 0), so
        # cells evaluate consumers-first; capacity >= 2 only reads start
        # rows from earlier waves, kept in a sliding window of depth k-1.
        order = _reverse_topological(self._comm) if cap == 1 else cells
        history: deque = deque()
        for k in range(n_waves):
            starts: Dict[CellId, float] = {}
            for c in order:
                start = finish[c]
                if k > 0:
                    for p in preds[c]:
                        start = max(start, finish[p] + self._wire_delay)
                if k >= cap:
                    if cap == 1:
                        for s in succs[c]:
                            start = max(start, starts[s])
                    else:
                        oldest = history[0]  # wave k - cap + 1
                        for s in succs[c]:
                            start = max(start, oldest[s])
                starts[c] = start
            finish = {c: starts[c] + self._service(c, k) for c in cells}
            if cap >= 2:
                history.append(starts)
                if len(history) > cap - 1:
                    history.popleft()
        return max(finish.values(), default=0.0)
