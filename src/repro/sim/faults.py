"""Fault injection: what happens when assumption A8 breaks.

Pipelined clocking rests on A8 — "the time for a signal to travel on a
particular path through a buffered clock tree is invariant over time."
Section VI opens with exactly the failure case: "in the absence of the
invariance condition A8, in which case pipelined clocking fails ...", and
prescribes the hybrid scheme.  This module supplies the breakage:

* :class:`JitteredSchedule` — per-(cell, tick) bounded random jitter on
  clock arrival times: the drift of a tree whose path delays wobble between
  events.  Small jitter is absorbed by timing margins; jitter beyond the
  margin produces the stale/race violations the clocked simulator reports.
* :func:`slow_subtree` — a degraded buffer: every cell under a given clock
  tree node receives its ticks late by a fixed amount (aging, local heating,
  a resistive via).  Turns a zero-skew H-tree into a skewed one.
* :func:`summarize_violations` — aggregates the simulator's violation list
  into per-edge counts and first-failure ticks for diagnosis.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Tuple

from repro.clocktree.buffered import BufferedClockTree
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import TimingViolation

CellId = Hashable
EdgeKey = Tuple[CellId, CellId]


def _stable_unit_noise(seed: int, cell: CellId, tick: int) -> float:
    """Deterministic noise in [-1, 1) from (seed, cell, tick) — stable
    across processes (unlike ``hash``), so runs are reproducible."""
    digest = hashlib.blake2b(
        f"{seed}|{cell!r}|{tick}".encode(), digest_size=8
    ).digest()
    (value,) = struct.unpack("<Q", digest)
    return (value / 2**63) - 1.0


class JitteredSchedule(ClockSchedule):
    """A clock schedule whose tick times wobble by up to ``amplitude``.

    Wraps a base schedule; tick ``k`` at ``cell`` moves by a deterministic
    pseudo-random offset in ``[-amplitude, amplitude)``.  ``amplitude`` must
    stay below half the period so tick times remain strictly monotone (the
    physical situation: drift, not reordering).
    """

    def __init__(self, base: ClockSchedule, amplitude: float, seed: int = 0) -> None:
        if amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        if amplitude >= base.period / 2:
            raise ValueError("amplitude must stay below half the period")
        super().__init__({c: base.offset(c) for c in base.cells()}, base.period)
        self.amplitude = amplitude
        self.seed = seed

    def tick_time(self, cell: CellId, k: int) -> float:
        base_time = super().tick_time(cell, k)
        return base_time + self.amplitude * _stable_unit_noise(self.seed, cell, k)


def slow_subtree(
    buffered: BufferedClockTree,
    node: CellId,
    extra_delay: float,
    cells: Iterable[CellId],
    period: float,
) -> ClockSchedule:
    """A schedule where every cell clocked through ``node`` ticks late.

    Models one degraded buffer feeding a subtree: arrivals below ``node``
    shift by ``extra_delay``; the rest of the tree is untouched.  Returns a
    ready-to-use :class:`ClockSchedule` (offsets only — the drift is
    persistent, so A8 still holds *after* the fault; contrast with
    :class:`JitteredSchedule`).
    """
    if extra_delay < 0:
        raise ValueError("extra delay must be non-negative")
    if node not in buffered.tree:
        raise KeyError(f"{node!r} is not a clock tree node")
    affected = set(buffered.tree.subtree_nodes(node))
    arrivals: Dict[CellId, float] = {}
    for cell in cells:
        shift = extra_delay if cell in affected else 0.0
        arrivals[cell] = buffered.arrival(cell) + shift
    return ClockSchedule(arrivals, period)


@dataclass(frozen=True)
class ViolationSummary:
    """Aggregated view of a clocked run's timing violations."""

    total: int
    stale: int
    race: int
    edges_affected: int
    first_failure_tick: int
    worst_edge: Tuple[EdgeKey, int]  # (edge, violation count)
    last_failure_tick: int = -1
    per_cell: Mapping[CellId, int] = field(default_factory=dict)  # receiver -> count

    @property
    def clean(self) -> bool:
        return self.total == 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-exportable form sharing the trace layer's conventions
        (edges and cells serialised as their trace representations)."""
        from repro.obs.trace import _jsonable

        worst_edge, worst_count = self.worst_edge
        return {
            "total": self.total,
            "stale": self.stale,
            "race": self.race,
            "edges_affected": self.edges_affected,
            "first_failure_tick": self.first_failure_tick,
            "last_failure_tick": self.last_failure_tick,
            "worst_edge": _jsonable(worst_edge),
            "worst_edge_count": worst_count,
            "per_cell": {
                str(cell): count for cell, count in sorted(
                    self.per_cell.items(), key=lambda kv: str(kv[0])
                )
            },
        }


def summarize_violations(violations: List[TimingViolation]) -> ViolationSummary:
    """Collapse the simulator's violation list into a diagnosis."""
    if not violations:
        return ViolationSummary(
            total=0,
            stale=0,
            race=0,
            edges_affected=0,
            first_failure_tick=-1,
            worst_edge=((None, None), 0),
        )
    per_edge: Dict[EdgeKey, int] = {}
    per_cell: Dict[CellId, int] = {}
    stale = race = 0
    first = min(v.receiver_tick for v in violations)
    last = max(v.receiver_tick for v in violations)
    for v in violations:
        per_edge[v.edge] = per_edge.get(v.edge, 0) + 1
        receiver = v.edge[1]
        per_cell[receiver] = per_cell.get(receiver, 0) + 1
        if v.kind == "stale":
            stale += 1
        else:
            race += 1
    worst = max(per_edge.items(), key=lambda kv: kv[1])
    return ViolationSummary(
        total=len(violations),
        stale=stale,
        race=race,
        edges_affected=len(per_edge),
        first_failure_tick=first,
        worst_edge=worst,
        last_failure_tick=last,
        per_cell=per_cell,
    )
