"""A minimal discrete-event queue.

Events are ``(time, sequence, payload)`` triples in a binary heap; the
sequence number makes ordering stable and deterministic for simultaneous
events (insertion order breaks ties), which the reproducibility tests rely
on.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple


class EventQueue:
    """A time-ordered queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, payload: Any) -> None:
        if time < 0:
            raise ValueError("event time must be non-negative")
        heapq.heappush(self._heap, (time, self._seq, payload))
        self._seq += 1

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)``."""
        if not self._heap:
            raise IndexError("pop from empty event queue")
        time, _seq, payload = heapq.heappop(self._heap)
        return time, payload

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None
