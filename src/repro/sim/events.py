"""A minimal discrete-event queue.

Events are ``(time, sequence, payload)`` triples in a binary heap; the
sequence number makes ordering stable and deterministic for simultaneous
events (insertion order breaks ties), which the reproducibility tests rely
on.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple


class EventQueue:
    """A time-ordered queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, payload: Any) -> None:
        """Add ``payload`` at ``time``.  Equal-time events are guaranteed
        to pop in push order (FIFO): the monotone sequence number is the
        heap tie-breaker, so insertion order is total, not best-effort.
        Trace diffing relies on this — two runs of the same deterministic
        model must produce identical event orders."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        heapq.heappush(self._heap, (time, self._seq, payload))
        self._seq += 1

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)``; among
        equal-time events, strictly the least-recently pushed (FIFO)."""
        if not self._heap:
            raise IndexError("pop from empty event queue")
        time, seq, payload = heapq.heappop(self._heap)
        # FIFO invariant: any equal-time event still queued must carry a
        # later sequence number than the one just popped.
        assert not self._heap or self._heap[0][:2] > (time, seq)
        return time, payload

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None
