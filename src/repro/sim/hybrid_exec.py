"""Executing systolic programs under hybrid synchronization.

Section VI's punchline is that cells can be "designed as if the entire
system were globally clocked" while only the small controller network is
self-timed.  This module makes that concrete: it runs a real systolic
program under a hybrid scheme and produces both

* the **functional result** — identical to the ideal lockstep semantics,
  because the neighbor barrier guarantees that when element ``E`` starts
  global step ``k+1``, every element containing a cell that feeds ``E`` has
  finished step ``k``; and
* the **timing** — per-element start/finish times from the max-plus
  handshake recurrence, whose steady-state cycle is constant in array size.

The dependency guarantee is not just asserted: :meth:`HybridExecution.
verify_dependencies` checks, for every cross-element communication edge and
every step, that the producer's finish time precedes the consumer's next
start time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Tuple

import numpy as np

from repro.arrays.ideal import LockstepExecutor
from repro.arrays.systolic import SystolicProgram
from repro.core.hybrid import HybridScheme, build_hybrid

CellId = Hashable
ElementId = Tuple[int, int]


@dataclass
class HybridExecution:
    """Result of one hybrid run: data plus the timing that carried it."""

    result: Any
    steps: int
    start_times: List[Dict[ElementId, float]]   # per step
    finish_times: List[Dict[ElementId, float]]  # per step
    cycle_time: float
    makespan: float
    scheme: HybridScheme

    def verify_dependencies(self) -> bool:
        """Every cross-element edge's producer finishes step ``k`` before
        the consumer starts step ``k+1`` — the condition that makes the
        functional result equal to lockstep."""
        element_of = self.scheme.element_of
        for u, v in self.scheme.array.communicating_pairs():
            eu, ev = element_of[u], element_of[v]
            if eu == ev:
                continue
            for k in range(self.steps - 1):
                if self.finish_times[k][eu] > self.start_times[k + 1][ev] + 1e-9:
                    return False
                if self.finish_times[k][ev] > self.start_times[k + 1][eu] + 1e-9:
                    return False
        return True


def execute_program_hybrid(
    program: SystolicProgram,
    element_size: float = 4.0,
    delta: float = 1.0,
    m: float = 1.0,
    jitter: float = 0.0,
    seed: int = 0,
    steps: int = 0,
) -> HybridExecution:
    """Run ``program`` under a hybrid scheme built over its array.

    ``steps`` defaults to the program's cycle count.  Functional execution
    uses the lockstep interpreter (the barrier makes that exact); timing
    follows the controller recurrence with optional per-step ``jitter``.
    """
    if delta < 0 or m <= 0 or jitter < 0:
        raise ValueError("delta >= 0, m > 0, jitter >= 0 required")
    n_steps = steps if steps > 0 else program.cycles
    scheme = build_hybrid(program.array, element_size=element_size)
    rng = random.Random(seed)

    eids = list(scheme.elements.keys())
    base_cost: Dict[ElementId, float] = {
        e: 2.0 * m * scheme.local_trees[e].longest_root_to_leaf() + delta
        for e in eids
    }
    handshake: Dict[Tuple[ElementId, ElementId], float] = {}
    for a, b in scheme.element_graph.communicating_pairs():
        d = m * scheme.controllers[a].manhattan(scheme.controllers[b])
        handshake[(a, b)] = d
        handshake[(b, a)] = d

    # Compiled max-plus barrier step (repro.sim.compiled) — same values as
    # the per-element dict loop: neighbor max is order-free, and the adds
    # keep the scalar association start + (base + jitter).
    from repro.sim.compiled import CompiledMaxPlus

    kernel = CompiledMaxPlus(
        eids, {e: scheme.element_graph.neighbors(e) for e in eids}, handshake
    )
    base = np.asarray([base_cost[e] for e in eids], dtype=np.float64)

    finish = np.zeros(len(eids), dtype=np.float64)
    start_times: List[Dict[ElementId, float]] = []
    finish_times: List[Dict[ElementId, float]] = []
    for _step in range(n_steps):
        start = kernel.starts(finish)
        if jitter > 0:
            # One uniform draw per element in eids order — the scalar
            # loop's exact RNG consumption sequence.
            cost = base + np.asarray(
                [rng.uniform(0.0, jitter * delta) for _ in eids]
            )
        else:
            cost = base
        finish = start + cost
        start_times.append(dict(zip(eids, start.tolist())))
        finish_times.append(dict(zip(eids, finish.tolist())))

    # Functional execution: the barrier makes hybrid semantics lockstep.
    executor = LockstepExecutor(program.array.comm, program.pes)
    executor.reset()
    executor.run(n_steps)
    result = program.read_result(executor)

    tail = [max(f.values()) for f in finish_times]
    half = n_steps // 2
    if n_steps - half >= 2:
        cycle = (tail[-1] - tail[half]) / (n_steps - 1 - half)
    else:
        cycle = tail[-1] / n_steps
    return HybridExecution(
        result=result,
        steps=n_steps,
        start_times=start_times,
        finish_times=finish_times,
        cycle_time=cycle,
        makespan=tail[-1],
        scheme=scheme,
    )
