"""Self-timed (handshake) array simulation — the Section I analysis.

In a fully self-timed array each cell starts computing as soon as its
inputs are available and publishes outputs as soon as it finishes; cells
have data-dependent compute times.  The paper argues this buys little in
regular arrays: the throughput of a path of ``k`` cells is limited by the
slowest computation on it, and the probability that a wave of computations
hits at least one worst-case cell on a ``k``-path is ``1 - p^k`` (``p`` =
probability a given cell is *not* worst-case) — approaching 1, so large
self-timed arrays run at worst-case speed anyway.

:func:`simulate_selftimed_line` computes exact completion times of a linear
pipeline with random per-(cell, wave) service times via the standard
tandem-queue recurrence (a longest-path computation, equivalent to the
event-driven simulation but deterministic and fast), and reports measured
throughput against the worst-case and best-case rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer

Sampler = Callable[[random.Random], float]


def worst_case_path_probability(p: float, k: int) -> float:
    """``1 - p^k``: probability a ``k``-cell path sees a worst-case cell."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    if k < 1:
        raise ValueError("path length must be positive")
    return 1.0 - p**k


def two_point_sampler(
    normal_time: float, worst_time: float, worst_probability: float
) -> Sampler:
    """Service times that are ``worst_time`` with probability
    ``worst_probability`` and ``normal_time`` otherwise — the two-speed cell
    model behind the ``1 - p^k`` argument."""
    if normal_time <= 0 or worst_time < normal_time:
        raise ValueError("need 0 < normal_time <= worst_time")
    if not 0.0 <= worst_probability <= 1.0:
        raise ValueError("worst_probability must be a probability")

    def sample(rng: random.Random) -> float:
        return worst_time if rng.random() < worst_probability else normal_time

    return sample


@dataclass(frozen=True)
class SelfTimedResult:
    """Measured behaviour of a self-timed pipeline run."""

    n_cells: int
    waves: int
    completion_time: float
    mean_cycle_time: float
    worst_case_cycle: float
    best_case_cycle: float
    waves_hitting_worst_case: int

    @property
    def worst_case_fraction(self) -> float:
        """Fraction of waves that met at least one worst-case cell —
        compare with ``1 - p^k``."""
        return self.waves_hitting_worst_case / self.waves

    @property
    def slowdown_vs_best(self) -> float:
        """Measured cycle over the best case — how little self-timing won."""
        return self.mean_cycle_time / self.best_case_cycle


def simulate_selftimed_line(
    n_cells: int,
    waves: int,
    sampler: Sampler,
    wire_delay: float = 0.0,
    seed: int = 0,
    worst_time: Optional[float] = None,
    blocking: bool = True,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> SelfTimedResult:
    """Run ``waves`` computation waves through ``n_cells`` self-timed cells.

    Tandem recurrence with fresh service time ``s`` per (cell, wave)::

        start[i][w]  = max(finish[i][w-1], finish[i-1][w] + wire
                           [, start[i+1][w-1] if blocking])
        finish[i][w] = start[i][w] + s

    ``blocking=True`` models the systolic reality of one-place channels: a
    cell cannot start its next computation until its successor has consumed
    the previous output.  Without buffering slack, one slow cell stalls its
    whole neighborhood — the mechanism behind the paper's claim that large
    self-timed arrays run at worst-case speed.  ``blocking=False`` gives the
    infinite-FIFO idealization for comparison.

    Throughput is measured over the second half of the run (past the fill
    transient).  ``worst_time`` (default: the largest sampled service time)
    defines which waves "hit a worst-case cell" for the ``1 - p^k``
    comparison.

    With a ``metrics`` registry, every (cell, wave) sample lands in the
    ``selftimed.service_time`` histogram and every backpressure wait (the
    extra delay a cell's start suffers because its successor still holds
    the previous token — only possible when ``blocking``) lands in
    ``selftimed.stall_time``: the distributions behind the paper's
    worst-case-speed argument.

    With a ``tracer``, each wave emits a ``selftimed/wave`` event at its
    completion time and the run closes with a ``selftimed/run`` summary.
    """
    if n_cells < 1 or waves < 2:
        raise ValueError("need at least one cell and two waves")
    if wire_delay < 0:
        raise ValueError("wire delay must be non-negative")
    tracer = tracer if tracer is not None else NULL_TRACER
    rng = random.Random(seed)

    finish_prev_wave = [0.0] * n_cells  # finish[i][w-1]
    start_prev_wave = [0.0] * n_cells   # start[i][w-1]
    samples_max = 0.0
    samples_min = float("inf")
    wave_finish: List[float] = []
    wave_hits: List[bool] = []

    threshold = worst_time
    all_samples: List[List[float]] = []
    for w in range(waves):
        row = [sampler(rng) for _ in range(n_cells)]
        all_samples.append(row)
        samples_max = max(samples_max, max(row))
        samples_min = min(samples_min, min(row))
    if threshold is None:
        threshold = samples_max

    service_hist = stall_hist = None
    if metrics is not None:
        service_hist = metrics.histogram("selftimed.service_time")
        stall_hist = metrics.histogram("selftimed.stall_time")

    for w in range(waves):
        upstream_finish = 0.0
        hit = False
        starts = [0.0] * n_cells
        for i in range(n_cells):
            service = all_samples[w][i]
            if service >= threshold - 1e-12:
                hit = True
            start = max(
                finish_prev_wave[i],
                upstream_finish + (wire_delay if i > 0 else 0.0),
            )
            data_ready = start
            if blocking and i + 1 < n_cells:
                start = max(start, start_prev_wave[i + 1])
            if service_hist is not None:
                service_hist.observe(service)
                stall_hist.observe(start - data_ready)
            starts[i] = start
            finish = start + service
            finish_prev_wave[i] = finish
            upstream_finish = finish
        start_prev_wave = starts
        wave_finish.append(finish_prev_wave[-1])
        wave_hits.append(hit)
        if tracer.enabled:
            tracer.event(
                finish_prev_wave[-1], "selftimed", "wave",
                wave=w, hit_worst_case=hit,
            )

    half = waves // 2
    steady = wave_finish[half:]
    if len(steady) >= 2:
        mean_cycle = (steady[-1] - steady[0]) / (len(steady) - 1)
    else:
        mean_cycle = wave_finish[-1] / waves
    if tracer.enabled:
        tracer.event(
            wave_finish[-1], "selftimed", "run",
            cells=n_cells, waves=waves, makespan=wave_finish[-1],
            blocking=blocking,
        )
    return SelfTimedResult(
        n_cells=n_cells,
        waves=waves,
        completion_time=wave_finish[-1],
        mean_cycle_time=mean_cycle,
        worst_case_cycle=samples_max + wire_delay,
        best_case_cycle=samples_min + wire_delay,
        waves_hitting_worst_case=sum(wave_hits),
    )


def simulate_selftimed_wavefront(
    rows: int,
    cols: int,
    waves: int,
    sampler: Sampler,
    seed: int = 0,
    worst_time: Optional[float] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> SelfTimedResult:
    """A two-dimensional self-timed *wavefront array* (meshes are the 2D
    case the paper's Section V-B is about).

    Each wave sweeps the mesh from the top-left corner: cell ``(r, c)``
    starts wave ``w`` when its north and west neighbors have finished wave
    ``w`` and it has itself finished wave ``w-1``::

        t[r][c][w] = max(t[r-1][c][w], t[r][c-1][w], t[r][c][w-1]) + s

    The critical path to the far corner has ``rows + cols - 1`` cells, so
    the worst-case-hit probability is ``1 - p^(rows+cols-1)`` per wave —
    larger than the 1D case at equal cell count, reinforcing the paper's
    point that self-timing helps 2D arrays even less.
    """
    if rows < 1 or cols < 1 or waves < 2:
        raise ValueError("need a non-empty mesh and at least two waves")
    tracer = tracer if tracer is not None else NULL_TRACER
    rng = random.Random(seed)

    finish_prev = [[0.0] * cols for _ in range(rows)]
    samples_max = 0.0
    samples_min = float("inf")
    wave_finish: List[float] = []
    wave_hits: List[bool] = []
    threshold = worst_time

    all_samples: List[List[List[float]]] = []
    for _w in range(waves):
        grid = [[sampler(rng) for _ in range(cols)] for _ in range(rows)]
        all_samples.append(grid)
        flat = [s for row in grid for s in row]
        samples_max = max(samples_max, max(flat))
        samples_min = min(samples_min, min(flat))
    if threshold is None:
        threshold = samples_max

    # Worst-case hits are judged along one designated monotone path (first
    # row, then last column): length rows + cols - 1 cells, so the measured
    # fraction should track 1 - p^(rows+cols-1).
    path_cells = {(0, c) for c in range(cols)} | {
        (r, cols - 1) for r in range(1, rows)
    }
    service_hist = stall_hist = None
    if metrics is not None:
        service_hist = metrics.histogram("selftimed.service_time")
        stall_hist = metrics.histogram("selftimed.stall_time")
    for w in range(waves):
        finish = [[0.0] * cols for _ in range(rows)]
        hit = False
        for r in range(rows):
            for c in range(cols):
                service = all_samples[w][r][c]
                if (r, c) in path_cells and service >= threshold - 1e-12:
                    hit = True
                start = finish_prev[r][c]
                if r > 0:
                    start = max(start, finish[r - 1][c])
                if c > 0:
                    start = max(start, finish[r][c - 1])
                if service_hist is not None:
                    service_hist.observe(service)
                    # Join wait: idle time between finishing wave w-1 and
                    # the north/west inputs for wave w arriving.
                    stall_hist.observe(start - finish_prev[r][c])
                finish[r][c] = start + service
        finish_prev = finish
        wave_finish.append(finish[rows - 1][cols - 1])
        wave_hits.append(hit)
        if tracer.enabled:
            tracer.event(
                wave_finish[-1], "selftimed", "wave",
                wave=w, hit_worst_case=hit,
            )

    half = waves // 2
    steady = wave_finish[half:]
    if len(steady) >= 2:
        mean_cycle = (steady[-1] - steady[0]) / (len(steady) - 1)
    else:
        mean_cycle = wave_finish[-1] / waves
    if tracer.enabled:
        tracer.event(
            wave_finish[-1], "selftimed", "run",
            cells=rows * cols, waves=waves, makespan=wave_finish[-1],
        )
    return SelfTimedResult(
        n_cells=rows * cols,
        waves=waves,
        completion_time=wave_finish[-1],
        mean_cycle_time=mean_cycle,
        worst_case_cycle=samples_max,
        best_case_cycle=samples_min,
        waves_hitting_worst_case=sum(wave_hits),
    )
