"""Signal-level self-timed pipelines: request/acknowledge handshaking.

Where :mod:`repro.sim.selftimed` computes completion times by recurrence,
this module simulates the *protocol* Seitz-style self-timed cells actually
run, one signal event at a time, on the discrete-event engine:

* a stage that finishes computing raises ``req`` to its successor (the
  request travels the wire);
* a free successor latches the data, returns ``ack`` (travelling back), and
  starts computing; a busy successor leaves the request pending — the
  sender stays blocked holding its token;
* a stage's slot frees when its own downstream transfer is acknowledged.

Three flow-control disciplines are modelled, all with *finite* storage —
a stage (or its buffers) can only ever hold a bounded number of tokens,
and a full stage backpressures its producer by withholding the ack:

* **unbuffered** (:class:`_Stage`): one token per stage; the steady-state
  cycle is ``compute + 2 * wire`` — every transfer pays the handshake
  round trip that clocked schemes amortize into the clock period;
* **buffered** (:class:`_BufferedStage`, ``buffered=True``): a one-deep
  output skid buffer decouples the compute slot from the downstream
  round trip, cutting the steady cycle to ``max(compute, 2 * wire)``;
* **credit-based** (:func:`run_credit_pipeline`): the receiver advertises
  a ``credits``-deep input FIFO; the sender spends a credit per token and
  recovers it when the receiver drains a slot, so the steady cycle is
  ``max(compute, 2 * wire / credits)`` — throughput reaches the compute
  bound once the in-flight credits cover the round-trip bandwidth-delay
  product (``credits >= 2 * wire / compute``).

The size-independence claim the paper credits self-timed schemes with —
"time required for a communication event between two cells is independent
of the size of the entire processor array" — holds in every discipline
(each law above involves only per-stage quantities); the disciplines
differ only in how much of the handshake round trip they hide.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.sim.engine import Simulator

ComputeSampler = Callable[[random.Random], float]


@dataclass
class HandshakeResult:
    """Outcome of a handshake pipeline run."""

    items: int
    stages: int
    arrival_times: List[float]
    events_processed: int
    wire_delay: float

    @property
    def completion_time(self) -> float:
        return self.arrival_times[-1] if self.arrival_times else 0.0

    @property
    def steady_cycle_time(self) -> float:
        """Inter-arrival time at the sink over the second half of the run.

        Degenerate runs are well-defined: a single arrival (one item, or
        an empty run) has no inter-arrival interval, so the first item's
        latency — ``completion_time`` — stands in for the cycle; two or
        three arrivals use the mean inter-arrival gap over the whole run
        (too short for a fill/steady split, but never the old
        fill-latency-polluted ``completion / n``).
        """
        n = len(self.arrival_times)
        if n <= 1:
            return self.completion_time
        if n < 4:
            return (self.arrival_times[-1] - self.arrival_times[0]) / (n - 1)
        half = n // 2
        tail = self.arrival_times[half:]
        return (tail[-1] - tail[0]) / (len(tail) - 1)


class _Stage:
    """One pipeline stage's handshake state machine."""

    __slots__ = (
        "index", "compute", "computing", "holding",
        "pending", "downstream", "upstream", "sim", "wire",
        "metrics", "pending_since",
    )

    def __init__(
        self,
        index: int,
        compute: Callable[[], float],
        sim: Simulator,
        wire: float,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.index = index
        self.compute = compute
        self.computing = False
        self.holding = False          # finished token awaiting downstream ack
        self.pending: Optional[Any] = None
        self.downstream: Optional["_Stage"] = None
        self.upstream: Optional["_Stage"] = None
        self.sim = sim
        self.wire = wire
        self.metrics = metrics
        self.pending_since = 0.0

    # -- incoming request -------------------------------------------------
    def on_req(self, data: Any) -> None:
        if self.computing or self.holding:
            if self.pending is not None:
                raise AssertionError(
                    f"stage {self.index}: protocol violation — second request "
                    f"arrived before the first was latched"
                )
            self.pending = data
            self.pending_since = self.sim.now
            return
        self._observe_stall(0.0)
        self._latch(data)

    def _observe_stall(self, stall: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram("handshake.stall_time").observe(stall)

    def _latch(self, data: Any) -> None:
        self.computing = True
        if self.upstream is not None:
            self.sim.schedule(self.wire, self.upstream.on_ack)
        duration = self.compute()
        if self.metrics is not None:
            self.metrics.histogram("handshake.service_time").observe(duration)
        self.sim.schedule(duration, lambda: self._compute_done(data))

    def _compute_done(self, data: Any) -> None:
        self.computing = False
        self.holding = True
        if self.downstream is not None:
            self.sim.schedule(self.wire, lambda: self.downstream.on_req(data))

    # -- incoming acknowledge ---------------------------------------------
    def on_ack(self) -> None:
        self.holding = False
        if self.pending is not None and not self.computing:
            data, self.pending = self.pending, None
            # The request waited for this stage to free up — stall time.
            self._observe_stall(self.sim.now - self.pending_since)
            self._latch(data)


class _BufferedStage(_Stage):
    """A stage with a one-deep output skid buffer (the zipcpu-style
    valid/ready interlock): a finished token moves into the buffer, which
    owns the downstream request/ack round trip, freeing the compute slot
    to latch the next input immediately.  ``holding`` now means the
    compute slot is blocked behind a still-full skid (two tokens resident:
    one in the skid awaiting the ack, one finished in the slot).

    Steady-state law (tested): the cycle drops from the unbuffered
    ``compute + 2 * wire`` to ``max(compute, 2 * wire)`` — the buffer
    hides the handshake round trip whenever compute dominates, at the
    price of one extra token of storage per stage.
    """

    __slots__ = ("skid_full", "held")

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.skid_full = False        # skid token awaiting downstream ack
        self.held: Optional[Any] = None  # finished token stuck in the slot

    def _push_skid(self, data: Any) -> None:
        self.skid_full = True
        if self.downstream is not None:
            self.sim.schedule(self.wire, lambda: self.downstream.on_req(data))

    def _compute_done(self, data: Any) -> None:
        self.computing = False
        if not self.skid_full:
            self._push_skid(data)
        else:
            self.holding = True
            self.held = data
        if not self.holding and self.pending is not None:
            queued, self.pending = self.pending, None
            self._observe_stall(self.sim.now - self.pending_since)
            self._latch(queued)

    def on_ack(self) -> None:
        self.skid_full = False
        if self.holding:
            self.holding = False
            held, self.held = self.held, None
            self._push_skid(held)
        if self.pending is not None and not self.computing and not self.holding:
            data, self.pending = self.pending, None
            self._observe_stall(self.sim.now - self.pending_since)
            self._latch(data)


class _Source(_Stage):
    """Injects a fixed list of items as fast as acks allow.

    Re-entrancy note (audited for the zero-wire-delay case): every signal
    traversal — including ``on_ack`` — arrives as a *scheduled* event even
    at ``wire == 0``, never as a synchronous call from inside
    ``_try_send``.  ``_try_send`` sets ``holding`` before scheduling the
    request, and ``on_ack`` clears it before retrying, so a send can never
    interleave with itself; the engine's FIFO tie-break makes the order of
    same-timestamp events deterministic.  The ``on_req`` protocol
    assertion in :class:`_Stage` would trip on any double-send — the
    zero-delay pinning tests drive exactly that path.
    """

    __slots__ = ("items", "next_index")

    def __init__(self, items: List[Any], sim: Simulator, wire: float) -> None:
        super().__init__(-1, lambda: 0.0, sim, wire)
        self.items = items
        self.next_index = 0

    def start(self) -> None:
        self._try_send()

    def _try_send(self) -> None:
        if self.next_index >= len(self.items) or self.holding:
            return
        data = self.items[self.next_index]
        self.next_index += 1
        self.holding = True
        if self.downstream is not None:
            self.sim.schedule(self.wire, lambda: self.downstream.on_req(data))

    def on_ack(self) -> None:
        self.holding = False
        self._try_send()


class _Sink(_Stage):
    """Accepts everything immediately, recording arrival times."""

    __slots__ = ("arrivals",)

    def __init__(self, sim: Simulator, wire: float) -> None:
        super().__init__(10**9, lambda: 0.0, sim, wire)
        self.arrivals: List[Tuple[float, Any]] = []

    def on_req(self, data: Any) -> None:
        self.arrivals.append((self.sim.now, data))
        if self.upstream is not None:
            self.sim.schedule(self.wire, self.upstream.on_ack)


class _JoinStage:
    """A mesh cell: fires when *all* upstream ports have data, signals all
    downstream ports, frees when all of them have acknowledged."""

    __slots__ = (
        "key", "compute", "computing", "holding", "pending", "acks_missing",
        "downstream", "upstream_count", "upstream_acks", "sim", "wire",
        "metrics", "first_req_time",
    )

    def __init__(
        self,
        key: Any,
        compute: Callable[[], float],
        sim: Simulator,
        wire: float,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.key = key
        self.compute = compute
        self.computing = False
        self.holding = False
        self.pending: dict = {}          # port -> data waiting to be latched
        self.acks_missing = 0
        self.downstream: List[Tuple[Any, "_JoinStage"]] = []  # (port name at target, stage)
        self.upstream_acks: List[Callable[[], None]] = []
        self.upstream_count = 0
        self.sim = sim
        self.wire = wire
        self.metrics = metrics
        self.first_req_time: Optional[float] = None

    def on_req(self, port: Any, data: Any) -> None:
        if port in self.pending:
            raise AssertionError(
                f"stage {self.key}: second request on port {port!r} before latch"
            )
        if not self.pending:
            self.first_req_time = self.sim.now
        self.pending[port] = data
        self._try_latch()

    def _try_latch(self) -> None:
        if self.computing or self.holding:
            return
        if len(self.pending) < self.upstream_count:
            return
        inputs = self.pending
        self.pending = {}
        self.computing = True
        for ack in self.upstream_acks:
            self.sim.schedule(self.wire, ack)
        duration = self.compute()
        if self.metrics is not None:
            # Join stall: from the first port's request to all ports ready
            # and the stage free — the wait one slow neighbor inflicts.
            if self.first_req_time is not None:
                self.metrics.histogram("handshake.stall_time").observe(
                    self.sim.now - self.first_req_time
                )
            self.metrics.histogram("handshake.service_time").observe(duration)
        self.first_req_time = None
        self.sim.schedule(duration, lambda: self._compute_done(inputs))

    def _compute_done(self, inputs: dict) -> None:
        self.computing = False
        if not self.downstream:
            self.holding = False
            self._try_latch()
            return
        self.holding = True
        self.acks_missing = len(self.downstream)
        token = inputs  # pass the joined inputs downstream
        for port, stage in self.downstream:
            self.sim.schedule(
                self.wire, lambda p=port, s=stage: s.on_req(p, token)
            )

    def on_ack(self) -> None:
        self.acks_missing -= 1
        if self.acks_missing <= 0:
            self.holding = False
            self._try_latch()


class _CreditStage:
    """One stage of a credit-flow-controlled pipeline.

    The stage owns a ``depth``-deep *input* FIFO its upstream sender has
    credits against.  Popping a slot (into the compute latch) sends a
    credit back upstream after the wire delay; sending downstream spends
    one of this stage's own credits, and a finished token whose credits
    are exhausted parks in the output latch, blocking the compute slot —
    that wait is the backpressure stall the metrics record.
    """

    __slots__ = (
        "index", "compute", "depth", "fifo", "computing", "output_held",
        "credits", "downstream", "upstream", "sim", "wire", "metrics",
        "held_since",
    )

    def __init__(
        self,
        index: int,
        compute: Callable[[], float],
        depth: int,
        sim: Simulator,
        wire: float,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.index = index
        self.compute = compute
        self.depth = depth
        self.fifo: List[Any] = []
        self.computing = False
        self.output_held: Optional[Tuple[Any]] = None  # 1-tuple: token may be None
        self.credits = 0
        self.downstream: Optional["_CreditStage"] = None
        self.upstream: Optional["_CreditStage"] = None
        self.sim = sim
        self.wire = wire
        self.metrics = metrics
        self.held_since = 0.0

    # -- incoming token ----------------------------------------------------
    def on_token(self, data: Any) -> None:
        self.fifo.append(data)
        if len(self.fifo) > self.depth:
            raise AssertionError(
                f"credit stage {self.index}: input FIFO overflow "
                f"({len(self.fifo)} > {self.depth}) — a sender spent a "
                f"credit it did not hold"
            )
        self._try_start()

    def _try_start(self) -> None:
        if self.computing or self.output_held is not None or not self.fifo:
            return
        data = self.fifo.pop(0)
        # Draining a FIFO slot returns its credit to the sender.
        if self.upstream is not None:
            self.sim.schedule(self.wire, self.upstream.on_credit)
        self.computing = True
        duration = self.compute()
        if self.metrics is not None:
            self.metrics.histogram("handshake.service_time").observe(duration)
        self.sim.schedule(duration, lambda: self._compute_done(data))

    def _compute_done(self, data: Any) -> None:
        self.computing = False
        self._try_send(data)

    def _try_send(self, data: Any) -> None:
        if self.credits > 0:
            self.credits -= 1
            if self.metrics is not None:
                self.metrics.histogram("handshake.stall_time").observe(0.0)
            if self.downstream is not None:
                self.sim.schedule(
                    self.wire, lambda: self.downstream.on_token(data)
                )
            self._try_start()
        else:
            self.output_held = (data,)
            self.held_since = self.sim.now

    # -- incoming credit ---------------------------------------------------
    def on_credit(self) -> None:
        self.credits += 1
        if self.output_held is not None:
            (data,) = self.output_held
            self.output_held = None
            if self.metrics is not None:
                self.metrics.histogram("handshake.stall_time").observe(
                    self.sim.now - self.held_since
                )
            self.credits -= 1
            if self.downstream is not None:
                self.sim.schedule(
                    self.wire, lambda: self.downstream.on_token(data)
                )
            self._try_start()


class _CreditSource(_CreditStage):
    """Injects items as fast as its credit balance allows (bursting up to
    the full credit count, as credit flow control permits)."""

    __slots__ = ("items", "next_index")

    def __init__(self, items: List[Any], sim: Simulator, wire: float) -> None:
        super().__init__(-1, lambda: 0.0, 1, sim, wire)
        self.items = items
        self.next_index = 0

    def start(self) -> None:
        self._pump()

    def _pump(self) -> None:
        while self.next_index < len(self.items) and self.credits > 0:
            data = self.items[self.next_index]
            self.next_index += 1
            self.credits -= 1
            if self.downstream is not None:
                self.sim.schedule(
                    self.wire, lambda d=data: self.downstream.on_token(d)
                )

    def on_credit(self) -> None:
        self.credits += 1
        self._pump()


class _CreditSink(_CreditStage):
    """Drains every arriving token immediately, returning its credit."""

    __slots__ = ("arrivals",)

    def __init__(
        self, depth: int, sim: Simulator, wire: float
    ) -> None:
        super().__init__(10**9, lambda: 0.0, depth, sim, wire)
        self.arrivals: List[Tuple[float, Any]] = []

    def on_token(self, data: Any) -> None:
        self.arrivals.append((self.sim.now, data))
        if self.upstream is not None:
            self.sim.schedule(self.wire, self.upstream.on_credit)


def run_credit_pipeline(
    n_stages: int,
    items: int,
    compute_sampler: ComputeSampler,
    wire_delay: float = 0.1,
    credits: int = 2,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> HandshakeResult:
    """Push ``items`` tokens through ``n_stages`` credit-flow stages.

    Every receiver advertises a ``credits``-deep input FIFO; a sender
    spends one credit per token and recovers it (one wire delay later)
    when the receiver drains the slot.  Steady-state law (tested): the
    cycle is ``max(compute, 2 * wire / credits)`` — each credit's return
    loop takes one wire hop out and one back, and ``credits`` of them
    pipeline the loop, so once ``credits >= 2 * wire / compute`` the
    cycle reaches the ``compute`` bound.
    """
    if n_stages < 1 or items < 1:
        raise ValueError("need at least one stage and one item")
    if wire_delay < 0:
        raise ValueError("wire delay must be non-negative")
    if credits < 1:
        raise ValueError("need at least one credit")
    rng = random.Random(seed)
    sim = Simulator(tracer=tracer, metrics=metrics)

    source = _CreditSource(list(range(items)), sim, wire_delay)
    stages = [
        _CreditStage(
            i, lambda: compute_sampler(rng), credits, sim, wire_delay, metrics
        )
        for i in range(n_stages)
    ]
    sink = _CreditSink(credits, sim, wire_delay)
    chain: List[_CreditStage] = [source, *stages, sink]
    for a, b in zip(chain, chain[1:]):
        a.downstream = b
        b.upstream = a
        a.credits = b.depth  # sender starts with the receiver's full depth

    source.start()
    sim.run(max_events=items * n_stages * 30 + 1000)
    if len(sink.arrivals) != items:
        raise AssertionError(
            f"credit pipeline stalled: {len(sink.arrivals)}/{items} delivered"
        )
    data_order = [d for _t, d in sink.arrivals]
    if data_order != sorted(data_order):
        raise AssertionError("credit pipeline reordered items")
    return HandshakeResult(
        items=items,
        stages=n_stages,
        arrival_times=[t for t, _d in sink.arrivals],
        events_processed=sim.events_processed,
        wire_delay=wire_delay,
    )


def run_handshake_wavefront(
    rows: int,
    cols: int,
    waves: int,
    compute_sampler: ComputeSampler,
    wire_delay: float = 0.1,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> HandshakeResult:
    """A self-timed 2D wavefront mesh at the signal level.

    Cell ``(r, c)`` joins requests from its north and west neighbors (edge
    cells from the injector), computes, and requests south and east.  The
    corner cell ``(rows-1, cols-1)`` reports wave completions.  Same law as
    the 1D pipeline: steady cycle ~= compute + 2 * wire round trip, size-
    independent — but with join synchronization, one slow cell now stalls
    two downstream neighbors directly.
    """
    if rows < 1 or cols < 1 or waves < 1:
        raise ValueError("need a non-empty mesh and at least one wave")
    if wire_delay < 0:
        raise ValueError("wire delay must be non-negative")
    rng = random.Random(seed)
    sim = Simulator(tracer=tracer, metrics=metrics)

    cells: dict = {}
    for r in range(rows):
        for c in range(cols):
            cells[(r, c)] = _JoinStage(
                (r, c), lambda: compute_sampler(rng), sim, wire_delay, metrics
            )
    # Corner sink records completions and acks immediately.
    arrivals: List[Tuple[float, Any]] = []

    class _CornerSink:
        def __init__(self) -> None:
            self.upstream_ack: Optional[Callable[[], None]] = None

        def on_req(self, port: Any, data: Any) -> None:
            arrivals.append((sim.now, data))
            if self.upstream_ack is not None:
                sim.schedule(wire_delay, self.upstream_ack)

    sink = _CornerSink()

    # Wire the mesh: (r, c) -> (r+1, c) and (r, c+1).
    for r in range(rows):
        for c in range(cols):
            stage = cells[(r, c)]
            for target in ((r + 1, c), (r, c + 1)):
                if target in cells:
                    down = cells[target]
                    port = ("n", None) if target[0] == r + 1 else ("w", None)
                    down.upstream_count += 1
                    down.upstream_acks.append(stage.on_ack)
                    stage.downstream.append((port, down))
            if (r, c) == (rows - 1, cols - 1):
                sink.upstream_ack = stage.on_ack
                stage.downstream.append((("out", None), sink))

    # The injector drives the top-left cell with `waves` tokens; boundary
    # cells with a missing north/west input get it from the injector too —
    # modelled by giving boundary cells a reduced upstream_count (only real
    # neighbors counted above) and injecting the origin.
    origin = cells[(0, 0)]
    injected = {"count": 0}

    def inject() -> None:
        if injected["count"] >= waves:
            return
        injected["count"] += 1
        origin.on_req(("inject", None), injected["count"] - 1)

    origin.upstream_count += 1
    origin.upstream_acks.append(lambda: sim.schedule(0.0, inject))
    sim.schedule(0.0, inject)

    sim.run(max_events=waves * rows * cols * 30 + 1000)
    if len(arrivals) != waves:
        raise AssertionError(
            f"wavefront stalled: {len(arrivals)}/{waves} waves completed"
        )
    return HandshakeResult(
        items=waves,
        stages=rows * cols,
        arrival_times=[t for t, _d in arrivals],
        events_processed=sim.events_processed,
        wire_delay=wire_delay,
    )


def run_handshake_pipeline(
    n_stages: int,
    items: int,
    compute_sampler: ComputeSampler,
    wire_delay: float = 0.1,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    buffered: bool = False,
) -> HandshakeResult:
    """Push ``items`` tokens through ``n_stages`` self-timed stages.

    ``buffered=True`` gives every stage a one-deep output skid buffer
    (:class:`_BufferedStage`), cutting the steady cycle from
    ``compute + 2 * wire`` to ``max(compute, 2 * wire)``.

    With ``metrics``, per-latch compute durations land in the
    ``handshake.service_time`` histogram and per-request blocking waits in
    ``handshake.stall_time``; a ``tracer`` additionally records the
    engine's per-event dispatch spans.
    """
    if n_stages < 1 or items < 1:
        raise ValueError("need at least one stage and one item")
    if wire_delay < 0:
        raise ValueError("wire delay must be non-negative")
    rng = random.Random(seed)
    sim = Simulator(tracer=tracer, metrics=metrics)

    stage_cls = _BufferedStage if buffered else _Stage
    source = _Source(list(range(items)), sim, wire_delay)
    stages = [
        stage_cls(i, lambda: compute_sampler(rng), sim, wire_delay, metrics)
        for i in range(n_stages)
    ]
    sink = _Sink(sim, wire_delay)
    chain: List[_Stage] = [source, *stages, sink]
    for a, b in zip(chain, chain[1:]):
        a.downstream = b
        b.upstream = a

    source.start()
    sim.run(max_events=items * n_stages * 20 + 1000)
    if len(sink.arrivals) != items:
        raise AssertionError(
            f"pipeline stalled: {len(sink.arrivals)}/{items} items delivered"
        )
    # Items must come out in order (FIFO property of the protocol).
    data_order = [d for _t, d in sink.arrivals]
    if data_order != sorted(data_order):
        raise AssertionError("handshake pipeline reordered items")
    return HandshakeResult(
        items=items,
        stages=n_stages,
        arrival_times=[t for t, _d in sink.arrivals],
        events_processed=sim.events_processed,
        wire_delay=wire_delay,
    )
