"""Skew-aware execution of systolic programs (the functional meaning of A5).

Each cell fires at its own clock tick times (a :class:`ClockSchedule`); at
tick ``k`` it latches, for every input wire, the most recent value to have
*arrived* by that instant, computes, and drives its outputs, which arrive at
each neighbor after ``delta`` (compute) plus the wire's propagation delay.

Correct synchronization means: the value latched at the receiver's tick
``k`` is the sender's tick ``k-1`` output.  Two failure modes exist, and
both are detected and reported:

* **setup/stale** — the sender's tick ``k-1`` output arrives *after* the
  receiver's tick ``k`` (skew + delays exceed the period): the receiver
  reuses older data.
* **hold/race-through** — the sender's tick ``k`` output arrives *before*
  the receiver's tick ``k`` (the sender's clock leads by more than the data
  path delay): new data overruns the latch.

The period bound of A5 (``sigma + delta + tau``) is exactly what makes both
impossible; the tests drive this simulator on both sides of the bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.arrays.cells import PE
from repro.arrays.systolic import SystolicProgram
from repro.delay.wire import LinearWireModel, WireDelayModel
from repro.graphs.comm import CommGraph
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.clock_distribution import ClockSchedule

CellId = Hashable
EdgeKey = Tuple[CellId, CellId]


@dataclass(frozen=True)
class TimingViolation:
    """One latch event that read the wrong generation of data."""

    edge: EdgeKey
    receiver_tick: int
    expected_sender_tick: int
    actual_sender_tick: int

    @property
    def kind(self) -> str:
        """``race`` (hold violation) or ``stale`` (setup violation)."""
        return "race" if self.actual_sender_tick > self.expected_sender_tick else "stale"


@dataclass
class ClockedRunResult:
    """Outcome of a clocked run: result payload plus timing diagnostics."""

    result: Any
    violations: List[TimingViolation]
    ticks: int
    makespan: float

    @property
    def clean(self) -> bool:
        return not self.violations


class _ExecutorFacade:
    """Quacks like a LockstepExecutor for ``SystolicProgram.read_result``
    (which only ever calls ``pe``)."""

    def __init__(self, pes: Mapping[CellId, PE]) -> None:
        self._pes = pes

    def pe(self, cell: CellId) -> PE:
        return self._pes[cell]


class ClockedArraySimulator:
    """Execute a systolic program under a concrete clock schedule."""

    def __init__(
        self,
        program: SystolicProgram,
        schedule: ClockSchedule,
        delta: float = 0.0,
        data_wire_model: Optional[WireDelayModel] = None,
        edge_padding: Optional[Mapping[EdgeKey, float]] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics
        self._program = program
        self._comm: CommGraph = program.array.comm
        self._schedule = schedule
        self._delta = delta
        self._wire_model = data_wire_model or LinearWireModel(m=0.0 + 1e-12)
        for cell in self._comm.nodes():
            if cell not in schedule.cells():
                raise ValueError(f"cell {cell!r} has no clock schedule (A4)")
        # Precompute data propagation delay per directed edge; hold-fix
        # padding ("adding delay to circuits", Section I) folds in here.
        self._edge_delay: Dict[EdgeKey, float] = {}
        padding = dict(edge_padding or {})
        layout = program.array.layout
        for u, v in self._comm.edges():
            pad = padding.get((u, v), 0.0)
            if pad < 0:
                raise ValueError(f"negative padding on edge {(u, v)!r}")
            self._edge_delay[(u, v)] = (
                self._wire_model.delay(layout.distance(u, v)) + pad
            )
        # Lazily-built array kernel (repro.sim.compiled); rebuilt if the
        # COMM graph changes shape underneath us.
        self._compiled: Optional[Any] = None

    def _latched_sender_tick(self, edge: EdgeKey, receiver_tick: int) -> int:
        """Which sender tick's output is on the wire when the receiver
        latches at its tick ``receiver_tick``?  The largest ``k`` with
        ``send(k) + delta + wire <= recv(receiver_tick)``.

        An affine schedule gives the answer in closed form; schedules with
        bounded per-tick jitter (A8 broken — :mod:`repro.sim.faults`) keep
        tick times monotone, so a short downward scan from the affine
        estimate finds the true latch generation.
        """
        u, v = edge
        t_latch = self._schedule.tick_time(v, receiver_tick)
        lag = self._delta + self._edge_delay[edge]
        estimate = int(
            math.floor(
                (t_latch - self._schedule.offset(u) - lag) / self._schedule.period
            )
        )
        k = estimate + 3  # covers jitter up to ~1.5 periods
        while k >= 0 and self._schedule.tick_time(u, k) + lag > t_latch + 1e-12:
            k -= 1
        return k

    def compiled(self):
        """The array-compiled kernel for this simulator (built once, cached;
        see :class:`repro.sim.compiled.CompiledClockedKernel`)."""
        from repro.sim.compiled import CompiledClockedKernel

        kernel = self._compiled
        if kernel is None or kernel.comm_version != self._comm.version:
            kernel = CompiledClockedKernel(
                self._program, self._schedule, self._delta, self._edge_delay
            )
            self._compiled = kernel
        return kernel

    def run(self, ticks: Optional[int] = None) -> ClockedRunResult:
        """Fire every cell for ``ticks`` ticks (default: the program's cycle
        count), track what each latch actually read, and extract the
        program result.

        Uninstrumented runs go through the array-compiled kernel, which is
        byte-identical to :meth:`run_scalar` (the differential and property
        suites enforce this); tracing or metrics keep the scalar path so
        per-event instrumentation stays exact.
        """
        if not self._tracer.enabled and self._metrics is None:
            return self.compiled().run(ticks)
        return self.run_scalar(ticks)

    def run_compiled(self, ticks: Optional[int] = None) -> ClockedRunResult:
        """Run the array-compiled kernel explicitly, with this simulator's
        tracer attached: the kernel emits per-phase spans (tick-matrix,
        latch-scan, violations, execute) instead of per-event ticks.  The
        result is byte-identical to :meth:`run` either way."""
        return self.compiled().run(ticks, tracer=self._tracer)

    def critical_path(self, ticks: Optional[int] = None):
        """The dependency chain behind this run's makespan (see
        :func:`repro.obs.critpath.clocked_critical_path`): the latest
        (cell, tick) firing's clock history, with the argmax tie broken
        exactly like the scalar event loop.  Its endpoint equals the
        makespan :meth:`run` reports, bit for bit, on both the scalar
        and compiled engines."""
        from repro.obs.critpath import clocked_critical_path

        n_ticks = ticks if ticks is not None else self._program.cycles
        return clocked_critical_path(
            self._schedule, self._comm.nodes(), n_ticks
        )

    def run_scalar(self, ticks: Optional[int] = None) -> ClockedRunResult:
        """The reference interpreter: one Python event per (cell, tick),
        exactly as specified — kept as the oracle for the compiled kernel."""
        n_ticks = ticks if ticks is not None else self._program.cycles
        if n_ticks < 1:
            raise ValueError("need at least one tick")
        pes = self._program.pes
        for pe in pes.values():
            pe.reset()

        # All (cell, tick) firing events in global time order; ties resolved
        # by tick then stable cell order for determinism.
        cells = self._comm.nodes()
        events = sorted(
            ((self._schedule.tick_time(c, k), k, i, c) for i, c in enumerate(cells) for k in range(n_ticks)),
        )

        history: Dict[EdgeKey, Dict[int, Any]] = {e: {} for e in self._edge_delay}
        violations: List[TimingViolation] = []
        makespan = 0.0
        tracer = self._tracer
        metrics = self._metrics
        violation_counter = (
            metrics.counter("clocked.violations") if metrics is not None else None
        )

        for t_fire, k, _i, cell in events:
            makespan = max(makespan, t_fire)
            inputs: Dict[CellId, Any] = {}
            if tracer.enabled:
                tracer.event(t_fire, "tick", "fire", cell=cell, tick=k)
            for src in self._comm.predecessors(cell):
                edge = (src, cell)
                latched = self._latched_sender_tick(edge, k)
                expected = k - 1
                if latched != expected and (latched >= 0 or expected >= 0):
                    violation = TimingViolation(
                        edge=edge,
                        receiver_tick=k,
                        expected_sender_tick=expected,
                        actual_sender_tick=latched,
                    )
                    violations.append(violation)
                    if tracer.enabled:
                        tracer.event(
                            t_fire,
                            "violation",
                            violation.kind,
                            cell=cell,
                            edge=edge,
                            receiver_tick=k,
                            expected_sender_tick=expected,
                            actual_sender_tick=latched,
                        )
                    if violation_counter is not None:
                        violation_counter.inc()
                inputs[src] = history[edge].get(latched) if latched >= 0 else None
            outputs = pes[cell].fire(inputs)
            for dst in self._comm.successors(cell):
                value = outputs.get(dst) if outputs else None
                history[(cell, dst)][k] = value

        result = self._program.read_result(_ExecutorFacade(pes))
        if tracer.enabled:
            tracer.event(
                makespan,
                "clocked",
                "run",
                ticks=n_ticks,
                violations=len(violations),
                makespan=makespan,
                cells=len(cells),
            )
        if metrics is not None:
            per_tick = metrics.histogram("clocked.violations_per_tick")
            by_tick: Dict[int, int] = {}
            for v in violations:
                by_tick[v.receiver_tick] = by_tick.get(v.receiver_tick, 0) + 1
            for k in range(n_ticks):
                per_tick.observe(float(by_tick.get(k, 0)))
            skew_hist = metrics.histogram("clocked.tick_skew")
            for k in range(n_ticks):
                times = [self._schedule.tick_time(c, k) for c in cells]
                skew_hist.observe(max(times) - min(times))
        return ClockedRunResult(
            result=result,
            violations=violations,
            ticks=n_ticks,
            makespan=makespan,
        )

    def edge_lags(self) -> Dict[EdgeKey, float]:
        """The full data-path lag of every directed edge: ``delta`` plus
        wire propagation plus hold-fix padding.  This is the quantity every
        latch decision compares against clock offsets — exposed so the
        static analyzer (:mod:`repro.sta`) can be cross-checked against the
        simulator's own arithmetic (the ``sta-soundness`` oracle asserts
        the two lag computations agree to the bit)."""
        return {edge: self._delta + wire for edge, wire in self._edge_delay.items()}

    def minimum_safe_period(
        self, channel_capacity: Optional[int] = None
    ) -> float:
        """The smallest period for which this schedule's skews cause no
        violations: from the closed-form latch condition,
        ``T > skew(u,v) + delta + tau`` for the setup side on every edge
        (the hold side needs ``offset(u) + delta + wire > offset(v)``, which
        a period cannot fix — it is reported by :meth:`hold_hazards`).

        With ``channel_capacity`` set, the bound also covers *storage*: a
        receiver whose clock trails the sender's by ``d = off(v) - off(u)``
        holds ``1 + ceil(d / T)`` in-flight generations at steady state
        (see :meth:`channel_depths`), so a ``c``-deep channel needs
        ``T >= d / (c - 1)``.  Wave-pipelined designs — where hold-fix
        padding makes large positive ``d`` legal — thus get a genuine,
        finite minimum safe period instead of the unbounded-FIFO model's
        vacuous one; ``c = 1`` on such an edge is unschedulable at any
        period (returns ``inf``)."""
        worst = 0.0
        for (u, v), lag in self.edge_lags().items():
            need = self._schedule.offset(u) - self._schedule.offset(v) + lag
            worst = max(worst, need)
        if channel_capacity is not None:
            if channel_capacity < 1:
                raise ValueError("channel capacity must be >= 1")
            for u, v in self._edge_delay:
                d = self._schedule.offset(v) - self._schedule.offset(u)
                if d <= 1e-12:
                    continue  # receiver does not trail: one slot suffices
                if channel_capacity == 1:
                    return float("inf")
                worst = max(worst, d / (channel_capacity - 1))
        return worst

    def channel_depths(self, ticks: Optional[int] = None) -> Dict[EdgeKey, int]:
        """Peak in-flight token count per edge over a ``ticks``-long run.

        Generation ``g`` occupies edge ``(u, v)`` from the sender's tick
        ``g`` (launch) until the receiver's tick ``g + 1`` (consume).  The
        unbounded-FIFO model ignored this; with finite channels the peak
        depth is the storage the edge's FIFO must actually provide.  For
        an affine schedule the steady-state depth is
        ``1 + ceil((off(v) - off(u)) / T)`` wherever the receiver trails —
        the wave-pipelining occupancy the capacity-aware
        :meth:`minimum_safe_period` bounds."""
        n_ticks = ticks if ticks is not None else self._program.cycles
        if n_ticks < 1:
            raise ValueError("need at least one tick")
        depths: Dict[EdgeKey, int] = {}
        for u, v in self._edge_delay:
            launches = [self._schedule.tick_time(u, g) for g in range(n_ticks)]
            consumes = [self._schedule.tick_time(v, g + 1) for g in range(n_ticks)]
            peak = 0
            j = 0  # generations consumed so far (two-pointer sweep)
            for g, t_launch in enumerate(launches):
                while j < g and consumes[j] <= t_launch + 1e-12:
                    j += 1
                peak = max(peak, g + 1 - j)
            depths[(u, v)] = peak
        return depths

    def channel_overflows(
        self, capacity: int, ticks: Optional[int] = None
    ) -> List[Tuple[EdgeKey, int, int]]:
        """Every ``(edge, generation, depth)`` where the in-flight token
        count exceeds ``capacity`` — the latch events a ``capacity``-deep
        channel physically cannot honour (the sender would stall, or the
        FIFO would drop a generation).  Empty means the run fits the
        finite channels; the ``differential-violations`` oracle drives a
        wave-pipelined serpentine onto both sides of this boundary."""
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        n_ticks = ticks if ticks is not None else self._program.cycles
        if n_ticks < 1:
            raise ValueError("need at least one tick")
        overflows: List[Tuple[EdgeKey, int, int]] = []
        for u, v in self._edge_delay:
            launches = [self._schedule.tick_time(u, g) for g in range(n_ticks)]
            consumes = [self._schedule.tick_time(v, g + 1) for g in range(n_ticks)]
            j = 0
            for g, t_launch in enumerate(launches):
                while j < g and consumes[j] <= t_launch + 1e-12:
                    j += 1
                depth = g + 1 - j
                if depth > capacity:
                    overflows.append(((u, v), g, depth))
        return overflows

    def hold_hazards(self) -> List[EdgeKey]:
        """Edges where the sender's clock leads the receiver's by more than
        the data path delay — race-through no period can repair; the fix is
        added delay (padding) or a better clock layout, as the paper notes
        ("adding delay to circuits")."""
        hazards = []
        for (u, v), lag in self.edge_lags().items():
            if self._schedule.offset(u) + lag < self._schedule.offset(v) - 1e-12:
                hazards.append((u, v))
        return hazards
