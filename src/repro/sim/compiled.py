"""Array-compiled simulation kernels.

The scalar simulators (:mod:`repro.sim.clocked`, the tandem recurrence of
:mod:`repro.sim.dataflow`, the hybrid max-plus loops) interpret the object
graph one (cell, tick) at a time — O(cells x ticks) Python dispatch.  The
analyses that matter at paper scale (A5 violation sets on 4096-cell
meshes, Monte-Carlo sweeps, the scaling benches) repeat those runs over a
*fixed structure*, so this module splits them into

* a one-time **compile** step that lowers a program + schedule + wire
  model into dense numpy index arrays (sender/receiver ids per directed
  edge, per-edge data-path lag, per-cell clock offsets, captured
  predecessor orders), and
* **vectorized execute** steps that evaluate all latch generations, the
  full :class:`~repro.sim.clocked.TimingViolation` set, the self-timed
  wavefront recurrence, or the hybrid neighbor barrier in O(edges x
  ticks) array operations.

Every kernel is an *exact* replacement, not an approximation: the same
float64 operations in the same order as the scalar reference, so payloads,
makespans, and violation lists are byte-identical.  The scalar paths stay
in the tree as the oracle (``run_scalar``, ``recurrence_makespan_scalar``)
and the differential/property suites assert the agreement.

Functional payload execution of a *clean* clocked run additionally
delegates to the stream evaluator in :mod:`repro.sim.batch` (lockstep
semantics factor per cell); dirty runs and programs outside the stream
algebra replay events in exact scalar order using the precomputed latch
matrix.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.arrays.systolic import SystolicProgram
from repro.graphs.comm import CommGraph
from repro.graphs.csr import CSRAdjacency
from repro.sim import batch
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import (
    ClockedRunResult,
    TimingViolation,
    _ExecutorFacade,
)

CellId = Hashable
EdgeKey = Tuple[CellId, CellId]

#: Matches the scalar latch scan's guard band (``clocked.py``).
_LATCH_TOL = 1e-12


@dataclass(frozen=True)
class TimingResult:
    """Timing-only outcome of a clocked evaluation: the A5 violation set
    (in exact scalar event order) plus the makespan — what the scaling
    benches and the static analyses need when no payload execution is
    wanted (or possible, at 10^6 cells)."""

    violations: List[TimingViolation]
    makespan: float
    ticks: int

    @property
    def clean(self) -> bool:
        return not self.violations


def _order_violation_entries(
    slot: np.ndarray,
    dst: np.ndarray,
    e_idx: np.ndarray,
    k_idx: np.ndarray,
    t_vals: np.ndarray,
) -> np.ndarray:
    """Permutation putting violating (edge, tick) entries into exact
    scalar order.

    The scalar event loop visits events sorted by (time, tick, cell
    insertion index) and, within an event, predecessors in captured slot
    order.  Since (time, tick, cell) uniquely identifies an event, a
    direct lexsort on (t, k, dst, slot) reproduces the rank-based
    ordering of the monolithic path without materializing a global event
    rank — which is what lets violation extraction stream per edge
    block."""
    return np.lexsort((slot[e_idx], dst[e_idx], k_idx, t_vals))


class CompiledClockedKernel:
    """A :class:`~repro.sim.clocked.ClockedArraySimulator` lowered to
    arrays: compile once, run many times.

    ``edge_delay`` is the simulator's per-directed-edge data propagation
    delay (wire model plus hold padding), so the kernel and the scalar
    path consume the *same* precomputed lags.
    """

    def __init__(
        self,
        program: SystolicProgram,
        schedule: ClockSchedule,
        delta: float,
        edge_delay: Mapping[EdgeKey, float],
    ) -> None:
        comm: CommGraph = program.array.comm
        self._program = program
        self._schedule = schedule
        self.comm_version = comm.version
        cells = comm.nodes()
        self._cells: List[CellId] = cells
        index = {c: i for i, c in enumerate(cells)}
        # Captured once: the scalar path iterates a fresh set copy per
        # event, which is order-stable within a process, so one snapshot
        # reproduces the scalar input-dict and violation order exactly.
        self._preds: Dict[CellId, Tuple[CellId, ...]] = {
            c: tuple(comm.predecessors(c)) for c in cells
        }
        self._succs: Dict[CellId, Tuple[CellId, ...]] = {
            c: tuple(comm.successors(c)) for c in cells
        }
        src_ids: List[int] = []
        dst_ids: List[int] = []
        lags: List[float] = []
        slots: List[int] = []
        edge_id: Dict[EdgeKey, int] = {}
        for c in cells:
            for j, u in enumerate(self._preds[c]):
                edge_id[(u, c)] = len(src_ids)
                src_ids.append(index[u])
                dst_ids.append(index[c])
                lags.append(delta + edge_delay[(u, c)])
                slots.append(j)
        self._src = np.asarray(src_ids, dtype=np.int64)
        self._dst = np.asarray(dst_ids, dtype=np.int64)
        self._lag = np.asarray(lags, dtype=np.float64)
        self._slot = np.asarray(slots, dtype=np.int64)
        self._edge_id = edge_id
        self._offsets = np.asarray(
            [schedule.offset(c) for c in cells], dtype=np.float64
        )
        self._period = schedule.period
        # A plain ClockSchedule is affine (offset + k * period); subclasses
        # such as JitteredSchedule override tick_time and take the generic
        # tabulated path.
        self._affine = type(schedule) is ClockSchedule
        # Stream-execution plan for clean runs (None = not yet probed;
        # False = unsupported, always replay).
        self._stream_order: Any = None

    # ------------------------------------------------------------------
    # timing analysis
    # ------------------------------------------------------------------
    def _tick_matrix(self, n_ticks: int) -> np.ndarray:
        """``T[c, k]`` = absolute time of tick ``k`` at cell ``c``, with
        exactly the scalar arithmetic (``offset + k * period`` per
        element for affine schedules; ``tick_time`` calls otherwise)."""
        n_cells = len(self._cells)
        if self._affine:
            ks = np.arange(n_ticks, dtype=np.float64) * self._period
            return self._offsets[:, None] + ks[None, :]
        tick_time = self._schedule.tick_time
        T = np.empty((n_cells, n_ticks), dtype=np.float64)
        for i, c in enumerate(self._cells):
            row = T[i]
            for k in range(n_ticks):
                row[k] = tick_time(c, k)
        return T

    def latch_matrix(
        self, n_ticks: int, T: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(T, g)``: the tick-time matrix and, per (edge, receiver tick),
        the latched sender generation — the vectorized
        ``_latched_sender_tick`` (identical floor estimate, identical
        downward scan with the same tolerance).  Pass a precomputed ``T``
        (from :meth:`_tick_matrix`) to skip rebuilding it."""
        if T is None:
            T = self._tick_matrix(n_ticks)
        if not len(self._src):
            return T, np.empty((0, n_ticks), dtype=np.int64)
        t_latch = T[self._dst]                      # (E, K)
        off_u = self._offsets[self._src][:, None]
        lag = self._lag[:, None]
        estimate = np.floor((t_latch - off_u - lag) / self._period)
        g = estimate.astype(np.int64) + 3           # covers ~1.5 periods of jitter
        thresh = t_latch + _LATCH_TOL
        if self._affine:
            while True:
                late = (g >= 0) & (off_u + g * self._period + lag > thresh)
                if not late.any():
                    break
                g -= late
        else:
            k_max = max(int(g.max(initial=0)), n_ticks - 1)
            Tall = self._tick_matrix(k_max + 1)
            src_col = self._src[:, None]
            while True:
                jj = np.maximum(g, 0)
                late = (g >= 0) & (Tall[src_col, jj] + lag > thresh)
                if not late.any():
                    break
                g -= late
        return T, g

    def _latch_block(
        self,
        lo: int,
        hi: int,
        n_ticks: int,
        ks_time: Optional[np.ndarray] = None,
        T: Optional[np.ndarray] = None,
        Tall: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`latch_matrix` restricted to directed edges ``[lo, hi)``
        — identical arithmetic on a slice, so streamed evaluation is
        bit-identical to the monolithic matrix while touching only
        O(block x ticks) memory.

        Affine schedules pass ``ks_time`` (``arange(K) * period``); the
        per-entry latch time ``offsets[dst] + ks_time[k]`` is then the
        same float64 add that built ``T`` monolithically.  Non-affine
        schedules pass the full ``T`` plus an oversized ``Tall`` covering
        every reachable generation (the caller bounds it once)."""
        dst = self._dst[lo:hi]
        src = self._src[lo:hi]
        lag = self._lag[lo:hi][:, None]
        off_u = self._offsets[src][:, None]
        if self._affine:
            assert ks_time is not None
            t_latch = self._offsets[dst][:, None] + ks_time[None, :]
        else:
            assert T is not None
            t_latch = T[dst]
        estimate = np.floor((t_latch - off_u - lag) / self._period)
        g = estimate.astype(np.int64) + 3
        thresh = t_latch + _LATCH_TOL
        if self._affine:
            while True:
                late = (g >= 0) & (off_u + g * self._period + lag > thresh)
                if not late.any():
                    break
                g -= late
        else:
            assert Tall is not None
            src_col = src[:, None]
            while True:
                jj = np.maximum(g, 0)
                late = (g >= 0) & (Tall[src_col, jj] + lag > thresh)
                if not late.any():
                    break
                g -= late
        return t_latch, g

    def _violation_entries(
        self,
        n_ticks: int,
        edge_block: int,
        ks_time: Optional[np.ndarray] = None,
        T: Optional[np.ndarray] = None,
        Tall: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Stream the latch scan per edge block, keeping only violating
        (edge, tick, latch time, generation) entries — the full
        ``(E, K)`` matrices never exist at once."""
        expected = np.arange(n_ticks, dtype=np.int64) - 1
        es: List[np.ndarray] = []
        kss: List[np.ndarray] = []
        ts: List[np.ndarray] = []
        gs: List[np.ndarray] = []
        n_edges = len(self._src)
        for lo in range(0, n_edges, edge_block):
            hi = min(lo + edge_block, n_edges)
            t_latch, g = self._latch_block(
                lo, hi, n_ticks, ks_time=ks_time, T=T, Tall=Tall
            )
            mask = g != expected[None, :]
            mask[:, 0] &= g[:, 0] >= 0
            if mask.any():
                e_off, k_idx = np.nonzero(mask)
                es.append(e_off + lo)
                kss.append(k_idx)
                ts.append(t_latch[e_off, k_idx])
                gs.append(g[e_off, k_idx])
        if not es:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0, dtype=np.float64), empty
        return (
            np.concatenate(es),
            np.concatenate(kss),
            np.concatenate(ts),
            np.concatenate(gs),
        )

    def _materialize_violations(
        self,
        e_idx: np.ndarray,
        k_idx: np.ndarray,
        g_vals: np.ndarray,
        perm: np.ndarray,
    ) -> List[TimingViolation]:
        cells = self._cells
        src, dst = self._src, self._dst
        out: List[TimingViolation] = []
        for j in perm:
            e = int(e_idx[j])
            k = int(k_idx[j])
            out.append(
                TimingViolation(
                    edge=(cells[src[e]], cells[dst[e]]),
                    receiver_tick=k,
                    expected_sender_tick=k - 1,
                    actual_sender_tick=int(g_vals[j]),
                )
            )
        return out

    def timing(
        self, ticks: Optional[int] = None, edge_block: Optional[int] = None
    ) -> TimingResult:
        """Violations + makespan without payload execution.

        With ``edge_block=None`` this is the monolithic
        :meth:`latch_matrix` / :meth:`violations` pair.  With an
        ``edge_block``, the latch scan streams over edge blocks of that
        size: peak memory is O(block x ticks) instead of O(edges x
        ticks), and the result — violation list contents, order, and
        makespan — is bit-identical (the property suite drives this
        across random block sizes).
        """
        n_ticks = ticks if ticks is not None else self._program.cycles
        if n_ticks < 1:
            raise ValueError("need at least one tick")
        if edge_block is not None and edge_block < 1:
            raise ValueError("edge_block must be positive")
        if edge_block is None:
            T, g = self.latch_matrix(n_ticks)
            makespan = max(0.0, float(T.max())) if T.size else 0.0
            return TimingResult(
                violations=self.violations(T, g, n_ticks),
                makespan=makespan,
                ticks=n_ticks,
            )
        ks_time: Optional[np.ndarray] = None
        T = None
        Tall = None
        if self._affine:
            ks_time = np.arange(n_ticks, dtype=np.float64) * self._period
            # max over {offsets[c] + ks[k]} is attained at the argmax of
            # each term and computed by the same float64 add, so the
            # closed form equals float(T.max()) bit for bit.
            makespan = (
                max(0.0, float(self._offsets.max() + ks_time[-1]))
                if len(self._cells)
                else 0.0
            )
        else:
            T = self._tick_matrix(n_ticks)
            makespan = max(0.0, float(T.max())) if T.size else 0.0
            if len(self._src):
                # One generation bound for every block: the initial floor
                # estimate is maximized by the latest latch and the
                # smallest (sender offset + lag).  Tall entries at equal
                # (cell, k) are identical whatever the matrix size.
                head = (self._offsets[self._src] + self._lag).min()
                bound = int(np.floor((T.max() - head) / self._period)) + 3
                Tall = self._tick_matrix(max(bound, n_ticks - 1) + 1)
        e_idx, k_idx, t_vals, g_vals = self._violation_entries(
            n_ticks, edge_block, ks_time=ks_time, T=T, Tall=Tall
        )
        perm = _order_violation_entries(
            self._slot, self._dst, e_idx, k_idx, t_vals
        )
        return TimingResult(
            violations=self._materialize_violations(e_idx, k_idx, g_vals, perm),
            makespan=makespan,
            ticks=n_ticks,
        )

    def _event_order(self, T: np.ndarray, n_ticks: int) -> np.ndarray:
        """Flat (cell * K + tick) event indices sorted exactly like the
        scalar event list: by time, then tick, then cell position."""
        n_cells = len(self._cells)
        k_flat = np.tile(np.arange(n_ticks, dtype=np.int64), n_cells)
        i_flat = np.repeat(np.arange(n_cells, dtype=np.int64), n_ticks)
        return np.lexsort((i_flat, k_flat, T.ravel()))

    def violations(
        self, T: np.ndarray, g: np.ndarray, n_ticks: int
    ) -> List[TimingViolation]:
        """The violation list in exact scalar order: event order (time,
        tick, cell) outermost, captured predecessor order within a cell."""
        if not g.size:
            return []
        ks = np.arange(n_ticks, dtype=np.int64)
        expected = ks - 1
        mask = g != expected[None, :]
        # Tick 0 expects -1; a latch of -1 (or below) is not a violation
        # there (both sides pre-first-tick), matching the scalar guard.
        mask[:, 0] &= g[:, 0] >= 0
        if not mask.any():
            return []
        order = self._event_order(T, n_ticks)
        rank = np.empty(order.shape, dtype=np.int64)
        rank[order] = np.arange(len(order), dtype=np.int64)
        e_idx, k_idx = np.nonzero(mask)
        event_rank = rank[self._dst[e_idx] * n_ticks + k_idx]
        perm = np.lexsort((self._slot[e_idx], event_rank))
        cells = self._cells
        src, dst = self._src, self._dst
        out: List[TimingViolation] = []
        for j in perm:
            e = e_idx[j]
            k = int(k_idx[j])
            out.append(
                TimingViolation(
                    edge=(cells[src[e]], cells[dst[e]]),
                    receiver_tick=k,
                    expected_sender_tick=k - 1,
                    actual_sender_tick=int(g[e, k]),
                )
            )
        return out

    # ------------------------------------------------------------------
    # functional execution
    # ------------------------------------------------------------------
    def _try_stream_order(self) -> Any:
        if self._stream_order is None:
            pes = self._program.pes
            try:
                if not batch.supports(pes, self._cells):
                    raise batch.BatchUnsupported("unhandled PE class")
                self._stream_order = batch.topological_order(
                    self._program.array.comm
                )
            except batch.BatchUnsupported:
                self._stream_order = False
        return self._stream_order

    def _replay(self, T: np.ndarray, g: np.ndarray, n_ticks: int) -> Any:
        """Event-order functional replay using the precomputed latch
        matrix — exact scalar semantics for dirty runs and programs the
        stream evaluator cannot express."""
        pes = self._program.pes
        cells = self._cells
        order = self._event_order(T, n_ticks)
        cell_seq = (order // n_ticks).tolist()
        tick_seq = (order % n_ticks).tolist()
        g_rows = g.tolist()
        history: List[List[Any]] = [
            [None] * n_ticks for _ in range(len(self._src))
        ]
        edge_id = self._edge_id
        pred_info = [
            [(u, edge_id[(u, c)]) for u in self._preds[c]] for c in cells
        ]
        succ_info = [
            [(v, edge_id[(c, v)]) for v in self._succs[c]] for c in cells
        ]
        fires = [pes[c].fire for c in cells]
        for ci, k in zip(cell_seq, tick_seq):
            inputs: Dict[CellId, Any] = {}
            for u, e in pred_info[ci]:
                gen = g_rows[e][k]
                inputs[u] = history[e][gen] if 0 <= gen < n_ticks else None
            outputs = fires[ci](inputs)
            for v, e in succ_info[ci]:
                history[e][k] = outputs.get(v) if outputs else None
        return self._program.read_result(_ExecutorFacade(pes))

    def _finish_streamed(self, pes: Mapping[CellId, Any], n_ticks: int) -> Any:
        """Functional half of a streamed run: stream-execute when clean
        runs allow it, otherwise fall back to the monolithic latch matrix
        for the exact event replay (dirty runs need the full ``g``)."""
        order = self._try_stream_order()
        if order is not False:
            try:
                batch.execute_streams(
                    pes, order, self._preds, self._succs, n_ticks
                )
                return self._program.read_result(_ExecutorFacade(pes))
            except batch.BatchUnsupported:
                self._stream_order = False
                for pe in pes.values():
                    pe.reset()  # discard any partial stream state
        T, g = self.latch_matrix(n_ticks)
        return self._replay(T, g, n_ticks)

    def run(
        self,
        ticks: Optional[int] = None,
        tracer: Optional[Any] = None,
        edge_block: Optional[int] = None,
    ) -> ClockedRunResult:
        """Byte-identical to the scalar ``ClockedArraySimulator.run``:
        same result payload, same violation list (contents *and* order),
        same makespan.

        An enabled ``tracer`` adds per-phase spans (tick-matrix, latch
        scan, violation extraction, execute) around the same arithmetic;
        the default path allocates nothing and is untouched.

        ``edge_block`` streams the timing analysis per edge block (see
        :meth:`timing`): same results, O(block x ticks) peak memory.
        Dirty runs still build the full latch matrix for the replay.
        """
        n_ticks = ticks if ticks is not None else self._program.cycles
        if n_ticks < 1:
            raise ValueError("need at least one tick")
        spans = None
        if tracer is not None and tracer.enabled:
            from repro.obs.spans import SpanTracer

            spans = tracer if isinstance(tracer, SpanTracer) else SpanTracer(tracer)
        pes = self._program.pes
        for pe in pes.values():
            pe.reset()
        if edge_block is not None:
            if spans is None:
                timing = self.timing(n_ticks, edge_block=edge_block)
                if timing.clean:
                    result = self._finish_streamed(pes, n_ticks)
                else:
                    T, g = self.latch_matrix(n_ticks)
                    result = self._replay(T, g, n_ticks)
            else:
                with spans.span(
                    "compiled.run",
                    ticks=n_ticks,
                    cells=len(self._cells),
                    edge_block=edge_block,
                ):
                    with spans.span("compiled.timing_stream") as h:
                        timing = self.timing(n_ticks, edge_block=edge_block)
                        h.annotate(count=len(timing.violations))
                    with spans.span("compiled.execute"):
                        if timing.clean:
                            result = self._finish_streamed(pes, n_ticks)
                        else:
                            T, g = self.latch_matrix(n_ticks)
                            result = self._replay(T, g, n_ticks)
            return ClockedRunResult(
                result=result,
                violations=timing.violations,
                ticks=n_ticks,
                makespan=timing.makespan,
            )
        if spans is None:
            T, g = self.latch_matrix(n_ticks)
            violations = self.violations(T, g, n_ticks)
        else:
            with spans.span("compiled.run", ticks=n_ticks, cells=len(self._cells)):
                with spans.span("compiled.tick_matrix"):
                    T = self._tick_matrix(n_ticks)
                with spans.span("compiled.latch_scan"):
                    T, g = self.latch_matrix(n_ticks, T=T)
                with spans.span("compiled.violations") as h:
                    violations = self.violations(T, g, n_ticks)
                    h.annotate(count=len(violations))
                with spans.span("compiled.execute"):
                    result0, makespan0 = self._execute(pes, T, g, n_ticks, violations)
            return ClockedRunResult(
                result=result0,
                violations=violations,
                ticks=n_ticks,
                makespan=makespan0,
            )
        result, makespan = self._execute(pes, T, g, n_ticks, violations)
        return ClockedRunResult(
            result=result,
            violations=violations,
            ticks=n_ticks,
            makespan=makespan,
        )

    def _execute(
        self,
        pes: Mapping[CellId, Any],
        T: np.ndarray,
        g: np.ndarray,
        n_ticks: int,
        violations: List[TimingViolation],
    ) -> Tuple[Any, float]:
        """The functional half of :meth:`run`: stream-execute clean runs,
        replay dirty ones; returns ``(result, makespan)``."""
        makespan = max(0.0, float(T.max())) if T.size else 0.0
        result: Any = None
        ran = False
        if not violations:
            order = self._try_stream_order()
            if order is not False:
                try:
                    batch.execute_streams(
                        pes, order, self._preds, self._succs, n_ticks
                    )
                    result = self._program.read_result(_ExecutorFacade(pes))
                    ran = True
                except batch.BatchUnsupported:
                    self._stream_order = False
                    for pe in pes.values():
                        pe.reset()  # discard any partial stream state
        if not ran:
            result = self._replay(T, g, n_ticks)
        return result, makespan


def compile_clocked(simulator: Any) -> CompiledClockedKernel:
    """Lower a :class:`~repro.sim.clocked.ClockedArraySimulator` into its
    array kernel (also available as ``simulator.compiled()``)."""
    return simulator.compiled()


# ----------------------------------------------------------------------
# array-only timing kernel (million-cell scale)
# ----------------------------------------------------------------------
class CompiledTimingKernel:
    """Pure timing analysis straight from arrays — the large-N kernel.

    :class:`CompiledClockedKernel` is lowered from a full
    ``SystolicProgram`` (PEs, payload closures, hashable cell ids) and
    pays a Python-speed walk of the object graph per compile.  At 10^6
    cells that walk *is* the runtime, so this kernel skips the object
    graph entirely: it is built from a
    :class:`~repro.graphs.csr.CSRAdjacency` plus per-cell clock offsets
    under an affine schedule (``offset + k * period``) and a per-edge
    data-path lag.  Cells are the dense ints ``0..n-1``; reported
    violation edges are ``(src, dst)`` int pairs.

    The latch arithmetic is exactly the scalar simulator's
    (``_latched_sender_tick``: floor estimate, +3 guard, downward scan
    with the 1e-12 tolerance), evaluated monolithically or streamed per
    edge block (:meth:`timing`); :meth:`timing_scalar` is the per-event
    Python oracle the differential suites compare against at
    co-runnable sizes.  :meth:`arrays` / :meth:`from_arrays` round-trip
    the kernel through raw numpy buffers so
    :class:`~repro.analysis.shared.SharedArena` can ship it to worker
    processes without pickling.
    """

    def __init__(
        self,
        adjacency: CSRAdjacency,
        offsets: Any,
        period: float,
        lag: Any = 0.0,
    ) -> None:
        offsets_arr = np.ascontiguousarray(np.asarray(offsets, dtype=np.float64))
        n = adjacency.n_cells
        if offsets_arr.shape != (n,):
            raise ValueError(
                f"offsets shape {offsets_arr.shape} != ({n},) cells"
            )
        if not period > 0:
            raise ValueError("period must be positive")
        indptr = np.ascontiguousarray(adjacency.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(adjacency.indices, dtype=np.int64)
        counts = np.diff(indptr)
        self._indptr = indptr
        self._src = indices
        self._dst = np.repeat(np.arange(n, dtype=np.int64), counts)
        # Slot = position within the receiver's predecessor list (CSR
        # row order), mirroring the captured-order tie-break of the
        # program kernel.
        self._slot = np.arange(len(indices), dtype=np.int64) - np.repeat(
            indptr[:-1], counts
        )
        lag_arr = np.asarray(lag, dtype=np.float64)
        if lag_arr.ndim == 0:
            lag_arr = np.broadcast_to(lag_arr, indices.shape)
        elif lag_arr.shape != indices.shape:
            raise ValueError(
                f"lag shape {lag_arr.shape} != ({len(indices)},) edges"
            )
        self._lag = np.ascontiguousarray(lag_arr)
        self._offsets = offsets_arr
        self._period = float(period)

    @property
    def n_cells(self) -> int:
        return len(self._offsets)

    @property
    def n_edges(self) -> int:
        return len(self._src)

    def latch_block(
        self, lo: int, hi: int, n_ticks: int, ks_time: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(t_latch, g)`` for directed edges ``[lo, hi)`` — the affine
        latch scan of :meth:`CompiledClockedKernel.latch_matrix` on a
        slice, identical float64 operations."""
        if ks_time is None:
            ks_time = np.arange(n_ticks, dtype=np.float64) * self._period
        dst = self._dst[lo:hi]
        src = self._src[lo:hi]
        lag = self._lag[lo:hi][:, None]
        off_u = self._offsets[src][:, None]
        t_latch = self._offsets[dst][:, None] + ks_time[None, :]
        estimate = np.floor((t_latch - off_u - lag) / self._period)
        g = estimate.astype(np.int64) + 3
        thresh = t_latch + _LATCH_TOL
        while True:
            late = (g >= 0) & (off_u + g * self._period + lag > thresh)
            if not late.any():
                break
            g -= late
        return t_latch, g

    def timing(
        self, n_ticks: int, edge_block: Optional[int] = None
    ) -> TimingResult:
        """The full violation set (exact scalar order) and makespan.

        ``edge_block`` bounds peak memory at O(block x ticks); any block
        size — including the default single monolithic block — yields a
        bit-identical result."""
        if n_ticks < 1:
            raise ValueError("need at least one tick")
        if edge_block is not None and edge_block < 1:
            raise ValueError("edge_block must be positive")
        n_edges = len(self._src)
        block = edge_block if edge_block is not None else max(n_edges, 1)
        ks_time = np.arange(n_ticks, dtype=np.float64) * self._period
        makespan = (
            max(0.0, float(self._offsets.max() + ks_time[-1]))
            if len(self._offsets)
            else 0.0
        )
        expected = np.arange(n_ticks, dtype=np.int64) - 1
        es: List[np.ndarray] = []
        kss: List[np.ndarray] = []
        ts: List[np.ndarray] = []
        gs: List[np.ndarray] = []
        for lo in range(0, n_edges, block):
            hi = min(lo + block, n_edges)
            t_latch, g = self.latch_block(lo, hi, n_ticks, ks_time)
            mask = g != expected[None, :]
            mask[:, 0] &= g[:, 0] >= 0
            if mask.any():
                e_off, k_idx = np.nonzero(mask)
                es.append(e_off + lo)
                kss.append(k_idx)
                ts.append(t_latch[e_off, k_idx])
                gs.append(g[e_off, k_idx])
        if not es:
            return TimingResult(violations=[], makespan=makespan, ticks=n_ticks)
        e_idx = np.concatenate(es)
        k_idx_all = np.concatenate(kss)
        t_vals = np.concatenate(ts)
        g_vals = np.concatenate(gs)
        perm = _order_violation_entries(
            self._slot, self._dst, e_idx, k_idx_all, t_vals
        )
        src, dst = self._src, self._dst
        out: List[TimingViolation] = []
        for j in perm:
            e = int(e_idx[j])
            k = int(k_idx_all[j])
            out.append(
                TimingViolation(
                    edge=(int(src[e]), int(dst[e])),
                    receiver_tick=k,
                    expected_sender_tick=k - 1,
                    actual_sender_tick=int(g_vals[j]),
                )
            )
        return TimingResult(violations=out, makespan=makespan, ticks=n_ticks)

    def timing_scalar(self, n_ticks: int) -> TimingResult:
        """Per-event Python reference: the scalar simulator's event loop
        (events sorted by time, tick, cell; predecessors in CSR row
        order) with the same latch scan — the oracle :meth:`timing` is
        differentially tested against."""
        if n_ticks < 1:
            raise ValueError("need at least one tick")
        offsets = self._offsets
        period = self._period
        indptr = self._indptr
        indices = self._src
        lag = self._lag
        n = len(offsets)
        events = sorted(
            (offsets[i] + k * period, k, i)
            for i in range(n)
            for k in range(n_ticks)
        )
        violations: List[TimingViolation] = []
        makespan = 0.0
        for t_latch, k, v in events:
            makespan = max(makespan, t_latch)
            expected = k - 1
            for e in range(indptr[v], indptr[v + 1]):
                u = indices[e]
                path_lag = lag[e]
                estimate = int(
                    math.floor((t_latch - offsets[u] - path_lag) / period)
                )
                kk = estimate + 3  # covers jitter up to ~1.5 periods
                while kk >= 0 and offsets[u] + kk * period + path_lag > t_latch + _LATCH_TOL:
                    kk -= 1
                if kk != expected and (kk >= 0 or expected >= 0):
                    violations.append(
                        TimingViolation(
                            edge=(int(u), int(v)),
                            receiver_tick=k,
                            expected_sender_tick=expected,
                            actual_sender_tick=kk,
                        )
                    )
        return TimingResult(
            violations=violations, makespan=float(makespan), ticks=n_ticks
        )

    def arrays(self) -> Dict[str, np.ndarray]:
        """The kernel's defining arrays, keyed for
        :class:`~repro.analysis.shared.SharedArena` shipping.  Scalars
        travel in ``params`` so the manifest stays arrays-only."""
        return {
            "indptr": self._indptr,
            "indices": self._src,
            "offsets": self._offsets,
            "lag": self._lag,
            "params": np.array([self._period], dtype=np.float64),
        }

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray]) -> "CompiledTimingKernel":
        """Rebuild from :meth:`arrays` output (possibly views into a
        shared-memory segment — the big buffers are used zero-copy; only
        the derived ``dst``/``slot`` index arrays are recomputed)."""
        adjacency = CSRAdjacency(
            indptr=np.asarray(arrays["indptr"]),
            indices=np.asarray(arrays["indices"]),
        )
        return cls(
            adjacency,
            arrays["offsets"],
            float(np.asarray(arrays["params"])[0]),
            lag=np.asarray(arrays["lag"]),
        )


# ----------------------------------------------------------------------
# self-timed tandem recurrence
# ----------------------------------------------------------------------
class CompiledRecurrence:
    """The tandem recurrence evaluated wavefront-by-wavefront with grouped
    array maxima — unbounded, or bounded by a finite channel capacity.

    Compiles the COMM graph once (edges grouped by receiver for
    ``np.maximum.reduceat``, and by *sender* for the capacity back-edges);
    each wave is then a handful of array ops.  ``max`` is associative and
    the add order per element matches the scalar loop, so the makespan
    equals :meth:`~repro.sim.dataflow.SelfTimedProgramSimulator.
    recurrence_makespan_scalar` exactly, in both regimes.

    With ``capacity=k`` the classic marked-graph formulation joins the
    forward recurrence: ``start[c][w] >= start[succ][w-k+1]`` for every
    successor once ``w >= k`` (the consumer must have drained generation
    ``w-k`` before the producer may start wave ``w``).  For ``k >= 2``
    that reads a start row from a sliding window of earlier waves; ``k=1``
    couples starts *within* a wave, solved by max-relaxation to a
    fixpoint (exact: the iteration only ever takes maxima of already-
    present floats, so it converges to the same closure the scalar
    reverse-topological sweep computes).
    """

    def __init__(self, comm: CommGraph) -> None:
        self.comm_version = comm.version
        self._cells = comm.nodes()
        self._acyclic = comm.is_acyclic()
        index = {c: i for i, c in enumerate(self._cells)}
        src: List[int] = []
        group_starts: List[int] = []
        group_cells: List[int] = []
        succ: List[int] = []
        succ_group_starts: List[int] = []
        succ_group_cells: List[int] = []
        for c in self._cells:
            preds = comm.predecessors(c)
            if preds:
                group_starts.append(len(src))
                group_cells.append(index[c])
                src.extend(index[p] for p in preds)
            successors = comm.successors(c)
            if successors:
                succ_group_starts.append(len(succ))
                succ_group_cells.append(index[c])
                succ.extend(index[s] for s in successors)
        self._src = np.asarray(src, dtype=np.int64)
        self._group_starts = np.asarray(group_starts, dtype=np.int64)
        self._group_cells = np.asarray(group_cells, dtype=np.int64)
        self._succ = np.asarray(succ, dtype=np.int64)
        self._succ_group_starts = np.asarray(succ_group_starts, dtype=np.int64)
        self._succ_group_cells = np.asarray(succ_group_cells, dtype=np.int64)

    def _service_matrix(
        self, service: Any, n_waves: int
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """(constant column, full matrix) — one of the two is set."""
        n = len(self._cells)
        col = self._service_column(service)
        if col is not None:
            return col, None
        svc = np.empty((n, n_waves), dtype=np.float64)
        for i, c in enumerate(self._cells):
            row = svc[i]
            for k in range(n_waves):
                row[k] = service(c, k)
        return None, svc

    def _service_column(self, service: Any) -> Optional[np.ndarray]:
        """Wave-invariant per-cell service column, or ``None`` when the
        callable varies by wave (``constant_duration`` /
        ``cell_durations`` attributes — see :func:`repro.sim.dataflow.
        constant_service` and :func:`~repro.sim.dataflow.per_cell_service`)."""
        constant = getattr(service, "constant_duration", None)
        if constant is not None:
            return np.full(len(self._cells), float(constant))
        durations = getattr(service, "cell_durations", None)
        if durations is not None:
            return np.asarray(
                [float(durations[c]) for c in self._cells], dtype=np.float64
            )
        return None

    def _capacity_groups(
        self, cap_map: Mapping[EdgeKey, int]
    ) -> Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Per-depth sender-grouped back-edge arrays for a heterogeneous
        capacity map: ``{depth: (succ, group_starts, group_cells)}`` in the
        same ``reduceat`` layout as the uniform arrays.  Validates keys
        (must be COMM edges) and values (ints ``>= 1``)."""
        cells = self._cells
        per_d: Dict[int, Tuple[List[int], List[int], List[int]]] = {}
        matched = 0
        n_groups = len(self._succ_group_cells)
        for g in range(n_groups):
            lo = int(self._succ_group_starts[g])
            hi = (
                int(self._succ_group_starts[g + 1])
                if g + 1 < n_groups
                else len(self._succ)
            )
            sender_idx = int(self._succ_group_cells[g])
            sender = cells[sender_idx]
            for p in range(lo, hi):
                consumer_idx = int(self._succ[p])
                d_raw = cap_map.get((sender, cells[consumer_idx]))
                if d_raw is None:
                    continue
                d = int(d_raw)
                if d < 1:
                    raise ValueError(
                        f"per-edge channel capacity must be >= 1, got {d} "
                        f"for edge ({sender!r}, {cells[consumer_idx]!r})"
                    )
                matched += 1
                succ_l, starts_l, targets_l = per_d.setdefault(
                    d, ([], [], [])
                )
                if not targets_l or targets_l[-1] != sender_idx:
                    starts_l.append(len(succ_l))
                    targets_l.append(sender_idx)
                succ_l.append(consumer_idx)
        if matched != len(cap_map):
            edge_set = {
                (cells[int(self._succ_group_cells[g])], cells[int(s)])
                for g in range(n_groups)
                for s in self._succ[
                    int(self._succ_group_starts[g]) : (
                        int(self._succ_group_starts[g + 1])
                        if g + 1 < n_groups
                        else len(self._succ)
                    )
                ]
            }
            unknown = [e for e in cap_map if e not in edge_set]
            raise ValueError(f"capacity for unknown COMM edge {unknown[0]!r}")
        return {
            d: (
                np.asarray(succ_l, dtype=np.int64),
                np.asarray(starts_l, dtype=np.int64),
                np.asarray(targets_l, dtype=np.int64),
            )
            for d, (succ_l, starts_l, targets_l) in per_d.items()
        }

    def stepper(
        self,
        service: Any,
        wire_delay: float,
        capacity: Any = None,
    ) -> "RecurrenceStepper":
        """A wave-at-a-time evaluator over this compiled structure — the
        open-horizon form of :meth:`makespan` (same float operations per
        wave), exposing the full finish vector after each wave.  Accepts
        every capacity regime: ``None``, a uniform int, or a per-edge
        ``{(src, dst): depth}`` map."""
        return RecurrenceStepper(self, service, wire_delay, capacity=capacity)

    def makespan(
        self,
        service: Any,
        wire_delay: float,
        n_waves: int,
        capacity: Any = None,
    ) -> float:
        cells = self._cells
        if isinstance(capacity, Mapping):
            # Heterogeneous depths take the stepper path (identical maxima
            # per wave; the scalar oracle's per-edge branch is the
            # reference both must equal).
            if not cells:
                return 0.0
            return self.stepper(service, wire_delay, capacity=capacity).run(
                n_waves
            )
        if capacity is not None:
            capacity = int(capacity)
            if capacity < 1:
                raise ValueError("channel capacity must be >= 1 (or None)")
            if capacity == 1 and not self._acyclic:
                from repro.sim.dataflow import ChannelDeadlockError

                raise ChannelDeadlockError(
                    "channel_capacity=1 on a cyclic COMM graph is a "
                    "zero-token marked-graph cycle (deadlock); use "
                    "capacity >= 2"
                )
        if not cells:
            return 0.0
        const_col, svc = self._service_matrix(service, n_waves)
        finish = np.zeros(len(cells), dtype=np.float64)
        src, starts, targets = self._src, self._group_starts, self._group_cells
        succ = self._succ
        succ_starts = self._succ_group_starts
        succ_targets = self._succ_group_cells
        history: deque = deque()  # start rows, oldest first (k >= 2 only)
        for k in range(n_waves):
            if k > 0 and len(src):
                arrivals = finish[src] + wire_delay
                grouped = np.maximum.reduceat(arrivals, starts)
                start = finish.copy()
                start[targets] = np.maximum(start[targets], grouped)
            else:
                start = finish
            if capacity is not None and k >= capacity and len(succ):
                if start is finish:
                    start = finish.copy()
                if capacity == 1:
                    # Same-wave coupling: relax start[c] >= start[succ]
                    # until unchanged.  Each pass only takes maxima of
                    # floats already in the vector, so the fixpoint is
                    # float-exact against the reverse-topological sweep.
                    while True:
                        grouped = np.maximum.reduceat(start[succ], succ_starts)
                        updated = np.maximum(start[succ_targets], grouped)
                        if np.array_equal(updated, start[succ_targets]):
                            break
                        start[succ_targets] = updated
                else:
                    oldest = history[0]  # start row of wave k - capacity + 1
                    grouped = np.maximum.reduceat(oldest[succ], succ_starts)
                    start[succ_targets] = np.maximum(
                        start[succ_targets], grouped
                    )
            if capacity is not None and capacity >= 2:
                # ``start`` is never mutated after this wave (the next
                # wave copies before writing), so the window can keep a
                # reference instead of a copy.
                history.append(start)
                if len(history) > capacity - 1:
                    history.popleft()
            col = const_col if const_col is not None else svc[:, k]
            finish = start + col
        return float(finish.max())


def _pairs_acyclic(n_cells: int, src: np.ndarray, dst: np.ndarray) -> bool:
    """Kahn's check over an explicit edge list on dense int cells."""
    indegree = np.zeros(n_cells, dtype=np.int64)
    np.add.at(indegree, dst, 1)
    succs: List[List[int]] = [[] for _ in range(n_cells)]
    for u, v in zip(src.tolist(), dst.tolist()):
        succs[u].append(v)
    queue = [i for i in range(n_cells) if indegree[i] == 0]
    seen = 0
    i = 0
    while i < len(queue):
        u = queue[i]
        i += 1
        seen += 1
        for v in succs[u]:
            indegree[v] -= 1
            if indegree[v] == 0:
                queue.append(v)
    return seen == n_cells


class RecurrenceStepper:
    """Wave-at-a-time evaluation of the compiled tandem recurrence.

    :meth:`CompiledRecurrence.makespan` runs a fixed horizon and returns
    one float; analyses that *watch* the trajectory — steady-state
    detection in :mod:`repro.sta.flow`, transient bound checks — need the
    finish vector after every wave, over an open horizon.  Each
    :meth:`step` performs the same grouped-maxima float operations as the
    corresponding ``makespan`` wave, so ``max`` of the stepper's final
    vector equals ``makespan`` bit for bit in every capacity regime
    (``None`` / uniform int / per-edge map — the map regime is grouped by
    distinct depth, each depth reading its own lagged start row).

    The returned finish vectors are freshly allocated per wave and never
    mutated afterwards; callers may keep references.
    """

    def __init__(
        self,
        compiled: CompiledRecurrence,
        service: Any,
        wire_delay: float,
        capacity: Any = None,
    ) -> None:
        if wire_delay < 0:
            raise ValueError("wire delay must be non-negative")
        self._c = compiled
        self._service = service
        self._wire_delay = wire_delay
        n = len(compiled._cells)
        # Capacity regime -> per-depth grouped back-edge arrays.  A
        # uniform int reuses the full sender-grouped arrays; a map gets
        # per-depth subsets in the same layout.
        cap1: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        deep: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
        if isinstance(capacity, Mapping):
            groups = compiled._capacity_groups(capacity)
            for d in sorted(groups):
                succ_d, starts_d, targets_d = groups[d]
                if d == 1:
                    counts = np.diff(np.append(starts_d, len(succ_d)))
                    src_1 = np.repeat(targets_d, counts)
                    if not _pairs_acyclic(n, src_1, succ_d):
                        from repro.sim.dataflow import ChannelDeadlockError

                        raise ChannelDeadlockError(
                            "capacity-1 channels form a directed COMM "
                            "cycle: a zero-token marked-graph cycle "
                            "(deadlock); raise some capacity on the "
                            "cycle to >= 2"
                        )
                    cap1 = (succ_d, starts_d, targets_d)
                else:
                    deep.append((d, succ_d, starts_d, targets_d))
        elif capacity is not None:
            capacity = int(capacity)
            if capacity < 1:
                raise ValueError("channel capacity must be >= 1 (or None)")
            full = (
                compiled._succ,
                compiled._succ_group_starts,
                compiled._succ_group_cells,
            )
            if capacity == 1:
                if not compiled._acyclic:
                    from repro.sim.dataflow import ChannelDeadlockError

                    raise ChannelDeadlockError(
                        "channel_capacity=1 on a cyclic COMM graph is a "
                        "zero-token marked-graph cycle (deadlock); use "
                        "capacity >= 2"
                    )
                cap1 = full
            elif len(compiled._succ):
                deep.append((capacity, *full))
        self._cap1 = cap1
        self._deep = deep
        self._window_len = max((d - 1 for d, *_ in deep), default=0)
        self._window: deque = deque(maxlen=self._window_len or None)
        self._col = compiled._service_column(service)
        self._finish = np.zeros(n, dtype=np.float64)
        self._k = 0

    @property
    def wave(self) -> int:
        """Number of completed waves."""
        return self._k

    @property
    def finish(self) -> np.ndarray:
        """Finish vector after the last completed wave (zeros before the
        first :meth:`step`), indexed like ``CompiledRecurrence._cells``."""
        return self._finish

    def step(self) -> np.ndarray:
        """Advance one wave; returns the new finish vector."""
        c = self._c
        k = self._k
        finish = self._finish
        if k > 0 and len(c._src):
            arrivals = finish[c._src] + self._wire_delay
            grouped = np.maximum.reduceat(arrivals, c._group_starts)
            start = finish.copy()
            start[c._group_cells] = np.maximum(
                start[c._group_cells], grouped
            )
        else:
            start = finish
        for d, succ_d, starts_d, targets_d in self._deep:
            if k >= d:
                if start is finish:
                    start = finish.copy()
                row = self._window[-(d - 1)]  # start row of wave k - d + 1
                grouped = np.maximum.reduceat(row[succ_d], starts_d)
                start[targets_d] = np.maximum(start[targets_d], grouped)
        if self._cap1 is not None and k >= 1:
            succ1, starts1, targets1 = self._cap1
            if start is finish:
                start = finish.copy()
            # Same-wave coupling: relax to the exact fixpoint, as in
            # CompiledRecurrence.makespan.
            while True:
                grouped = np.maximum.reduceat(start[succ1], starts1)
                updated = np.maximum(start[targets1], grouped)
                if np.array_equal(updated, start[targets1]):
                    break
                start[targets1] = updated
        if self._window_len:
            self._window.append(start)
        if self._col is not None:
            col = self._col
        else:
            col = np.asarray(
                [self._service(cell, k) for cell in c._cells],
                dtype=np.float64,
            )
        self._finish = start + col
        self._k = k + 1
        return self._finish

    def run(self, n_waves: int) -> float:
        """Makespan after ``n_waves`` further waves (the scalar the fixed-
        horizon kernel reports)."""
        if n_waves < 1:
            raise ValueError("need at least one wave")
        for _ in range(n_waves):
            self.step()
        return float(self._finish.max()) if len(self._finish) else 0.0


# ----------------------------------------------------------------------
# hybrid neighbor-barrier (max-plus) step
# ----------------------------------------------------------------------
class CompiledMaxPlus:
    """One compiled step of the hybrid handshake recurrence
    ``start[e] = max(finish[e], max_nbr finish[nbr] + hs(e, nbr))``.

    Used by :func:`repro.sim.hybrid_sim.simulate_hybrid` and
    :func:`repro.sim.hybrid_exec.execute_program_hybrid`; ``max`` over
    neighbors is order-free, so the vector step equals the scalar dict
    loop exactly.
    """

    def __init__(
        self,
        eids: Sequence[Hashable],
        neighbors_of: Mapping[Hashable, Any],
        handshake: Mapping[Tuple[Hashable, Hashable], float],
    ) -> None:
        index = {e: i for i, e in enumerate(eids)}
        nbr: List[int] = []
        cost: List[float] = []
        group_starts: List[int] = []
        group_cells: List[int] = []
        for e in eids:
            partners = neighbors_of[e]
            if partners:
                group_starts.append(len(nbr))
                group_cells.append(index[e])
                for p in partners:
                    nbr.append(index[p])
                    cost.append(handshake[(e, p)])
        self._nbr = np.asarray(nbr, dtype=np.int64)
        self._cost = np.asarray(cost, dtype=np.float64)
        self._group_starts = np.asarray(group_starts, dtype=np.int64)
        self._group_cells = np.asarray(group_cells, dtype=np.int64)

    def starts(self, finish: np.ndarray) -> np.ndarray:
        start = finish.copy()
        if len(self._nbr):
            ready = finish[self._nbr] + self._cost
            grouped = np.maximum.reduceat(ready, self._group_starts)
            tgt = self._group_cells
            start[tgt] = np.maximum(start[tgt], grouped)
        return start
