"""Vectorized stream execution of systolic program payloads.

A *clean* clocked run (no timing violations) is functionally identical to
the ideal lockstep semantics: every cell's tick ``k`` consumes exactly its
predecessors' tick ``k - 1`` outputs.  Under that guarantee the whole
computation factors per cell: each cell maps its full input *streams*
(length ``n_ticks`` value sequences per in-edge) to its full output
streams, and cells can be evaluated once each in topological order instead
of once per (cell, tick) event.

This module implements that evaluation for the built-in PE classes of
:mod:`repro.arrays.cells` / :mod:`repro.arrays.systolic` with numpy
streams.  Handlers perform *exactly* the scalar per-tick arithmetic
(element-wise, same operation order), so results are bit-identical to the
event-driven interpreters — the compiled clocked kernel
(:mod:`repro.sim.compiled`) relies on that and the property tests pin it.

Streams carry an explicit validity mask: ``None`` ("no data yet", the
pipeline bubble) is a masked-out entry, never a sentinel value.  FIR-style
``(x, y)`` packet tuples get a dedicated stream type.

Anything the stream algebra cannot express — a PE class without a
handler, a cyclic COMM graph, a script mixing packet and scalar entries —
raises :class:`BatchUnsupported`; the caller falls back to the exact
event-order replay, so batch execution is a pure optimization, never a
semantics change.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.arrays.cells import PE, RecordingSink, ScriptedSource
from repro.arrays.systolic import FirCell, MatMulCell, MatVecCell
from repro.graphs.comm import CommGraph

CellId = Hashable


class BatchUnsupported(Exception):
    """The program is outside the stream algebra; use the replay path."""


class FloatStream:
    """A length-``n`` sequence of ``float | None`` as (values, valid)."""

    __slots__ = ("vals", "valid")

    def __init__(self, vals: np.ndarray, valid: np.ndarray) -> None:
        self.vals = vals
        self.valid = valid

    @classmethod
    def absent(cls, n: int) -> "FloatStream":
        return cls(np.zeros(n), np.zeros(n, dtype=bool))

    def masked(self) -> np.ndarray:
        """Values with invalid entries forced to 0.0 — the ``_num`` rule."""
        return np.where(self.valid, self.vals, 0.0)

    def shifted(self) -> "FloatStream":
        """The stream one tick later (entry 0 becomes ``None``) — what a
        receiver latches: the sender's previous-tick output."""
        vals = np.empty_like(self.vals)
        vals[0] = 0.0
        vals[1:] = self.vals[:-1]
        valid = np.zeros_like(self.valid)
        valid[1:] = self.valid[:-1]
        return FloatStream(vals, valid)

    def to_list(self) -> List[Optional[float]]:
        out: List[Optional[float]] = self.vals.tolist()
        for i, ok in enumerate(self.valid.tolist()):
            if not ok:
                out[i] = None
        return out

    def last_value(self) -> Optional[float]:
        return float(self.vals[-1]) if self.valid[-1] else None


class PacketStream:
    """A length-``n`` sequence of ``(x, y) | None`` FIR-style packets.

    ``present`` masks whole packets; ``x``/``y`` are the component streams
    (their own validity encodes ``None`` components inside a packet).
    """

    __slots__ = ("present", "x", "y")

    def __init__(self, present: np.ndarray, x: FloatStream, y: FloatStream) -> None:
        self.present = present
        self.x = x
        self.y = y

    @classmethod
    def absent(cls, n: int) -> "PacketStream":
        zeros = np.zeros(n, dtype=bool)
        return cls(zeros, FloatStream.absent(n), FloatStream.absent(n))

    def component(self, which: FloatStream) -> FloatStream:
        """A component as seen through packet unpacking: absent packets
        read both components as ``None``."""
        return FloatStream(which.vals, self.present & which.valid)

    def shifted(self) -> "PacketStream":
        present = np.zeros_like(self.present)
        present[1:] = self.present[:-1]
        return PacketStream(present, self.x.shifted(), self.y.shifted())

    def to_list(self) -> List[Optional[Tuple[Optional[float], float]]]:
        xs = self.component(self.x).to_list()
        ys = self.component(self.y).to_list()
        out: List[Any] = []
        for ok, x, y in zip(self.present.tolist(), xs, ys):
            out.append((x, y) if ok else None)
        return out


Stream = Any  # FloatStream | PacketStream | None (absent edge)


def _shift(stream: Stream) -> Stream:
    return None if stream is None else stream.shifted()


def _as_float(stream: Stream, n: int) -> FloatStream:
    if stream is None:
        return FloatStream.absent(n)
    if isinstance(stream, FloatStream):
        return stream
    raise BatchUnsupported("packet stream fed to a scalar-valued input")


def materialize(stream: Stream, n: int) -> List[Any]:
    """The stream as the list of per-tick Python values a scalar run sees."""
    if stream is None:
        return [None] * n
    return stream.to_list()


# ----------------------------------------------------------------------
# per-PE-class handlers
# ----------------------------------------------------------------------
# A handler maps (pe, per-predecessor input streams, n_ticks) to per-
# successor output streams, and leaves the PE in its post-run state —
# exactly as if ``fire`` had been called ``n_ticks`` times.

Handler = Callable[[PE, Mapping[CellId, Stream], int], Dict[CellId, Stream]]


def _script_stream(script: List[Any], n: int) -> Stream:
    entries = list(script[:n]) + [None] * max(0, n - len(script))
    kinds = {type(v) for v in entries if v is not None}
    if not kinds - {int, float}:
        valid = np.array([v is not None for v in entries], dtype=bool)
        vals = np.array([0.0 if v is None else float(v) for v in entries])
        return FloatStream(vals, valid)
    if kinds == {tuple} and all(
        v is None or len(v) == 2 for v in entries
    ):
        present = np.array([v is not None for v in entries], dtype=bool)
        comps = []
        for slot in (0, 1):
            cv = [None if v is None else v[slot] for v in entries]
            if any(c is not None and not isinstance(c, (int, float)) for c in cv):
                raise BatchUnsupported("non-numeric packet component in script")
            comps.append(
                FloatStream(
                    np.array([0.0 if c is None else float(c) for c in cv]),
                    np.array([c is not None for c in cv], dtype=bool),
                )
            )
        return PacketStream(present, comps[0], comps[1])
    raise BatchUnsupported("script mixes packet and scalar entries")


def _run_scripted(pe: ScriptedSource, ins: Mapping[CellId, Stream], n: int) -> Dict[CellId, Stream]:
    stream = _script_stream(pe._script, n)
    pe._t = n
    return {target: stream for target in pe._targets}


def _run_sink(pe: RecordingSink, ins: Mapping[CellId, Stream], n: int) -> Dict[CellId, Stream]:
    for src, stream in ins.items():
        pe.received.setdefault(src, []).extend(materialize(stream, n))
    return {}


def _run_fir(pe: FirCell, ins: Mapping[CellId, Stream], n: int) -> Dict[CellId, Stream]:
    packet = ins.get(pe._left)
    if packet is None:
        packet = PacketStream.absent(n)
    elif not isinstance(packet, PacketStream):
        raise BatchUnsupported("FIR cell fed a non-packet stream")
    x_in = packet.component(packet.x)
    y_in = packet.component(packet.y)
    # Scalar: y_out = _num(y_in) + weight * _num(x_in), every tick.
    y_out = FloatStream(
        y_in.masked() + pe.weight * x_in.masked(), np.ones(n, dtype=bool)
    )
    x_out = x_in.shifted()  # the one-tick x register
    pe._x_reg = x_in.last_value()
    out = PacketStream(np.ones(n, dtype=bool), x_out, y_out)
    return {pe._right: out}


def _run_matvec(pe: MatVecCell, ins: Mapping[CellId, Stream], n: int) -> Dict[CellId, Stream]:
    y_in = _as_float(ins.get(pe._left), n)
    a_in = _as_float(ins.get(pe._feed), n)
    # Scalar: None out iff both inputs None, else _num(y) + _num(a) * x.
    vals = y_in.masked() + a_in.masked() * pe.x_value
    return {pe._right: FloatStream(vals, y_in.valid | a_in.valid)}


def _run_matmul(pe: MatMulCell, ins: Mapping[CellId, Stream], n: int) -> Dict[CellId, Stream]:
    a_in = ins.get(pe._left)
    b_in = ins.get(pe._up)
    a = _as_float(a_in, n)
    b = _as_float(b_in, n)
    both = a.valid & b.valid
    # Sequential accumulation in tick order — the exact float-op order of
    # the scalar ``acc += a * b`` (products are vectorized, the sum is not:
    # reassociation would change the rounding).
    acc = 0.0
    for p in (a.vals[both] * b.vals[both]).tolist():
        acc += p
    pe.acc = acc
    out: Dict[CellId, Stream] = {}
    if pe._right is not None:
        out[pe._right] = a_in  # a passes through unchanged
    if pe._down is not None:
        out[pe._down] = b_in  # b passes through unchanged
    return out


HANDLERS: Dict[type, Handler] = {
    ScriptedSource: _run_scripted,
    RecordingSink: _run_sink,
    FirCell: _run_fir,
    MatVecCell: _run_matvec,
    MatMulCell: _run_matmul,
}


def supports(pes: Mapping[CellId, PE], cells: List[CellId]) -> bool:
    """True when every cell's PE has a stream handler (exact type match —
    a subclass may override ``fire`` arbitrarily)."""
    return all(type(pes[c]) in HANDLERS for c in cells)


def topological_order(comm: CommGraph) -> List[CellId]:
    """Kahn's algorithm; raises :class:`BatchUnsupported` on a cycle
    (cyclic programs — e.g. the bidirectional sorter — need per-tick
    interleaving and take the replay path)."""
    cells = comm.nodes()
    indeg = {c: len(comm.predecessors(c)) for c in cells}
    queue = deque(c for c in cells if indeg[c] == 0)
    order: List[CellId] = []
    while queue:
        cell = queue.popleft()
        order.append(cell)
        for nxt in comm.successors(cell):
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                queue.append(nxt)
    if len(order) != len(cells):
        raise BatchUnsupported("COMM graph is cyclic")
    return order


def execute_streams(
    pes: Mapping[CellId, PE],
    order: List[CellId],
    preds: Mapping[CellId, Tuple[CellId, ...]],
    succs: Mapping[CellId, Tuple[CellId, ...]],
    n_ticks: int,
) -> None:
    """Evaluate every cell once, in topological order, leaving each PE in
    its post-run state (the caller resets PEs first and reads results
    through the usual facade).

    Valid only for lockstep-equivalent executions: every receiver tick
    ``k`` latches the sender's tick ``k - 1`` output, which is what the
    one-tick stream shift encodes.
    """
    if not supports(pes, order):
        raise BatchUnsupported("unhandled PE class")
    edge_streams: Dict[Tuple[CellId, CellId], Stream] = {}
    for cell in order:
        ins = {
            src: _shift(edge_streams.get((src, cell))) for src in preds[cell]
        }
        outs = HANDLERS[type(pes[cell])](pes[cell], ins, n_ticks)
        for dst in succs[cell]:
            edge_streams[(cell, dst)] = outs.get(dst)
