"""The discrete-event simulation engine.

A thin driver over :class:`~repro.sim.events.EventQueue`: payloads are
zero-argument callables executed at their scheduled time; callbacks may
schedule further events.  Time never runs backwards (scheduling in the past
raises), and the run is fully deterministic for deterministic callbacks.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.sim.events import EventQueue

Action = Callable[[], None]


class Simulator:
    """Run scheduled actions in time order."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, action: Action) -> None:
        """Schedule ``action`` at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        self._queue.push(self.now + delay, action)

    def schedule_at(self, time: float, action: Action) -> None:
        """Schedule ``action`` at an absolute time >= now."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now ({self.now})")
        self._queue.push(time, action)

    def run(
        self,
        until: float = math.inf,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events in order until the queue drains, simulated time
        passes ``until``, or ``max_events`` are processed (a runaway guard).
        Returns the number of events processed in this call."""
        processed = 0
        while self._queue:
            next_time = self._queue.peek_time()
            assert next_time is not None
            if next_time > until:
                break
            if max_events is not None and processed >= max_events:
                break
            time, action = self._queue.pop()
            self.now = time
            action()
            processed += 1
        self.events_processed += processed
        return processed

    @property
    def pending(self) -> int:
        return len(self._queue)
