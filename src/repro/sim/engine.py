"""The discrete-event simulation engine.

A thin driver over :class:`~repro.sim.events.EventQueue`: payloads are
zero-argument callables executed at their scheduled time; callbacks may
schedule further events.  Time never runs backwards (scheduling in the past
raises), and the run is fully deterministic for deterministic callbacks.

Optionally observable: pass a :class:`~repro.obs.trace.Tracer` to record a
span per dispatched event (with the wall-clock cost of the callback and
the queue depth after it), and a
:class:`~repro.obs.metrics.MetricsRegistry` to collect an event counter
and a queue-depth gauge.  Tripping the ``max_events`` runaway guard emits
an ``engine/runaway_guard`` warning event.  Both default to off and cost
nothing when disabled.
"""

from __future__ import annotations

import math
import time as _time
from typing import Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.events import EventQueue

Action = Callable[[], None]


class Simulator:
    """Run scheduled actions in time order."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._queue = EventQueue()
        self.now = 0.0
        self.events_processed = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics

    def schedule(self, delay: float, action: Action) -> None:
        """Schedule ``action`` at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        self._queue.push(self.now + delay, action)

    def schedule_at(self, time: float, action: Action) -> None:
        """Schedule ``action`` at an absolute time >= now."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now ({self.now})")
        self._queue.push(time, action)

    def run(
        self,
        until: float = math.inf,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events in order until the queue drains, simulated time
        passes ``until``, or ``max_events`` are processed (a runaway guard).
        Returns the number of events processed in this call."""
        processed = 0
        tracer = self.tracer
        metrics = self.metrics
        if tracer is NULL_TRACER and metrics is None:
            # Uninstrumented fast path: no span bookkeeping, no per-event
            # wall-clock reads, no try/finally per dispatch.  The dataflow
            # and handshake simulators schedule one closure per token, so
            # dispatch overhead is a first-order cost at array scale.
            queue = self._queue
            try:
                if until is math.inf and max_events is None:
                    while queue:
                        time, action = queue.pop()
                        self.now = time
                        processed += 1
                        action()
                else:
                    while queue:
                        next_time = queue.peek_time()
                        if next_time > until:
                            break
                        if max_events is not None and processed >= max_events:
                            break
                        time, action = queue.pop()
                        self.now = time
                        processed += 1
                        action()
            finally:
                self.events_processed += processed
            return processed
        if metrics is not None:
            event_counter = metrics.counter("engine.events")
            depth_gauge = metrics.gauge("engine.queue_depth")
        run_t0 = _time.perf_counter()
        try:
            while self._queue:
                next_time = self._queue.peek_time()
                assert next_time is not None
                if next_time > until:
                    break
                if max_events is not None and processed >= max_events:
                    # The guard fired with work still queued — a likely runaway
                    # (a deadlocked protocol or a self-rescheduling loop).
                    if tracer.enabled:
                        tracer.event(
                            self.now,
                            "engine",
                            "runaway_guard",
                            limit=max_events,
                            pending=len(self._queue),
                        )
                    if metrics is not None:
                        metrics.counter("engine.runaway_guards").inc()
                    break
                time, action = self._queue.pop()
                self.now = time
                # The popped event counts as processed whether or not its
                # callback raises: counters, gauges, and the dispatch span
                # must stay consistent with the queue state.
                failed = False
                t0 = _time.perf_counter() if tracer.enabled else 0.0
                try:
                    action()
                except BaseException:
                    failed = True
                    raise
                finally:
                    processed += 1
                    if tracer.enabled:
                        data = {
                            "wall_s": _time.perf_counter() - t0,
                            "queue_depth": len(self._queue),
                        }
                        if failed:
                            data["error"] = True
                        tracer.event(time, "engine", "dispatch", **data)
                    if metrics is not None:
                        event_counter.inc()
                        depth_gauge.set(len(self._queue))
                        if failed:
                            metrics.counter("engine.dispatch_errors").inc()
            if tracer.enabled:
                # End-of-run summary so a trace shows where the engine
                # stopped (drained vs. guard/until) without replaying
                # every dispatch.
                tracer.event(
                    self.now,
                    "engine",
                    "run",
                    processed=processed,
                    pending=len(self._queue),
                    wall_s=_time.perf_counter() - run_t0,
                )
        finally:
            self.events_processed += processed
        return processed

    @property
    def pending(self) -> int:
        return len(self._queue)
