"""Planar points and distance metrics.

The paper (assumptions A1-A3) works with layouts in the plane: cells occupy
unit area and wires have unit width, so every physical length in the model
is a planar distance.  Wire lengths in VLSI layouts are Manhattan (rectilinear
routing), which is the default metric throughout this package; Euclidean
distance is provided for the circle argument of the Section V-B lower bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """A point in the plane.

    Coordinates are floats; integer grid positions are the common case
    (unit-area cells on a grid) but H-tree internal nodes and folded/comb
    layouts use fractional coordinates.
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def scaled(self, factor: float) -> "Point":
        """Return this point scaled about the origin."""
        return Point(self.x * factor, self.y * factor)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return this point translated by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def manhattan(self, other: "Point") -> float:
        """Rectilinear (L1) distance — the length of a Manhattan route."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean(self, other: "Point") -> float:
        """Straight-line (L2) distance — used by the circle argument."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def chebyshev(self, other: "Point") -> float:
        """L-infinity distance; handy for hex-array adjacency checks."""
        return max(abs(self.x - other.x), abs(self.y - other.y))

    def midpoint(self, other: "Point") -> "Point":
        """The point halfway between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)


ORIGIN = Point(0.0, 0.0)


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle, used for layout area accounting (A2)."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise ValueError(
                f"degenerate bounding box: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    @property
    def aspect_ratio(self) -> float:
        """Long side over short side; >= 1, or inf for a degenerate strip.

        "Bounded aspect ratio" is the precondition of Lemma 1 (H-tree
        clocking), so layouts report this number.
        """
        short = min(self.width, self.height)
        long = max(self.width, self.height)
        if short == 0:
            return math.inf if long > 0 else 1.0
        return long / short

    @property
    def diameter(self) -> float:
        """Manhattan diameter of the box — lower-bounds any root-to-leaf
        clock path that must span the layout (A6)."""
        return self.width + self.height

    def contains(self, point: Point) -> bool:
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """Return a box grown by ``margin`` on every side."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    @staticmethod
    def around(points: Iterable[Point]) -> "BoundingBox":
        """The tightest box containing ``points`` (at least one required)."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot bound an empty set of points")
        return BoundingBox(
            min(p.x for p in pts),
            min(p.y for p in pts),
            max(p.x for p in pts),
            max(p.y for p in pts),
        )


def polyline_length(points: Sequence[Point]) -> float:
    """Total Manhattan length of a polyline given by its corner points.

    Wires in the model are rectilinear; a polyline with diagonal segments is
    measured by the Manhattan length of each segment, which equals the length
    of any staircase route realizing it.
    """
    if len(points) < 2:
        return 0.0
    return sum(a.manhattan(b) for a, b in zip(points, points[1:]))


def circle_area(radius: float) -> float:
    """Area of a circle; the counting step of the lower-bound proof compares
    this with the number of unit-area cells inside the circle (A2)."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return math.pi * radius * radius


def circle_circumference(radius: float) -> float:
    """Perimeter of a circle; bounds the number of unit-width wires that can
    cross it (A3) in the lower-bound proof."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return 2.0 * math.pi * radius


def points_within(
    points: Iterable[Tuple[object, Point]], center: Point, radius: float
) -> list:
    """Return the keys of labelled points whose Euclidean distance to
    ``center`` is at most ``radius``.

    This is the "cells inside the circle" predicate of the Section V-B proof.
    """
    return [key for key, p in points if p.euclidean(center) <= radius]
