"""Rectilinear routing helpers.

Clock trees and communication wires in the model are Manhattan-routed; these
helpers produce concrete polylines (for length/area accounting) and the
space-filling visit orders used by serpentine clock spines and comb layouts.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.geometry.point import Point


def is_rectilinear(path: Sequence[Point], tolerance: float = 1e-9) -> bool:
    """Whether every segment of a polyline is axis-aligned (A3 wire rule).

    A degenerate (zero-length) segment counts as rectilinear; a path with
    fewer than two points vacuously does too.
    """
    for a, b in zip(path, path[1:]):
        if abs(a.x - b.x) > tolerance and abs(a.y - b.y) > tolerance:
            return False
    return True


def l_route(a: Point, b: Point, horizontal_first: bool = True) -> Tuple[Point, ...]:
    """An L-shaped rectilinear route from ``a`` to ``b``.

    The length of the returned polyline equals the Manhattan distance between
    the endpoints, i.e. the route is shortest-possible.
    """
    if a == b:
        return (a, b)
    if a.x == b.x or a.y == b.y:
        return (a, b)
    corner = Point(b.x, a.y) if horizontal_first else Point(a.x, b.y)
    return (a, corner, b)


def manhattan_route_length(a: Point, b: Point) -> float:
    """Length of any shortest rectilinear route between two points."""
    return a.manhattan(b)


def snake_order(rows: int, cols: int) -> List[Tuple[int, int]]:
    """Boustrophedon (serpentine) visit order of an ``rows x cols`` grid.

    Consecutive grid cells in the returned order are always adjacent, which
    makes the order suitable for threading a single clock spine through a 2D
    mesh (the natural "one long wire" competitor scheme the Section V-B lower
    bound defeats).
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("grid dimensions must be positive")
    order: List[Tuple[int, int]] = []
    for r in range(rows):
        cs: Iterator[int] = range(cols) if r % 2 == 0 else range(cols - 1, -1, -1)
        for c in cs:
            order.append((r, c))
    return order


def spiral_order(rows: int, cols: int) -> List[Tuple[int, int]]:
    """Spiral visit order of a grid, outside-in.

    Another adjacency-preserving order; used as an alternative spine-threading
    strategy when comparing clocking schemes empirically.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("grid dimensions must be positive")
    top, bottom, left, right = 0, rows - 1, 0, cols - 1
    order: List[Tuple[int, int]] = []
    while top <= bottom and left <= right:
        for c in range(left, right + 1):
            order.append((top, c))
        for r in range(top + 1, bottom + 1):
            order.append((r, right))
        if top < bottom:
            for c in range(right - 1, left - 1, -1):
                order.append((bottom, c))
        if left < right:
            for r in range(bottom - 1, top, -1):
                order.append((r, left))
        top += 1
        bottom -= 1
        left += 1
        right -= 1
    return order
