"""Planar layouts of processor arrays (assumptions A1-A3).

A :class:`Layout` assigns each cell of a communication graph a position in
the plane.  Cells occupy unit area (A2), so a layout is *well-spaced* when no
two cells sit closer than one unit apart (in L-infinity, i.e. their unit
squares do not overlap).  Wires (A3) are rectilinear polylines of unit width;
the layout tracks them so that total area accounting (Lemma 1, Theorem 2,
Section VIII) can include wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.geometry.point import BoundingBox, Point, polyline_length

CellId = Hashable


@dataclass(frozen=True)
class Wire:
    """A rectilinear wire between two cells, given by its corner points.

    ``path`` runs from the source cell's position to the target cell's
    position.  The wire's physical length is the Manhattan length of the
    polyline; with unit wire width (A3) its area is numerically equal to its
    length.
    """

    source: CellId
    target: CellId
    path: Tuple[Point, ...]

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError("a wire needs at least two path points")

    @property
    def length(self) -> float:
        return polyline_length(self.path)

    @property
    def area(self) -> float:
        """Area occupied by the wire under unit width (A3)."""
        return self.length


class Layout:
    """Positions of cells in the plane, plus optional routed wires.

    The class is deliberately permissive at construction time — schemes build
    layouts incrementally — and offers validation predicates
    (:meth:`is_well_spaced`) rather than hard constraints.
    """

    def __init__(self, positions: Optional[Dict[CellId, Point]] = None) -> None:
        self._positions: Dict[CellId, Point] = dict(positions or {})
        self._wires: List[Wire] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def place(self, cell: CellId, position: Point) -> None:
        """Place (or move) ``cell`` at ``position``."""
        self._positions[cell] = position

    def place_all(self, positions: Dict[CellId, Point]) -> None:
        self._positions.update(positions)

    def add_wire(self, wire: Wire) -> None:
        for endpoint in (wire.source, wire.target):
            if endpoint not in self._positions:
                raise KeyError(f"wire endpoint {endpoint!r} is not placed")
        self._wires.append(wire)

    def route_straight(self, source: CellId, target: CellId) -> Wire:
        """Route a direct two-point wire between two placed cells and
        register it with the layout."""
        wire = Wire(source, target, (self[source], self[target]))
        self.add_wire(wire)
        return wire

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __getitem__(self, cell: CellId) -> Point:
        return self._positions[cell]

    def __contains__(self, cell: CellId) -> bool:
        return cell in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    def __iter__(self) -> Iterator[CellId]:
        return iter(self._positions)

    def cells(self) -> List[CellId]:
        return list(self._positions)

    def items(self) -> Iterable[Tuple[CellId, Point]]:
        return self._positions.items()

    def positions(self) -> Dict[CellId, Point]:
        """A copy of the cell -> position map."""
        return dict(self._positions)

    @property
    def wires(self) -> Sequence[Wire]:
        return tuple(self._wires)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def bounding_box(self, cell_margin: float = 0.5) -> BoundingBox:
        """Bounding box of the layout.

        ``cell_margin`` accounts for unit cell area (A2): positions are cell
        centers, so each cell extends half a unit beyond its center.
        """
        if not self._positions:
            raise ValueError("empty layout has no bounding box")
        box = BoundingBox.around(self._positions.values())
        return box.expanded(cell_margin)

    @property
    def area(self) -> float:
        """Area of the bounding box including unit-cell extent."""
        return self.bounding_box().area

    @property
    def cell_area(self) -> float:
        """Total area of cells alone: one unit per cell (A2)."""
        return float(len(self._positions))

    @property
    def wire_area(self) -> float:
        """Total area of registered wires under unit width (A3)."""
        return sum(w.area for w in self._wires)

    @property
    def aspect_ratio(self) -> float:
        return self.bounding_box().aspect_ratio

    @property
    def diameter(self) -> float:
        """Manhattan diameter of the bounding box; lower-bounds the longest
        root-to-leaf clock path of any tree spanning the layout (A6)."""
        return self.bounding_box().diameter

    def distance(self, a: CellId, b: CellId) -> float:
        """Manhattan distance between two placed cells' centers."""
        return self[a].manhattan(self[b])

    def euclidean_distance(self, a: CellId, b: CellId) -> float:
        return self[a].euclidean(self[b])

    def is_well_spaced(self, min_separation: float = 1.0) -> bool:
        """True when every pair of cells is at least ``min_separation`` apart
        in L-infinity, i.e. unit-area cells (A2) do not overlap.

        O(n log n) by sorting into grid buckets, so it stays usable on the
        thousands-of-cell layouts the benchmarks sweep over.
        """
        if min_separation <= 0:
            raise ValueError("min_separation must be positive")
        buckets: Dict[Tuple[int, int], List[Point]] = {}
        inv = 1.0 / min_separation
        for p in self._positions.values():
            key = (int(p.x * inv // 1), int(p.y * inv // 1))
            buckets.setdefault(key, []).append(p)
        for (bx, by), pts in buckets.items():
            neighborhood = list(pts)
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    if dx == 0 and dy == 0:
                        continue
                    neighborhood.extend(buckets.get((bx + dx, by + dy), []))
            for p in pts:
                for q in neighborhood:
                    if p is q:
                        continue
                    if p.chebyshev(q) < min_separation - 1e-9:
                        return False
        return True

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def translated(self, dx: float, dy: float) -> "Layout":
        """A copy of this layout shifted by ``(dx, dy)``; wires move too."""
        out = Layout({c: p.translated(dx, dy) for c, p in self._positions.items()})
        for w in self._wires:
            out._wires.append(
                Wire(w.source, w.target, tuple(p.translated(dx, dy) for p in w.path))
            )
        return out

    def scaled(self, factor: float) -> "Layout":
        """A copy of this layout scaled about the origin.

        Scaling by a constant factor models the constant-factor area
        increases tolerated by Lemma 1 and Theorem 2.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        out = Layout({c: p.scaled(factor) for c, p in self._positions.items()})
        for w in self._wires:
            out._wires.append(
                Wire(w.source, w.target, tuple(p.scaled(factor) for p in w.path))
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Layout({len(self._positions)} cells, {len(self._wires)} wires)"
