"""Geometric substrate: points, layouts, routing, and grid embeddings.

Implements the physical side of the paper's model: planar layouts with
unit-area cells (A2) and unit-width wires (A3), Manhattan wire routing, and
the rectangular-to-square grid embedding used by Theorem 2.
"""

from repro.geometry.point import (
    ORIGIN,
    BoundingBox,
    Point,
    circle_area,
    circle_circumference,
    points_within,
    polyline_length,
)
from repro.geometry.layout import Layout, Wire
from repro.geometry.routing import (
    l_route,
    manhattan_route_length,
    snake_order,
    spiral_order,
)
from repro.geometry.embedding import embed_rectangle_in_square

__all__ = [
    "ORIGIN",
    "BoundingBox",
    "Point",
    "Layout",
    "Wire",
    "circle_area",
    "circle_circumference",
    "points_within",
    "polyline_length",
    "l_route",
    "manhattan_route_length",
    "snake_order",
    "spiral_order",
    "embed_rectangle_in_square",
]
