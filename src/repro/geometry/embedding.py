"""Grid embeddings for aspect-ratio normalization.

Theorem 2 rests on a result of Aleliunas and Rosenberg [1] that any
rectangular grid embeds in a square grid with constant edge stretch and
constant area blow-up, so that H-tree clocking (which needs bounded aspect
ratio, Lemma 1) applies to arrays of any shape.

We implement the classical *boustrophedon folding* embedding: the long
dimension of an ``rows x cols`` grid is cut into vertical strips which are
stacked to form a near-square.  Folding gives

* area within a constant factor of ``rows * cols`` (tested),
* aspect ratio bounded by a constant (tested), and
* edge stretch at most ``rows + 1`` (exact Aleliunas-Rosenberg achieves a
  universal constant; folding's stretch is constant for the common case of
  one-dimensional and bounded-height arrays, and the achieved value is
  reported so callers can account for it in the communication delay bound).
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.geometry.layout import Layout
from repro.geometry.point import Point


def embed_rectangle_in_square(
    rows: int, cols: int
) -> Tuple[Layout, Dict[str, float]]:
    """Embed an ``rows x cols`` grid into a near-square layout by folding.

    Returns the folded :class:`Layout` (cells keyed ``(r, c)`` by their
    coordinates in the *original* grid) and a stats dict with keys
    ``aspect_ratio``, ``area_factor`` (folded bounding-box area over the
    original cell count) and ``max_edge_stretch`` (largest Manhattan distance
    between cells adjacent in the original grid).
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("grid dimensions must be positive")

    transposed = rows > cols
    if transposed:
        rows, cols = cols, rows

    # Cut the column range into k strips of width w, stacked k*rows tall.
    # Balance k*rows against w = ceil(cols / k): k ~ sqrt(cols / rows).
    k = max(1, round(math.sqrt(cols / rows)))
    width = math.ceil(cols / k)
    k = math.ceil(cols / width)  # drop empty trailing strips

    layout = Layout()
    for r in range(rows):
        for c in range(cols):
            strip, offset = divmod(c, width)
            x = offset if strip % 2 == 0 else width - 1 - offset
            y = strip * rows + r
            key = (c, r) if transposed else (r, c)
            layout.place(key, Point(float(x), float(y)))

    max_stretch = 0.0
    for r in range(rows):
        for c in range(cols):
            here = (c, r) if transposed else (r, c)
            if c + 1 < cols:
                right = (c + 1, r) if transposed else (r, c + 1)
                max_stretch = max(max_stretch, layout.distance(here, right))
            if r + 1 < rows:
                down = (c, r + 1) if transposed else (r + 1, c)
                max_stretch = max(max_stretch, layout.distance(here, down))

    stats = {
        "aspect_ratio": layout.aspect_ratio,
        "area_factor": layout.area / (rows * cols),
        "max_edge_stretch": max_stretch,
        "strips": float(k),
        "strip_width": float(width),
    }
    return layout, stats
