"""Command-line interface: explore the paper's results from a shell.

Run ``python -m repro <command> --help``.  Commands:

* ``report``       — evaluate one clocking scheme on one array;
* ``compare``      — rank all applicable schemes on one array;
* ``sweep``        — sigma/period across sizes, with a growth-law verdict;
* ``lower-bound``  — execute the Section V-B proof on a mesh;
* ``inverter``     — the Section VII inverter-string experiment;
* ``hybrid``       — hybrid cycle time vs the global equipotential clock;
* ``bench``        — microbenchmark the hot kernels, write BENCH_perf.json;
* ``check``        — run the invariant/differential/metamorphic check suite;
* ``trace``        — replay and summarise a recorded JSONL trace;
* ``dashboard``    — render a trace as a terminal or HTML report.

Every command prints a small table; nothing is written to disk unless
observability is asked for: ``--trace FILE`` streams structured events to
a JSONL file (replay with ``repro trace FILE``) and ``--metrics`` prints
collected counters/gauges/histograms plus wall-clock phase timings after
the command (``--metrics-json`` / ``--metrics-prom`` export the registry
as a schema-valid snapshot or Prometheus text).  Without those flags,
output is byte-identical to the uninstrumented CLI.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.scaling import classify_growth
from repro.analysis.skew import compare_schemes, evaluate_scheme
from repro.arrays.model import ProcessorArray
from repro.arrays.topologies import hex_array, linear_array, mesh, ring, torus
from repro.clocktree.builders import kdtree_clock, serpentine_clock
from repro.clocktree.htree import htree_for_array
from repro.core.hybrid import build_hybrid
from repro.core.lower_bound import lower_bound_value, prove_skew_lower_bound
from repro.core.models import DifferenceModel, PhysicalModel, SkewModel, SummationModel
from repro.core.parameters import equipotential_tau
from repro.core.schemes import available_schemes
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.replay import summarize_trace
from repro.obs.trace import NULL_TRACER, JsonlTracer, load_trace
from repro.sim.hybrid_sim import simulate_hybrid
from repro.sim.inverter import InverterString, paper_calibrated_model
from repro.tables import render_table

TOPOLOGIES: Dict[str, Callable[[int], ProcessorArray]] = {
    "linear": linear_array,
    "ring": ring,
    "mesh": lambda n: mesh(n, n),
    "torus": lambda n: torus(n, n),
    "hex": lambda n: hex_array(n, n),
}

SCHEMES_BY_TOPOLOGY: Dict[str, List[str]] = {
    "linear": ["spine", "dissection-1d", "kdtree", "star"],
    "ring": ["serpentine", "kdtree", "star"],
    "mesh": ["htree", "serpentine", "kdtree", "star"],
    "torus": ["htree", "serpentine", "kdtree", "star"],
    "hex": ["htree", "serpentine", "kdtree", "star"],
}


def _model(name: str, m: float, eps: float) -> SkewModel:
    if name == "difference":
        return DifferenceModel(m=m)
    if name == "summation":
        return SummationModel(m=m, eps=eps)
    if name == "physical":
        return PhysicalModel(m=m, eps=eps)
    raise ValueError(f"unknown model {name!r}")


def _render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    return render_table(headers, rows)


def _print_table(headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    print(_render_table(headers, rows))


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_report(args: argparse.Namespace) -> int:
    array = TOPOLOGIES[args.topology](args.size)
    model = _model(args.model, args.m, args.eps)
    ev = evaluate_scheme(array, args.scheme, model, m=args.m, eps=args.eps)
    print(f"{args.scheme} on {array.name} under the {args.model} model:")
    _print_table(
        ["metric", "value"],
        [
            ("cells", ev.n_cells),
            ("sigma (model bound)", ev.sigma_bound),
            ("sigma (A11 floor)", ev.sigma_floor),
            ("sigma (buffered, empirical)", ev.sigma_empirical),
            ("tau pipelined", ev.tau_pipelined),
            ("tau equipotential (RC)", ev.tau_equipotential),
            ("period (pipelined, delta=%g)" % args.delta, ev.period(args.delta)),
            ("period (equipotential)", ev.period(args.delta, pipelined=False)),
            ("clock wire length", ev.clock_wire_length),
            ("longest root-to-leaf", ev.longest_root_to_leaf),
        ],
    )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    array = TOPOLOGIES[args.topology](args.size)
    model = _model(args.model, args.m, args.eps)
    schemes = SCHEMES_BY_TOPOLOGY[args.topology]
    evs = compare_schemes(array, schemes, model, m=args.m, eps=args.eps)
    print(f"schemes on {array.name} under the {args.model} model (best first):")
    _print_table(
        ["scheme", "sigma", "period (delta=%g)" % args.delta, "wire length"],
        [(e.scheme, e.sigma_bound, e.period(args.delta), e.clock_wire_length) for e in evs],
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    sizes = [int(s) for s in args.sizes.split(",")]
    model = _model(args.model, args.m, args.eps)
    tracer = args.tracer
    rows = []
    sigmas = []
    for i, n in enumerate(sizes):
        with _maybe_profiled(args, f"n={n}"):
            array = TOPOLOGIES[args.topology](n)
            ev = evaluate_scheme(array, args.scheme, model, m=args.m, eps=args.eps)
        if tracer.enabled:
            tracer.event(
                float(i), "sweep", "size",
                n=n, sigma=ev.sigma_bound, period=ev.period(args.delta),
            )
        rows.append((n, ev.sigma_bound, ev.period(args.delta)))
        sigmas.append(ev.sigma_bound)
    print(f"{args.scheme} on {args.topology} arrays, {args.model} model:")
    _print_table(["n", "sigma", "period"], rows)
    if len(sizes) >= 3:
        fit = classify_growth(sizes, sigmas)
        print(f"sigma growth law: {fit.law} (rmse {fit.rmse:.3g})")
    return 0


def cmd_lower_bound(args: argparse.Namespace) -> int:
    array = mesh(args.size, args.size)
    builders = [
        ("htree", htree_for_array),
        ("serpentine", serpentine_clock),
        ("kdtree", kdtree_clock),
    ]
    print(
        f"Section V-B proof on a {args.size}x{args.size} mesh "
        f"(beta={args.beta}); tree-independent floor: "
        f"{lower_bound_value(args.size, args.beta):.4g}"
    )
    rows = []
    for name, builder in builders:
        cert = prove_skew_lower_bound(builder(array), array, beta=args.beta)
        cert.check()
        rows.append((name, cert.sigma, cert.branch, cert.bound, cert.separator_fraction))
    _print_table(["scheme", "sigma", "branch", "cert bound", "sep frac"], rows)
    return 0


def cmd_inverter(args: argparse.Namespace) -> int:
    print(f"inverter string, n={args.stages}, {args.chips} chips:")
    tracer = args.tracer
    metrics = args.metrics_registry
    rows = []
    for seed in range(args.chips):
        with _maybe_profiled(args, f"chip={seed}"):
            r = InverterString(args.stages, paper_calibrated_model(seed)).result()
        if tracer.enabled:
            tracer.event(
                float(seed), "inverter", "chip",
                seed=seed,
                equipotential_cycle=r.equipotential_cycle,
                pipelined_cycle=r.pipelined_cycle,
                speedup=r.speedup,
            )
        if metrics is not None:
            metrics.gauge("inverter.speedup").set(r.speedup)
        rows.append(
            (seed, r.equipotential_cycle * 1e6, r.pipelined_cycle * 1e9, r.speedup)
        )
    _print_table(["chip", "equipotential (us)", "pipelined (ns)", "speedup"], rows)
    return 0


def cmd_hybrid(args: argparse.Namespace) -> int:
    array = mesh(args.size, args.size)
    scheme = build_hybrid(array, element_size=args.element)
    result = simulate_hybrid(
        scheme,
        steps=args.steps,
        delta=args.delta,
        tracer=args.tracer,
        metrics=args.metrics_registry,
    )
    tau = equipotential_tau(serpentine_clock(array))
    print(f"hybrid scheme on {array.name} (element size {args.element}):")
    _print_table(
        ["metric", "value"],
        [
            ("elements", result.elements),
            ("hybrid cycle time", result.cycle_time),
            ("analytic bound", result.analytic_cycle_time),
            ("global equipotential tau", tau),
            ("hybrid wins", result.cycle_time < tau),
        ],
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Time the hot kernels (scalar vs batched, serial vs parallel) and
    write the schema-valid perf-trajectory artifact."""
    from repro.analysis.perf import run_perf_suite, write_bench_results

    sides = [int(s) for s in args.sides.split(",")]
    scale_sides = (
        [int(s) for s in args.scale_sides.split(",")] if args.scale_sides else []
    )
    t0 = time.perf_counter()
    results = run_perf_suite(
        sides=sides,
        trials=args.trials,
        workers=args.workers,
        repeats=args.repeats,
        tracer=args.tracer,
        include_montecarlo=not args.no_montecarlo,
        scale_sides=scale_sides,
        edge_block=args.edge_block,
        measure_mem=args.mem,
    )
    wall_s = time.perf_counter() - t0
    print(f"hot-kernel microbenchmarks (mesh sides {sides}):")
    headers = ["kernel", "size", "items", "baseline s", "optimized s", "speedup", "max |diff|"]
    rows = [
        [r.kernel, r.size, r.items,
         f"{r.baseline_s:.3e}", f"{r.optimized_s:.3e}",
         f"{r.speedup:.1f}x", f"{r.max_abs_diff:.1e}"]
        for r in results
    ]
    if args.mem:
        headers.append("peak mem")
        for row, r in zip(rows, results):
            row.append(
                "-" if r.peak_mem_bytes is None
                else f"{r.peak_mem_bytes / 1e6:.1f}MB"
            )
    _print_table(headers, rows)
    if args.metrics_registry is not None:
        for r in results:
            args.metrics_registry.gauge(
                "bench.speedup", labels={"kernel": r.kernel}
            ).set(r.speedup)
            if r.peak_mem_bytes is not None:
                args.metrics_registry.gauge(
                    "bench.peak_mem_bytes", labels={"kernel": r.kernel}
                ).set(float(r.peak_mem_bytes))
    write_bench_results(results, args.out, wall_s=wall_s)
    print(f"\nwrote {args.out} ({len(results)} rows, schema-validated)")
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    from repro.core.advisor import recommend

    array = TOPOLOGIES[args.topology](args.size)
    model = _model(args.model, args.m, args.eps)
    rec = recommend(array, model, delta=args.delta)
    print(f"recommendation for {array.name} under the {args.model} model:")
    _print_table(
        ["field", "value"],
        [
            ("structure", rec.structure),
            ("scheme", rec.scheme),
            ("sigma", rec.sigma),
            ("period", rec.period),
            ("scales with size", rec.scales_with_size),
        ],
    )
    print("rationale:")
    for line in rec.rationale:
        print(f"  - {line}")
    return 0


def cmd_schemes(args: argparse.Namespace) -> int:
    _print_table(
        ["scheme", "description"],
        [(s.name, s.description) for s in available_schemes()],
    )
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Run the invariant/differential/metamorphic check suite; exit 0 only
    if every oracle passes."""
    import json

    from repro.check import run_suite
    from repro.obs.schema import validate_check_report

    results, report = run_suite(
        suite=args.suite,
        seed=args.seed,
        tracer=args.tracer,
        metrics=args.metrics_registry,
        names=args.only,
    )
    print(f"check suite '{args.suite}' (seed {args.seed}):")
    _print_table(
        ["check", "kind", "status", "time (s)", "note"],
        [
            (
                r.name,
                r.kind,
                "pass" if r.passed else "FAIL",
                f"{r.duration_s:.3f}",
                "" if r.passed else (r.error or "?"),
            )
            for r in results
        ],
    )
    schema_errors = validate_check_report(report)
    if schema_errors:  # a checker that emits broken reports is itself broken
        for err in schema_errors:
            print(f"report schema error: {err}", file=sys.stderr)
        return 2
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json} (schema-validated)")
    counts = report["counts"]
    print(
        f"\n{counts['passed']}/{counts['total']} checks passed"
        + ("" if report["passed"] else f" — {counts['failed']} FAILED")
    )
    return 0 if report["passed"] else 1


def _eco_reports(design, script_path: str, args: argparse.Namespace):
    """Replay an ECO edit script: the initial full report, then one
    incrementally re-analyzed report per edit.

    Script format: a JSON array of steps.  Cells and tree nodes are
    addressed by their ``str()`` form (exactly as reports print them)::

        [{"op": "repad_edge", "edge": ["(0, 0)", "(0, 1)"], "pad": 0.2},
         {"op": "retarget_wire", "edge": ["(0, 1)", "(0, 0)"], "length": 3.0},
         {"op": "resize_buffer", "node": "(1, 1)", "length": 1.5},
         {"op": "graft_subtree", "nodes": [
             {"parent": "clk:7", "node": "spare:0", "x": 1.5, "y": 2.0,
              "length": 0.8}]},
         {"op": "set_period", "period": 14.0}]
    """
    import json

    from repro.geometry.point import Point
    from repro.sta.eco import ECOSession
    from repro.sta.report import render_report

    with open(script_path, encoding="utf-8") as fh:
        script = json.load(fh)
    if not isinstance(script, list):
        raise ValueError("ECO script must be a JSON array of edit steps")

    cells = {str(c): c for c in design.array.comm.nodes()}
    nodes = {str(n): n for n in design.tree.nodes()}

    def cell(label):
        if label not in cells:
            raise ValueError(f"unknown cell {label!r} in ECO script")
        return cells[label]

    def node(label):
        if label not in nodes:
            raise ValueError(f"unknown clock-tree node {label!r} in ECO script")
        return nodes[label]

    session = ECOSession(
        design, tracer=args.tracer, metrics=args.metrics_registry
    )
    reports = [session.report()]
    print(render_report(reports[0], verbose=args.verbose))
    for step_no, step in enumerate(script):
        op = step.get("op")
        if op == "repad_edge":
            u, v = step["edge"]
            session.repad_edge((cell(u), cell(v)), float(step["pad"]))
        elif op == "retarget_wire":
            u, v = step["edge"]
            session.retarget_wire((cell(u), cell(v)), float(step["length"]))
        elif op == "resize_buffer":
            session.resize_buffer(node(step["node"]), float(step["length"]))
        elif op == "graft_subtree":
            additions = []
            for g in step["nodes"]:
                parent = nodes.get(str(g["parent"]), g["parent"])
                additions.append(
                    (parent, g["node"],
                     Point(float(g["x"]), float(g["y"])), float(g["length"]))
                )
                nodes[str(g["node"])] = g["node"]
            session.graft_subtree(additions)
        elif op == "set_period":
            session.set_period(float(step["period"]))
        else:
            raise ValueError(f"unknown ECO op {op!r} (step {step_no})")
        report = session.report()
        edit = session.edits[-1]
        print()
        print(
            f"-- step {step_no}: {edit.op} {edit.target} "
            f"({edit.dirty_rows} dirty rows, "
            f"reuse {edit.reuse_fraction:.3f}) --"
        )
        print(render_report(report, verbose=args.verbose))
        reports.append(report)
    return reports


def cmd_sta(args: argparse.Namespace) -> int:
    """Static timing analysis + design rules; exit 0 only if every analyzed
    design is clean (no stale/race edge, no DRC failure)."""
    import json

    from repro.obs.schema import validate_sta_report
    from repro.sta import STAAnalyzer, design_for_workload
    from repro.sta.design import WORKLOADS
    from repro.sta.report import render_report

    if args.eco is not None and args.workload == "all":
        print(
            "error: --eco replays one edit script against one design; "
            "pick a single --workload",
            file=sys.stderr,
        )
        return 2
    workloads = list(WORKLOADS) if args.workload == "all" else [args.workload]
    reports = []
    for i, workload in enumerate(workloads):
        design = design_for_workload(
            workload,
            size=args.size,
            scheme=args.scheme,
            m=args.m,
            eps=args.eps,
            delta=args.delta,
            seed=args.seed,
            period=args.period,
            pad_races=not args.no_pad,
        )
        if args.eco is not None:
            try:
                reports.extend(_eco_reports(design, args.eco, args))
            except (ValueError, KeyError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            continue
        report = STAAnalyzer(
            design, tracer=args.tracer, metrics=args.metrics_registry
        ).report()
        if i:
            print()
        print(render_report(report, verbose=args.verbose))
        reports.append(report)
    payload = [r.to_dict() for r in reports]
    schema_errors = [e for d in payload for e in validate_sta_report(d)]
    if schema_errors:  # an analyzer that emits broken reports is itself broken
        for err in schema_errors:
            print(f"report schema error: {err}", file=sys.stderr)
        return 2
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json} (schema-validated, {len(payload)} reports)")
    if args.flow:
        flow_payload = []
        for workload in workloads:
            design = design_for_workload(
                workload, size=args.size, scheme=args.scheme, m=args.m,
                eps=args.eps, delta=args.delta, seed=args.seed,
            )
            report = _flow_report_for(design.array.comm, workload, args)
            flow_payload.append(report)
            mcm = report["mcm"]
            summary = (
                "DEADLOCK" if report["deadlock"]["dead"]
                else f"cycle time {mcm['cycle_time']:g}"
            )
            print(f"flow[{workload}]: {summary}")
        with open(args.flow, "w", encoding="utf-8") as fh:
            json.dump(flow_payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(
            f"wrote {args.flow} (schema-validated, "
            f"{len(flow_payload)} flow reports)"
        )
    dirty = [r for r in reports if not r.passed]
    print(
        f"\n{len(reports) - len(dirty)}/{len(reports)} designs clean"
        + ("" if not dirty else f" — {len(dirty)} with violations")
    )
    return 0 if not dirty else 1


def _flow_report_for(comm, workload: str, args: argparse.Namespace):
    """Build one flow report over a design's COMM graph with the CLI's
    deterministic self-timed timing model: dyadic per-cell services from
    the run seed (eighth-steps in [1, 2)), so every static answer is a
    correctly-rounded exact rational and the simulator cross-check lands
    bit-equal."""
    import random

    from repro.sta.flowreport import build_flow_report

    rng = random.Random(f"{args.seed}|flow|{workload}")
    service = {c: 1.0 + rng.randrange(8) / 8 for c in comm.nodes()}
    wire = getattr(args, "wire", 0.5)
    depth = getattr(args, "capacity", 2)
    capacity = None if depth == 0 else depth
    return build_flow_report(
        comm,
        service,
        wire,
        capacity,
        design_name=f"{workload}-{args.size}",
        simulate=not getattr(args, "static_only", False),
        sizing_target=getattr(args, "target", None),
    )


def cmd_flow(args: argparse.Namespace) -> int:
    """Simulation-free self-timed flow analysis: MCM + critical cycle,
    deadlock verdict, simulator agreement, and optional buffer sizing.
    Exit 0 only if every design is live and every agreement is exact."""
    import json

    from repro.sta import design_for_workload
    from repro.sta.design import WORKLOADS
    from repro.sta.flowreport import render_flow_report

    workloads = list(WORKLOADS) if args.workload == "all" else [args.workload]
    payload = []
    for i, workload in enumerate(workloads):
        design = design_for_workload(
            workload, size=args.size, scheme=args.scheme, m=args.m,
            eps=args.eps, delta=args.delta, seed=args.seed,
        )
        report = _flow_report_for(design.array.comm, workload, args)
        if i:
            print()
        print(render_flow_report(report))
        payload.append(report)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(
            f"\nwrote {args.json} (schema-validated, "
            f"{len(payload)} flow reports)"
        )
    bad = [
        r for r in payload
        if r["deadlock"]["dead"]
        or (r["agreement"] is not None and not r["agreement"]["exact"])
    ]
    print(
        f"\n{len(payload) - len(bad)}/{len(payload)} designs live and exact"
        + ("" if not bad else f" — {len(bad)} flagged")
    )
    return 0 if not bad else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Replay a JSONL trace: counts, skew histogram, violation timeline."""
    events = load_trace(args.file)
    if getattr(args, "critical_path", False):
        return _print_critical_path(args.file, events)
    summary = summarize_trace(events, skew_buckets=args.buckets)
    print(
        f"trace {args.file}: {summary.events} events, "
        f"t in [{summary.t_min:.4g}, {summary.t_max:.4g}]"
    )
    print()
    print("events by category:")
    _print_table(
        ["category", "kind", "count", "first t", "last t"],
        summary.category_rows,
    )
    print()
    print(
        f"skew histogram ({summary.skew_samples} tick groups, "
        f"max skew {summary.max_skew:.4g}):"
    )
    if summary.skew_histogram:
        _print_table(["skew", "count"], summary.skew_histogram)
    else:
        print("  (no firing events — nothing to measure skew over)")
    print()
    print(f"violation timeline ({summary.total_violations} violations):")
    if summary.violation_timeline:
        _print_table(["tick", "stale", "race"], summary.violation_timeline)
    else:
        print("  (no violation events — the run was clean)")
    return 0


def _print_critical_path(path: str, events) -> int:
    """The ``trace --critical-path`` view: reconstruct the dependency chain
    behind the recorded run's makespan and blame it per cell."""
    from repro.obs.critpath import critical_path_from_trace

    try:
        cp = critical_path_from_trace(events)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    exactness = (
        "exact" if cp.exact
        else f"reported {cp.reported!r}" if cp.reported is not None
        else "unverified (no run summary in trace)"
    )
    print(
        f"critical path of {path} ({cp.engine} engine): "
        f"makespan {cp.makespan:.6g}, {len(cp.steps)} steps, {exactness}"
    )
    print()
    print("chain (cause before effect):")
    _print_table(
        ["#", "step", "kind", "start", "end", "duration"],
        [
            (i, step.label(), step.kind,
             f"{step.t_start:.6g}", f"{step.t_end:.6g}",
             f"{step.duration:.6g}")
            for i, step in enumerate(cp.steps)
        ],
    )
    print()
    print("blame (time on the critical path, by cell):")
    _print_table(
        ["where", "kind", "seconds", "share"],
        [
            (label, kind, f"{seconds:.6g}", f"{share:6.1%}")
            for label, kind, seconds, share in cp.blame()
        ],
    )
    return 0


def cmd_dashboard(args: argparse.Namespace) -> int:
    """Render a recorded trace as a dashboard: span waterfall, phase
    totals, worker utilization, skew histogram, violation timeline."""
    from repro.obs.dashboard import (
        build_dashboard,
        render_dashboard_text,
        write_dashboard_html,
    )

    events = load_trace(args.file)
    dash = build_dashboard(events)
    if args.html:
        write_dashboard_html(dash, args.html, title=f"repro trace — {args.file}")
        print(f"wrote {args.html}")
        return 0
    print(render_dashboard_text(dash))
    return 0


# ----------------------------------------------------------------------
# observability plumbing
# ----------------------------------------------------------------------
def _attach_observability(args: argparse.Namespace) -> None:
    """Resolve the ``--trace`` / ``--metrics`` flags into live objects on
    the namespace.  Defaults are the no-op instruments, so commands can
    use ``args.tracer`` unconditionally."""
    trace_path = getattr(args, "trace", None)
    args.tracer = JsonlTracer(trace_path) if trace_path else NULL_TRACER
    want_metrics = bool(
        getattr(args, "metrics", False)
        or getattr(args, "metrics_json", None)
        or getattr(args, "metrics_prom", None)
    )
    args.metrics_registry = MetricsRegistry() if want_metrics else None
    args.profiler = Profiler() if want_metrics else None


def _maybe_profiled(args: argparse.Namespace, name: str):
    profiler = getattr(args, "profiler", None)
    if profiler is None:
        return contextlib.nullcontext()
    return profiler.profiled(name)


def _print_observability(args: argparse.Namespace) -> None:
    """After a ``--metrics`` run: the collected registry and phase table,
    plus any requested exports (JSON snapshot / Prometheus text)."""
    metrics = args.metrics_registry
    if metrics is None:
        return
    if getattr(args, "metrics", False):
        rows = metrics.render_rows()
        print()
        print("metrics:")
        if rows:
            _print_table(["name", "type", "summary"], rows)
        else:
            print("  (no instruments touched by this command)")
        prof_rows = args.profiler.render_rows()
        if prof_rows:
            print()
            print("phases:")
            _print_table(["phase", "calls", "total s", "mean s"], prof_rows)
    json_path = getattr(args, "metrics_json", None)
    prom_path = getattr(args, "metrics_prom", None)
    if json_path or prom_path:
        from repro.obs.export import write_metrics_json, write_metrics_prometheus

        if json_path:
            write_metrics_json(metrics, json_path)
            print(f"wrote {json_path} (schema-validated metrics snapshot)")
        if prom_path:
            write_metrics_prometheus(metrics, prom_path)
            print(f"wrote {prom_path} (Prometheus exposition text)")


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fisher & Kung (1983) 'Synchronizing Large VLSI Processor Arrays' — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Observability flags shared by every command.
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="stream structured events to a JSONL file (replay with 'repro trace FILE')",
    )
    obs_flags.add_argument(
        "--metrics",
        action="store_true",
        help="collect counters/gauges/histograms and print them after the command",
    )
    obs_flags.add_argument(
        "--metrics-json",
        metavar="FILE",
        default=None,
        help="write a schema-valid JSON metrics snapshot (implies collection)",
    )
    obs_flags.add_argument(
        "--metrics-prom",
        metavar="FILE",
        default=None,
        help="write the metrics as Prometheus exposition text (implies collection)",
    )

    def add_command(name, **kwargs):
        return sub.add_parser(name, parents=[obs_flags], **kwargs)

    def common(p, scheme_default=None):
        p.add_argument("--topology", choices=sorted(TOPOLOGIES), default="linear")
        p.add_argument("--size", type=int, default=16)
        p.add_argument("--model", choices=["difference", "summation", "physical"], default="summation")
        p.add_argument("--m", type=float, default=1.0, help="nominal per-unit delay")
        p.add_argument("--eps", type=float, default=0.1, help="per-unit delay variation")
        p.add_argument("--delta", type=float, default=1.0, help="cell compute+propagate time")
        if scheme_default is not None:
            p.add_argument("--scheme", default=scheme_default)

    p = add_command("report", help="evaluate one scheme on one array")
    common(p, scheme_default="spine")
    p.set_defaults(func=cmd_report)

    p = add_command("compare", help="rank schemes on one array")
    common(p)
    p.set_defaults(func=cmd_compare)

    p = add_command("sweep", help="sigma/period across sizes + growth law")
    common(p, scheme_default="spine")
    p.add_argument("--sizes", default="8,16,32,64,128")
    p.set_defaults(func=cmd_sweep)

    p = add_command("lower-bound", help="run the Section V-B proof on a mesh")
    p.add_argument("--size", type=int, default=16)
    p.add_argument("--beta", type=float, default=0.1)
    p.set_defaults(func=cmd_lower_bound)

    p = add_command("inverter", help="Section VII inverter-string experiment")
    p.add_argument("--stages", type=int, default=2048)
    p.add_argument("--chips", type=int, default=5)
    p.set_defaults(func=cmd_inverter)

    p = add_command("hybrid", help="hybrid scheme vs global clock on a mesh")
    p.add_argument("--size", type=int, default=16)
    p.add_argument("--element", type=float, default=4.0)
    p.add_argument("--steps", type=int, default=25)
    p.add_argument("--delta", type=float, default=1.0)
    p.set_defaults(func=cmd_hybrid)

    p = add_command("bench", help="microbenchmark hot kernels, write BENCH_perf.json")
    p.add_argument("--sides", default="16,32,64", help="comma-separated mesh side lengths")
    p.add_argument("--trials", type=int, default=32, help="Monte-Carlo trials to time")
    p.add_argument("--workers", type=int, default=4, help="Monte-Carlo pool size")
    p.add_argument("--repeats", type=int, default=3, help="best-of-N timing repeats")
    p.add_argument("--no-montecarlo", action="store_true", help="skip the Monte-Carlo row")
    p.add_argument(
        "--scale-sides", default="", metavar="SIDES",
        help="comma-separated grid sides for the large-scale timing rows "
        "(e.g. 256,1024 for 65,536- and 1,048,576-cell grids)",
    )
    p.add_argument(
        "--edge-block", type=int, default=65_536,
        help="edges per block for the chunked tick-matrix evaluation",
    )
    p.add_argument(
        "--mem", action="store_true",
        help="measure peak traced allocation per row (fills peak_mem_bytes)",
    )
    p.add_argument("--out", default="BENCH_perf.json", help="output artifact path")
    p.set_defaults(func=cmd_bench)

    p = add_command("advise", help="recommend a synchronization design")
    common(p)
    p.set_defaults(func=cmd_advise)

    p = add_command("schemes", help="list registered clocking schemes")
    p.set_defaults(func=cmd_schemes)

    p = add_command("check", help="run the invariant/differential/metamorphic check suite")
    p.add_argument(
        "--suite", choices=["quick", "full"], default="quick",
        help="quick: CI-sized configurations; full: larger arrays + extra cases",
    )
    p.add_argument("--seed", type=int, default=0, help="seed for generated workloads")
    p.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the schema-validated check report to FILE",
    )
    p.add_argument(
        "--only", metavar="NAME", action="append", default=None,
        help="run only the named check (repeatable); names as listed "
             "in the suite table",
    )
    p.set_defaults(func=cmd_check)

    p = add_command("sta", help="static timing analysis, race detection, and design rules")
    p.add_argument(
        "--workload", choices=["fir", "matvec", "sorter", "matmul", "all"],
        default="all", help="which bundled design(s) to analyze",
    )
    p.add_argument("--size", type=int, default=6, help="array size parameter")
    p.add_argument("--scheme", default="serpentine", help="clock tree scheme")
    p.add_argument("--m", type=float, default=1.0, help="nominal per-unit delay")
    p.add_argument("--eps", type=float, default=0.1, help="per-unit delay variation")
    p.add_argument("--delta", type=float, default=1.0, help="cell compute+propagate time")
    p.add_argument("--seed", type=int, default=0, help="seed for generated workloads")
    p.add_argument(
        "--period", type=float, default=None,
        help="clock period override (default: derived minimum feasible period with margin)",
    )
    p.add_argument(
        "--no-pad", action="store_true",
        help="skip hold-fix padding (probe race-prone operating points)",
    )
    p.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the schema-validated report array to FILE",
    )
    p.add_argument(
        "--verbose", action="store_true",
        help="list flagged edges even when the design is clean",
    )
    p.add_argument(
        "--eco", metavar="SCRIPT.json", default=None,
        help="replay an ECO edit script through an incremental what-if "
        "session (one schema-valid report per step; requires a single "
        "--workload, not 'all')",
    )
    p.add_argument(
        "--flow", metavar="FILE", default=None,
        help="also run the self-timed flow analysis (MCM, deadlock, "
        "simulator agreement) per design and write the schema-validated "
        "flow report array to FILE",
    )
    p.set_defaults(func=cmd_sta)

    p = add_command(
        "flow",
        help="simulation-free self-timed analysis: max-plus cycle time, "
        "deadlock, and minimal buffer sizing",
    )
    p.add_argument(
        "--workload", choices=["fir", "matvec", "sorter", "matmul", "all"],
        default="all", help="which bundled design(s) to analyze",
    )
    p.add_argument("--size", type=int, default=6, help="array size parameter")
    p.add_argument("--scheme", default="serpentine", help="clock tree scheme")
    p.add_argument("--m", type=float, default=1.0, help="nominal per-unit delay")
    p.add_argument("--eps", type=float, default=0.1, help="per-unit delay variation")
    p.add_argument("--delta", type=float, default=1.0, help="cell compute+propagate time")
    p.add_argument("--seed", type=int, default=0, help="seed for the dyadic per-cell service times")
    p.add_argument("--wire", type=float, default=0.5, help="uniform wire propagation delay")
    p.add_argument(
        "--capacity", type=int, default=2,
        help="uniform channel depth (0 = unbounded FIFOs)",
    )
    p.add_argument(
        "--target", type=float, default=None,
        help="also size minimal per-edge buffers for this target cycle time",
    )
    p.add_argument(
        "--static-only", action="store_true",
        help="skip the event-driven simulator cross-check",
    )
    p.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the schema-validated flow report array to FILE",
    )
    p.set_defaults(func=cmd_flow)

    p = sub.add_parser("trace", help="replay and summarise a JSONL trace file")
    p.add_argument("file", help="trace file written by a --trace run")
    p.add_argument(
        "--buckets", type=int, default=8, help="skew histogram bucket count"
    )
    p.add_argument(
        "--critical-path", action="store_true",
        help="reconstruct the dependency chain behind the run's makespan "
        "with per-cell blame (needs a causal trace: tick/fire, "
        "dataflow/fire, or engine events)",
    )
    p.set_defaults(func=cmd_trace, trace=None, metrics=False)

    p = sub.add_parser(
        "dashboard", help="render a recorded trace as a terminal or HTML report"
    )
    p.add_argument("file", help="trace file written by a --trace run")
    p.add_argument(
        "--html", metavar="FILE", default=None,
        help="write a self-contained HTML dashboard instead of terminal text",
    )
    p.set_defaults(func=cmd_dashboard, trace=None, metrics=False)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        _attach_observability(args)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.tracer.enabled:
            args.tracer.event(0.0, "cli", "command", command=args.command)
        with _maybe_profiled(args, args.command):
            code = args.func(args)
    except (ValueError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        args.tracer.close()
    # Diagnostic exits (1: violations/failed checks found) still print the
    # collected metrics — those runs are exactly the ones worth inspecting;
    # 2 means the command itself broke, so nothing trustworthy to print.
    if code in (0, 1):
        _print_observability(args)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
