"""Visualization: ASCII renderings and SVG export of layouts and clock trees.

Dependency-free (string generation only), so it works in any environment.
The figures of the paper — H-trees over arrays (Fig. 3), spine clocks along
folded and comb layouts (Figs. 4-6), the hybrid element grid (Fig. 8) — can
be regenerated as SVG for inspection.
"""

from repro.viz.ascii_art import render_array, render_clock_tree, render_layout
from repro.viz.svg import figure_to_svg, save_svg

__all__ = [
    "render_layout",
    "render_array",
    "render_clock_tree",
    "figure_to_svg",
    "save_svg",
]
