"""ASCII renderings for quick terminal inspection."""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.arrays.model import ProcessorArray
from repro.clocktree.tree import ClockTree
from repro.geometry.layout import Layout

CellId = Hashable


def render_layout(
    layout: Layout,
    cell_char: str = "#",
    scale: float = 1.0,
    labels: Optional[Dict[CellId, str]] = None,
) -> str:
    """A character grid with one mark per cell.

    Positions are scaled by ``scale`` and rounded to character cells; the
    y-axis grows downward (screen convention).  ``labels`` overrides the
    mark per cell (first character used).
    """
    if len(layout) == 0:
        return ""
    if scale <= 0:
        raise ValueError("scale must be positive")
    points = [(cell, layout[cell]) for cell in layout.cells()]
    xs = [round(p.x * scale) for _c, p in points]
    ys = [round(p.y * scale) for _c, p in points]
    min_x, min_y = min(xs), min(ys)
    width = max(xs) - min_x + 1
    height = max(ys) - min_y + 1
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for (cell, p), x, y in zip(points, xs, ys):
        mark = (labels or {}).get(cell, cell_char)
        grid[y - min_y][x - min_x] = str(mark)[0] if mark else cell_char
    return "\n".join("".join(row).rstrip() for row in grid)


def render_array(array: ProcessorArray, scale: float = 2.0) -> str:
    """Cells plus their communication edges on a doubled grid.

    With ``scale=2`` horizontal/vertical unit edges render as ``-``/``|``
    between the cell marks and diagonals as ``\\`` or ``/`` (hex arrays).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    layout = array.layout
    points = {cell: layout[cell] for cell in array.comm.nodes()}
    xs = [round(p.x * scale) for p in points.values()]
    ys = [round(p.y * scale) for p in points.values()]
    min_x, min_y = min(xs), min(ys)
    width = max(xs) - min_x + 1
    height = max(ys) - min_y + 1
    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def mark(x: int, y: int, ch: str) -> None:
        if grid[y - min_y][x - min_x] == " ":
            grid[y - min_y][x - min_x] = ch

    for a, b in array.communicating_pairs():
        ax, ay = round(points[a].x * scale), round(points[a].y * scale)
        bx, by = round(points[b].x * scale), round(points[b].y * scale)
        mx, my = (ax + bx) // 2, (ay + by) // 2
        if ay == by:
            mark(mx, my, "-")
        elif ax == bx:
            mark(mx, my, "|")
        elif (bx - ax) * (by - ay) > 0:
            mark(mx, my, "\\")
        else:
            mark(mx, my, "/")
    for cell, p in points.items():
        x, y = round(p.x * scale), round(p.y * scale)
        grid[y - min_y][x - min_x] = "#"
    return "\n".join("".join(row).rstrip() for row in grid)


def render_clock_tree(
    tree: ClockTree, max_depth: Optional[int] = None, show_positions: bool = False
) -> str:
    """An indented textual tree with edge lengths and root distances."""
    lines: List[str] = []

    def visit(node: CellId, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        prefix = "  " * depth
        if node == tree.root:
            head = f"{prefix}{node!r} (root)"
        else:
            head = (
                f"{prefix}{node!r} "
                f"[edge {tree.edge_length(node):.3g}, "
                f"from root {tree.root_distance(node):.3g}]"
            )
        if show_positions:
            p = tree.position(node)
            head += f" @ ({p.x:.3g}, {p.y:.3g})"
        lines.append(head)
        for child in tree.children(node):
            visit(child, depth + 1)

    visit(tree.root, 0)
    if max_depth is not None:
        hidden = len(tree) - len(lines)
        if hidden > 0:
            lines.append(f"... ({hidden} more nodes below depth {max_depth})")
    return "\n".join(lines)
