"""SVG export of arrays and clock trees (regenerating the paper's figures).

Pure string generation: cells are squares (unit area, A2), communication
edges thin lines, clock tree edges heavy lines — matching the paper's
drawing convention ("heavy lines represent clock edges and thin lines
represent communication edges", Fig. 3 caption).
"""

from __future__ import annotations

import html
from typing import Hashable, List, Optional

from repro.arrays.model import ProcessorArray
from repro.clocktree.tree import ClockTree

CellId = Hashable

CELL_FILL = "#dbe7f5"
CELL_STROKE = "#3d5a80"
COMM_COLOR = "#9ab0c4"
CLOCK_COLOR = "#c1121f"


def figure_to_svg(
    array: ProcessorArray,
    tree: Optional[ClockTree] = None,
    unit: float = 24.0,
    cell_size: float = 0.6,
    title: Optional[str] = None,
) -> str:
    """Render an array (and optionally its clock tree) as an SVG document.

    ``unit`` is pixels per layout unit; ``cell_size`` the drawn square's
    side in layout units.  Clock tree nodes that are also cells are not
    re-drawn; internal clock nodes appear as small dots.
    """
    if unit <= 0 or not 0 < cell_size <= 1:
        raise ValueError("unit must be positive and 0 < cell_size <= 1")

    points = {cell: array.layout[cell] for cell in array.comm.nodes()}
    all_points = list(points.values())
    if tree is not None:
        all_points += [tree.position(n) for n in tree.nodes()]
    min_x = min(p.x for p in all_points)
    min_y = min(p.y for p in all_points)
    max_x = max(p.x for p in all_points)
    max_y = max(p.y for p in all_points)
    pad = 1.0

    def sx(x: float) -> float:
        return (x - min_x + pad) * unit

    def sy(y: float) -> float:
        return (y - min_y + pad) * unit

    width = (max_x - min_x + 2 * pad) * unit
    height = (max_y - min_y + 2 * pad) * unit

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">'
    ]
    if title:
        parts.append(f"<title>{html.escape(title)}</title>")

    # Communication edges (thin).
    for a, b in array.communicating_pairs():
        pa, pb = points[a], points[b]
        parts.append(
            f'<line x1="{sx(pa.x):.1f}" y1="{sy(pa.y):.1f}" '
            f'x2="{sx(pb.x):.1f}" y2="{sy(pb.y):.1f}" '
            f'stroke="{COMM_COLOR}" stroke-width="1.5" class="comm"/>'
        )

    # Clock edges (heavy), drawn above comm edges.
    if tree is not None:
        for node in tree.nodes():
            parent = tree.parent(node)
            if parent is None:
                continue
            pa, pb = tree.position(parent), tree.position(node)
            parts.append(
                f'<line x1="{sx(pa.x):.1f}" y1="{sy(pa.y):.1f}" '
                f'x2="{sx(pb.x):.1f}" y2="{sy(pb.y):.1f}" '
                f'stroke="{CLOCK_COLOR}" stroke-width="2.5" class="clock"/>'
            )

    # Cells (unit squares).
    half = cell_size / 2.0
    for cell, p in points.items():
        parts.append(
            f'<rect x="{sx(p.x - half):.1f}" y="{sy(p.y - half):.1f}" '
            f'width="{cell_size * unit:.1f}" height="{cell_size * unit:.1f}" '
            f'fill="{CELL_FILL}" stroke="{CELL_STROKE}" class="cell"/>'
        )

    # Internal clock nodes as dots; root marked larger.
    if tree is not None:
        cell_set = set(points)
        for node in tree.nodes():
            if node in cell_set:
                continue
            p = tree.position(node)
            radius = 4.0 if node == tree.root else 2.0
            parts.append(
                f'<circle cx="{sx(p.x):.1f}" cy="{sy(p.y):.1f}" r="{radius}" '
                f'fill="{CLOCK_COLOR}" class="clknode"/>'
            )

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(path: str, content: str) -> None:
    """Write an SVG document to disk."""
    if not content.lstrip().startswith("<svg"):
        raise ValueError("content does not look like an SVG document")
    with open(path, "w") as fh:
        fh.write(content)
