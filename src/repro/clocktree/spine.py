"""Spine clocking for one-dimensional arrays (Figs. 4-6, Theorem 3).

The Theorem 3 scheme runs a single clock wire *along* the array: the clock
tree is a trunk path with a short tap to each cell, so any two communicating
cells are connected by a tree path of constant length — constant skew under
the summation model (A10), hence a size-independent clock period.

Variants:

* :func:`spine_clock` — trunk along an arbitrary cell order (for a linear
  array, data order; Fig. 4(b)).
* :func:`folded_linear_array` — the Fig. 5 fold: the array doubles back so
  both ends sit next to the host, and the trunk runs along the fold with
  cells of both rows tapping at the same trunk station; host-to-end skew
  becomes constant too.
* :func:`comb_linear_array` — the Fig. 6 comb: the serpentine embedding
  that gives a 1D array any desired aspect ratio while neighbors stay
  adjacent, so the same spine scheme applies.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from repro.arrays.model import ProcessorArray
from repro.clocktree.tree import ClockTree
from repro.geometry.layout import Layout
from repro.geometry.point import Point
from repro.graphs.comm import CommGraph

CellId = Hashable

ROOT = "clk_root"


def spine_clock(
    array: ProcessorArray,
    order: Optional[Sequence[CellId]] = None,
    root_position: Optional[Point] = None,
    tap_length: float = 0.0,
) -> ClockTree:
    """A trunk-with-taps clock tree threading the cells in ``order``.

    The trunk is a path of tap stations, one directly at (or near) each cell;
    cell ``order[i]`` hangs off station ``i`` by an edge of ``tap_length``.
    For a linear array in data order this is exactly the Fig. 4(b) wire-
    along-the-array scheme.  Defaults: ``order`` sorts integer cell ids (the
    linear generator's order); the root sits at the first cell's position
    (where the host drives the clock in).
    """
    cells = list(order) if order is not None else sorted(array.comm.nodes())
    if not cells:
        raise ValueError("empty array")
    first = array.layout[cells[0]]
    tree = ClockTree(ROOT, root_position if root_position is not None else first)
    previous = ROOT
    for i, cell in enumerate(cells):
        station = ("tap", i)
        tree.add_child(previous, station, array.layout[cell])
        tree.add_child(station, cell, array.layout[cell], length=tap_length)
        previous = station
    return tree


def tapped_trunk(
    trunk_points: Sequence[Point],
    taps: Sequence[Tuple[CellId, int, Point, float]],
) -> ClockTree:
    """A general trunk-with-taps tree.

    ``trunk_points`` are the successive positions of the trunk stations;
    each tap is ``(cell, station_index, cell_position, tap_length)``.  Used
    by the folded layout where two cells share a station.  When a station
    would exceed binary arity (trunk continuation plus several taps), a
    zero-length *tap bus* node is inserted; zero-length edges do not change
    any ``s`` or ``d`` metric, so the skew analysis is unaffected.
    """
    if not trunk_points:
        raise ValueError("trunk needs at least one point")
    tree = ClockTree(ROOT, trunk_points[0])
    previous: CellId = ROOT
    stations: List[CellId] = [ROOT]
    for i, p in enumerate(trunk_points[1:], start=1):
        station = ("tap", i)
        tree.add_child(previous, station, p)
        stations.append(station)
        previous = station

    # Group taps per station, then attach through zero-length buses as needed.
    groups: dict = {}
    for cell, station_index, position, tap_length in taps:
        groups.setdefault(station_index, []).append((cell, position, tap_length))
    for station_index, group in groups.items():
        anchor: CellId = stations[station_index]
        pending = list(group)
        bus_counter = 0
        while pending:
            free = tree.max_children - len(tree.children(anchor))
            if free <= 0:
                raise ValueError(f"station {station_index} has no free tap slot")
            if len(pending) <= free:
                for cell, position, tap_length in pending:
                    tree.add_child(anchor, cell, position, length=tap_length)
                pending = []
                continue
            # Attach what fits minus one slot reserved for the bus.
            for cell, position, tap_length in pending[: free - 1]:
                tree.add_child(anchor, cell, position, length=tap_length)
            pending = pending[free - 1 :]
            bus = ("tapbus", station_index, bus_counter)
            bus_counter += 1
            tree.add_child(anchor, bus, tree.position(anchor), length=0.0)
            anchor = bus
    return tree


def folded_linear_array(n: int, spacing: float = 1.0) -> Tuple[ProcessorArray, ClockTree]:
    """The Fig. 5 folded one-dimensional array with its spine clock.

    Cells ``0 .. n-1``: the first half runs right along row 0, the second
    half returns left along row 1, so cells ``i`` and ``n-1-i`` share a
    column and both ends (0 and n-1) sit next to the host at column 0.  The
    clock trunk runs along the fold (between the rows); at column ``x`` both
    resident cells tap the same station, so the tree-path between *any*
    communicating pair — including host-to-end — is bounded by a constant.
    """
    if n < 2:
        raise ValueError("folding needs at least two cells")
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    half = (n + 1) // 2

    comm = CommGraph(nodes=range(n))
    layout = Layout()
    for i in range(n):
        if i < half:
            layout.place(i, Point(i * spacing, 0.0))
        else:
            layout.place(i, Point((n - 1 - i) * spacing, spacing))
    for i in range(n - 1):
        comm.add_bidirectional(i, i + 1)
    host = "host"
    layout.place(host, Point(-spacing, spacing / 2.0))
    comm.add_bidirectional(host, 0)
    comm.add_bidirectional(n - 1, host)
    array = ProcessorArray(comm, layout, name=f"folded-linear-{n}", host=host)

    # Trunk along the fold line y = spacing/2, one station per column, with
    # station 0 at the host.
    trunk = [Point(-spacing, spacing / 2.0)] + [
        Point(x * spacing, spacing / 2.0) for x in range(half)
    ]
    taps: List[Tuple[CellId, int, Point, float]] = [(host, 0, layout[host], 0.0)]
    for i in range(n):
        column = i if i < half else n - 1 - i
        taps.append((i, column + 1, layout[i], spacing / 2.0))
    return array, tapped_trunk(trunk, taps)


def comb_linear_array(
    n: int, tooth_height: int, spacing: float = 1.0
) -> Tuple[ProcessorArray, ClockTree]:
    """The Fig. 6 comb embedding of a linear array, with its spine clock.

    Each comb tooth holds ``2 * tooth_height`` cells (down one column, up the
    next); consecutive cells remain grid-adjacent, so running the clock along
    the data path keeps neighbor skew constant while the bounding box is
    roughly ``(n / tooth_height) x tooth_height`` — any aspect ratio.
    """
    if n < 1:
        raise ValueError("need at least one cell")
    if tooth_height < 1:
        raise ValueError("tooth height must be at least 1")
    if spacing <= 0:
        raise ValueError("spacing must be positive")

    comm = CommGraph(nodes=range(n))
    layout = Layout()
    per_tooth = 2 * tooth_height
    for i in range(n):
        tooth, offset = divmod(i, per_tooth)
        if offset < tooth_height:  # descending column
            col, row = 2 * tooth, offset
        else:  # ascending column
            col, row = 2 * tooth + 1, per_tooth - 1 - offset
        layout.place(i, Point(col * spacing, row * spacing))
    for i in range(n - 1):
        comm.add_bidirectional(i, i + 1)
    array = ProcessorArray(comm, layout, name=f"comb-{n}x{tooth_height}", host=0)
    tree = spine_clock(array, order=range(n))
    return array, tree
