"""Batched LCA indexes for the path-metric kernels.

The scalar :meth:`ClockTree.lca` walks parent pointers and costs
O(depth) dict lookups per query; every skew bound quantifies over all
communicating pairs, so figure benchmarks pay O(pairs x depth) in pure
Python.  Two index structures trade a one-off build for vectorized
queries over numpy arrays of pairs:

* :class:`LiftingLCAIndex` — **the default**: binary lifting over the
  dense parent/depth arrays that :class:`~repro.clocktree.tree.ClockTree`
  maintains incrementally during ``add_child``.  The build is a handful
  of O(n) numpy gathers (no Python-speed tree walk at all), so even the
  *cold* path — build plus one batched query — beats the scalar loop;
  queries cost O(log depth) gathers per pair batch.
* :class:`EulerTourIndex` — the original Euler-tour + sparse-table
  structure with O(1) range-minimum queries.  Its constructor runs a
  Python DFS, which made cold-start slower than the scalar path on
  small trees; it is kept as a reference implementation (the property
  tests cross-check the two).

Both expose the same interface (dense node numbering, ``lca_ids``,
``path_metrics_ids``); indexes are immutable snapshots that
:class:`~repro.clocktree.tree.ClockTree` builds lazily and drops on
mutation (``add_child``).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

NodeId = Hashable


def _gather_ids(idx: Dict[NodeId, int], nodes: Sequence[NodeId]) -> np.ndarray:
    """Dense ids for ``nodes`` as int64 — ``operator.itemgetter`` resolves
    the whole batch in one C call, several times faster than a Python
    generator of dict lookups (this gather dominated the *cold*
    build-and-query path at large pair counts)."""
    count = len(nodes)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if count == 1:
        return np.array([idx[nodes[0]]], dtype=np.int64)
    return np.fromiter(itemgetter(*nodes)(idx), dtype=np.int64, count=count)


class LiftingLCAIndex:
    """Binary-lifting LCA index over dense, insertion-ordered node arrays.

    ``ClockTree`` hands in the per-node dense id map plus flat parent-id,
    depth, and root-distance lists it maintains incrementally (parents
    always precede children; the root's parent is itself, which makes
    lifting past the root a harmless fixed point).  The constructor is
    pure numpy — ``ceil(log2(max_depth + 1))`` gathers of length n — so a
    cold build-and-query is cheaper than one scalar pass over the pairs.
    """

    def __init__(
        self,
        node_id: Dict[NodeId, int],
        nodes: Sequence[NodeId],
        parent_ids: Sequence[int],
        depths: Sequence[int],
        root_distances: Sequence[float],
    ) -> None:
        # Snapshot the shared structures: the tree keeps appending to its
        # dense lists, while an index must stay frozen at build time.
        self._id: Dict[NodeId, int] = dict(node_id)
        self._nodes: List[NodeId] = list(nodes)
        n = len(self._nodes)
        self._parent = np.asarray(parent_ids, dtype=np.int64)
        self._depth = np.asarray(depths, dtype=np.int64)
        self._root_distance = np.asarray(root_distances, dtype=np.float64)
        max_depth = int(self._depth.max()) if n else 0
        levels = max(1, max_depth.bit_length())
        up = np.empty((levels, n), dtype=np.int64)
        up[0] = self._parent
        for k in range(1, levels):
            up[k] = up[k - 1][up[k - 1]]
        self._up = up

    # ------------------------------------------------------------------
    # node numbering
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def node_id(self, node: NodeId) -> int:
        """Dense integer id of ``node`` (tree insertion order)."""
        return self._id[node]

    def node_ids(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Vector of dense ids for a sequence of nodes."""
        return _gather_ids(self._id, nodes)

    def node(self, nid: int) -> NodeId:
        """The node with dense id ``nid``."""
        return self._nodes[nid]

    @property
    def root_distance(self) -> np.ndarray:
        """Root distances indexed by dense id (read-only view)."""
        view = self._root_distance.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lca_ids(self, a_ids: np.ndarray, b_ids: np.ndarray) -> np.ndarray:
        """Dense ids of the LCAs of element-wise pairs ``(a_ids, b_ids)``."""
        depth = self._depth
        up = self._up
        swap = depth[b_ids] > depth[a_ids]
        a = np.where(swap, b_ids, a_ids)
        b = np.where(swap, a_ids, b_ids)
        diff = depth[a] - depth[b]
        for k in range(len(up)):
            lift = ((diff >> k) & 1).astype(bool)
            if lift.any():
                a = np.where(lift, up[k][a], a)
        for k in range(len(up) - 1, -1, -1):
            ua, ub = up[k][a], up[k][b]
            split = ua != ub
            if split.any():
                a = np.where(split, ua, a)
                b = np.where(split, ub, b)
        return np.where(a == b, a, self._parent[a])

    def path_metrics_ids(
        self, a_ids: np.ndarray, b_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(d, s)`` arrays for element-wise pairs given as dense ids.

        ``d`` is the difference-model metric ``|rd(a) - rd(b)|``; ``s`` is
        the summation-model metric ``rd(a) + rd(b) - 2 rd(lca)``, computed
        with exactly the arithmetic of the scalar path so batch and scalar
        results agree bit-for-bit.
        """
        rd = self._root_distance
        ra, rb = rd[a_ids], rd[b_ids]
        d = np.abs(ra - rb)
        s = ra + rb - 2.0 * rd[self.lca_ids(a_ids, b_ids)]
        return d, s

    def path_metrics(
        self, pairs: Sequence[Tuple[NodeId, NodeId]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(d, s)`` arrays for a sequence of node pairs."""
        if pairs:
            a_nodes, b_nodes = zip(*pairs)
        else:
            a_nodes, b_nodes = (), ()
        a_ids = _gather_ids(self._id, a_nodes)
        b_ids = _gather_ids(self._id, b_nodes)
        return self.path_metrics_ids(a_ids, b_ids)


class EulerTourIndex:
    """O(1)-LCA index over a snapshot of a rooted tree.

    Parameters mirror the internal maps of :class:`ClockTree`: a root, a
    children mapping, and per-node root distances.  The constructor runs
    one iterative DFS (O(n)) plus the sparse-table build (O(n log n))
    and never touches the tree again.
    """

    def __init__(
        self,
        root: NodeId,
        children: Dict[NodeId, List[NodeId]],
        root_distance: Dict[NodeId, float],
    ) -> None:
        n = len(children)
        self._id: Dict[NodeId, int] = {}
        self._nodes: List[NodeId] = []
        euler: List[int] = []  # dense node id at each tour position
        first: List[int] = [0] * n  # first tour position of each dense id
        tour_depth: List[int] = []
        depth_of: List[int] = [0] * n
        dist_of: List[float] = [0.0] * n

        # Iterative Euler tour: push (node, depth, child cursor); a node is
        # appended to the tour on first visit and again after each child.
        stack: List[Tuple[NodeId, int, int]] = [(root, 0, 0)]
        while stack:
            node, depth, cursor = stack.pop()
            if cursor == 0:
                nid = len(self._nodes)
                self._id[node] = nid
                self._nodes.append(node)
                first[nid] = len(euler)
                depth_of[nid] = depth
                dist_of[nid] = root_distance[node]
                euler.append(nid)
                tour_depth.append(depth)
            else:
                euler.append(self._id[node])
                tour_depth.append(depth)
            kids = children[node]
            if cursor < len(kids):
                stack.append((node, depth, cursor + 1))
                stack.append((kids[cursor], depth + 1, 0))

        self._euler = np.asarray(euler, dtype=np.int64)
        self._first = np.asarray(first, dtype=np.int64)
        self._depth = np.asarray(depth_of, dtype=np.int64)
        self._root_distance = np.asarray(dist_of, dtype=np.float64)

        # Sparse table: table[k][i] = tour position of the minimum depth in
        # euler[i : i + 2**k].  Ties resolve to the leftmost position; any
        # minimum in the window names the same LCA node.
        m = len(euler)
        levels = max(1, int(np.log2(m)) + 1) if m else 1
        td = np.asarray(tour_depth, dtype=np.int64)
        table = [np.arange(m, dtype=np.int64)]
        k = 1
        while (1 << k) <= m:
            prev = table[k - 1]
            half = 1 << (k - 1)
            left = prev[: m - (1 << k) + 1]
            right = prev[half : half + m - (1 << k) + 1]
            table.append(np.where(td[left] <= td[right], left, right))
            k += 1
        self._table = table
        self._tour_depth = td
        del levels

    # ------------------------------------------------------------------
    # node numbering
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def node_id(self, node: NodeId) -> int:
        """Dense integer id of ``node`` (DFS discovery order)."""
        return self._id[node]

    def node_ids(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Vector of dense ids for a sequence of nodes."""
        return _gather_ids(self._id, nodes)

    def node(self, nid: int) -> NodeId:
        """The node with dense id ``nid``."""
        return self._nodes[nid]

    @property
    def root_distance(self) -> np.ndarray:
        """Root distances indexed by dense id (read-only view)."""
        view = self._root_distance.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lca_ids(self, a_ids: np.ndarray, b_ids: np.ndarray) -> np.ndarray:
        """Dense ids of the LCAs of element-wise pairs ``(a_ids, b_ids)``."""
        lo = self._first[a_ids]
        hi = self._first[b_ids]
        left = np.minimum(lo, hi)
        right = np.maximum(lo, hi)
        span = right - left + 1
        k = np.frexp(span.astype(np.float64))[1] - 1  # floor(log2(span))
        # Two overlapping power-of-two windows cover [left, right].
        pos_l = np.empty(len(left), dtype=np.int64)
        pos_r = np.empty(len(left), dtype=np.int64)
        for level in np.unique(k):
            mask = k == level
            tab = self._table[int(level)]
            pos_l[mask] = tab[left[mask]]
            pos_r[mask] = tab[right[mask] - (1 << int(level)) + 1]
        depth = self._tour_depth
        best = np.where(depth[pos_l] <= depth[pos_r], pos_l, pos_r)
        return self._euler[best]

    def path_metrics_ids(
        self, a_ids: np.ndarray, b_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(d, s)`` arrays for element-wise pairs given as dense ids.

        ``d`` is the difference-model metric ``|rd(a) - rd(b)|``; ``s`` is
        the summation-model metric ``rd(a) + rd(b) - 2 rd(lca)``, computed
        with exactly the arithmetic of the scalar path so batch and scalar
        results agree bit-for-bit.
        """
        rd = self._root_distance
        ra, rb = rd[a_ids], rd[b_ids]
        d = np.abs(ra - rb)
        s = ra + rb - 2.0 * rd[self.lca_ids(a_ids, b_ids)]
        return d, s

    def path_metrics(
        self, pairs: Sequence[Tuple[NodeId, NodeId]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(d, s)`` arrays for a sequence of node pairs."""
        if pairs:
            a_nodes, b_nodes = zip(*pairs)
        else:
            a_nodes, b_nodes = (), ()
        a_ids = _gather_ids(self._id, a_nodes)
        b_ids = _gather_ids(self._id, b_nodes)
        return self.path_metrics_ids(a_ids, b_ids)
