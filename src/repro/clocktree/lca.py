"""Batched LCA indexes for the path-metric kernels.

The scalar :meth:`ClockTree.lca` walks parent pointers and costs
O(depth) dict lookups per query; every skew bound quantifies over all
communicating pairs, so figure benchmarks pay O(pairs x depth) in pure
Python.  Two index structures trade a one-off build for vectorized
queries over numpy arrays of pairs:

* :class:`LiftingLCAIndex` — **the default**: binary lifting over the
  :class:`DenseTreeStore` that :class:`~repro.clocktree.tree.ClockTree`
  maintains incrementally during ``add_child``.  The index *shares* the
  store (no O(n) snapshot at build time) and re-synchronizes lazily:
  appending nodes extends the lifting table by a few vectorized gathers
  over just the new suffix, and in-place root-distance updates
  (``ClockTree.set_edge_length``) are visible immediately because the
  distances are read straight from the store.  A cold build is
  ``ceil(log2(max_depth + 1))`` O(n) numpy gathers; queries cost
  O(log depth) gathers per pair batch.
* :class:`EulerTourIndex` — the original Euler-tour + sparse-table
  structure with O(1) range-minimum queries.  Its constructor runs a
  Python DFS, which made cold-start slower than the scalar path on
  small trees; it is kept as a frozen-snapshot reference implementation
  (the property tests cross-check the two, and the ``lca_cold_build``
  perf row prices its build against the lifting build).

Beyond LCA queries the lifting index answers the subtree-membership
questions the ECO engine needs (:meth:`~LiftingLCAIndex.in_subtree_ids`,
:meth:`~LiftingLCAIndex.subtree_mask`,
:meth:`~LiftingLCAIndex.pairs_through_node`,
:meth:`~LiftingLCAIndex.subtree_interval`): resizing one clock buffer
dirties exactly the communicating pairs whose tree paths cross the
resized edge, and those are the pairs with exactly one endpoint inside
the edge's subtree.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

NodeId = Hashable


def _gather_ids(idx: Dict[NodeId, int], nodes: Sequence[NodeId]) -> np.ndarray:
    """Dense ids for ``nodes`` as int64 — ``operator.itemgetter`` resolves
    the whole batch in one C call, several times faster than a Python
    generator of dict lookups (this gather dominated the *cold*
    build-and-query path at large pair counts)."""
    count = len(nodes)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if count == 1:
        return np.array([idx[nodes[0]]], dtype=np.int64)
    return np.fromiter(itemgetter(*nodes)(idx), dtype=np.int64, count=count)


class DenseTreeStore:
    """Growable numpy-backed dense arrays for a rooted tree.

    The single source of truth both :class:`~repro.clocktree.tree.ClockTree`
    and :class:`LiftingLCAIndex` read: insertion-ordered node ids (parents
    always precede children; the root's parent is itself, the lifting
    fixed point), parent ids, depths, and root distances.  Appends are
    amortized O(1) (capacity doubling); root distances may be updated in
    place (``rd[ids] += delta`` during an edge-length edit) and every
    reader sees the change immediately because nothing snapshots.
    """

    __slots__ = ("id", "nodes", "n", "max_depth", "_parent", "_depth", "_rd")

    def __init__(self, root: NodeId, capacity: int = 64) -> None:
        self.id: Dict[NodeId, int] = {root: 0}
        self.nodes: List[NodeId] = [root]
        self.n = 1
        self.max_depth = 0
        self._parent = np.zeros(capacity, dtype=np.int64)
        self._depth = np.zeros(capacity, dtype=np.int64)
        self._rd = np.zeros(capacity, dtype=np.float64)

    @property
    def capacity(self) -> int:
        return len(self._parent)

    @property
    def parent(self) -> np.ndarray:
        """Parent ids, length ``n`` (a view into the growable buffer)."""
        return self._parent[: self.n]

    @property
    def depth(self) -> np.ndarray:
        """Depths, length ``n`` (a view into the growable buffer)."""
        return self._depth[: self.n]

    @property
    def rd(self) -> np.ndarray:
        """Root distances, length ``n``.  The view is writable on purpose:
        ``ClockTree.set_edge_length`` shifts whole subtrees in place."""
        return self._rd[: self.n]

    def append(self, node: NodeId, parent_id: int, depth: int, rd: float) -> int:
        """Add one node (its parent must already be present)."""
        i = self.n
        if i == len(self._parent):
            self._grow()
        self.id[node] = i
        self.nodes.append(node)
        self._parent[i] = parent_id
        self._depth[i] = depth
        self._rd[i] = rd
        if depth > self.max_depth:
            self.max_depth = depth
        self.n = i + 1
        return i

    def _grow(self) -> None:
        new_cap = max(64, 2 * len(self._parent))
        for name in ("_parent", "_depth", "_rd"):
            old = getattr(self, name)
            buf = np.zeros(new_cap, dtype=old.dtype)
            buf[: self.n] = old[: self.n]
            setattr(self, name, buf)


class LiftingLCAIndex:
    """Binary-lifting LCA index over a live :class:`DenseTreeStore`.

    Unlike a frozen snapshot, the index keeps a reference to the store
    and lazily re-synchronizes before every query: when the tree grew by
    k nodes since the last query, only k columns of the lifting table
    are (vectorized) filled in — a graft never triggers a full rebuild.
    Root-distance edits need no sync at all (distances are read from the
    store).  The cold build is pure numpy: one O(n) gather per lifting
    level, no per-node Python loop.
    """

    def __init__(self, store: DenseTreeStore) -> None:
        self._store = store
        self._n = 0        # columns of the lifting table that are filled
        self._levels = 0   # rows of the lifting table that are filled
        self._up = np.empty((0, 0), dtype=np.int64)
        # Lazy preorder intervals (tin/tout/subtree size); structure-keyed.
        self._interval_n = -1
        self._tin = np.empty(0, dtype=np.int64)
        self._tout = np.empty(0, dtype=np.int64)
        self._size = np.empty(0, dtype=np.int64)
        self._sync()

    @classmethod
    def from_arrays(
        cls,
        node_id: Dict[NodeId, int],
        nodes: Sequence[NodeId],
        parent_ids: Sequence[int],
        depths: Sequence[int],
        root_distances: Sequence[float],
    ) -> "LiftingLCAIndex":
        """Build a free-standing index from flat arrays (tests, tools)."""
        store = DenseTreeStore(nodes[0], capacity=max(64, len(nodes)))
        for i in range(1, len(nodes)):
            store.append(nodes[i], int(parent_ids[i]), int(depths[i]),
                         float(root_distances[i]))
        store._rd[0] = float(root_distances[0])
        if store.id != dict(node_id):
            raise ValueError("node_id does not match the nodes sequence")
        return cls(store)

    # ------------------------------------------------------------------
    # incremental synchronisation
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Extend the lifting table to cover every node in the store.

        New columns (appended nodes) are filled level by level over just
        the new suffix; a new level (the tree got deeper) is one full
        O(n) gather.  Ancestors always carry smaller dense ids than their
        descendants, so level ``k-1`` entries for the new suffix are
        complete before level ``k`` reads them.
        """
        store = self._store
        n1 = store.n
        levels = max(1, store.max_depth.bit_length())
        if n1 == self._n and levels == self._levels:
            return
        if self._up.shape[0] < levels or self._up.shape[1] < n1:
            up = np.empty((levels, store.capacity), dtype=np.int64)
            if self._n:
                up[: self._levels, : self._n] = self._up[: self._levels, : self._n]
            self._up = up
        up = self._up
        parent = store.parent
        if self._levels and n1 > self._n:
            lo = self._n
            up[0, lo:n1] = parent[lo:n1]
            for k in range(1, self._levels):
                prev = up[k - 1, :n1]
                up[k, lo:n1] = prev[up[k - 1, lo:n1]]
        for k in range(self._levels, levels):
            if k == 0:
                up[0, :n1] = parent
            else:
                prev = up[k - 1, :n1]
                up[k, :n1] = prev[prev]
        self._n = n1
        self._levels = levels

    # ------------------------------------------------------------------
    # node numbering
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._store.n

    def node_id(self, node: NodeId) -> int:
        """Dense integer id of ``node`` (tree insertion order)."""
        return self._store.id[node]

    def node_ids(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Vector of dense ids for a sequence of nodes."""
        return _gather_ids(self._store.id, nodes)

    def node(self, nid: int) -> NodeId:
        """The node with dense id ``nid``."""
        return self._store.nodes[nid]

    @property
    def root_distance(self) -> np.ndarray:
        """Root distances indexed by dense id (read-only view).  Live:
        reflects in-place edge-length edits on the owning tree."""
        view = self._store.rd.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lca_ids(self, a_ids: np.ndarray, b_ids: np.ndarray) -> np.ndarray:
        """Dense ids of the LCAs of element-wise pairs ``(a_ids, b_ids)``."""
        self._sync()
        depth = self._store.depth
        up = self._up
        swap = depth[b_ids] > depth[a_ids]
        a = np.where(swap, b_ids, a_ids)
        b = np.where(swap, a_ids, b_ids)
        diff = depth[a] - depth[b]
        for k in range(self._levels):
            lift = ((diff >> k) & 1).astype(bool)
            if lift.any():
                a = np.where(lift, up[k][a], a)
        for k in range(self._levels - 1, -1, -1):
            ua, ub = up[k][a], up[k][b]
            split = ua != ub
            if split.any():
                a = np.where(split, ua, a)
                b = np.where(split, ub, b)
        return np.where(a == b, a, self._store.parent[a])

    def path_metrics_ids(
        self, a_ids: np.ndarray, b_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(d, s)`` arrays for element-wise pairs given as dense ids.

        ``d`` is the difference-model metric ``|rd(a) - rd(b)|``; ``s`` is
        the summation-model metric ``rd(a) + rd(b) - 2 rd(lca)``, computed
        with exactly the arithmetic of the scalar path so batch and scalar
        results agree bit-for-bit.
        """
        rd = self._store.rd
        ra, rb = rd[a_ids], rd[b_ids]
        d = np.abs(ra - rb)
        s = ra + rb - 2.0 * rd[self.lca_ids(a_ids, b_ids)]
        return d, s

    def path_metrics(
        self, pairs: Sequence[Tuple[NodeId, NodeId]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(d, s)`` arrays for a sequence of node pairs."""
        if pairs:
            a_nodes, b_nodes = zip(*pairs)
        else:
            a_nodes, b_nodes = (), ()
        a_ids = _gather_ids(self._store.id, a_nodes)
        b_ids = _gather_ids(self._store.id, b_nodes)
        return self.path_metrics_ids(a_ids, b_ids)

    # ------------------------------------------------------------------
    # subtree queries (the ECO dirty-set primitives)
    # ------------------------------------------------------------------
    def in_subtree_ids(self, nid: int, ids: np.ndarray) -> np.ndarray:
        """Boolean mask: is each of ``ids`` inside the subtree rooted at
        ``nid`` (inclusive)?

        Implemented by lifting each candidate up ``depth(id) - depth(nid)``
        levels and comparing with ``nid`` — O(log depth) vectorized gathers,
        valid immediately after any append (no interval rebuild needed).
        """
        self._sync()
        depth = self._store.depth
        ids = np.asarray(ids, dtype=np.int64)
        diff = depth[ids] - depth[nid]
        deep_enough = diff >= 0
        a = np.where(deep_enough, ids, 0)
        climb = np.where(deep_enough, diff, 0)
        for k in range(self._levels):
            lift = ((climb >> k) & 1).astype(bool)
            if lift.any():
                a = np.where(lift, self._up[k][a], a)
        return deep_enough & (a == nid)

    def subtree_mask(self, nid: int) -> np.ndarray:
        """Boolean mask over *all* dense ids: True inside ``nid``'s subtree."""
        self._ensure_intervals()
        lo, hi = self._tin[nid], self._tout[nid]
        tin = self._tin
        return (tin >= lo) & (tin <= hi)

    def subtree_interval(self, nid: int) -> Tuple[int, int]:
        """Preorder interval ``(tin, tout)`` of the subtree rooted at
        ``nid`` (inclusive on both ends): node ``y`` is in the subtree iff
        ``tin(nid) <= tin(y) <= tout(nid)``."""
        self._ensure_intervals()
        return int(self._tin[nid]), int(self._tout[nid])

    def subtree_size(self, nid: int) -> int:
        """Number of nodes in the subtree rooted at ``nid`` (inclusive)."""
        self._ensure_intervals()
        return int(self._size[nid])

    def pairs_through_node(
        self, nid: int, a_ids: np.ndarray, b_ids: np.ndarray
    ) -> np.ndarray:
        """Boolean mask of the pairs whose tree path crosses the edge
        *above* ``nid`` — exactly one endpoint inside the subtree.

        These are the pairs whose ``(d, s)`` metrics change when that
        edge's length changes: both-inside pairs shift together (LCA
        included) and both-outside pairs never see the edge.  (An ECO
        recompute conservatively refreshes both-inside pairs too — see
        :meth:`repro.sta.eco.ECOSession.resize_buffer` — because the
        constant shift is applied in floating point.)
        """
        in_a = self.in_subtree_ids(nid, a_ids)
        in_b = self.in_subtree_ids(nid, b_ids)
        return in_a ^ in_b

    def _ensure_intervals(self) -> None:
        """(Re)build preorder tin/tout/size lazily; keyed on node count
        (appends change intervals, in-place rd edits do not)."""
        self._sync()
        n = self._n
        if self._interval_n == n:
            return
        store = self._store
        parent = store.parent
        size = np.ones(n, dtype=np.int64)
        tin = np.zeros(n, dtype=np.int64)
        if n > 1:
            # Children grouped per parent in insertion order (stable sort),
            # lowered to CSR so the DFS below is array indexing only.
            order = np.argsort(parent[1:], kind="stable").astype(np.int64) + 1
            counts = np.bincount(parent[1:], minlength=n)
            ptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=ptr[1:])
            # Iterative preorder DFS; children pushed in reverse so they
            # pop in insertion order.  Sizes accumulate on the way out.
            stack = [(0, False)]
            clock = 0
            while stack:
                nid, done = stack.pop()
                kids = order[ptr[nid]:ptr[nid + 1]]
                if done:
                    total = 1
                    for kid in kids:
                        total += size[kid]
                    size[nid] = total
                    continue
                tin[nid] = clock
                clock += 1
                stack.append((nid, True))
                for kid in kids[::-1]:
                    stack.append((int(kid), False))
        self._tin = tin
        self._size = size
        self._tout = tin + size - 1
        self._interval_n = n


class EulerTourIndex:
    """O(1)-LCA index over a snapshot of a rooted tree.

    Parameters mirror the internal maps of :class:`ClockTree`: a root, a
    children mapping, and per-node root distances.  The constructor runs
    one iterative DFS (O(n)) plus the sparse-table build (O(n log n))
    and never touches the tree again.
    """

    def __init__(
        self,
        root: NodeId,
        children: Dict[NodeId, List[NodeId]],
        root_distance: Dict[NodeId, float],
    ) -> None:
        n = len(children)
        self._id: Dict[NodeId, int] = {}
        self._nodes: List[NodeId] = []
        euler: List[int] = []  # dense node id at each tour position
        first: List[int] = [0] * n  # first tour position of each dense id
        tour_depth: List[int] = []
        depth_of: List[int] = [0] * n
        dist_of: List[float] = [0.0] * n

        # Iterative Euler tour: push (node, depth, child cursor); a node is
        # appended to the tour on first visit and again after each child.
        stack: List[Tuple[NodeId, int, int]] = [(root, 0, 0)]
        while stack:
            node, depth, cursor = stack.pop()
            if cursor == 0:
                nid = len(self._nodes)
                self._id[node] = nid
                self._nodes.append(node)
                first[nid] = len(euler)
                depth_of[nid] = depth
                dist_of[nid] = root_distance[node]
                euler.append(nid)
                tour_depth.append(depth)
            else:
                euler.append(self._id[node])
                tour_depth.append(depth)
            kids = children[node]
            if cursor < len(kids):
                stack.append((node, depth, cursor + 1))
                stack.append((kids[cursor], depth + 1, 0))

        self._euler = np.asarray(euler, dtype=np.int64)
        self._first = np.asarray(first, dtype=np.int64)
        self._depth = np.asarray(depth_of, dtype=np.int64)
        self._root_distance = np.asarray(dist_of, dtype=np.float64)

        # Sparse table: table[k][i] = tour position of the minimum depth in
        # euler[i : i + 2**k].  Ties resolve to the leftmost position; any
        # minimum in the window names the same LCA node.
        m = len(euler)
        levels = max(1, int(np.log2(m)) + 1) if m else 1
        td = np.asarray(tour_depth, dtype=np.int64)
        table = [np.arange(m, dtype=np.int64)]
        k = 1
        while (1 << k) <= m:
            prev = table[k - 1]
            half = 1 << (k - 1)
            left = prev[: m - (1 << k) + 1]
            right = prev[half : half + m - (1 << k) + 1]
            table.append(np.where(td[left] <= td[right], left, right))
            k += 1
        self._table = table
        self._tour_depth = td
        del levels

    # ------------------------------------------------------------------
    # node numbering
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def node_id(self, node: NodeId) -> int:
        """Dense integer id of ``node`` (DFS discovery order)."""
        return self._id[node]

    def node_ids(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Vector of dense ids for a sequence of nodes."""
        return _gather_ids(self._id, nodes)

    def node(self, nid: int) -> NodeId:
        """The node with dense id ``nid``."""
        return self._nodes[nid]

    @property
    def root_distance(self) -> np.ndarray:
        """Root distances indexed by dense id (read-only view)."""
        view = self._root_distance.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lca_ids(self, a_ids: np.ndarray, b_ids: np.ndarray) -> np.ndarray:
        """Dense ids of the LCAs of element-wise pairs ``(a_ids, b_ids)``."""
        lo = self._first[a_ids]
        hi = self._first[b_ids]
        left = np.minimum(lo, hi)
        right = np.maximum(lo, hi)
        span = right - left + 1
        k = np.frexp(span.astype(np.float64))[1] - 1  # floor(log2(span))
        # Two overlapping power-of-two windows cover [left, right].
        pos_l = np.empty(len(left), dtype=np.int64)
        pos_r = np.empty(len(left), dtype=np.int64)
        for level in np.unique(k):
            mask = k == level
            tab = self._table[int(level)]
            pos_l[mask] = tab[left[mask]]
            pos_r[mask] = tab[right[mask] - (1 << int(level)) + 1]
        depth = self._tour_depth
        best = np.where(depth[pos_l] <= depth[pos_r], pos_l, pos_r)
        return self._euler[best]

    def path_metrics_ids(
        self, a_ids: np.ndarray, b_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(d, s)`` arrays for element-wise pairs given as dense ids.

        ``d`` is the difference-model metric ``|rd(a) - rd(b)|``; ``s`` is
        the summation-model metric ``rd(a) + rd(b) - 2 rd(lca)``, computed
        with exactly the arithmetic of the scalar path so batch and scalar
        results agree bit-for-bit.
        """
        rd = self._root_distance
        ra, rb = rd[a_ids], rd[b_ids]
        d = np.abs(ra - rb)
        s = ra + rb - 2.0 * rd[self.lca_ids(a_ids, b_ids)]
        return d, s

    def path_metrics(
        self, pairs: Sequence[Tuple[NodeId, NodeId]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(d, s)`` arrays for a sequence of node pairs."""
        if pairs:
            a_nodes, b_nodes = zip(*pairs)
        else:
            a_nodes, b_nodes = (), ()
        a_ids = _gather_ids(self._id, a_nodes)
        b_ids = _gather_ids(self._id, b_nodes)
        return self.path_metrics_ids(a_ids, b_ids)
