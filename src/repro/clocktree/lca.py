"""Euler-tour + sparse-table LCA index for batched path metrics.

The scalar :meth:`ClockTree.lca` walks parent pointers and costs
O(depth) dict lookups per query; every skew bound quantifies over all
communicating pairs, so figure benchmarks pay O(pairs x depth) in pure
Python.  This module trades an O(n log n) one-off build for O(1)
range-minimum LCA queries that vectorize over numpy arrays of pairs:

* an Euler tour of the tree (every node appears once per visit, 2n - 1
  entries) with the node depth at each tour position;
* a sparse table of depth-argmin over all power-of-two windows of the
  tour, so the shallowest node between two first-occurrence positions —
  which *is* the LCA — falls out of two table lookups;
* flat ``root_distance`` / ``depth`` arrays aligned with a dense node
  numbering, so ``d`` and ``s`` for thousands of pairs are a handful of
  array operations.

The index is immutable; :class:`~repro.clocktree.tree.ClockTree` builds
it lazily and drops it on mutation (``add_child``).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

NodeId = Hashable


class EulerTourIndex:
    """O(1)-LCA index over a snapshot of a rooted tree.

    Parameters mirror the internal maps of :class:`ClockTree`: a root, a
    children mapping, and per-node root distances.  The constructor runs
    one iterative DFS (O(n)) plus the sparse-table build (O(n log n))
    and never touches the tree again.
    """

    def __init__(
        self,
        root: NodeId,
        children: Dict[NodeId, List[NodeId]],
        root_distance: Dict[NodeId, float],
    ) -> None:
        n = len(children)
        self._id: Dict[NodeId, int] = {}
        self._nodes: List[NodeId] = []
        euler: List[int] = []  # dense node id at each tour position
        first: List[int] = [0] * n  # first tour position of each dense id
        tour_depth: List[int] = []
        depth_of: List[int] = [0] * n
        dist_of: List[float] = [0.0] * n

        # Iterative Euler tour: push (node, depth, child cursor); a node is
        # appended to the tour on first visit and again after each child.
        stack: List[Tuple[NodeId, int, int]] = [(root, 0, 0)]
        while stack:
            node, depth, cursor = stack.pop()
            if cursor == 0:
                nid = len(self._nodes)
                self._id[node] = nid
                self._nodes.append(node)
                first[nid] = len(euler)
                depth_of[nid] = depth
                dist_of[nid] = root_distance[node]
                euler.append(nid)
                tour_depth.append(depth)
            else:
                euler.append(self._id[node])
                tour_depth.append(depth)
            kids = children[node]
            if cursor < len(kids):
                stack.append((node, depth, cursor + 1))
                stack.append((kids[cursor], depth + 1, 0))

        self._euler = np.asarray(euler, dtype=np.int64)
        self._first = np.asarray(first, dtype=np.int64)
        self._depth = np.asarray(depth_of, dtype=np.int64)
        self._root_distance = np.asarray(dist_of, dtype=np.float64)

        # Sparse table: table[k][i] = tour position of the minimum depth in
        # euler[i : i + 2**k].  Ties resolve to the leftmost position; any
        # minimum in the window names the same LCA node.
        m = len(euler)
        levels = max(1, int(np.log2(m)) + 1) if m else 1
        td = np.asarray(tour_depth, dtype=np.int64)
        table = [np.arange(m, dtype=np.int64)]
        k = 1
        while (1 << k) <= m:
            prev = table[k - 1]
            half = 1 << (k - 1)
            left = prev[: m - (1 << k) + 1]
            right = prev[half : half + m - (1 << k) + 1]
            table.append(np.where(td[left] <= td[right], left, right))
            k += 1
        self._table = table
        self._tour_depth = td
        del levels

    # ------------------------------------------------------------------
    # node numbering
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def node_id(self, node: NodeId) -> int:
        """Dense integer id of ``node`` (DFS discovery order)."""
        return self._id[node]

    def node_ids(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Vector of dense ids for a sequence of nodes."""
        idx = self._id
        return np.fromiter(
            (idx[n] for n in nodes), dtype=np.int64, count=len(nodes)
        )

    def node(self, nid: int) -> NodeId:
        """The node with dense id ``nid``."""
        return self._nodes[nid]

    @property
    def root_distance(self) -> np.ndarray:
        """Root distances indexed by dense id (read-only view)."""
        view = self._root_distance.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lca_ids(self, a_ids: np.ndarray, b_ids: np.ndarray) -> np.ndarray:
        """Dense ids of the LCAs of element-wise pairs ``(a_ids, b_ids)``."""
        lo = self._first[a_ids]
        hi = self._first[b_ids]
        left = np.minimum(lo, hi)
        right = np.maximum(lo, hi)
        span = right - left + 1
        k = np.frexp(span.astype(np.float64))[1] - 1  # floor(log2(span))
        # Two overlapping power-of-two windows cover [left, right].
        pos_l = np.empty(len(left), dtype=np.int64)
        pos_r = np.empty(len(left), dtype=np.int64)
        for level in np.unique(k):
            mask = k == level
            tab = self._table[int(level)]
            pos_l[mask] = tab[left[mask]]
            pos_r[mask] = tab[right[mask] - (1 << int(level)) + 1]
        depth = self._tour_depth
        best = np.where(depth[pos_l] <= depth[pos_r], pos_l, pos_r)
        return self._euler[best]

    def path_metrics_ids(
        self, a_ids: np.ndarray, b_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(d, s)`` arrays for element-wise pairs given as dense ids.

        ``d`` is the difference-model metric ``|rd(a) - rd(b)|``; ``s`` is
        the summation-model metric ``rd(a) + rd(b) - 2 rd(lca)``, computed
        with exactly the arithmetic of the scalar path so batch and scalar
        results agree bit-for-bit.
        """
        rd = self._root_distance
        ra, rb = rd[a_ids], rd[b_ids]
        d = np.abs(ra - rb)
        s = ra + rb - 2.0 * rd[self.lca_ids(a_ids, b_ids)]
        return d, s

    def path_metrics(
        self, pairs: Sequence[Tuple[NodeId, NodeId]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(d, s)`` arrays for a sequence of node pairs."""
        count = len(pairs)
        idx = self._id
        a_ids = np.fromiter((idx[a] for a, _ in pairs), dtype=np.int64, count=count)
        b_ids = np.fromiter((idx[b] for _, b in pairs), dtype=np.int64, count=count)
        return self.path_metrics_ids(a_ids, b_ids)
