"""Generic clock tree builders used as comparison schemes.

The lower-bound experiments (Fig. 7 bench) need a *family* of plausible
clocking schemes to minimize over: the paper's claim is that **no** clock
tree keeps communicating-cell skew bounded on a growing 2D mesh, so the
bench tries several reasonable constructions and shows the best of them
still grows like ``Omega(n)``.

* :func:`serpentine_clock` — one trunk threading the mesh in boustrophedon
  order (the direct generalization of the 1D Theorem 3 scheme).
* :func:`kdtree_clock` — balanced recursive bisection by alternating axes
  (an H-tree-like hierarchical scheme that adapts to any cell set).
* :func:`star_clock` — every cell wired straight to a central root (the
  idealized equipotential hub; non-binary, used only as a reference point).
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

from repro.arrays.model import ProcessorArray
from repro.clocktree.spine import spine_clock
from repro.clocktree.tree import ClockTree
from repro.geometry.point import Point

CellId = Hashable

ROOT = "clk_root"


def serpentine_clock(array: ProcessorArray) -> ClockTree:
    """A single spine threading all cells in snake (boustrophedon) order of
    their layout positions: sweep rows bottom-to-top, alternating direction.
    """
    cells = array.comm.nodes()
    if not cells:
        raise ValueError("empty array")

    def row_key(cell: CellId) -> float:
        return array.layout[cell].y

    rows: dict = {}
    for cell in cells:
        rows.setdefault(row_key(cell), []).append(cell)
    order: List[CellId] = []
    for i, y in enumerate(sorted(rows)):
        row = sorted(rows[y], key=lambda c: array.layout[c].x, reverse=(i % 2 == 1))
        order.extend(row)
    return spine_clock(array, order=order)


def kdtree_clock(array: ProcessorArray) -> ClockTree:
    """Balanced binary bisection of the cell set by alternating axes.

    Internal nodes sit at the median split point of their cell group; each
    leaf group of one cell becomes the cell itself.  Structurally similar to
    an H-tree but defined for arbitrary cell positions; unlike the H-tree it
    does not guarantee equidistance.
    """
    cells = array.comm.nodes()
    if not cells:
        raise ValueError("empty array")

    def centroid(group: Sequence[CellId]) -> Point:
        xs = [array.layout[c].x for c in group]
        ys = [array.layout[c].y for c in group]
        return Point(sum(xs) / len(xs), sum(ys) / len(ys))

    tree = ClockTree(ROOT, centroid(cells))
    counter = 0
    stack = [(ROOT, list(cells), 0)]
    while stack:
        parent, group, axis = stack.pop()
        if len(group) == 1:
            cell = group[0]
            tree.add_child(parent, cell, array.layout[cell])
            continue
        group.sort(key=lambda c: (array.layout[c].x, array.layout[c].y) if axis == 0
                   else (array.layout[c].y, array.layout[c].x))
        mid = len(group) // 2
        for half in (group[:mid], group[mid:]):
            counter += 1
            node = ("kd", counter)
            tree.add_child(parent, node, centroid(half))
            stack.append((node, half, 1 - axis))
    return tree


def comm_tree_clock(array: ProcessorArray, root: Optional[CellId] = None) -> ClockTree:
    """Distribute the clock along the data paths of a tree-structured COMM.

    Section VIII: when COMM (ignoring edge directions) is a tree, clock
    events can ride the data wiring itself; communicating cells are then
    adjacent on CLK, so their ``s`` equals their wire length and the
    summation model gives skew proportional to the longest *communication*
    edge — no loss in asymptotic performance, since data incurs the same
    delay.  ``root`` defaults to the array's host.
    """
    cells = array.comm.nodes()
    if not cells:
        raise ValueError("empty array")
    root_cell = root if root is not None else (array.host or cells[0])
    if root_cell not in array.comm:
        raise ValueError(f"root {root_cell!r} is not a cell of the array")
    # Validate tree-ness: connected with exactly n-1 undirected pairs.
    pairs = array.communicating_pairs()
    if len(pairs) != len(cells) - 1 or not array.comm.is_connected():
        raise ValueError("COMM (undirected) must be a tree for comm_tree_clock")
    max_deg = array.comm.max_degree()
    tree = ClockTree(root_cell, array.layout[root_cell], max_children=max(2, max_deg))
    visited = {root_cell}
    frontier = [root_cell]
    while frontier:
        node = frontier.pop()
        for neighbor in array.comm.neighbors(node):
            if neighbor in visited:
                continue
            visited.add(neighbor)
            tree.add_child(node, neighbor, array.layout[neighbor])
            frontier.append(neighbor)
    return tree


def star_clock(array: ProcessorArray, root_position: Optional[Point] = None) -> ClockTree:
    """Every cell wired directly to a central root.

    This is the idealized equipotential hub: its ``d`` and ``s`` metrics are
    small, but its physical realizability is exactly what A6 rules out at
    scale (total wire length Theta(n * diameter), and the root must drive it
    all).  Not a binary tree; used only as a reference point.
    """
    cells = array.comm.nodes()
    if not cells:
        raise ValueError("empty array")
    if root_position is None:
        box = array.layout.bounding_box()
        root_position = box.center
    tree = ClockTree(ROOT, root_position, max_children=len(cells))
    for cell in cells:
        tree.add_child(ROOT, cell, array.layout[cell])
    return tree
