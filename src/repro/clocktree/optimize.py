"""Greedy clock-tree optimization: how close can a tree get to the bound?

The Section V-B lower bound says no clock tree over a 2D mesh keeps
communicating-cell skew bounded.  The benchmarks minimize over a *fixed*
menu of schemes; this module adds an adversary that *searches*: approximate
agglomerative construction that greedily merges the two clusters whose
union has the smallest diameter, producing a binary tree that keeps nearby
cells in nearby subtrees.  Its max communicating-pair ``s`` still grows
linearly on meshes (tested) — strengthening the empirical side of the
impossibility result — while on 1D arrays it rediscovers spine-like trees
with constant ``s``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Hashable, List, Tuple

from repro.arrays.model import ProcessorArray
from repro.clocktree.tree import ClockTree
from repro.geometry.point import Point

CellId = Hashable


class _Cluster:
    __slots__ = ("node", "center", "count", "alive")

    def __init__(self, node: CellId, center: Point, count: int) -> None:
        self.node = node
        self.center = center
        self.count = count
        self.alive = True


def greedy_clock_tree(
    array: ProcessorArray, neighbor_candidates: int = 8
) -> ClockTree:
    """Agglomerative binary clock tree over the array's cells.

    Repeatedly merges the two clusters with the closest centers (candidate
    pairs limited to each cluster's ``neighbor_candidates`` nearest peers at
    creation time, refreshed on merge — an O(n log n)-ish approximation of
    full agglomerative clustering).  Internal nodes sit at the weighted
    centroid of their cluster.
    """
    cells = array.comm.nodes()
    if not cells:
        raise ValueError("empty array")
    if neighbor_candidates < 1:
        raise ValueError("need at least one candidate neighbor")
    if len(cells) == 1:
        tree = ClockTree("opt_root", array.layout[cells[0]])
        tree.add_child("opt_root", cells[0], array.layout[cells[0]], length=0.0)
        return tree

    clusters: List[_Cluster] = [
        _Cluster(cell, array.layout[cell], 1) for cell in cells
    ]
    # Parent assembly: children pairs per new internal node.
    merges: List[Tuple[CellId, CellId, CellId, Point]] = []
    counter = itertools.count()

    heap: List[Tuple[float, int, int, int]] = []  # (dist, seq, i, j)
    seq = itertools.count()

    def push_candidates(i: int) -> None:
        ci = clusters[i]
        distances = []
        for j, cj in enumerate(clusters):
            if j == i or not cj.alive:
                continue
            distances.append((ci.center.manhattan(cj.center), j))
        distances.sort()
        for dist, j in distances[:neighbor_candidates]:
            heapq.heappush(heap, (dist, next(seq), i, j))

    for i in range(len(clusters)):
        push_candidates(i)

    alive_count = len(clusters)
    while alive_count > 1:
        while True:
            if not heap:
                # Refresh: candidates exhausted (stale entries); rebuild.
                for i, c in enumerate(clusters):
                    if c.alive:
                        push_candidates(i)
            dist, _s, i, j = heapq.heappop(heap)
            if clusters[i].alive and clusters[j].alive:
                break
        a, b = clusters[i], clusters[j]
        total = a.count + b.count
        center = Point(
            (a.center.x * a.count + b.center.x * b.count) / total,
            (a.center.y * a.count + b.center.y * b.count) / total,
        )
        new_node: CellId = ("opt", next(counter))
        merges.append((new_node, a.node, b.node, center))
        a.alive = False
        b.alive = False
        clusters.append(_Cluster(new_node, center, total))
        push_candidates(len(clusters) - 1)
        alive_count -= 1

    # The last merge's node is the root; build the ClockTree top-down.
    root_node, _, _, root_center = merges[-1]
    tree = ClockTree(root_node, root_center)
    child_map: Dict[CellId, Tuple[CellId, CellId]] = {
        node: (left, right) for node, left, right, _c in merges
    }
    position: Dict[CellId, Point] = {cell: array.layout[cell] for cell in cells}
    for node, _l, _r, c in merges:
        position[node] = c

    stack: List[CellId] = [root_node]
    while stack:
        node = stack.pop()
        for child in child_map.get(node, ()):  # leaves have no entry
            tree.add_child(node, child, position[child])
            if child in child_map:
                stack.append(child)
    return tree


def max_pair_path_length(tree: ClockTree, array: ProcessorArray) -> float:
    """Largest tree-path ``s`` over communicating pairs — the quantity the
    summation model turns into skew."""
    return max(
        (tree.path_length(a, b) for a, b in array.communicating_pairs()),
        default=0.0,
    )
