"""Buffered (pipelined) clock distribution — assumption A7.

Long clock wires are replaced by strings of buffers spaced a constant
distance apart, so each unbuffered segment has constant delay and the
distribution time ``tau`` of a single clock event becomes a constant
independent of array size; several clock events can then be in flight along
the tree at once ("pipelined clocking").

:class:`BufferedClockTree` takes a geometric :class:`ClockTree`, slices its
edges into segments of at most ``buffer_spacing``, and assigns each segment
a wire delay (per-unit delay drawn from a :class:`VariationProcess` — the
``m ± epsilon`` of Section III) plus a buffer delay (drawn from an
:class:`InverterPairModel`, carrying rise/fall asymmetry — Section VII).
Delays are sampled once at construction: assumption A8 (time-invariance)
holds by construction; call :meth:`resample` to model A8 breaking.

The resulting *empirical* skews can be compared against the difference- and
summation-model bounds, which is exactly what the model-validation tests and
the Fig. 1/2 bench do.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.clocktree.tree import ClockTree
from repro.delay.buffer import InverterPairModel
from repro.delay.variation import NoVariation, VariationProcess

NodeId = Hashable


class BufferedClockTree:
    """A clock tree with inserted buffers and concrete per-segment delays."""

    def __init__(
        self,
        tree: ClockTree,
        buffer_spacing: float = 1.0,
        wire_variation: Optional[VariationProcess] = None,
        buffer_model: Optional[InverterPairModel] = None,
    ) -> None:
        if buffer_spacing <= 0:
            raise ValueError("buffer spacing must be positive")
        self.tree = tree
        self.buffer_spacing = buffer_spacing
        self._wire_variation = wire_variation or NoVariation(m=1.0)
        self._buffer_model = buffer_model or InverterPairModel(nominal=buffer_spacing)
        self._arrival_rise: Dict[NodeId, float] = {}
        self._arrival_fall: Dict[NodeId, float] = {}
        self._segment_delays: List[float] = []
        self._buffer_count = 0
        # Lazy per-build arrival arrays (aligned with the tree's dense
        # node numbering) for the batched skew kernel.
        self._arrival_vectors: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # Monotone rebuild counter; downstream memoizers (compiled trial
        # contexts, the STA analyzer) key their caches on it so a
        # resample() is never observed through stale data.
        self._version = 0
        # Tree version this build reflects; _sync() rebuilds when the
        # geometric tree mutated (growth *or* an edge-length retune).
        self._tree_version = -1
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        """Sample every segment's delay and accumulate arrivals root-down.

        Nodes are visited in tree insertion order (parents precede children
        by construction), so sampling is deterministic for a fixed tree and
        seed — that determinism *is* assumption A8.
        """
        self._version += 1
        self._wire_variation.reset()
        self._buffer_model.reset()
        self._arrival_rise = {self.tree.root: 0.0}
        self._arrival_fall = {self.tree.root: 0.0}
        self._segment_delays = []
        self._buffer_count = 0
        self._arrival_vectors = None
        for node in self.tree.nodes():
            if node == self.tree.root:
                continue
            parent = self.tree.parent(node)
            length = self.tree.edge_length(node)
            rise, fall = self._edge_delay(parent, node, length)
            self._arrival_rise[node] = self._arrival_rise[parent] + rise
            self._arrival_fall[node] = self._arrival_fall[parent] + fall
        self._tree_version = self.tree.version

    def _sync(self) -> None:
        """Rebuild when the geometric tree mutated since the last build.

        Catches both growth (a grafted subtree) and in-place edge-length
        retunes — the latter changes segment counts and delays without
        changing the node count, which the old length-based staleness
        check missed.  The rebuild is deterministic: the variation
        process replays from its seed, so for pure growth the existing
        nodes keep their delays.
        """
        if self._tree_version != self.tree.version:
            self._build()

    def _edge_delay(self, parent, node, length: float) -> Tuple[float, float]:
        """Rising/falling delay of one tree edge after buffer insertion.

        Segment delays are sampled *at* each segment's midpoint (straight-
        line interpolation between endpoints), so spatially correlated
        variation processes see the wire's physical location.
        """
        if length <= 0:
            return 0.0, 0.0
        segments = max(1, math.ceil(length / self.buffer_spacing - 1e-12))
        seg_length = length / segments
        p0 = self.tree.position(parent)
        p1 = self.tree.position(node)
        rise_total = 0.0
        fall_total = 0.0
        for i in range(segments):
            frac = (i + 0.5) / segments
            mid_x = p0.x + (p1.x - p0.x) * frac
            mid_y = p0.y + (p1.y - p0.y) * frac
            wire = seg_length * self._wire_variation.sample_at(mid_x, mid_y)
            buf = self._buffer_model.sample_stage()
            self._buffer_count += 1
            rise_total += wire + buf.delay_rise
            fall_total += wire + buf.delay_fall
            self._segment_delays.append(wire + buf.max_delay)
        return rise_total, fall_total

    def resample(self, seed: int) -> None:
        """Redraw all delays with a new seed — the A8-broken scenario where
        physical conditions drift between clock events."""
        self._wire_variation.resample(seed)
        self._buffer_model = self._buffer_model.reseeded(seed)
        self._build()

    # ------------------------------------------------------------------
    # timing queries
    # ------------------------------------------------------------------
    @property
    def buffer_count(self) -> int:
        self._sync()
        return self._buffer_count

    @property
    def version(self) -> int:
        """Monotone counter bumped on every (re)build.  Cache any quantity
        derived from the sampled delays against this value; a changed
        version means :meth:`resample` (or a tree-growth rebuild) redrew
        them."""
        return self._version

    def arrival(self, node: NodeId, rising: bool = True) -> float:
        """Arrival time of a clock edge launched from the root at t = 0."""
        self._sync()
        return self._arrival_rise[node] if rising else self._arrival_fall[node]

    def latency(self, rising: bool = True) -> float:
        """Worst-case root-to-node arrival (the pipelined analogue of the
        equipotential ``alpha * P`` of A6; here it grows with size but does
        not limit the period)."""
        self._sync()
        table = self._arrival_rise if rising else self._arrival_fall
        return max(table.values())

    def tau(self) -> float:
        """A7's ``tau``: the largest delay of a single buffer-plus-segment —
        the time to distribute a clock event across one unbuffered stretch.
        Constant in array size for fixed spacing (tested)."""
        self._sync()
        return max(self._segment_delays, default=0.0)

    def skew(self, a: NodeId, b: NodeId, rising: bool = True) -> float:
        """Empirical skew: difference of concrete arrival times."""
        return abs(self.arrival(a, rising) - self.arrival(b, rising))

    def _vectors(self) -> Tuple[np.ndarray, np.ndarray]:
        """Rise/fall arrival arrays aligned with the tree's dense node
        numbering (lazy, per build; ``resample`` rebuilds arrivals and
        drops them).  Sharing the tree's numbering lets the skew kernel
        reuse the tree's memoized pair-to-id translation."""
        self._sync()
        if self._arrival_vectors is None:
            index = self.tree.lca_index()
            n = len(index)
            rise = np.fromiter(
                (self._arrival_rise[index.node(i)] for i in range(n)),
                dtype=np.float64, count=n,
            )
            fall = np.fromiter(
                (self._arrival_fall[index.node(i)] for i in range(n)),
                dtype=np.float64, count=n,
            )
            self._arrival_vectors = (rise, fall)
        return self._arrival_vectors

    def skew_batch(
        self, pairs: Sequence[Tuple[NodeId, NodeId]], rising: bool = True
    ) -> np.ndarray:
        """Empirical skew of every pair at once, as a float64 array.

        Same arithmetic as :meth:`skew` (``|arrival(a) - arrival(b)|``
        on the identical per-node arrivals), so batch equals scalar
        exactly.
        """
        pairs = pairs if isinstance(pairs, (list, tuple)) else list(pairs)
        rise, fall = self._vectors()
        arrivals = rise if rising else fall
        a_ids, b_ids = self.tree.pair_ids(pairs)
        return np.abs(arrivals[a_ids] - arrivals[b_ids])

    def max_skew(self, pairs: Iterable[Tuple[NodeId, NodeId]], rising: bool = True) -> float:
        """``sigma``: the maximum empirical skew over communicating pairs
        (batched; equal to the per-pair scalar maximum)."""
        pairs = pairs if isinstance(pairs, (list, tuple)) else list(pairs)
        if not pairs:
            return 0.0
        return float(self.skew_batch(pairs, rising).max())

    def max_skew_scalar(
        self, pairs: Iterable[Tuple[NodeId, NodeId]], rising: bool = True
    ) -> float:
        """Per-pair scalar reference for :meth:`max_skew` — the baseline
        the perf-regression suite compares the batched kernel against."""
        return max((self.skew(a, b, rising) for a, b in pairs), default=0.0)

    def pulse_distortion(self, node: NodeId) -> float:
        """|rising - falling| cumulative arrival discrepancy at ``node`` —
        the random walk of Section VII.  A clock pulse narrows or widens by
        this much on its way from the root; the pipelined period must exceed
        it or pulses vanish."""
        self._sync()
        return abs(self._arrival_rise[node] - self._arrival_fall[node])

    def max_pulse_distortion(self) -> float:
        return max(self.pulse_distortion(n) for n in self.tree.nodes())

    def events_in_flight(self, period: float) -> float:
        """How many clock events travel the tree simultaneously at the given
        period — the "pipelining depth" of pipelined clocking."""
        if period <= 0:
            raise ValueError("period must be positive")
        return self.latency() / period
