"""The clock tree ``CLK`` (assumption A4) and its path metrics.

A :class:`ClockTree` is a rooted tree whose nodes sit at planar positions
and whose edges carry explicit physical lengths (defaulting to the Manhattan
distance between endpoints; explicit lengths let equidistant H-trees and
delay-tuned trees represent "electrical length").  Binary arity is the
paper's assumption and the default, relaxable for deliberately non-binary
comparison schemes (star/equipotential hubs).

The two quantities every skew model consumes are defined here:

* ``path_difference(a, b)`` — the *d* of the difference model (A9): the
  positive difference of the two nodes' root distances, equivalently the
  difference of their distances to their lowest common ancestor (Fig. 1).
* ``path_length(a, b)`` — the *s* of the summation model (A10/A11): the
  length of the tree path between the nodes, i.e. the *sum* of their
  distances to the LCA (Fig. 2).

``s >= d >= 0`` always (tested as a hypothesis property).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional

from repro.geometry.point import Point

NodeId = Hashable


class ClockTree:
    """A rooted clock distribution tree with physical edge lengths."""

    def __init__(
        self, root: NodeId, root_position: Point, max_children: int = 2
    ) -> None:
        if max_children < 1:
            raise ValueError("max_children must be at least 1")
        self._root = root
        self._max_children = max_children
        self._position: Dict[NodeId, Point] = {root: root_position}
        self._parent: Dict[NodeId, Optional[NodeId]] = {root: None}
        self._children: Dict[NodeId, List[NodeId]] = {root: []}
        self._edge_length: Dict[NodeId, float] = {}  # keyed by child
        # Lazy caches, cleared on mutation.
        self._root_distance: Dict[NodeId, float] = {root: 0.0}
        self._depth: Dict[NodeId, int] = {root: 0}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_child(
        self,
        parent: NodeId,
        node: NodeId,
        position: Point,
        length: Optional[float] = None,
    ) -> None:
        """Attach ``node`` under ``parent``.

        ``length`` defaults to the Manhattan distance between the two nodes'
        positions; pass an explicit value to model routed detours or
        delay-tuned wiring.  Zero lengths are allowed (a cell sitting exactly
        at a tree tap point).
        """
        if node in self._position:
            raise ValueError(f"node {node!r} is already in the tree")
        if parent not in self._position:
            raise KeyError(f"parent {parent!r} is not in the tree")
        if len(self._children[parent]) >= self._max_children:
            raise ValueError(
                f"node {parent!r} already has {self._max_children} children "
                f"(CLK is a binary tree per A4)"
            )
        if length is None:
            length = self._position[parent].manhattan(position)
        if length < 0:
            raise ValueError("edge length must be non-negative")
        self._position[node] = position
        self._parent[node] = parent
        self._children[node] = []
        self._children[parent].append(node)
        self._edge_length[node] = float(length)
        self._root_distance[node] = self._root_distance[parent] + float(length)
        self._depth[node] = self._depth[parent] + 1

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    @property
    def root(self) -> NodeId:
        return self._root

    @property
    def max_children(self) -> int:
        return self._max_children

    def __contains__(self, node: NodeId) -> bool:
        return node in self._position

    def __len__(self) -> int:
        return len(self._position)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._position)

    def nodes(self) -> List[NodeId]:
        return list(self._position)

    def leaves(self) -> List[NodeId]:
        return [n for n, ch in self._children.items() if not ch]

    def parent(self, node: NodeId) -> Optional[NodeId]:
        return self._parent[node]

    def children(self, node: NodeId) -> List[NodeId]:
        return list(self._children[node])

    def children_map(self) -> Dict[NodeId, List[NodeId]]:
        """The ``children`` mapping in the form the Lemma 5 separator takes."""
        return {n: list(ch) for n, ch in self._children.items()}

    def position(self, node: NodeId) -> Point:
        return self._position[node]

    def edge_length(self, child: NodeId) -> float:
        """Length of the edge from ``child`` to its parent."""
        if child == self._root:
            raise ValueError("the root has no parent edge")
        return self._edge_length[child]

    def depth(self, node: NodeId) -> int:
        """Hop count from the root."""
        return self._depth[node]

    def subtree_nodes(self, node: NodeId) -> List[NodeId]:
        out: List[NodeId] = []
        stack = [node]
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(self._children[current])
        return out

    # ------------------------------------------------------------------
    # path metrics (the d and s of the skew models)
    # ------------------------------------------------------------------
    def root_distance(self, node: NodeId) -> float:
        """Physical length of the path from the root to ``node``."""
        return self._root_distance[node]

    def lca(self, a: NodeId, b: NodeId) -> NodeId:
        """Lowest common ancestor of two nodes."""
        da, db = self._depth[a], self._depth[b]
        while da > db:
            a = self._parent[a]
            da -= 1
        while db > da:
            b = self._parent[b]
            db -= 1
        while a != b:
            a = self._parent[a]
            b = self._parent[b]
        return a

    def path_length(self, a: NodeId, b: NodeId) -> float:
        """``s``: physical length of the tree path between ``a`` and ``b``
        (sum of both nodes' distances to their LCA) — summation model."""
        ancestor = self.lca(a, b)
        return (
            self._root_distance[a]
            + self._root_distance[b]
            - 2.0 * self._root_distance[ancestor]
        )

    def path_difference(self, a: NodeId, b: NodeId) -> float:
        """``d``: positive difference of root distances — difference model."""
        return abs(self._root_distance[a] - self._root_distance[b])

    def longest_root_to_leaf(self) -> float:
        """``P``: the longest root-to-leaf path length, which lower-bounds
        the equipotential distribution time (A6)."""
        leaves = self.leaves()
        if not leaves:
            return 0.0
        return max(self._root_distance[leaf] for leaf in leaves)

    def total_wire_length(self) -> float:
        """Sum of all edge lengths; with unit wire width (A3) this is the
        clock tree's area contribution (Lemma 1's accounting)."""
        return sum(self._edge_length.values())

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def is_equidistant(self, nodes: Iterable[NodeId], tolerance: float = 1e-9) -> bool:
        """True when all given nodes have equal root distance — the property
        H-tree clocking establishes so that the difference model sees d = 0."""
        distances = [self._root_distance[n] for n in nodes]
        if not distances:
            return True
        return max(distances) - min(distances) <= tolerance

    def validate(self) -> None:
        """Check structural invariants (parent/child consistency, arity)."""
        for node, kids in self._children.items():
            if len(kids) > self._max_children:
                raise AssertionError(f"node {node!r} exceeds arity")
            for kid in kids:
                if self._parent[kid] != node:
                    raise AssertionError(f"parent pointer of {kid!r} is wrong")
        # Every non-root node must reach the root.
        for node in self._position:
            seen = set()
            current: Optional[NodeId] = node
            while current is not None:
                if current in seen:
                    raise AssertionError(f"cycle through {current!r}")
                seen.add(current)
                current = self._parent[current]
            if self._root not in seen:
                raise AssertionError(f"{node!r} does not reach the root")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClockTree(root={self._root!r}, {len(self._position)} nodes, "
            f"P={self.longest_root_to_leaf():.3g})"
        )
