"""The clock tree ``CLK`` (assumption A4) and its path metrics.

A :class:`ClockTree` is a rooted tree whose nodes sit at planar positions
and whose edges carry explicit physical lengths (defaulting to the Manhattan
distance between endpoints; explicit lengths let equidistant H-trees and
delay-tuned trees represent "electrical length").  Binary arity is the
paper's assumption and the default, relaxable for deliberately non-binary
comparison schemes (star/equipotential hubs).

The two quantities every skew model consumes are defined here:

* ``path_difference(a, b)`` — the *d* of the difference model (A9): the
  positive difference of the two nodes' root distances, equivalently the
  difference of their distances to their lowest common ancestor (Fig. 1).
* ``path_length(a, b)`` — the *s* of the summation model (A10/A11): the
  length of the tree path between the nodes, i.e. the *sum* of their
  distances to the LCA (Fig. 2).

``s >= d >= 0`` always (tested as a hypothesis property).

Trees are mutable in two ways, both versioned (see :attr:`version`):

* ``add_child`` grows the tree (the ECO ``graft_subtree`` edit rides it);
* ``set_edge_length`` retunes one existing edge in place (the ECO
  ``resize_buffer`` edit), shifting the whole subtree's root distances
  with one vectorized in-place add on the shared dense store — the live
  LCA index never rebuilds.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.clocktree.lca import DenseTreeStore, LiftingLCAIndex, _gather_ids
from repro.geometry.point import Point

NodeId = Hashable


def _pairs_fingerprint(pairs: Sequence) -> Tuple:
    """Cheap mutation guard for the pair-ids memo: length + endpoints."""
    return (len(pairs), pairs[0], pairs[-1]) if pairs else (0,)


class ClockTree:
    """A rooted clock distribution tree with physical edge lengths."""

    def __init__(
        self, root: NodeId, root_position: Point, max_children: int = 2
    ) -> None:
        if max_children < 1:
            raise ValueError("max_children must be at least 1")
        self._root = root
        self._max_children = max_children
        self._position: Dict[NodeId, Point] = {root: root_position}
        self._parent: Dict[NodeId, Optional[NodeId]] = {root: None}
        self._children: Dict[NodeId, List[NodeId]] = {root: []}
        self._edge_length: Dict[NodeId, float] = {}  # keyed by child
        # The dense insertion-order arrays (ids, parents, depths, root
        # distances) live in a DenseTreeStore shared with the LCA index:
        # parents always precede children, and the root's parent is itself
        # (the lifting fixed point).  Single source of truth for depths
        # and root distances — scalar queries read it too.
        self._store = DenseTreeStore(root)
        # Bumped on every structural or edge-length mutation; consumers
        # (BufferedClockTree, STAAnalyzer fingerprints, ECO sessions) use
        # it as a cheap staleness tripwire.
        self._version = 0
        # Lazy caches.  The LCA index re-synchronizes itself against the
        # store, so mutation never drops it; the leaves cache dies on
        # add_child and the path-metric memo dies on set_edge_length.
        self._lca_index: Optional[LiftingLCAIndex] = None
        self._leaves_cache: Optional[List[NodeId]] = None
        self._pair_ids_memo: Dict[int, tuple] = {}
        self._pair_metrics_memo: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # construction and mutation
    # ------------------------------------------------------------------
    def add_child(
        self,
        parent: NodeId,
        node: NodeId,
        position: Point,
        length: Optional[float] = None,
    ) -> None:
        """Attach ``node`` under ``parent``.

        ``length`` defaults to the Manhattan distance between the two nodes'
        positions; pass an explicit value to model routed detours or
        delay-tuned wiring.  Zero lengths are allowed (a cell sitting exactly
        at a tree tap point).

        Appending never invalidates the LCA index (it extends itself
        lazily) nor the pair-metric memos (existing nodes' root distances
        are untouched); only the leaves cache is dropped.
        """
        if node in self._position:
            raise ValueError(f"node {node!r} is already in the tree")
        if parent not in self._position:
            raise KeyError(f"parent {parent!r} is not in the tree")
        if len(self._children[parent]) >= self._max_children:
            raise ValueError(
                f"node {parent!r} already has {self._max_children} children "
                f"(CLK is a binary tree per A4)"
            )
        if length is None:
            length = self._position[parent].manhattan(position)
        if length < 0:
            raise ValueError("edge length must be non-negative")
        self._position[node] = position
        self._parent[node] = parent
        self._children[node] = []
        self._children[parent].append(node)
        self._edge_length[node] = float(length)
        store = self._store
        pid = store.id[parent]
        store.append(
            node,
            pid,
            int(store.depth[pid]) + 1,
            float(store.rd[pid] + float(length)),
        )
        self._leaves_cache = None
        self._version += 1

    def set_edge_length(self, child: NodeId, length: float) -> None:
        """Retune the edge above ``child`` in place (the ECO *resize* edit).

        The whole subtree under ``child`` shifts by the length delta: one
        vectorized in-place add over the shared dense store, visible to
        the live LCA index without any rebuild.  Drops the path-metric
        memo (cached ``(d, s)`` arrays are stale) but keeps the pair-id
        memo (dense ids are stable), and bumps :attr:`version`.

        Note the float caveat: the shift is applied in floating point, so
        a pair with *both* endpoints inside the subtree may still see its
        metrics move by a rounding ulp — consumers that promise bit-exact
        agreement with a fresh recompute must refresh those pairs too.
        """
        if child == self._root:
            raise ValueError("the root has no parent edge")
        if child not in self._position:
            raise KeyError(f"node {child!r} is not in the tree")
        if length < 0:
            raise ValueError("edge length must be non-negative")
        delta = float(length) - self._edge_length[child]
        if delta == 0.0:
            return
        self._edge_length[child] = float(length)
        ids = _gather_ids(self._store.id, self.subtree_nodes(child))
        self._store.rd[ids] += delta
        self._pair_metrics_memo.clear()
        self._version += 1

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    @property
    def root(self) -> NodeId:
        return self._root

    @property
    def max_children(self) -> int:
        return self._max_children

    @property
    def version(self) -> int:
        """Monotonic mutation counter (``add_child`` / ``set_edge_length``)."""
        return self._version

    @property
    def dense_store(self) -> DenseTreeStore:
        """The shared dense arrays (exposed for index builds and perf
        harnesses; treat as read-only outside this module)."""
        return self._store

    def __contains__(self, node: NodeId) -> bool:
        return node in self._position

    def __len__(self) -> int:
        return len(self._position)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._position)

    def nodes(self) -> List[NodeId]:
        return list(self._position)

    def leaves(self) -> List[NodeId]:
        """Nodes with no children.  Cached until the next ``add_child``
        (the only structural mutation); callers get a fresh copy each call."""
        if self._leaves_cache is None:
            self._leaves_cache = [n for n, ch in self._children.items() if not ch]
        return list(self._leaves_cache)

    def parent(self, node: NodeId) -> Optional[NodeId]:
        return self._parent[node]

    def children(self, node: NodeId) -> List[NodeId]:
        return list(self._children[node])

    def children_map(self) -> Dict[NodeId, List[NodeId]]:
        """The ``children`` mapping in the form the Lemma 5 separator takes."""
        return {n: list(ch) for n, ch in self._children.items()}

    def position(self, node: NodeId) -> Point:
        return self._position[node]

    def edge_length(self, child: NodeId) -> float:
        """Length of the edge from ``child`` to its parent."""
        if child == self._root:
            raise ValueError("the root has no parent edge")
        return self._edge_length[child]

    def depth(self, node: NodeId) -> int:
        """Hop count from the root."""
        return int(self._store.depth[self._store.id[node]])

    def subtree_nodes(self, node: NodeId) -> List[NodeId]:
        out: List[NodeId] = []
        stack = [node]
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(self._children[current])
        return out

    # ------------------------------------------------------------------
    # path metrics (the d and s of the skew models)
    # ------------------------------------------------------------------
    def root_distance(self, node: NodeId) -> float:
        """Physical length of the path from the root to ``node``."""
        return float(self._store.rd[self._store.id[node]])

    def lca(self, a: NodeId, b: NodeId) -> NodeId:
        """Lowest common ancestor of two nodes."""
        da, db = self.depth(a), self.depth(b)
        while da > db:
            a = self._parent[a]
            da -= 1
        while db > da:
            b = self._parent[b]
            db -= 1
        while a != b:
            a = self._parent[a]
            b = self._parent[b]
        return a

    def path_length(self, a: NodeId, b: NodeId) -> float:
        """``s``: physical length of the tree path between ``a`` and ``b``
        (sum of both nodes' distances to their LCA) — summation model."""
        ancestor = self.lca(a, b)
        idx = self._store.id
        rd = self._store.rd
        return float(rd[idx[a]] + rd[idx[b]] - 2.0 * rd[idx[ancestor]])

    def path_difference(self, a: NodeId, b: NodeId) -> float:
        """``d``: positive difference of root distances — difference model."""
        idx = self._store.id
        rd = self._store.rd
        return float(abs(rd[idx[a]] - rd[idx[b]]))

    # ------------------------------------------------------------------
    # batched path metrics (the vectorized kernels the skew bounds ride)
    # ------------------------------------------------------------------
    def lca_index(self) -> LiftingLCAIndex:
        """The lazily built batched LCA index (binary lifting).

        Shares the tree's dense store and re-synchronizes itself before
        every query, so it is built at most once per tree: grafts extend
        its lifting table incrementally and edge retunes flow through the
        shared root-distance buffer with no rebuild at all.  Exposed so
        callers holding many pair sets can translate nodes to dense ids
        once and query with raw arrays.
        """
        if self._lca_index is None:
            self._lca_index = LiftingLCAIndex(self._store)
        return self._lca_index

    def pair_ids(
        self, pairs: Sequence[Tuple[NodeId, NodeId]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Dense-id arrays ``(a_ids, b_ids)`` for a sequence of pairs.

        Translating node ids through the index dict is the one
        Python-speed step left in the batch kernels, so the result is
        memoized per pair-list *object* (callers like
        ``ProcessorArray.communicating_pairs`` hand out a stable cached
        list, which every skew kernel then translates exactly once).
        Dense ids are stable under every tree mutation, so the memo never
        needs invalidation.  The memo holds a strong reference to the
        list — ``id`` reuse is impossible while cached — and a (length,
        endpoints) fingerprint guards against in-place mutation; mutating
        a memoized list in place in a way that preserves both endpoints
        is undefined.
        """
        index = self.lca_index()
        key = id(pairs)
        hit = self._pair_ids_memo.get(key)
        if hit is not None:
            ref, fingerprint, a_ids, b_ids = hit
            if ref is pairs and fingerprint == _pairs_fingerprint(pairs):
                return a_ids, b_ids
        count = len(pairs)
        a_ids = index.node_ids([a for a, _ in pairs])
        b_ids = index.node_ids([b for _, b in pairs])
        a_ids.flags.writeable = False
        b_ids.flags.writeable = False
        if count and len(self._pair_ids_memo) >= 8:
            self._pair_ids_memo.clear()
        if count:
            self._pair_ids_memo[key] = (
                pairs, _pairs_fingerprint(pairs), a_ids, b_ids
            )
        return a_ids, b_ids

    def path_metrics_batch(
        self, pairs: Sequence[Tuple[NodeId, NodeId]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(d, s)`` for every pair at once, as float64 arrays.

        ``d[i] == path_difference(*pairs[i])`` and
        ``s[i] == path_length(*pairs[i])`` exactly (same arithmetic, so
        the scalar/batch agreement is bit-for-bit, not within-epsilon).
        One index build plus one pair translation are amortized over all
        queries; like :meth:`pair_ids`, the result is memoized per
        pair-list object, so repeated bounds over the same communicating
        pairs (upper + lower, sweeps) reduce to pure model arithmetic.
        The memo is versioned against edge-length edits (the ``(d, s)``
        arrays go stale); dense-id memos survive.  The returned arrays
        are read-only.
        """
        pairs = pairs if isinstance(pairs, (list, tuple)) else list(pairs)
        if not pairs:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty.copy()
        key = id(pairs)
        hit = self._pair_metrics_memo.get(key)
        if hit is not None:
            ref, fingerprint, d, s = hit
            if ref is pairs and fingerprint == _pairs_fingerprint(pairs):
                return d, s
        a_ids, b_ids = self.pair_ids(pairs)
        d, s = self.lca_index().path_metrics_ids(a_ids, b_ids)
        d.flags.writeable = False
        s.flags.writeable = False
        if len(self._pair_metrics_memo) >= 8:
            self._pair_metrics_memo.clear()
        self._pair_metrics_memo[key] = (pairs, _pairs_fingerprint(pairs), d, s)
        return d, s

    def lca_batch(self, pairs: Sequence[Tuple[NodeId, NodeId]]) -> List[NodeId]:
        """Lowest common ancestor of every pair, via the batched LCA index."""
        pairs = pairs if isinstance(pairs, (list, tuple)) else list(pairs)
        if not pairs:
            return []
        index = self.lca_index()
        a_ids, b_ids = self.pair_ids(pairs)
        return [index.node(i) for i in index.lca_ids(a_ids, b_ids)]

    def longest_root_to_leaf(self) -> float:
        """``P``: the longest root-to-leaf path length, which lower-bounds
        the equipotential distribution time (A6)."""
        leaves = self.leaves()
        if not leaves:
            return 0.0
        ids = _gather_ids(self._store.id, leaves)
        return float(self._store.rd[ids].max())

    def total_wire_length(self) -> float:
        """Sum of all edge lengths; with unit wire width (A3) this is the
        clock tree's area contribution (Lemma 1's accounting)."""
        return sum(self._edge_length.values())

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def is_equidistant(self, nodes: Iterable[NodeId], tolerance: float = 1e-9) -> bool:
        """True when all given nodes have equal root distance — the property
        H-tree clocking establishes so that the difference model sees d = 0."""
        idx = self._store.id
        rd = self._store.rd
        distances = [float(rd[idx[n]]) for n in nodes]
        if not distances:
            return True
        return max(distances) - min(distances) <= tolerance

    def validate(self) -> None:
        """Check structural invariants (parent/child consistency, arity,
        root reachability) in a single O(n) pass.

        One DFS over child edges visits every node reachable from the
        root at most once; a node outside that set either sits on a
        parent cycle or hangs off a broken parent pointer, so the old
        per-node root-walk (O(n * depth)) adds nothing.
        """
        for node, kids in self._children.items():
            if len(kids) > self._max_children:
                raise AssertionError(f"node {node!r} exceeds arity")
            for kid in kids:
                if self._parent[kid] != node:
                    raise AssertionError(f"parent pointer of {kid!r} is wrong")
        reached = {self._root}
        stack = [self._root]
        while stack:
            for kid in self._children[stack.pop()]:
                if kid in reached:
                    raise AssertionError(f"{kid!r} reached twice — cycle or shared child")
                reached.add(kid)
                stack.append(kid)
        if len(reached) != len(self._position):
            stray = next(n for n in self._position if n not in reached)
            raise AssertionError(f"{stray!r} does not reach the root")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClockTree(root={self._root!r}, {len(self._position)} nodes, "
            f"P={self.longest_root_to_leaf():.3g})"
        )
