"""Clock distribution trees (assumption A4) and their construction.

``CLK`` is a rooted binary tree laid out in the plane; a cell can be clocked
if it is a node of CLK.  This package provides the tree structure with the
two path metrics the skew models consume (``d`` = difference of root
distances, ``s`` = tree path length), plus the constructions the paper
studies: H-trees (Fig. 3), spine/folded/comb schemes for one-dimensional
arrays (Figs. 4-6), buffered (pipelined) distribution (A7), and generic
builders (serpentine, k-d, star) used as comparison points in the
lower-bound experiments.
"""

from repro.clocktree.tree import ClockTree
from repro.clocktree.htree import (
    dissection_tree_for_linear,
    htree,
    htree_for_array,
    htree_for_grid,
)
from repro.clocktree.spine import (
    comb_linear_array,
    folded_linear_array,
    spine_clock,
    tapped_trunk,
)
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.builders import (
    comm_tree_clock,
    kdtree_clock,
    serpentine_clock,
    star_clock,
)
from repro.clocktree.optimize import greedy_clock_tree, max_pair_path_length
from repro.clocktree.tuning import tune_to_equidistant

__all__ = [
    "ClockTree",
    "htree",
    "htree_for_grid",
    "htree_for_array",
    "dissection_tree_for_linear",
    "spine_clock",
    "tapped_trunk",
    "folded_linear_array",
    "comb_linear_array",
    "BufferedClockTree",
    "serpentine_clock",
    "kdtree_clock",
    "star_clock",
    "comm_tree_clock",
    "greedy_clock_tree",
    "max_pair_path_length",
    "tune_to_equidistant",
]
