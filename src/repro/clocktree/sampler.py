"""Array-compiled Monte-Carlo skew sampling.

The Monte-Carlo experiments (Section III's ``m ± epsilon`` wire
variation) redraw every segment delay per trial and ask one number of
the tree: the maximum empirical skew over communicating pairs.  The
object path pays a full :class:`~repro.clocktree.buffered.BufferedClockTree`
rebuild per trial — O(segments) Python-level samples and dict updates —
which is what made the parallel Monte-Carlo rows a regression.

:class:`CompiledSkewSampler` compiles the tree *structure* once into
flat arrays (parent ids, per-edge segment slices, communicating-pair
ids) and evaluates each trial as a handful of vectorized operations over
one seeded uniform draw:

* per-segment delay ``seg_len * U(m - eps, m + eps) + buffer_delay``
  (iid bounded-uniform wire variation, deterministic buffer stage);
* per-edge totals accumulated left-to-right (same add order as a scalar
  loop over segments);
* arrivals accumulated level-by-level (one add per node, exactly the
  root-down recurrence);
* ``max |arrival(a) - arrival(b)|`` over pairs.

:meth:`~CompiledSkewSampler.sample_max_skew_scalar` is the per-node
Python oracle consuming the *same* uniform vector, so vectorized and
scalar trials agree bit for bit (the property suite drives this).
:meth:`~CompiledSkewSampler.arrays` / :meth:`~CompiledSkewSampler.from_arrays`
round-trip the compiled structure through raw numpy buffers so a
:class:`~repro.analysis.shared.SharedArena` can hand it to worker
processes without pickling.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.clocktree.tree import ClockTree

NodeId = Hashable


class CompiledSkewSampler:
    """Tree structure compiled to arrays; per-trial skew in vector ops.

    Construct via :meth:`from_tree` (compiles a geometric
    :class:`ClockTree` plus its communicating pairs) or
    :meth:`from_arrays` (rebuilds from shipped buffers).  All arrays use
    the tree's insertion order as dense node ids with the root at 0.
    """

    def __init__(
        self,
        parent: np.ndarray,
        depth: np.ndarray,
        seg_ptr: np.ndarray,
        seg_len: np.ndarray,
        pair_a: np.ndarray,
        pair_b: np.ndarray,
        m: float,
        epsilon: float,
        buffer_delay: float,
    ) -> None:
        self._parent = np.ascontiguousarray(parent, dtype=np.int64)
        self._depth = np.ascontiguousarray(depth, dtype=np.int64)
        self._seg_ptr = np.ascontiguousarray(seg_ptr, dtype=np.int64)
        self._seg_len = np.ascontiguousarray(seg_len, dtype=np.float64)
        self._pair_a = np.ascontiguousarray(pair_a, dtype=np.int64)
        self._pair_b = np.ascontiguousarray(pair_b, dtype=np.int64)
        n = len(self._parent)
        if self._depth.shape != (n,) or self._seg_ptr.shape != (n + 1,):
            raise ValueError("inconsistent structure arrays")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self._m = float(m)
        self._epsilon = float(epsilon)
        self._buffer_delay = float(buffer_delay)
        self._lo = self._m - self._epsilon
        self._hi = self._m + self._epsilon
        counts = np.diff(self._seg_ptr)
        self._seg_counts = counts
        # Gather plans, built once: per extra-segment index j, which
        # edges still have a j-th segment (left-to-right accumulation
        # keeps the scalar add order); per tree depth, which nodes live
        # there (parents always shallower, so arrivals resolve in one
        # pass per level).
        max_seg = int(counts.max()) if n else 0
        self._seg_sel: List[np.ndarray] = [
            np.nonzero(counts > j)[0] for j in range(max_seg)
        ]
        order = np.argsort(self._depth, kind="stable")
        max_depth = int(self._depth.max()) if n else 0
        bounds = np.searchsorted(
            self._depth[order], np.arange(max_depth + 2), side="left"
        )
        self._levels: List[np.ndarray] = [
            order[bounds[d]:bounds[d + 1]] for d in range(1, max_depth + 1)
        ]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_tree(
        cls,
        tree: ClockTree,
        pairs: Sequence[Tuple[NodeId, NodeId]],
        buffer_spacing: float = 1.0,
        m: float = 1.0,
        epsilon: float = 0.1,
        buffer_delay: Optional[float] = None,
    ) -> "CompiledSkewSampler":
        """Compile ``tree`` + communicating ``pairs``.

        Edges are sliced into ``max(1, ceil(length / buffer_spacing))``
        equal segments (the buffered-tree slicing rule); each segment
        carries one wire-variation draw plus the constant
        ``buffer_delay`` (default: ``buffer_spacing``, the nominal
        inverter-pair stage of A7).
        """
        if buffer_spacing <= 0:
            raise ValueError("buffer spacing must be positive")
        nodes = tree.nodes()
        if not nodes or nodes[0] != tree.root:
            raise ValueError("tree must list its root first")
        index: Dict[NodeId, int] = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        parent = np.zeros(n, dtype=np.int64)
        depth = np.zeros(n, dtype=np.int64)
        seg_ptr = np.zeros(n + 1, dtype=np.int64)
        seg_len: List[float] = []
        for i, node in enumerate(nodes):
            if i == 0:
                seg_ptr[1] = 0
                continue
            p = index[tree.parent(node)]
            parent[i] = p
            depth[i] = depth[p] + 1
            length = tree.edge_length(node)
            if length > 0:
                segments = max(1, math.ceil(length / buffer_spacing - 1e-12))
                seg_len.extend([length / segments] * segments)
            seg_ptr[i + 1] = len(seg_len)
        pair_list = pairs if isinstance(pairs, (list, tuple)) else list(pairs)
        pair_a = np.fromiter(
            (index[a] for a, _ in pair_list), dtype=np.int64, count=len(pair_list)
        )
        pair_b = np.fromiter(
            (index[b] for _, b in pair_list), dtype=np.int64, count=len(pair_list)
        )
        return cls(
            parent=parent,
            depth=depth,
            seg_ptr=seg_ptr,
            seg_len=np.asarray(seg_len, dtype=np.float64),
            pair_a=pair_a,
            pair_b=pair_b,
            m=m,
            epsilon=epsilon,
            buffer_delay=buffer_spacing if buffer_delay is None else buffer_delay,
        )

    # ------------------------------------------------------------------
    # trials
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self._parent)

    @property
    def n_segments(self) -> int:
        return len(self._seg_len)

    @property
    def n_pairs(self) -> int:
        return len(self._pair_a)

    def _noise(self, seed: int) -> np.ndarray:
        """The trial's per-segment delay multipliers — one seeded vector
        draw, shared verbatim by the vectorized and scalar paths."""
        rng = np.random.default_rng(seed)
        return rng.uniform(self._lo, self._hi, len(self._seg_len))

    def arrivals(self, seed: int) -> np.ndarray:
        """Per-node clock arrival times for one trial (dense order)."""
        seg_delay = self._seg_len * self._noise(seed) + self._buffer_delay
        n = len(self._parent)
        edge_total = np.zeros(n, dtype=np.float64)
        ptr = self._seg_ptr[:-1]
        for j, sel in enumerate(self._seg_sel):
            edge_total[sel] += seg_delay[ptr[sel] + j]
        arrival = np.zeros(n, dtype=np.float64)
        parent = self._parent
        for idx in self._levels:
            arrival[idx] = arrival[parent[idx]] + edge_total[idx]
        return arrival

    def sample_max_skew(self, seed: int) -> float:
        """Maximum empirical skew over the compiled pairs for one trial."""
        if not len(self._pair_a):
            return 0.0
        arrival = self.arrivals(seed)
        return float(np.abs(arrival[self._pair_a] - arrival[self._pair_b]).max())

    def sample_max_skew_scalar(self, seed: int) -> float:
        """Per-node Python reference for :meth:`sample_max_skew`: the
        same uniform draw walked with scalar loops (left-to-right
        segment adds, root-down arrival recurrence) — bit-identical."""
        mult = self._noise(seed)
        n = len(self._parent)
        parent = self._parent
        ptr = self._seg_ptr
        seg_len = self._seg_len
        buffer_delay = self._buffer_delay
        arrival = [0.0] * n
        for i in range(1, n):
            total = 0.0
            for s in range(ptr[i], ptr[i + 1]):
                total += seg_len[s] * mult[s] + buffer_delay
            arrival[i] = arrival[parent[i]] + total
        best = 0.0
        for a, b in zip(self._pair_a, self._pair_b):
            best = max(best, abs(arrival[a] - arrival[b]))
        return float(best)

    # ------------------------------------------------------------------
    # arena shipping
    # ------------------------------------------------------------------
    def arrays(self) -> Dict[str, np.ndarray]:
        """The sampler's defining arrays, keyed for
        :class:`~repro.analysis.shared.SharedArena` shipping.  Scalars
        travel in ``params`` so the manifest stays arrays-only."""
        return {
            "parent": self._parent,
            "depth": self._depth,
            "seg_ptr": self._seg_ptr,
            "seg_len": self._seg_len,
            "pair_a": self._pair_a,
            "pair_b": self._pair_b,
            "params": np.array(
                [self._m, self._epsilon, self._buffer_delay], dtype=np.float64
            ),
        }

    @classmethod
    def from_arrays(
        cls, arrays: Mapping[str, np.ndarray]
    ) -> "CompiledSkewSampler":
        """Rebuild from :meth:`arrays` output (possibly views into a
        shared-memory segment; the structure arrays are used
        zero-copy)."""
        params = np.asarray(arrays["params"], dtype=np.float64)
        return cls(
            parent=np.asarray(arrays["parent"]),
            depth=np.asarray(arrays["depth"]),
            seg_ptr=np.asarray(arrays["seg_ptr"]),
            seg_len=np.asarray(arrays["seg_len"]),
            pair_a=np.asarray(arrays["pair_a"]),
            pair_b=np.asarray(arrays["pair_b"]),
            m=float(params[0]),
            epsilon=float(params[1]),
            buffer_delay=float(params[2]),
        )
