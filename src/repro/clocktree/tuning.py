"""Delay tuning: equalizing clock path lengths after the fact.

The difference model "corresponds reasonably well to the practical
situation in high-speed systems made of discrete components, where clock
trees are often wired so that delay from the root is the same for all
cells" (Section III) — i.e. designers *tune* wire lengths.  Section VII
adds the caveat: "it must be possible to closely control the 'length' ...
of the clock tree.  This is possible in systems where wires are discrete
entities that can be tuned ... Whether this is true for integrated circuits
is another question."

:func:`tune_to_equidistant` performs that tuning on any clock tree: each
cell's final edge is lengthened (delay padding — serpentine wire, trimmed
cable) until every cell sits at the same electrical distance from the root.
The point the ablation bench makes: tuning drives the *difference* metric
``d`` to zero for every scheme, but can only *increase* the *summation*
metric ``s`` — tuning is a cure exactly and only in the difference-model
world.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Tuple

from repro.clocktree.tree import ClockTree

CellId = Hashable


def tune_to_equidistant(
    tree: ClockTree,
    cells: Iterable[CellId],
    target: Optional[float] = None,
) -> Tuple[ClockTree, float]:
    """A copy of ``tree`` with each cell's parent edge padded so that all
    cells are equidistant from the root.

    Every cell must be a *leaf* of the tree (padding an internal edge would
    re-tune everything below it); the common constructions — H-tree, kd,
    spine taps, dissection — all attach cells as leaves.  ``target``
    defaults to the farthest cell's distance (tuning can only lengthen).

    Returns ``(tuned_tree, total_added_length)``; the added wire is the
    tuning's area cost under A3.
    """
    cell_list = list(cells)
    if not cell_list:
        raise ValueError("no cells to tune")
    for cell in cell_list:
        if cell not in tree:
            raise KeyError(f"cell {cell!r} is not in the tree")
        if tree.children(cell):
            raise ValueError(
                f"cell {cell!r} is not a leaf; tuning pads final edges only"
            )
        if cell == tree.root:
            raise ValueError("cannot tune the root's own edge")

    farthest = max(tree.root_distance(c) for c in cell_list)
    if target is None:
        target = farthest
    elif target < farthest - 1e-12:
        raise ValueError(
            f"target {target} below the farthest cell ({farthest}); "
            f"tuning cannot shorten wires"
        )

    # Clamp at zero: a target within the 1e-12 validation tolerance below
    # the farthest cell would otherwise yield negative padding — a tuned
    # tree with a *shortened* wire, which tuning by definition cannot do.
    padding = {
        cell: max(0.0, target - tree.root_distance(cell)) for cell in cell_list
    }
    tuned = ClockTree(
        tree.root, tree.position(tree.root), max_children=tree.max_children
    )
    for node in tree.nodes():
        if node == tree.root:
            continue
        parent = tree.parent(node)
        length = tree.edge_length(node) + padding.get(node, 0.0)
        tuned.add_child(parent, node, tree.position(node), length=length)
    return tuned, sum(padding.values())
