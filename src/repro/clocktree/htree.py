"""H-tree clock distribution (Fig. 3, Lemma 1).

The H-tree recursively halves the layout region, placing each tree node at
its region's center; by symmetry every leaf is exactly the same physical
distance from the root, so under the difference model (A9) the skew between
*any* two cells is ``f(0)`` — a constant (Theorem 2).

The same construction applied to a one-dimensional array (Fig. 3(a)) is the
paper's cautionary example: neighbors that straddle a high split of the
dissection have a *tree-path* separation proportional to the array length,
so the scheme fails under the summation model (Section V opening remark).
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

from repro.arrays.model import ProcessorArray
from repro.clocktree.tree import ClockTree
from repro.geometry.point import Point

CellId = Hashable

ROOT = "clk_root"


def _next_power_of_two(n: int) -> int:
    if n < 1:
        raise ValueError("need a positive size")
    return 1 << (n - 1).bit_length()


def htree(rows: int, cols: int, spacing: float = 1.0) -> ClockTree:
    """An H-tree over a ``rows x cols`` grid of leaf points.

    ``rows`` and ``cols`` must be powers of two (pad with
    :func:`htree_for_grid` otherwise).  Leaf ``("leaf", r, c)`` sits at
    ``(c * spacing, r * spacing)``; internal nodes at region centers.  All
    leaves are equidistant from the root (asserted in tests, Lemma 1).
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    if rows & (rows - 1) or cols & (cols - 1):
        raise ValueError("htree needs power-of-two dimensions; use htree_for_grid")
    if spacing <= 0:
        raise ValueError("spacing must be positive")

    def center(r0: int, r1: int, c0: int, c1: int) -> Point:
        return Point((c0 + c1 - 1) / 2.0 * spacing, (r0 + r1 - 1) / 2.0 * spacing)

    tree = ClockTree(ROOT, center(0, rows, 0, cols))
    if rows == 1 and cols == 1:
        tree.add_child(ROOT, ("leaf", 0, 0), center(0, 1, 0, 1), length=0.0)
        return tree

    # Iterative recursion over half-open index regions [r0, r1) x [c0, c1).
    stack = [(ROOT, 0, rows, 0, cols)]
    counter = 0
    while stack:
        node, r0, r1, c0, c1 = stack.pop()
        height, width = r1 - r0, c1 - c0
        if height == 1 and width == 1:
            continue  # node already is the leaf for this unit region
        # Split the longer dimension (ties split columns first) so sibling
        # subtrees are congruent and root distances stay equal.
        if width >= height:
            mid = c0 + width // 2
            regions = ((r0, r1, c0, mid), (r0, r1, mid, c1))
        else:
            mid = r0 + height // 2
            regions = ((r0, mid, c0, c1), (mid, r1, c0, c1))
        for region in regions:
            rr0, rr1, cc0, cc1 = region
            if rr1 - rr0 == 1 and cc1 - cc0 == 1:
                child: CellId = ("leaf", rr0, cc0)
            else:
                counter += 1
                child = ("h", counter)
            tree.add_child(node, child, center(rr0, rr1, cc0, cc1))
            stack.append((child, rr0, rr1, cc0, cc1))
    return tree


def htree_for_grid(rows: int, cols: int, spacing: float = 1.0) -> ClockTree:
    """An H-tree covering a grid of arbitrary dimensions by padding each
    dimension up to a power of two (constant-factor area increase, the
    padding tolerated by Lemma 1)."""
    return htree(_next_power_of_two(rows), _next_power_of_two(cols), spacing)


def htree_for_array(
    array: ProcessorArray, spacing: float = 1.0, grid_shape: Optional[Tuple[int, int]] = None
) -> ClockTree:
    """H-tree clocking an array whose cells sit on integer grid positions.

    Builds the padded H-tree and grafts each cell as a zero-length child of
    the leaf at its position, so every cell keeps the equidistance property.
    Cells must lie on the ``spacing`` grid (mesh/hex/linear generators do).
    """
    if grid_shape is None:
        max_r = max_c = 0
        for cell in array.comm.nodes():
            p = array.layout[cell]
            max_c = max(max_c, int(round(p.x / spacing)))
            max_r = max(max_r, int(round(p.y / spacing)))
        grid_shape = (max_r + 1, max_c + 1)
    tree = htree_for_grid(grid_shape[0], grid_shape[1], spacing)
    for cell in array.comm.nodes():
        p = array.layout[cell]
        c = int(round(p.x / spacing))
        r = int(round(p.y / spacing))
        if abs(p.x - c * spacing) > 1e-9 or abs(p.y - r * spacing) > 1e-9:
            raise ValueError(f"cell {cell!r} is off the clocking grid")
        leaf = ("leaf", r, c)
        if leaf not in tree:
            raise ValueError(f"no H-tree leaf at grid position {(r, c)}")
        tree.add_child(leaf, cell, p, length=0.0)
    return tree


def dissection_tree_for_linear(array: ProcessorArray) -> ClockTree:
    """The Fig. 3(a) scheme: a balanced binary dissection of a linear array.

    All cells end up equidistant from the root (good under the difference
    model), but the two cells adjacent across the top-level split are
    connected by a tree path spanning the whole array — the summation-model
    failure the paper points out in Section V.

    Cells are assumed to be the integers ``0 .. n-1`` in data order, as the
    :func:`repro.arrays.topologies.linear_array` generator produces.  Exact
    equidistance of the cells holds for power-of-two ``n`` (odd splits make
    sibling region centers asymmetric); pad the array when d = 0 matters.
    """
    cells = sorted(array.comm.nodes())
    n = len(cells)
    if n < 1:
        raise ValueError("empty array")

    def midpoint(lo: int, hi: int) -> Point:
        a = array.layout[cells[lo]]
        b = array.layout[cells[hi - 1]]
        return a.midpoint(b)

    tree = ClockTree(ROOT, midpoint(0, n))
    stack = [(ROOT, 0, n)]
    counter = 0
    while stack:
        node, lo, hi = stack.pop()
        if hi - lo == 1:
            tree.add_child(node, cells[lo], array.layout[cells[lo]], length=0.0)
            continue
        mid = lo + (hi - lo) // 2
        for part in ((lo, mid), (mid, hi)):
            counter += 1
            child = ("d", counter)
            tree.add_child(node, child, midpoint(*part))
            stack.append((child, part[0], part[1]))
    return tree
