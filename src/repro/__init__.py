"""repro — a reproduction of Fisher & Kung, "Synchronizing Large VLSI
Processor Arrays" (ISCA 1983 / IEEE TC 1985).

The library models clocked synchronization of processor arrays end to end:

* planar layouts of communication graphs (``repro.geometry``,
  ``repro.graphs``, ``repro.arrays``);
* clock distribution trees — H-trees, spines, combs, buffered/pipelined
  trees (``repro.clocktree``) — over delay and variation models
  (``repro.delay``);
* the paper's skew models, clock-period accounting, theorems, the 2D
  lower-bound proof as an executable certificate, and the hybrid
  synchronization scheme (``repro.core``);
* discrete-event simulation of clocked, self-timed, and hybrid systems,
  plus the Section VII inverter-string experiment (``repro.sim``);
* Section VIII tree machines (``repro.treemachine``) and analysis tools
  (``repro.analysis``).

Quick taste::

    from repro import linear_array, spine_clock, SummationModel, max_skew_bound

    array = linear_array(1024)
    clk = spine_clock(array)
    sigma = max_skew_bound(clk, array.communicating_pairs(), SummationModel())
    # sigma is a constant -- Theorem 3: 1D arrays clock at any size.
"""

from repro.arrays import (
    LockstepExecutor,
    ProcessorArray,
    build_fir_array,
    build_matvec_array,
    build_mesh_matmul,
    build_odd_even_sorter,
    complete_binary_tree,
    hex_array,
    linear_array,
    mesh,
    ring,
    torus,
)
from repro.clocktree import (
    BufferedClockTree,
    ClockTree,
    comb_linear_array,
    comm_tree_clock,
    dissection_tree_for_linear,
    folded_linear_array,
    htree_for_array,
    kdtree_clock,
    serpentine_clock,
    spine_clock,
    star_clock,
)
from repro.core import (
    ClockParameters,
    DifferenceModel,
    HybridScheme,
    LowerBoundCertificate,
    PhysicalModel,
    SummationModel,
    build_hybrid,
    build_scheme,
    clock_period,
    equipotential_tau,
    lower_bound_value,
    max_skew_bound,
    pipelined_tau,
    prove_skew_lower_bound,
)
from repro.sim import (
    ClockSchedule,
    ClockedArraySimulator,
    InverterString,
    paper_calibrated_model,
    simulate_hybrid,
    simulate_selftimed_line,
    worst_case_path_probability,
)

__version__ = "1.0.0"

__all__ = [
    "ProcessorArray",
    "LockstepExecutor",
    "linear_array",
    "ring",
    "mesh",
    "torus",
    "hex_array",
    "complete_binary_tree",
    "build_fir_array",
    "build_matvec_array",
    "build_mesh_matmul",
    "build_odd_even_sorter",
    "ClockTree",
    "BufferedClockTree",
    "htree_for_array",
    "dissection_tree_for_linear",
    "spine_clock",
    "folded_linear_array",
    "comb_linear_array",
    "serpentine_clock",
    "kdtree_clock",
    "star_clock",
    "comm_tree_clock",
    "DifferenceModel",
    "SummationModel",
    "PhysicalModel",
    "max_skew_bound",
    "ClockParameters",
    "clock_period",
    "equipotential_tau",
    "pipelined_tau",
    "build_scheme",
    "prove_skew_lower_bound",
    "lower_bound_value",
    "LowerBoundCertificate",
    "HybridScheme",
    "build_hybrid",
    "ClockSchedule",
    "ClockedArraySimulator",
    "InverterString",
    "paper_calibrated_model",
    "simulate_hybrid",
    "simulate_selftimed_line",
    "worst_case_path_probability",
    "__version__",
]
