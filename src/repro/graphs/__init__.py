"""Graph substrate: COMM graphs, bisection width, tree separators.

Implements assumption A1 (directed communication graphs), Lemma 4 (mesh
bisection width) and its algorithmic generalizations, and Lemma 5 (the tree
edge separator used by the Section V-B lower-bound proof).
"""

from repro.graphs.comm import CommGraph
from repro.graphs.bisection import (
    BisectionResult,
    bisection_width_exact,
    bisection_width_kernighan_lin,
    bisection_width_spectral,
    bisection_width_upper_bound,
    mesh_bisection_lower_bound,
)
from repro.graphs.separators import SeparatorResult, tree_edge_separator

__all__ = [
    "CommGraph",
    "BisectionResult",
    "bisection_width_exact",
    "bisection_width_kernighan_lin",
    "bisection_width_spectral",
    "bisection_width_upper_bound",
    "mesh_bisection_lower_bound",
    "SeparatorResult",
    "tree_edge_separator",
]
