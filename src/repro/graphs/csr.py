"""CSR (compressed sparse row) COMM adjacency for large-N kernels.

:class:`~repro.graphs.comm.CommGraph` stores adjacency as dicts of
Python sets — the right structure for incremental construction and the
graph-theoretic queries (connectivity, bisection, separators), but a
million-cell mesh costs minutes of pure-Python ``add_edge`` calls and
gigabytes of set overhead before a single kernel runs.  The array
kernels only ever need the *predecessor lists in a fixed order*, so
this module provides that view directly:

* :class:`CSRAdjacency` — dense ids ``0..n-1`` with predecessor lists
  packed into the classic ``(indptr, indices)`` pair.  Predecessors are
  sorted by dense id within each row, which makes the representation
  canonical: two builds of the same graph compare equal.
* :func:`grid_csr` — the rectangular-mesh adjacency built with pure
  numpy index arithmetic: O(n) work, no per-cell Python loop, so a
  1024 x 1024 array (1,048,576 cells, ~4.2M directed edges) compiles in
  tens of milliseconds instead of the ~minute a ``CommGraph`` walk
  takes.
* :func:`csr_from_comm` — the general lowering from an existing
  ``CommGraph`` (Python-speed, O(n + e)); the reference the tests
  compare :func:`grid_csr` against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

import numpy as np

from repro.graphs.comm import CommGraph

NodeId = Hashable


@dataclass(frozen=True)
class CSRAdjacency:
    """Predecessor adjacency in CSR form over dense cell ids.

    ``indices[indptr[i]:indptr[i + 1]]`` are the predecessors of cell
    ``i``, sorted ascending.  ``nodes`` optionally carries the original
    cell ids in dense order (``None`` when cells *are* ``0..n-1``).
    """

    indptr: np.ndarray
    indices: np.ndarray
    nodes: Optional[List[NodeId]] = None

    @property
    def n_cells(self) -> int:
        return len(self.indptr) - 1

    @property
    def n_edges(self) -> int:
        """Number of directed edges (total predecessor-list length)."""
        return int(self.indptr[-1])

    def predecessors(self, i: int) -> np.ndarray:
        return self.indices[self.indptr[i]:self.indptr[i + 1]]

    def same_structure(self, other: "CSRAdjacency") -> bool:
        """Structural equality of the packed arrays (ignores ``nodes``)."""
        return bool(
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )


def grid_csr(rows: int, cols: int) -> CSRAdjacency:
    """Predecessor CSR of a bidirectional ``rows x cols`` mesh.

    Cell ``(r, c)`` gets dense id ``r * cols + c`` (row-major — the
    same insertion order :func:`repro.arrays.topologies.mesh` uses), and
    its predecessors are its up/left/right/down neighbors.  Built
    entirely from numpy index arithmetic: the four neighbor relations
    are each one shifted ``arange``, so the build is O(n) with no
    Python-level per-cell loop.  Equals
    ``csr_from_comm(mesh(rows, cols).comm)`` structurally (tested).
    """
    if rows < 1 or cols < 1:
        raise ValueError("mesh dimensions must be positive")
    n = rows * cols
    ids = np.arange(n, dtype=np.int64)
    r = ids // cols
    c = ids % cols
    # Predecessors of each cell in ascending dense-id order: up
    # (id - cols), left (id - 1), right (id + 1), down (id + cols).
    rel_dst: List[np.ndarray] = []
    rel_src: List[np.ndarray] = []
    for delta, mask in (
        (-cols, r > 0),
        (-1, c > 0),
        (1, c < cols - 1),
        (cols, r < rows - 1),
    ):
        sel = ids[mask]
        rel_dst.append(sel)
        rel_src.append(sel + delta)
    dst = np.concatenate(rel_dst)
    src = np.concatenate(rel_src)
    # Within a destination the four relations above are already in
    # ascending source order, so a stable sort on dst alone yields the
    # canonical (dst, src)-sorted layout.
    order = np.argsort(dst, kind="stable")
    indices = src[order]
    counts = np.bincount(dst, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRAdjacency(indptr=indptr, indices=indices, nodes=None)


def csr_from_comm(
    comm: CommGraph, cells: Optional[Sequence[NodeId]] = None
) -> CSRAdjacency:
    """Lower a :class:`CommGraph` to predecessor CSR.

    ``cells`` fixes the dense numbering (default: ``comm.nodes()``
    insertion order).  Predecessors are sorted by dense id within each
    row — the canonical order :func:`grid_csr` also produces — so the
    result is independent of set-iteration order.
    """
    cell_list = list(cells) if cells is not None else comm.nodes()
    index = {cell: i for i, cell in enumerate(cell_list)}
    n = len(cell_list)
    indptr = np.zeros(n + 1, dtype=np.int64)
    packed: List[int] = []
    for i, cell in enumerate(cell_list):
        preds = sorted(index[p] for p in comm.predecessors(cell))
        packed.extend(preds)
        indptr[i + 1] = len(packed)
    return CSRAdjacency(
        indptr=indptr,
        indices=np.asarray(packed, dtype=np.int64),
        nodes=cell_list,
    )
