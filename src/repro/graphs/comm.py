"""Directed communication graphs (assumption A1).

``COMM`` is a directed graph laid out in the plane: nodes are cells, edges
are wires that carry one data item per cycle from source to target.  Two
cells joined by an edge in either direction are *communicating cells*; clock
skew constraints (and the clock period, A5) are stated over communicating
pairs, so the class exposes the undirected pair set prominently.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

NodeId = Hashable
Edge = Tuple[NodeId, NodeId]


class CommGraph:
    """A directed graph of communicating cells.

    Nodes may be added explicitly (isolated hosts, boundary cells) or
    implicitly by adding edges.  Self-loops are rejected: a cell needs no
    synchronization with itself.
    """

    def __init__(
        self,
        edges: Optional[Iterable[Edge]] = None,
        nodes: Optional[Iterable[NodeId]] = None,
    ) -> None:
        self._succ: Dict[NodeId, Set[NodeId]] = {}
        self._pred: Dict[NodeId, Set[NodeId]] = {}
        # Monotone mutation counter; caches key on it (see version).
        self._version = 0
        self._pairs_cache: Optional[Tuple[int, List[Tuple[NodeId, NodeId]]]] = None
        self._edge_index_cache: Optional[Tuple[int, Dict[Edge, int]]] = None
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for src, dst in edges:
                self.add_edge(src, dst)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()
            self._version += 1

    def add_edge(self, src: NodeId, dst: NodeId) -> None:
        if src == dst:
            raise ValueError(f"self-loop on {src!r}: a cell does not communicate with itself")
        self.add_node(src)
        self.add_node(dst)
        if dst not in self._succ[src]:
            self._succ[src].add(dst)
            self._pred[dst].add(src)
            self._version += 1

    def add_bidirectional(self, a: NodeId, b: NodeId) -> None:
        """Add edges in both directions (common in systolic arrays where
        data streams flow both ways along the same neighbor link)."""
        self.add_edge(a, b)
        self.add_edge(b, a)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._succ

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._succ)

    @property
    def node_count(self) -> int:
        return len(self._succ)

    @property
    def version(self) -> int:
        """Mutation counter: bumps whenever a node or edge is actually
        added.  Derived caches (the pair list here, and any caller-side
        cache such as :meth:`ProcessorArray.communicating_pairs`) key on
        it and rebuild when it moves."""
        return self._version

    @property
    def edge_count(self) -> int:
        """Number of *directed* edges."""
        return sum(len(s) for s in self._succ.values())

    def nodes(self) -> List[NodeId]:
        return list(self._succ)

    def edges(self) -> List[Edge]:
        return [(u, v) for u, succ in self._succ.items() for v in succ]

    def edge_index(self) -> Dict[Edge, int]:
        """Row index of every directed edge, in :meth:`edges` order.

        This is the edge-to-slack-row map the incremental ECO engine
        uses to dirty exactly one row per repadded/retargeted edge.
        Cached against :attr:`version`; the returned dict is shared, so
        callers must treat it as read-only.
        """
        if self._edge_index_cache is None or self._edge_index_cache[0] != self._version:
            index = {edge: i for i, edge in enumerate(self.edges())}
            self._edge_index_cache = (self._version, index)
        return self._edge_index_cache[1]

    def successors(self, node: NodeId) -> Set[NodeId]:
        return set(self._succ[node])

    def predecessors(self, node: NodeId) -> Set[NodeId]:
        return set(self._pred[node])

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        """All cells communicating with ``node`` in either direction."""
        return self._succ[node] | self._pred[node]

    def has_edge(self, src: NodeId, dst: NodeId) -> bool:
        return src in self._succ and dst in self._succ[src]

    def degree(self, node: NodeId) -> int:
        """Undirected degree: number of distinct communicating partners."""
        return len(self.neighbors(node))

    def max_degree(self) -> int:
        return max((self.degree(n) for n in self._succ), default=0)

    # ------------------------------------------------------------------
    # communicating pairs (the objects skew bounds quantify over)
    # ------------------------------------------------------------------
    def communicating_pairs(self) -> List[Tuple[NodeId, NodeId]]:
        """Unordered pairs of cells connected by an edge in either direction.

        Each pair appears once; this is the index set of the max in
        ``sigma = max skew over communicating cells`` (A5).

        The list is cached against :attr:`version` (every skew bound and
        ``max_communication_distance`` call quantifies over it, so the
        old rebuild-per-call was a hot-loop tax); mutation invalidates
        it, and callers receive a fresh copy they may own.
        """
        if self._pairs_cache is None or self._pairs_cache[0] != self._version:
            seen: Set[FrozenSet[NodeId]] = set()
            pairs: List[Tuple[NodeId, NodeId]] = []
            for u, v in self.edges():
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    pairs.append((u, v))
            self._pairs_cache = (self._version, pairs)
        return list(self._pairs_cache[1])

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Weak connectivity (edge directions ignored)."""
        if not self._succ:
            return True
        start = next(iter(self._succ))
        seen = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for nxt in self.neighbors(node):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return len(seen) == len(self._succ)

    def undirected_components(self) -> List[Set[NodeId]]:
        remaining = set(self._succ)
        components: List[Set[NodeId]] = []
        while remaining:
            start = remaining.pop()
            comp = {start}
            frontier = deque([start])
            while frontier:
                node = frontier.popleft()
                for nxt in self.neighbors(node):
                    if nxt not in comp:
                        comp.add(nxt)
                        remaining.discard(nxt)
                        frontier.append(nxt)
            components.append(comp)
        return components

    def is_acyclic(self) -> bool:
        """True when the directed graph has no cycle.

        Acyclic COMM graphs admit the Section VIII pipelining transformation
        (pipeline registers on long edges).
        """
        indeg = {n: len(self._pred[n]) for n in self._succ}
        queue = deque(n for n, d in indeg.items() if d == 0)
        visited = 0
        while queue:
            node = queue.popleft()
            visited += 1
            for nxt in self._succ[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        return visited == len(self._succ)

    def undirected_distance(self, a: NodeId, b: NodeId) -> int:
        """Hop distance ignoring edge direction; ``-1`` if disconnected."""
        if a == b:
            return 0
        seen = {a}
        frontier = deque([(a, 0)])
        while frontier:
            node, dist = frontier.popleft()
            for nxt in self.neighbors(node):
                if nxt == b:
                    return dist + 1
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append((nxt, dist + 1))
        return -1

    def crossing_edges(
        self, part_a: Set[NodeId], part_b: Set[NodeId]
    ) -> List[Tuple[NodeId, NodeId]]:
        """Communicating pairs with one cell in each part.

        This is the quantity the lower-bound proof counts against the circle
        circumference (A3) and against the bisection width (Lemma 4).
        """
        out = []
        for u, v in self.communicating_pairs():
            if (u in part_a and v in part_b) or (u in part_b and v in part_a):
                out.append((u, v))
        return out

    def subgraph(self, keep: Set[NodeId]) -> "CommGraph":
        sub = CommGraph(nodes=[n for n in self._succ if n in keep])
        for u, v in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v)
        return sub

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CommGraph({self.node_count} nodes, {self.edge_count} directed edges)"
