"""Minimum bisection width (Lemma 4 and Theorem 6's ``W(N)``).

*Bisecting* a graph partitions its nodes into two parts, neither larger than
a fixed fraction of the whole; the *minimum bisection width* is the smallest
number of communicating pairs that must be cut.  The paper's Lemma 4 states
the classical fact that bisecting an ``n x n`` mesh cuts ``Omega(n)`` edges,
and Theorem 6 turns any bisection-width lower bound into a clock-skew lower
bound.

Three algorithms are provided:

* :func:`bisection_width_exact` — exhaustive search, exponential, for graphs
  of at most ~20 nodes; ground truth in tests.
* :func:`bisection_width_kernighan_lin` — the classical KL improvement
  heuristic; an *upper bound* on the true width.
* :func:`bisection_width_spectral` — Fiedler-vector split; another upper
  bound, good starting partition for KL.

plus :func:`mesh_bisection_lower_bound`, the analytic ``c * n`` bound used by
the lower-bound certificate.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

import numpy as np

from repro.graphs.comm import CommGraph

NodeId = Hashable


@dataclass(frozen=True)
class BisectionResult:
    """A concrete bisection: the two parts and the number of cut pairs."""

    part_a: FrozenSet[NodeId]
    part_b: FrozenSet[NodeId]
    cut_size: int

    @property
    def balance(self) -> float:
        """Fraction of nodes in the larger part (0.5 = perfectly balanced)."""
        total = len(self.part_a) + len(self.part_b)
        return max(len(self.part_a), len(self.part_b)) / total


def _cut_size(pairs: List[Tuple[NodeId, NodeId]], part_a: Set[NodeId]) -> int:
    return sum(1 for u, v in pairs if (u in part_a) != (v in part_a))


def _check_balance(n: int, max_fraction: float) -> int:
    if not 0.5 <= max_fraction < 1.0:
        raise ValueError("max_fraction must be in [0.5, 1)")
    if n < 2:
        raise ValueError("bisection needs at least two nodes")
    return int(max_fraction * n)


def bisection_width_exact(
    graph: CommGraph, max_fraction: float = 0.5, size_limit: int = 22
) -> BisectionResult:
    """Exhaustive minimum bisection.

    ``max_fraction`` bounds the larger part (the paper uses 23/30 in the
    lower-bound proof and 1/2 for the classical definition; 0.5 here means
    the larger part holds ``ceil(n/2)`` nodes).
    """
    nodes = graph.nodes()
    n = len(nodes)
    if n > size_limit:
        raise ValueError(
            f"exact bisection is exponential; {n} nodes exceeds limit {size_limit}"
        )
    largest = max(_check_balance(n, max_fraction), (n + 1) // 2)
    pairs = graph.communicating_pairs()

    best: Optional[BisectionResult] = None
    # Fix nodes[0] in part A to halve the search space.
    anchor, rest = nodes[0], nodes[1:]
    for size_a in range(n - largest, largest + 1):
        if size_a < 1 or n - size_a < 1:
            continue
        for combo in itertools.combinations(rest, size_a - 1):
            part_a = set(combo) | {anchor}
            cut = _cut_size(pairs, part_a)
            if best is None or cut < best.cut_size:
                best = BisectionResult(
                    frozenset(part_a), frozenset(set(nodes) - part_a), cut
                )
    assert best is not None
    return best


def bisection_width_kernighan_lin(
    graph: CommGraph,
    rounds: int = 10,
    seed: int = 0,
    initial: Optional[Set[NodeId]] = None,
) -> BisectionResult:
    """Kernighan-Lin heuristic bisection (upper bound on the true width).

    Runs the classical pass-until-no-gain loop from ``rounds`` random
    balanced starts (or from ``initial``) and keeps the best cut.
    """
    nodes = graph.nodes()
    n = len(nodes)
    _check_balance(n, 0.5)
    pairs = graph.communicating_pairs()
    adj: Dict[NodeId, Set[NodeId]] = {node: graph.neighbors(node) for node in nodes}
    rng = random.Random(seed)

    def one_run(part_a: Set[NodeId]) -> Tuple[Set[NodeId], int]:
        part_a = set(part_a)
        while True:
            part_b = set(nodes) - part_a
            # D-values: external minus internal degree.
            d = {}
            for node in nodes:
                own = part_a if node in part_a else part_b
                ext = sum(1 for m in adj[node] if m not in own)
                d[node] = ext - (len(adj[node]) - ext)
            locked: Set[NodeId] = set()
            gains: List[Tuple[int, NodeId, NodeId]] = []
            a_work, b_work = set(part_a), set(part_b)
            d_work = dict(d)
            for _ in range(min(len(a_work), len(b_work))):
                best_gain, best_pair = None, None
                for a in a_work:
                    if a in locked:
                        continue
                    for b in b_work:
                        if b in locked:
                            continue
                        cost = 2 if b in adj[a] else 0
                        gain = d_work[a] + d_work[b] - cost
                        if best_gain is None or gain > best_gain:
                            best_gain, best_pair = gain, (a, b)
                if best_pair is None:
                    break
                a, b = best_pair
                gains.append((best_gain, a, b))
                locked.update((a, b))
                for x in adj[a]:
                    if x in locked:
                        continue
                    d_work[x] += 2 if (x in a_work) else -2
                for x in adj[b]:
                    if x in locked:
                        continue
                    d_work[x] += 2 if (x in b_work) else -2
            # Best prefix of the swap sequence.
            best_k, best_total, total = 0, 0, 0
            for k, (g, _, _) in enumerate(gains, start=1):
                total += g
                if total > best_total:
                    best_total, best_k = total, k
            if best_total <= 0:
                return part_a, _cut_size(pairs, part_a)
            for _, a, b in gains[:best_k]:
                part_a.discard(a)
                part_a.add(b)

    best: Optional[BisectionResult] = None
    starts: List[Set[NodeId]] = []
    if initial is not None:
        starts.append(set(initial))
    for _ in range(rounds):
        shuffled = list(nodes)
        rng.shuffle(shuffled)
        starts.append(set(shuffled[: n // 2]))
    for start in starts:
        part_a, cut = one_run(start)
        if best is None or cut < best.cut_size:
            best = BisectionResult(
                frozenset(part_a), frozenset(set(nodes) - part_a), cut
            )
    assert best is not None
    return best


def bisection_width_spectral(graph: CommGraph) -> BisectionResult:
    """Fiedler-vector bisection: split at the median of the second Laplacian
    eigenvector.  An upper bound on the true width; also a good KL seed."""
    nodes = graph.nodes()
    n = len(nodes)
    _check_balance(n, 0.5)
    index = {node: i for i, node in enumerate(nodes)}
    lap = np.zeros((n, n))
    for u, v in graph.communicating_pairs():
        i, j = index[u], index[v]
        lap[i, j] -= 1
        lap[j, i] -= 1
        lap[i, i] += 1
        lap[j, j] += 1
    eigenvalues, eigenvectors = np.linalg.eigh(lap)
    # Second-smallest eigenvalue's eigenvector (Fiedler vector).
    fiedler = eigenvectors[:, np.argsort(eigenvalues)[1]]
    order = np.argsort(fiedler, kind="stable")
    half = n // 2
    part_a = {nodes[i] for i in order[:half]}
    pairs = graph.communicating_pairs()
    return BisectionResult(
        frozenset(part_a),
        frozenset(set(nodes) - part_a),
        _cut_size(pairs, part_a),
    )


def bisection_width_upper_bound(
    graph: CommGraph, seed: int = 0, kl_rounds: int = 6
) -> BisectionResult:
    """Best available bisection: exact for tiny graphs, otherwise the better
    of spectral and spectral-seeded Kernighan-Lin."""
    if graph.node_count <= 14:
        return bisection_width_exact(graph)
    spectral = bisection_width_spectral(graph)
    refined = bisection_width_kernighan_lin(
        graph, rounds=kl_rounds, seed=seed, initial=set(spectral.part_a)
    )
    return refined if refined.cut_size <= spectral.cut_size else spectral


def mesh_bisection_lower_bound(n: int, max_fraction: float = 23.0 / 30.0) -> float:
    """Lemma 4: partitioning an ``n x n`` mesh so that neither part exceeds
    ``max_fraction`` of the nodes cuts at least ``(1 - max_fraction) * n``
    edges.

    Proof of the constant (pure-row argument): call a row *mixed* when it
    holds cells of both parts; each mixed row contributes at least one cut
    edge.  If there are fewer than ``(1 - max_fraction) * n`` mixed rows,
    the pure rows cannot be of both kinds — an all-A row and an all-B row
    would make every *column* mixed, giving ``n`` cut edges — so all pure
    rows belong to one part, confining the other part to the mixed rows;
    that part then has fewer than ``(1 - max_fraction) * n * n`` cells,
    contradicting the balance requirement.  Hence the cut is at least
    ``min(n, (1 - max_fraction) * n)``.

    For the paper's 23/30 balance this is ``(7/30) * n = Omega(n)``.
    """
    if n < 2:
        raise ValueError("mesh bisection is defined for n >= 2")
    if not 0.5 <= max_fraction < 1.0:
        raise ValueError("max_fraction must be in [0.5, 1)")
    return min(float(n), (1.0 - max_fraction) * n)
