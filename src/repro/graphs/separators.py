"""Tree edge separators (Lemma 5).

Lemma 5 of the paper: for any subset ``M`` (at least two nodes) of a binary
tree, some edge of the tree splits it into two subtrees each containing at
most two-thirds of the nodes of ``M``.  The Section V-B lower-bound proof
applies this to the clock tree ``CLK`` with ``M`` = the array cells, to
obtain the sets ``A`` and ``B``.

Implementation note.  The clean 2/3 guarantee holds when the marked nodes
are leaves of a binary tree (the usual situation: cells hang off the clock
tree's leaves).  When internal nodes are marked, a marked branching node can
force the best split to ``2/3 + O(1/|M|)`` (e.g. a marked node whose two
subtrees each hold just under ``|M|/3``).  The greedy centroid descent below
finds the best edge on the root-to-centroid path, which is optimal among
single-edge cuts along that path, and reports the achieved fraction in
:attr:`SeparatorResult.worst_fraction`; downstream (the lower-bound
certificate) uses the *achieved* fraction rather than assuming 2/3, so the
derived skew bounds remain sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

NodeId = Hashable


@dataclass(frozen=True)
class SeparatorResult:
    """The separating edge and the induced split of the marked set.

    ``edge`` is ``(parent, child)``; removing it detaches the subtree rooted
    at ``child``.  ``below`` holds the marked nodes in that subtree and
    ``above`` the rest; ``worst_fraction`` is the larger side's share of the
    marked set (<= 2/3 for leaf-marked binary trees, Lemma 5).
    """

    edge: Tuple[NodeId, NodeId]
    below: FrozenSet[NodeId]
    above: FrozenSet[NodeId]

    @property
    def worst_fraction(self) -> float:
        total = len(self.below) + len(self.above)
        return max(len(self.below), len(self.above)) / total


def _iter_subtree(children: Dict[NodeId, Sequence[NodeId]], root: NodeId) -> List[NodeId]:
    out: List[NodeId] = []
    stack = [root]
    while stack:
        node = stack.pop()
        out.append(node)
        stack.extend(children.get(node, ()))
    return out


def tree_edge_separator(
    children: Dict[NodeId, Sequence[NodeId]],
    root: NodeId,
    marked: Set[NodeId],
) -> SeparatorResult:
    """Find an edge splitting ``marked`` as evenly as a single cut allows.

    ``children`` maps each node to its child list (leaves may be absent or
    map to an empty sequence).  Greedy centroid descent from the root: while
    some child subtree holds more than two-thirds of the marked nodes,
    descend into it; finally return the best cut seen along the walk (for
    leaf-marked binary trees this meets Lemma 5's 2/3 bound).
    """
    total = len(marked)
    if total < 2:
        raise ValueError("Lemma 5 requires at least two marked nodes")

    # Marked-node counts per subtree, computed iteratively (post-order).
    count: Dict[NodeId, int] = {}
    order = _iter_subtree(children, root)
    if len(order) < 2:
        raise ValueError("tree has no edges; cannot separate")
    node_set = set(order)
    for node in reversed(order):
        count[node] = (1 if node in marked else 0) + sum(
            count[child] for child in children.get(node, ())
        )
    if count[root] != total:
        missing = total - count[root]
        raise ValueError(f"{missing} marked nodes are not in the tree under {root!r}")

    threshold = 2 * total / 3
    best_edge: Optional[Tuple[NodeId, NodeId]] = None
    best_worst = total + 1  # worst-side size of the best edge seen

    node = root
    while True:
        kids = list(children.get(node, ()))
        for child in kids:
            worst = max(count[child], total - count[child])
            if worst < best_worst:
                best_worst, best_edge = worst, (node, child)
        heavy = max(kids, key=lambda k: count[k]) if kids else None
        if heavy is not None and count[heavy] > threshold:
            node = heavy
            continue
        break

    if best_edge is None:
        raise ValueError("tree has no usable separator edge")
    below_nodes = set(_iter_subtree(children, best_edge[1]))
    below = frozenset(m for m in marked if m in below_nodes)
    above = frozenset(m for m in marked if m not in below_nodes)
    return SeparatorResult(edge=best_edge, below=below, above=above)
