"""Buffers and inverter pairs (Section VII circuit elements).

Pipelined clocking replaces long wires with strings of buffers spaced a
constant distance apart (assumption A7).  Section VII discusses two circuit
realizations and their edge-uniformity problems:

* a *superbuffer* whose rising and falling transit times differ by a design
  bias (hard to tune, process-sensitive), and
* an *inverter pair* whose rising/falling discrepancy is a zero-mean random
  variable with variance ``V``; over ``n`` pairs the discrepancies sum to a
  random walk with variance ``n * V`` — the source of the paper's
  square-root-of-n cycle-time scaling.

:class:`Buffer` carries separate rise/fall delays; :class:`InverterPairModel`
samples them for a whole string.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Buffer:
    """A clock buffer with distinct rising/falling edge propagation delays."""

    delay_rise: float
    delay_fall: float

    def __post_init__(self) -> None:
        if self.delay_rise <= 0 or self.delay_fall <= 0:
            raise ValueError("buffer delays must be positive")

    @property
    def discrepancy(self) -> float:
        """Rising-minus-falling transit time; the per-stage random-walk step
        of the Section VII analysis."""
        return self.delay_rise - self.delay_fall

    @property
    def mean_delay(self) -> float:
        return 0.5 * (self.delay_rise + self.delay_fall)

    @property
    def max_delay(self) -> float:
        return max(self.delay_rise, self.delay_fall)

    def delay(self, rising: bool) -> float:
        return self.delay_rise if rising else self.delay_fall


class InverterPairModel:
    """Samples the buffers of an inverter string.

    Each stage's nominal delay is ``nominal``; the rising edge is slowed and
    the falling edge sped (or vice versa) by half of ``bias + noise``, where
    ``noise ~ N(0, sqrt(variance))`` per stage.  ``bias`` models the fixed
    design asymmetry that dominated the paper's measured chips ("the effect
    of the bias in the circuit design dominated the ... probabilistic
    effects").
    """

    def __init__(
        self,
        nominal: float = 1.0,
        bias: float = 0.0,
        variance: float = 0.0,
        seed: int = 0,
    ) -> None:
        if nominal <= 0:
            raise ValueError("nominal stage delay must be positive")
        if variance < 0:
            raise ValueError("variance must be non-negative")
        self.nominal = nominal
        self.bias = bias
        self.variance = variance
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        """Rewind the sample stream to its seed, so a replay draws the
        identical delays (what makes a rebuild of a buffered tree
        deterministic — assumption A8 by construction)."""
        self._rng = random.Random(self._seed)

    def reseeded(self, seed: int) -> "InverterPairModel":
        """The same model parameters over a fresh seed (for resampling)."""
        return InverterPairModel(
            nominal=self.nominal, bias=self.bias, variance=self.variance, seed=seed
        )

    def sample_stage(self) -> Buffer:
        noise = self._rng.gauss(0.0, self.variance**0.5) if self.variance > 0 else 0.0
        discrepancy = self.bias + noise
        half = 0.5 * discrepancy
        rise = max(1e-6 * self.nominal, self.nominal + half)
        fall = max(1e-6 * self.nominal, self.nominal - half)
        return Buffer(delay_rise=rise, delay_fall=fall)

    def sample_string(self, n: int) -> List[Buffer]:
        if n < 1:
            raise ValueError("string needs at least one stage")
        return [self.sample_stage() for _ in range(n)]
