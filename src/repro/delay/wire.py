"""Wire delay models.

Two regimes matter in the paper:

* **Repeated (buffered) wires** behave linearly in length: each constant-
  length segment contributes a constant delay (assumption A7).  Model:
  :class:`LinearWireModel` with per-unit delay ``m``.
* **Unbuffered (equipotential) wires** charge distributed RC and the delay
  grows *quadratically* in length (the Elmore delay of a distributed RC line
  is ``r * c * L^2 / 2``); this is why equipotential clock trees slow down
  as systems grow (A6) and why buffering every constant distance restores
  linearity.  Model: :class:`ElmoreWireModel`.
"""

from __future__ import annotations

from dataclasses import dataclass


class WireDelayModel:
    """Delay of a wire as a function of its physical length."""

    def delay(self, length: float) -> float:
        raise NotImplementedError

    def _check(self, length: float) -> None:
        if length < 0:
            raise ValueError("wire length must be non-negative")


@dataclass(frozen=True)
class LinearWireModel(WireDelayModel):
    """Delay ``m * length``: the buffered/repeated-wire regime.

    ``m`` is the nominal per-unit-length transmission time of Section III
    (variation around it is applied by :mod:`repro.delay.variation`).
    """

    m: float = 1.0

    def __post_init__(self) -> None:
        if self.m <= 0:
            raise ValueError("per-unit delay m must be positive")

    def delay(self, length: float) -> float:
        self._check(length)
        return self.m * length


@dataclass(frozen=True)
class ElmoreWireModel(WireDelayModel):
    """Distributed-RC (Elmore) delay ``0.5 * r * c * length**2 + rc_load``.

    ``r`` and ``c`` are resistance and capacitance per unit length;
    ``driver_resistance`` and ``load_capacitance`` add the lumped
    ``R_drv * (c*L + C_load) + r*L*C_load`` terms of the standard Elmore
    expression for a driver/line/load chain.
    """

    r: float = 1.0
    c: float = 1.0
    driver_resistance: float = 0.0
    load_capacitance: float = 0.0

    def __post_init__(self) -> None:
        if self.r <= 0 or self.c <= 0:
            raise ValueError("per-unit r and c must be positive")
        if self.driver_resistance < 0 or self.load_capacitance < 0:
            raise ValueError("lumped parasitics must be non-negative")

    def delay(self, length: float) -> float:
        self._check(length)
        wire = 0.5 * self.r * self.c * length * length
        driver = self.driver_resistance * (self.c * length + self.load_capacitance)
        into_load = self.r * length * self.load_capacitance
        return wire + driver + into_load
