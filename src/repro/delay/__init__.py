"""Delay substrate: wire delay models, buffers, and process variation.

The paper treats transmission delay as proportional to wire length ("we
choose to treat them together as a 'distance' metric", Section II) and
derives its skew models from per-unit-length delay ``m ± epsilon``
(Section III).  This package supplies those delay models, an Elmore RC model
for the equipotential-clocking comparisons, buffer/inverter elements with
rising/falling-edge asymmetry (Section VII), and random variation processes
used to break the time-invariance assumption A8 in experiments.
"""

from repro.delay.wire import ElmoreWireModel, LinearWireModel, WireDelayModel
from repro.delay.buffer import Buffer, InverterPairModel
from repro.delay.variation import (
    BoundedUniformVariation,
    GaussianVariation,
    NoVariation,
    SpatialGradientVariation,
    VariationProcess,
)

__all__ = [
    "WireDelayModel",
    "LinearWireModel",
    "ElmoreWireModel",
    "Buffer",
    "InverterPairModel",
    "VariationProcess",
    "NoVariation",
    "BoundedUniformVariation",
    "GaussianVariation",
    "SpatialGradientVariation",
]
