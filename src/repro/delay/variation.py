"""Process variation models.

Section III derives the skew models from per-unit-length transmission time
between ``m - epsilon`` and ``m + epsilon``: "small variations in electrical
characteristics along clock lines can build up unpredictably to produce
skews even between wires of the same length".  A :class:`VariationProcess`
samples the actual per-unit delay of each wire segment; drawing one sample
per segment and summing reproduces exactly that build-up, which the
benchmarks compare against the difference/summation model bounds.

All processes are seeded and deterministic given the seed (reproducible
experiments; also required for assumption A8, time-invariance — a segment's
delay is sampled once, not per clock event; breaking A8 is modelled
explicitly by :meth:`VariationProcess.resample`).
"""

from __future__ import annotations

import random
from typing import Optional


class VariationProcess:
    """Samples the per-unit-length delay of successive wire segments."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def sample(self) -> float:
        """Per-unit delay for the next wire segment."""
        raise NotImplementedError

    def sample_at(self, x: float, y: float) -> float:
        """Per-unit delay for a segment centered at ``(x, y)``.

        Default: position-independent (delegates to :meth:`sample`).
        Spatially correlated processes override this — process gradients
        across a wafer make nearby wires similar and far wires different,
        which is what distinguishes the difference model's tunable world
        from the summation model's accumulating one.
        """
        return self.sample()

    def reset(self) -> None:
        """Restart the sample stream (same seed, same delays — A8 holds)."""
        self._rng = random.Random(self._seed)

    def resample(self, new_seed: int) -> None:
        """Re-seed: models a change of physical conditions (A8 broken)."""
        self._seed = new_seed
        self._rng = random.Random(new_seed)


class NoVariation(VariationProcess):
    """Deterministic per-unit delay ``m`` — the difference-model idealization
    (epsilon = 0)."""

    def __init__(self, m: float = 1.0) -> None:
        super().__init__(seed=0)
        if m <= 0:
            raise ValueError("per-unit delay m must be positive")
        self.m = m

    def sample(self) -> float:
        return self.m


class BoundedUniformVariation(VariationProcess):
    """Per-unit delay uniform in ``[m - epsilon, m + epsilon]`` — the exact
    Section III hypothesis behind the summation model."""

    def __init__(self, m: float = 1.0, epsilon: float = 0.1, seed: int = 0) -> None:
        super().__init__(seed=seed)
        if m <= 0:
            raise ValueError("per-unit delay m must be positive")
        if not 0 <= epsilon < m:
            raise ValueError("epsilon must satisfy 0 <= epsilon < m (delay stays positive)")
        self.m = m
        self.epsilon = epsilon

    def sample(self) -> float:
        return self._rng.uniform(self.m - self.epsilon, self.m + self.epsilon)


class GaussianVariation(VariationProcess):
    """Per-unit delay ``N(m, sigma^2)``, truncated away from zero.

    Section VII's inverter-string analysis assumes normally distributed
    stage discrepancies; this is the wire-segment analogue.  Samples below
    ``floor * m`` are clamped so delays stay physical.
    """

    def __init__(
        self, m: float = 1.0, sigma: float = 0.05, seed: int = 0, floor: float = 0.1
    ) -> None:
        super().__init__(seed=seed)
        if m <= 0:
            raise ValueError("per-unit delay m must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if not 0 < floor < 1:
            raise ValueError("floor must be in (0, 1)")
        self.m = m
        self.sigma = sigma
        self.floor = floor

    def sample(self) -> float:
        return max(self.floor * self.m, self._rng.gauss(self.m, self.sigma))


class SpatialGradientVariation(VariationProcess):
    """Per-unit delay with a systematic spatial gradient plus local noise.

    ``delay(x, y) = m * (1 + gx * x + gy * y) + N(0, sigma^2)``, clamped to
    stay positive.  Models wafer-scale process gradients (oxide thickness,
    temperature): the *systematic* part is exactly what clock tree tuning
    can compensate (difference-model world), while the noise part
    accumulates along paths (summation-model world).
    """

    def __init__(
        self,
        m: float = 1.0,
        gx: float = 0.0,
        gy: float = 0.0,
        sigma: float = 0.0,
        seed: int = 0,
        floor: float = 0.1,
    ) -> None:
        super().__init__(seed=seed)
        if m <= 0:
            raise ValueError("per-unit delay m must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if not 0 < floor < 1:
            raise ValueError("floor must be in (0, 1)")
        self.m = m
        self.gx = gx
        self.gy = gy
        self.sigma = sigma
        self.floor = floor

    def sample(self) -> float:
        """Position-free fallback: the nominal delay plus noise."""
        noise = self._rng.gauss(0.0, self.sigma) if self.sigma > 0 else 0.0
        return max(self.floor * self.m, self.m + noise)

    def sample_at(self, x: float, y: float) -> float:
        noise = self._rng.gauss(0.0, self.sigma) if self.sigma > 0 else 0.0
        value = self.m * (1.0 + self.gx * x + self.gy * y) + noise
        return max(self.floor * self.m, value)
