"""Tile composition by abutment: pre-characterized STA of R x C arrays.

The synchoros-VLSI idea: build a large array by *abutting* identical
tiles, characterize the tile once, and derive the composed array's
analysis from cached tile summaries plus the tile-boundary edges —
instead of re-running the O(edges) flat pass over the whole array.

The composition is engineered so the reuse is *exact*, not approximate:

* the composed clock tree is an H-style trunk over a power-of-two grid
  of tiles, splitting the wider dimension in half at each level.  All
  tile taps sit at the same depth and accumulate the *identical float
  sum* for their root distance (per-level segment lengths are equal
  across branches by symmetry, and all coordinates are small dyadic
  rationals, exact in float64);
* within each tile, a boustrophedon (serpentine) chain runs from the
  tap through the tile's cells with translation-congruent Manhattan
  lengths, so corresponding cells in different tiles have bit-identical
  root distances;
* schedule offsets are ``m * root_distance``, hence also congruent.

Consequently every tile-internal slack row replicates the prototype
tile's rows bit-for-bit, and the flat aggregates (worst slacks, flag
counts, minimum feasible period) decompose into *prototype x multiplicity
+ boundary rows*.  :func:`stitched_analysis` exploits exactly that; the
``differential-tiles`` check holds it equal — same floats, same counts —
to :func:`flat_summary` over the very same composed design.

The per-tile characterization (and the boundary-row vectors, which are
also period-independent) is cached per tile fingerprint, so re-analyzing
a composition at a new period touches no model kernels at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.arrays.systolic import SystolicProgram
from repro.arrays.topologies import mesh
from repro.clocktree.tree import ClockTree
from repro.core.models import PhysicalModel
from repro.geometry.point import Point
from repro.sim.clock_distribution import ClockSchedule
from repro.sta.design import Design, EdgeKey
from repro.sta.slack import (
    SIM_TOL,
    analyze_slack,
    minimum_feasible_period,
    _bisect_period,
    _edge_vectors,
)

NodeId = Hashable


def _is_pow2(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class TileSpec:
    """One abutted tile: an ``rows x cols`` mesh patch plus the model
    parameters shared by the whole composition."""

    rows: int
    cols: int
    m: float = 1.0
    eps: float = 0.1
    delta: float = 1.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("tile dimensions must be positive")

    def fingerprint(self) -> Tuple[int, int, float, float, float]:
        return (self.rows, self.cols, self.m, self.eps, self.delta)


@dataclass(frozen=True)
class TileCharacterization:
    """Period-independent slack ingredients of one composition.

    ``internal_*`` arrays cover the *prototype* tile's internal edges
    (every other tile replicates them bit-for-bit, ``tiles`` times in
    total); ``boundary_*`` arrays cover the tile-to-tile stitching edges.
    All arrays are ``need``-form (period-free), so any period can be
    analyzed from the cache alone.
    """

    tiles: int
    internal_need_exact: np.ndarray
    internal_need_bound: np.ndarray
    internal_hold_bound: np.ndarray
    internal_race_floor: np.ndarray
    boundary_need_exact: np.ndarray
    boundary_need_bound: np.ndarray
    boundary_hold_bound: np.ndarray
    boundary_race_floor: np.ndarray

    @property
    def internal_rows(self) -> int:
        return len(self.internal_need_exact)

    @property
    def boundary_rows(self) -> int:
        return len(self.boundary_need_exact)

    @property
    def total_rows(self) -> int:
        return self.tiles * self.internal_rows + self.boundary_rows


@dataclass(frozen=True)
class ArraySummary:
    """The aggregate verdict both analysis paths produce; equality between
    the stitched and the flat path is exact (floats included)."""

    period: float
    edges: int
    worst_setup_slack: float
    worst_hold_slack: float
    min_feasible_period_exact: float
    min_feasible_period_bound: float
    timing_clean: bool
    robust_clean: bool
    counts: Dict[str, int] = field(default_factory=dict)


#: Characterization cache, keyed by (tile fingerprint, grid rows, grid
#: cols) — the trunk depth (hence every root distance) depends on the
#: grid shape, so it is part of the key.
_TILE_CACHE: Dict[Tuple[Any, ...], TileCharacterization] = {}
_TILE_CACHE_STATS = {"hits": 0, "misses": 0}


def tile_cache_clear() -> None:
    _TILE_CACHE.clear()
    _TILE_CACHE_STATS["hits"] = 0
    _TILE_CACHE_STATS["misses"] = 0


def tile_cache_info() -> Dict[str, int]:
    return {"entries": len(_TILE_CACHE), **_TILE_CACHE_STATS}


# ----------------------------------------------------------------------
# composition
# ----------------------------------------------------------------------
def _trunk_name(ti0: int, ti1: int, tj0: int, tj1: int) -> str:
    return f"trunk:{ti0}:{ti1}:{tj0}:{tj1}"


def _region_center(
    spec: TileSpec, ti0: int, ti1: int, tj0: int, tj1: int
) -> Point:
    """Center of a tile-index region in cell coordinates (dyadic, exact)."""
    y = ((ti0 + ti1 - 1) * spec.rows + (spec.rows - 1)) / 2.0
    x = ((tj0 + tj1 - 1) * spec.cols + (spec.cols - 1)) / 2.0
    return Point(x, y)


def _tile_cells(spec: TileSpec, ti: int, tj: int) -> List[Tuple[int, int]]:
    """The tile's cells in boustrophedon chain order, tap-outward."""
    cells: List[Tuple[int, int]] = []
    for lr in range(spec.rows):
        cols = range(spec.cols) if lr % 2 == 0 else range(spec.cols - 1, -1, -1)
        for lc in cols:
            cells.append((ti * spec.rows + lr, tj * spec.cols + lc))
    return cells


def compose_design(
    spec: TileSpec,
    tiles_rows: int,
    tiles_cols: int,
    period: float,
) -> Design:
    """Build the composed ``tiles_rows x tiles_cols`` abutted array design.

    Grid dimensions must be powers of two (the H-trunk halves the wider
    dimension at every level; equal halves are what make all tap root
    distances the identical float).
    """
    if not (_is_pow2(tiles_rows) and _is_pow2(tiles_cols)):
        raise ValueError("tile grid dimensions must be powers of two")
    array = mesh(tiles_rows * spec.rows, tiles_cols * spec.cols)

    root = _trunk_name(0, tiles_rows, 0, tiles_cols)
    tree = ClockTree(root, _region_center(spec, 0, tiles_rows, 0, tiles_cols))
    # H-style trunk: recursively halve the wider dimension.  Iterative
    # worklist; children are placed at the half-regions' centers with the
    # default (Manhattan) edge length — symmetric, hence equal floats.
    work: List[Tuple[int, int, int, int]] = [(0, tiles_rows, 0, tiles_cols)]
    while work:
        ti0, ti1, tj0, tj1 = work.pop()
        parent = _trunk_name(ti0, ti1, tj0, tj1)
        if ti1 - ti0 == 1 and tj1 - tj0 == 1:
            # A tap: chain through the tile's cells boustrophedon.
            prev: NodeId = parent
            for cell in _tile_cells(spec, ti0, tj0):
                r, c = cell
                tree.add_child(prev, cell, Point(float(c), float(r)))
                prev = cell
            continue
        if ti1 - ti0 >= tj1 - tj0:
            mid = (ti0 + ti1) // 2
            halves = [(ti0, mid, tj0, tj1), (mid, ti1, tj0, tj1)]
        else:
            mid = (tj0 + tj1) // 2
            halves = [(ti0, ti1, tj0, mid), (ti0, ti1, mid, tj1)]
        for half in halves:
            tree.add_child(
                parent, _trunk_name(*half), _region_center(spec, *half)
            )
            work.append(half)

    offsets = {
        cell: spec.m * tree.root_distance(cell) for cell in array.comm.nodes()
    }
    schedule = ClockSchedule(offsets, period)
    program = SystolicProgram(
        array=array, pes={}, cycles=1, read_result=lambda executor: None
    )
    return Design(
        program=program,
        tree=tree,
        model=PhysicalModel(m=spec.m, eps=spec.eps),
        schedule=schedule,
        delta=spec.delta,
        name=f"tiles-{tiles_rows}x{tiles_cols}-of-{spec.rows}x{spec.cols}",
    )


# ----------------------------------------------------------------------
# characterization and stitching
# ----------------------------------------------------------------------
def _classify_edges(
    spec: TileSpec, edges: List[EdgeKey]
) -> Tuple[np.ndarray, np.ndarray]:
    """(prototype-internal rows, boundary rows) as index arrays.

    An edge is internal when both endpoints fall in the same tile; the
    prototype is tile (0, 0), whose internal rows stand in for every
    tile's (bit-identical values by congruence).
    """
    proto: List[int] = []
    boundary: List[int] = []
    for i, (u, v) in enumerate(edges):
        tu = (u[0] // spec.rows, u[1] // spec.cols)
        tv = (v[0] // spec.rows, v[1] // spec.cols)
        if tu != tv:
            boundary.append(i)
        elif tu == (0, 0):
            proto.append(i)
    return (
        np.asarray(proto, dtype=np.int64),
        np.asarray(boundary, dtype=np.int64),
    )


def characterize_tile(
    spec: TileSpec,
    tiles_rows: int,
    tiles_cols: int,
    design: Optional[Design] = None,
) -> TileCharacterization:
    """Period-free slack ingredients for one composition, cached per
    (tile fingerprint, grid shape).

    Pass the already-composed ``design`` to skip a rebuild on a cache
    miss; on a hit the design is not touched at all.
    """
    key = (spec.fingerprint(), tiles_rows, tiles_cols)
    hit = _TILE_CACHE.get(key)
    if hit is not None:
        _TILE_CACHE_STATS["hits"] += 1
        return hit
    _TILE_CACHE_STATS["misses"] += 1
    if design is None:
        design = compose_design(spec, tiles_rows, tiles_cols, period=1.0)
    edges, lag, lead, sigma_ub, sigma_lb = _edge_vectors(design)
    proto_rows, boundary_rows = _classify_edges(spec, edges)
    need_exact = lead + lag
    need_bound = sigma_ub + lag
    hold_bound = lag - sigma_ub
    race_floor = sigma_lb >= lag - SIM_TOL
    arrays: Dict[str, np.ndarray] = {}
    for name, vec in (
        ("need_exact", need_exact),
        ("need_bound", need_bound),
        ("hold_bound", hold_bound),
        ("race_floor", race_floor),
    ):
        for prefix, rows in (("internal", proto_rows), ("boundary", boundary_rows)):
            sub = vec[rows]
            sub.flags.writeable = False
            arrays[f"{prefix}_{name}"] = sub
    characterization = TileCharacterization(
        tiles=tiles_rows * tiles_cols, **arrays
    )
    _TILE_CACHE[key] = characterization
    return characterization


def _aggregate(
    tiles: int,
    period: float,
    internal_need_exact: np.ndarray,
    internal_need_bound: np.ndarray,
    internal_hold_bound: np.ndarray,
    internal_race_floor: np.ndarray,
    boundary_need_exact: np.ndarray,
    boundary_need_bound: np.ndarray,
    boundary_hold_bound: np.ndarray,
    boundary_race_floor: np.ndarray,
) -> ArraySummary:
    """Fold prototype rows (x ``tiles``) and boundary rows into the flat
    aggregates, with exactly the flat pass's per-row comparisons."""
    edges = tiles * len(internal_need_exact) + len(boundary_need_exact)

    def masks(
        need_exact: np.ndarray, need_bound: np.ndarray, hold_bound: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        stale = (period - need_exact) < -SIM_TOL
        race = need_exact <= SIM_TOL
        stale_bound = (period - need_bound) < -SIM_TOL
        race_bound = hold_bound <= SIM_TOL
        return stale, race, stale_bound, race_bound

    i_stale, i_race, i_stale_b, i_race_b = masks(
        internal_need_exact, internal_need_bound, internal_hold_bound
    )
    b_stale, b_race, b_stale_b, b_race_b = masks(
        boundary_need_exact, boundary_need_bound, boundary_hold_bound
    )

    def count(internal_mask: np.ndarray, boundary_mask: np.ndarray) -> int:
        return tiles * int(np.count_nonzero(internal_mask)) + int(
            np.count_nonzero(boundary_mask)
        )

    counts = {
        "edges": edges,
        "stale": count(i_stale, b_stale),
        "race": count(i_race, b_race),
        "stale_possible": count(i_stale_b & ~i_stale, b_stale_b & ~b_stale),
        "race_possible": count(i_race_b & ~i_race, b_race_b & ~b_race),
        "race_floor": count(internal_race_floor, boundary_race_floor),
    }
    need_exact_max = float(
        max(
            internal_need_exact.max(initial=-np.inf),
            boundary_need_exact.max(initial=-np.inf),
        )
    )
    need_exact_min = float(
        min(
            internal_need_exact.min(initial=np.inf),
            boundary_need_exact.min(initial=np.inf),
        )
    )
    need_bound_max = float(
        max(
            internal_need_bound.max(initial=-np.inf),
            boundary_need_bound.max(initial=-np.inf),
        )
    )
    return ArraySummary(
        period=period,
        edges=edges,
        # fl(period - x) is monotone in x, so the row-wise minimum of
        # fl(period - need) is fl(period - max(need)) exactly.
        worst_setup_slack=float(period - need_exact_max) if edges else 0.0,
        worst_hold_slack=need_exact_min if edges else 0.0,
        min_feasible_period_exact=(
            _bisect_period(need_exact_max) if edges else 0.0
        ),
        min_feasible_period_bound=(
            _bisect_period(need_bound_max) if edges else 0.0
        ),
        timing_clean=counts["stale"] == 0 and counts["race"] == 0,
        robust_clean=(
            count(i_stale_b, b_stale_b) == 0 and count(i_race_b, b_race_b) == 0
        ),
        counts=counts,
    )


def stitched_analysis(
    spec: TileSpec,
    tiles_rows: int,
    tiles_cols: int,
    period: float,
    design: Optional[Design] = None,
) -> ArraySummary:
    """Analyze the composition from cached tile summaries plus boundary
    stitching — no per-edge model kernels on a warm cache, any period."""
    ch = characterize_tile(spec, tiles_rows, tiles_cols, design=design)
    return _aggregate(
        ch.tiles,
        period,
        ch.internal_need_exact,
        ch.internal_need_bound,
        ch.internal_hold_bound,
        ch.internal_race_floor,
        ch.boundary_need_exact,
        ch.boundary_need_bound,
        ch.boundary_hold_bound,
        ch.boundary_race_floor,
    )


def flat_summary(design: Design) -> ArraySummary:
    """The oracle: the same aggregates from a full flat analysis."""
    analysis = analyze_slack(design)
    stale = analysis.stale_mask
    race = analysis.race_mask
    stale_bound = analysis.setup_bound < -SIM_TOL
    race_bound = analysis.hold_bound <= SIM_TOL
    counts = {
        "edges": len(analysis.edges),
        "stale": int(np.count_nonzero(stale)),
        "race": int(np.count_nonzero(race)),
        "stale_possible": int(np.count_nonzero(stale_bound & ~stale)),
        "race_possible": int(np.count_nonzero(race_bound & ~race)),
        "race_floor": int(np.count_nonzero(analysis.race_floor_mask)),
    }
    return ArraySummary(
        period=design.period,
        edges=len(analysis.edges),
        worst_setup_slack=analysis.worst_setup_slack,
        worst_hold_slack=analysis.worst_hold_slack,
        min_feasible_period_exact=minimum_feasible_period(design, "exact"),
        min_feasible_period_bound=minimum_feasible_period(design, "bound"),
        timing_clean=analysis.timing_clean,
        robust_clean=analysis.robust_clean,
        counts=counts,
    )
