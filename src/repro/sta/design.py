"""The design bundle static timing analysis consumes.

A :class:`Design` is everything the paper needs to *statically* certify a
synchronous array: the laid-out program (COMM + PEs), the clock tree
``CLK``, a skew model giving per-pair bounds, the concrete
:class:`~repro.sim.clock_distribution.ClockSchedule`, the cell timing
``delta``, a clocking discipline (setup/hold windows), the data-wire model
and any hold-fix padding, plus (optionally) a buffered realization of the
tree for empirical cross-checks.

The bundle is exactly the argument list of
:class:`~repro.sim.clocked.ClockedArraySimulator` — :meth:`Design.simulator`
returns the executable twin, which is what the ``sta-soundness`` oracle in
:mod:`repro.check` compares the static verdicts against.

:func:`design_for_workload` builds ready-made designs (the CLI and the CI
``sta`` job use it); :func:`random_design` draws randomized ones for the
soundness gate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.arrays.model import ProcessorArray
from repro.arrays.systolic import (
    SystolicProgram,
    build_fir_array,
    build_matvec_array,
    build_mesh_matmul,
    build_odd_even_sorter,
)
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.tree import ClockTree
from repro.core.disciplines import SinglePhaseDiscipline
from repro.core.models import PhysicalModel, SkewModel
from repro.core.schemes import build_scheme
from repro.delay.buffer import InverterPairModel
from repro.delay.variation import BoundedUniformVariation
from repro.delay.wire import LinearWireModel, WireDelayModel
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import ClockedArraySimulator

CellId = Hashable
EdgeKey = Tuple[CellId, CellId]

#: The simulator's default data-wire model (kept identical so a default
#: Design and a default ClockedArraySimulator see the same edge delays).
DEFAULT_WIRE_MODEL = LinearWireModel(m=1e-12)


@dataclass
class Design:
    """A concrete synchronous design, ready for static analysis."""

    program: SystolicProgram
    tree: ClockTree
    model: SkewModel
    schedule: ClockSchedule
    delta: float = 1.0
    discipline: SinglePhaseDiscipline = field(default_factory=SinglePhaseDiscipline)
    wire_model: WireDelayModel = field(default_factory=lambda: DEFAULT_WIRE_MODEL)
    edge_padding: Dict[EdgeKey, float] = field(default_factory=dict)
    buffered: Optional[BufferedClockTree] = None
    name: str = "design"
    s_budget: Optional[float] = None
    equidistance_tolerance: float = 1e-9
    #: ECO wire retargets: per-edge routed wire length replacing the layout
    #: Manhattan distance in :meth:`edge_lag` (a rerouted data wire whose
    #: endpoints did not move).  Analysis-only — see :meth:`simulator`.
    wire_overrides: Dict[EdgeKey, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise ValueError("delta must be non-negative")
        for edge, pad in self.edge_padding.items():
            if pad < 0:
                raise ValueError(f"negative padding on edge {edge!r}")
        for edge, length in self.wire_overrides.items():
            if length < 0:
                raise ValueError(f"negative wire override on edge {edge!r}")
        missing = [
            c for c in self.array.comm.nodes() if c not in self.schedule.cells()
        ]
        if missing:
            raise ValueError(
                f"{len(missing)} cells have no clock schedule (first: {missing[0]!r})"
            )

    @property
    def array(self) -> ProcessorArray:
        return self.program.array

    @property
    def period(self) -> float:
        return self.schedule.period

    def edges(self) -> List[EdgeKey]:
        """The directed COMM edges, in the graph's stable iteration order —
        the row order of every slack vector."""
        return self.array.comm.edges()

    def edge_lag(self, edge: EdgeKey) -> float:
        """Data-path delay of one directed edge: compute ``delta`` plus wire
        propagation plus hold-fix padding — identical arithmetic to
        :class:`~repro.sim.clocked.ClockedArraySimulator`, including the
        grouping: the simulator precomputes ``wire + pad`` per edge and adds
        ``delta`` at latch time, and float addition is not associative, so
        the parenthesization below is load-bearing (the ``sta-soundness``
        oracle asserts bit-equality with the simulator's lags)."""
        u, v = edge
        override = self.wire_overrides.get(edge)
        distance = (
            override if override is not None else self.array.layout.distance(u, v)
        )
        return self.delta + (
            self.wire_model.delay(distance) + self.edge_padding.get(edge, 0.0)
        )

    def with_period(self, period: float) -> "Design":
        """The same design clocked at a different period (offsets kept)."""
        schedule = ClockSchedule(
            {c: self.schedule.offset(c) for c in self.schedule.cells()}, period
        )
        return Design(
            program=self.program,
            tree=self.tree,
            model=self.model,
            schedule=schedule,
            delta=self.delta,
            discipline=self.discipline,
            wire_model=self.wire_model,
            edge_padding=dict(self.edge_padding),
            buffered=self.buffered,
            name=self.name,
            s_budget=self.s_budget,
            equidistance_tolerance=self.equidistance_tolerance,
            wire_overrides=dict(self.wire_overrides),
        )

    def simulator(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> ClockedArraySimulator:
        """The executable twin: a clocked simulator built from exactly this
        bundle (same schedule, delta, wire model, and padding).

        Wire-length overrides have no simulator-side representation (the
        simulator derives wire delays from the layout), so a design that
        carries them cannot produce a faithful executable twin."""
        if self.wire_overrides:
            raise ValueError(
                "design carries ECO wire_overrides; the clocked simulator "
                "derives wire delays from the layout and cannot honor them"
            )
        return ClockedArraySimulator(
            self.program,
            self.schedule,
            delta=self.delta,
            data_wire_model=self.wire_model,
            edge_padding=self.edge_padding,
            tracer=tracer,
            metrics=metrics,
        )


# ----------------------------------------------------------------------
# ready-made designs
# ----------------------------------------------------------------------
def _workload(name: str, size: int, rng: random.Random) -> SystolicProgram:
    if name == "fir":
        weights = [rng.uniform(-1.0, 1.0) for _ in range(max(2, size // 2))]
        xs = [rng.uniform(-1.0, 1.0) for _ in range(size)]
        return build_fir_array(weights, xs)
    if name == "matvec":
        n = max(2, size)
        matrix = [[rng.uniform(-1.0, 1.0) for _ in range(n)] for _ in range(n)]
        x = [rng.uniform(-1.0, 1.0) for _ in range(n)]
        return build_matvec_array(matrix, x)
    if name == "sorter":
        return build_odd_even_sorter([rng.uniform(0.0, 1.0) for _ in range(max(2, size))])
    if name == "matmul":
        n = max(2, size)
        a = [[rng.uniform(-1.0, 1.0) for _ in range(n)] for _ in range(n)]
        b = [[rng.uniform(-1.0, 1.0) for _ in range(n)] for _ in range(n)]
        return build_mesh_matmul(a, b)
    raise ValueError(f"unknown workload {name!r} (one of {sorted(WORKLOADS)})")


WORKLOADS: Tuple[str, ...] = ("fir", "matvec", "sorter", "matmul")


def design_for_workload(
    workload: str = "fir",
    size: int = 8,
    scheme: str = "serpentine",
    model: Optional[SkewModel] = None,
    m: float = 1.0,
    eps: float = 0.1,
    delta: float = 1.0,
    buffer_spacing: float = 1.0,
    seed: int = 0,
    period: Optional[float] = None,
    pad_races: bool = True,
    discipline: Optional[SinglePhaseDiscipline] = None,
    period_margin: float = 0.05,
    s_budget: Optional[float] = None,
) -> Design:
    """Build a complete design: workload, clock tree, buffered realization,
    schedule, and (by default) race padding plus a feasible period.

    With ``period=None`` the clock runs at the *bound-mode* minimum feasible
    period times ``1 + period_margin`` — clean by construction, which is the
    design flow the paper prescribes (derive the period from the skew
    bounds, never from a simulation).  Pass an explicit ``period`` to probe
    infeasible operating points.
    """
    # Imported here: repro.sta.slack imports this module for type sharing.
    from repro.sta.slack import minimum_feasible_period, pad_for_races

    rng = random.Random(f"sta-design|{workload}|{size}|{seed}")
    program = _workload(workload, size, rng)
    tree = build_scheme(scheme, program.array)
    skew_model = model if model is not None else PhysicalModel(m=m, eps=eps)
    buffered = BufferedClockTree(
        tree,
        buffer_spacing=buffer_spacing,
        wire_variation=BoundedUniformVariation(m=m, epsilon=min(eps, 0.9 * m), seed=seed),
        buffer_model=InverterPairModel(nominal=buffer_spacing * m, seed=seed),
    )
    cells = program.array.comm.nodes()
    # Offsets do not depend on the period, so build with a placeholder
    # period, derive padding + the feasible period, then re-clock.
    design = Design(
        program=program,
        tree=tree,
        model=skew_model,
        schedule=ClockSchedule.from_buffered_tree(buffered, 1.0, cells),
        delta=delta,
        discipline=discipline if discipline is not None else SinglePhaseDiscipline(),
        edge_padding={},
        buffered=buffered,
        name=f"{workload}-{size}-{scheme}",
        s_budget=s_budget,
    )
    if pad_races:
        design.edge_padding = pad_for_races(design)
    if period is None:
        # The bound-mode period covers the model's worst case; the concrete
        # buffered arrivals can drift past the abstract bound, so take the
        # exact-mode requirement as a floor too — clean in both modes.
        period = (1.0 + period_margin) * max(
            minimum_feasible_period(design, mode="bound"),
            minimum_feasible_period(design, mode="exact"),
            1e-9,
        )
    return design.with_period(period)


def random_design(seed: int, clean: Optional[bool] = None) -> Design:
    """A randomized small design for the soundness gate.

    ``clean=True`` forces the certified-safe construction (padding + bound
    period with margin); ``clean=False`` forces a stressed design (short
    period, no padding) that the analyzer must flag; ``None`` picks at
    random.  Margins keep every slack away from the knife edge so the
    static verdict and the simulator cannot disagree on float rounding.
    """
    rng = random.Random(f"sta-random-design|{seed}")
    workload = rng.choice(WORKLOADS)
    size = rng.randint(3, 6)
    scheme = rng.choice(("serpentine", "kdtree", "star"))
    m = rng.uniform(0.5, 2.0)
    eps = rng.uniform(0.0, 0.4) * m
    delta = rng.uniform(0.1, 2.0)
    want_clean = rng.random() < 0.5 if clean is None else clean
    if want_clean:
        return design_for_workload(
            workload,
            size=size,
            scheme=scheme,
            m=m,
            eps=eps,
            delta=delta,
            seed=seed,
            period_margin=rng.uniform(0.05, 0.5),
        )
    design = design_for_workload(
        workload,
        size=size,
        scheme=scheme,
        m=m,
        eps=eps,
        delta=delta,
        seed=seed,
        pad_races=rng.random() < 0.3,
    )
    from repro.sta.slack import minimum_feasible_period

    feasible = minimum_feasible_period(design, mode="exact")
    return design.with_period(max(feasible * rng.uniform(0.3, 0.9), 1e-6))
