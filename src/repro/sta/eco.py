"""Incremental engineering-change-order (ECO) re-analysis.

:class:`ECOSession` wraps a :class:`~repro.sta.design.Design` and accepts
typed edits — :meth:`repad_edge`, :meth:`retarget_wire`,
:meth:`resize_buffer`, :meth:`graft_subtree`, :meth:`set_period` —
recomputing only the slack rows and skew bounds each edit actually
dirties instead of re-running the full O(edges) pass:

=================  ====================================================
edit               dirty set
=================  ====================================================
``repad_edge``     one slack row (padding enters only that edge's lag)
``retarget_wire``  one slack row (wire length enters only that edge's lag)
``resize_buffer``  the COMM pairs with an endpoint inside the resized
                   edge's subtree (from the live LCA index; see below)
``graft_subtree``  no existing rows (new nodes carry no COMM edges);
                   the LCA index extends itself incrementally
``set_period``     no rows at all (the period is outside the stored
                   ``need`` vectors; verdict masks are re-derived lazily)
=================  ====================================================

:meth:`~ECOSession.set_channel_capacity` extends the same discipline to
the self-timed side: FIFO depths never enter a clocked lag, so no slack
row moves, and the session's flow memos (:meth:`~ECOSession.flow`) are
updated in place — a widened channel off the cached critical cycle keeps
the cached MCM solve outright (widening only lowers the means of cycles
*through* the edited edge), anything else re-solves warm-started from
the cached Howard policy.  Either way the answer is bit-identical to a
cold :func:`~repro.sta.flow.analyze_flow`.

The session maintains the per-edge *need* vectors (``need_exact =
lead + lag``, the exact-mode hold slack and period requirement;
``need_bound = sigma_ub + lag``; ``hold_bound = lag - sigma_ub``) plus
running argmax/argmin trackers over them, so ``worst_setup_slack`` /
``worst_hold_slack`` are O(1) per query (a lazy O(edges) rescan happens
only when an edit dirties the current champion row) and
``minimum_feasible_period`` is O(log) — the bisection core
(:func:`repro.sta.slack._bisect_period`) depends only on the scalar
``max(needs)``, which the tracker supplies.

**Bit-exactness contract.**  Every quantity the session exposes is
bit-identical to a fresh :func:`~repro.sta.slack.analyze_slack` /
:func:`~repro.sta.slack.minimum_feasible_period` over the mutated
design — not within-epsilon, identical floats.  The ingredients:

* refreshed rows recompute with the same elementwise arithmetic the full
  vector pass uses (all skew models are elementwise in the pair metrics,
  and IEEE-754 scalar and vectorized float64 ops round identically);
* ``fl(period - x)`` is monotone in ``x``, so ``min(period - need) ==
  period - max(need)`` exactly, which is what lets a running extremum
  answer ``worst_setup_slack``;
* after ``resize_buffer`` the session refreshes every pair with an
  endpoint inside the subtree (the OR set), not just the pairs whose
  paths cross the edge (the XOR set that
  :meth:`~repro.clocktree.lca.LiftingLCAIndex.pairs_through_node`
  reports): the subtree's root distances shift by a *rounded* constant,
  so an inside-inside pair's ``d``/``s`` can move by an ulp even though
  its exact-arithmetic value is unchanged.

The ``differential-eco`` check (and the hypothesis property suite)
replays randomized edit scripts asserting incremental == full after
every step; the full pass stays in the tree as the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sta.design import Design, EdgeKey
from repro.sta.drc import run_drc
from repro.sta.flow import (
    FlowAnalysis,
    ServiceSpec,
    _service_vector,
    detect_deadlock,
    flow_graph,
    mcm_howard,
)
from repro.sta.report import STAReport, build_report
from repro.sta.slack import (
    SIM_TOL,
    SlackAnalysis,
    _bisect_period,
    _edge_vectors,
)

NodeId = Hashable

#: One grafted node: (parent, node, position, edge length).  The parent
#: may itself be a node grafted earlier in the same batch.
GraftNode = Tuple[NodeId, NodeId, Point, float]


@dataclass(frozen=True)
class EcoEdit:
    """The audit record of one applied edit."""

    op: str
    target: str
    dirty_rows: int
    semantic_dirty_rows: int
    edges: int

    @property
    def reuse_fraction(self) -> float:
        """Fraction of slack rows served from state instead of recomputed."""
        if self.edges == 0:
            return 1.0
        return 1.0 - self.dirty_rows / self.edges

    def to_dict(self) -> Dict[str, Any]:
        return {
            "edit": self.op,
            "target": self.target,
            "dirty_rows": self.dirty_rows,
            "reuse_fraction": self.reuse_fraction,
        }


class _Extremum:
    """Running argmax/argmin over a mutable float64 vector.

    ``note_dirty(rows)`` is called *after* the rows' values change: if the
    champion itself was dirtied the tracker goes lazy (``-1``) and the
    next ``value()`` rescans in O(n); otherwise a dirtied row can only
    replace the champion by beating it, an O(|rows|) comparison.  The
    champion's value always equals the true extremum (any row attaining
    it gives the same float), which is all the callers consume.
    """

    __slots__ = ("_values", "_maximum", "_arg")

    def __init__(self, values: np.ndarray, maximum: bool) -> None:
        self._values = values
        self._maximum = maximum
        self._arg = -1

    def note_dirty(self, rows: np.ndarray) -> None:
        if self._arg < 0 or len(rows) == 0:
            return
        if bool(np.any(rows == self._arg)):
            self._arg = -1
            return
        sub = self._values[rows]
        if self._maximum:
            challenger = int(rows[int(np.argmax(sub))])
            if self._values[challenger] > self._values[self._arg]:
                self._arg = challenger
        else:
            challenger = int(rows[int(np.argmin(sub))])
            if self._values[challenger] < self._values[self._arg]:
                self._arg = challenger

    def value(self, default: float = 0.0) -> float:
        if len(self._values) == 0:
            return default
        if self._arg < 0:
            if self._maximum:
                self._arg = int(np.argmax(self._values))
            else:
                self._arg = int(np.argmin(self._values))
        return float(self._values[self._arg])


class ECOSession:
    """Sublinear what-if re-analysis over one mutable design.

    All edits must flow through the session: the COMM graph and clock
    tree versions are snapshotted and any out-of-band mutation raises
    ``RuntimeError`` at the next edit or query (open a fresh session
    instead).  The wrapped design object *is* mutated (padding, wire
    overrides, tree) — that is the point: after a session the design and
    a fresh full analysis agree with everything the session reported.

    Instrumentation follows the repo convention — opt-in ``tracer=`` /
    ``metrics=`` kwargs, zero overhead when absent: one ``eco`` trace
    event per edit, plus ``eco.edits`` / ``eco.dirty_rows`` metrics.
    """

    def __init__(
        self,
        design: Design,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics
        self._design = design
        edges, lag, lead, sigma_ub, sigma_lb = _edge_vectors(design)
        self._edges: List[EdgeKey] = edges
        self._row: Dict[EdgeKey, int] = design.array.comm.edge_index()
        # Owned writable copies of the slack ingredients.
        self._lag = np.array(lag, dtype=np.float64)
        self._lead = np.array(lead, dtype=np.float64)
        self._sigma_ub = np.array(sigma_ub, dtype=np.float64)
        self._sigma_lb = np.array(sigma_lb, dtype=np.float64)
        self._need_exact = self._lead + self._lag
        self._need_bound = self._sigma_ub + self._lag
        self._hold_bound = self._lag - self._sigma_ub
        self._max_need_exact = _Extremum(self._need_exact, maximum=True)
        self._min_need_exact = _Extremum(self._need_exact, maximum=False)
        self._max_need_bound = _Extremum(self._need_bound, maximum=True)
        # Dense tree ids of each edge's endpoints, for subtree dirty sets.
        tree = design.tree
        self._a_ids, self._b_ids = tree.pair_ids(self._edges)
        self._comm_version = design.array.comm.version
        self._tree_version = tree.version
        self._edits: List[EcoEdit] = []
        self._counts_cache: Optional[Dict[str, int]] = None
        # Self-timed channel capacities (session state, not on the
        # design: the clocked discipline has no FIFOs).  Missing edge =
        # unbounded.  The flow memos are keyed by (service vector bytes,
        # wire delay); capacity lives here and edits update the entries
        # in place — reusing the cached critical cycle when the edit
        # provably cannot move it.
        self._capacity: Dict[EdgeKey, int] = {}
        self._flow_cache: Dict[
            Tuple[bytes, float], Tuple[Dict[Any, float], FlowAnalysis]
        ] = {}

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def design(self) -> Design:
        """The design in its current (edited) state.  ``set_period``
        replaces the bundle, so re-read this property after edits."""
        return self._design

    @property
    def edits(self) -> List[EcoEdit]:
        return list(self._edits)

    def _check_external(self) -> None:
        if self._design.array.comm.version != self._comm_version:
            raise RuntimeError(
                "COMM graph mutated outside the ECO session; its slack rows "
                "are unknown to the session — open a new one"
            )
        if self._design.tree.version != self._tree_version:
            raise RuntimeError(
                "clock tree mutated outside the ECO session; skew bounds are "
                "stale — route edits through the session or open a new one"
            )

    def _refresh_lag_row(self, i: int, edge: EdgeKey) -> None:
        """Recompute one row's lag and the vectors derived from it, with
        the exact scalar arithmetic of the full pass."""
        self._lag[i] = self._design.edge_lag(edge)
        self._need_exact[i] = self._lead[i] + self._lag[i]
        self._need_bound[i] = self._sigma_ub[i] + self._lag[i]
        self._hold_bound[i] = self._lag[i] - self._sigma_ub[i]

    def _record(
        self, op: str, target: str, rows: np.ndarray, semantic_rows: int
    ) -> EcoEdit:
        self._max_need_exact.note_dirty(rows)
        self._min_need_exact.note_dirty(rows)
        self._max_need_bound.note_dirty(rows)
        self._counts_cache = None
        edit = EcoEdit(
            op=op,
            target=target,
            dirty_rows=int(len(rows)),
            semantic_dirty_rows=semantic_rows,
            edges=len(self._edges),
        )
        self._edits.append(edit)
        if self._metrics is not None:
            self._metrics.counter("eco.edits").inc()
            self._metrics.histogram("eco.dirty_rows").observe(float(len(rows)))
        if self._tracer.enabled:
            self._tracer.event(
                float(len(self._edits)),
                "eco",
                "edit",
                op=op,
                target=target,
                dirty_rows=int(len(rows)),
                reuse_fraction=edit.reuse_fraction,
            )
        return edit

    # ------------------------------------------------------------------
    # typed edits
    # ------------------------------------------------------------------
    def repad_edge(self, edge: EdgeKey, pad: float) -> EcoEdit:
        """Set the hold-fix padding of one directed COMM edge."""
        self._check_external()
        if pad < 0:
            raise ValueError("padding must be non-negative")
        i = self._row.get(edge)
        if i is None:
            raise KeyError(f"edge {edge!r} is not a COMM edge")
        if pad > 0.0:
            self._design.edge_padding[edge] = float(pad)
        else:
            self._design.edge_padding.pop(edge, None)
        self._refresh_lag_row(i, edge)
        rows = np.array([i], dtype=np.int64)
        return self._record("repad_edge", _edge_str(edge), rows, 1)

    def retarget_wire(self, edge: EdgeKey, length: float) -> EcoEdit:
        """Reroute one directed COMM edge's data wire to a new length
        (its endpoints stay put; the layout distance is overridden)."""
        self._check_external()
        if length < 0:
            raise ValueError("wire length must be non-negative")
        i = self._row.get(edge)
        if i is None:
            raise KeyError(f"edge {edge!r} is not a COMM edge")
        self._design.wire_overrides[edge] = float(length)
        self._refresh_lag_row(i, edge)
        rows = np.array([i], dtype=np.int64)
        return self._record("retarget_wire", _edge_str(edge), rows, 1)

    def resize_buffer(self, node: NodeId, length: float) -> EcoEdit:
        """Retune the clock-tree edge above ``node`` (a resized buffer
        string changes the edge's electrical length).

        Dirties the COMM pairs with an endpoint inside ``node``'s subtree.
        The *semantically* dirty pairs are only those whose tree path
        crosses the resized edge (exactly one endpoint inside —
        ``pairs_through_node``), but the subtree shift is applied in
        floating point, so inside-inside pairs are conservatively
        refreshed too to keep the bit-exactness contract.
        """
        self._check_external()
        design = self._design
        tree = design.tree
        tree.set_edge_length(node, length)  # validates node and length
        self._tree_version = tree.version
        index = tree.lca_index()
        nid = index.node_id(node)
        in_a = index.in_subtree_ids(nid, self._a_ids)
        in_b = index.in_subtree_ids(nid, self._b_ids)
        rows = np.flatnonzero(in_a | in_b)
        semantic = int(np.count_nonzero(in_a ^ in_b))
        if len(rows):
            sub_edges = [self._edges[int(i)] for i in rows]
            self._sigma_ub[rows] = design.model.skew_bound_batch(tree, sub_edges)
            self._sigma_lb[rows] = design.model.skew_lower_bound_batch(
                tree, sub_edges
            )
            self._need_bound[rows] = self._sigma_ub[rows] + self._lag[rows]
            self._hold_bound[rows] = self._lag[rows] - self._sigma_ub[rows]
        return self._record("resize_buffer", str(node), rows, semantic)

    def graft_subtree(self, additions: Sequence[GraftNode]) -> EcoEdit:
        """Grow the clock tree by a batch of new nodes.

        New nodes carry no COMM edges yet, so no existing slack row moves;
        the live LCA index extends itself incrementally on its next query
        (no rebuild).  Later edits (a resize above the graft point) see
        the new topology automatically.
        """
        self._check_external()
        tree = self._design.tree
        for parent, node, position, length in additions:
            tree.add_child(parent, node, position, length)
        self._tree_version = tree.version
        rows = np.empty(0, dtype=np.int64)
        return self._record(
            "graft_subtree", f"{len(additions)} nodes", rows, 0
        )

    def set_period(self, period: float) -> EcoEdit:
        """Re-clock the design at a new period (offsets kept).

        O(1): the stored vectors are period-free ``need`` forms; only the
        verdict masks depend on the period and they are re-derived lazily.
        """
        self._check_external()
        if period <= 0:
            raise ValueError("period must be positive")
        self._design = self._design.with_period(float(period))
        rows = np.empty(0, dtype=np.int64)
        return self._record("set_period", f"{float(period):g}", rows, 0)

    def set_channel_capacity(self, edge: EdgeKey, depth: int) -> EcoEdit:
        """Set the finite FIFO depth of one directed COMM channel.

        Clocked slack rows are untouched (capacity is a self-timed
        quantity that never enters a lag), so the edit dirties zero
        rows; the incrementality lives in the flow memos.  A *widening*
        (finite depth raised) of a channel off a cached critical cycle
        keeps that cached solve: extra slots only add tokens to — i.e.
        lower the means of — cycles through the edited edge, so the
        argmax cycle and its ratio are unchanged, exactly, and deadlock
        cannot appear.  Any other edit (first finite depth, a narrowing,
        a touched critical cycle, or a previously dead graph) re-solves
        the entry, warm-starting Howard from the cached policy.
        """
        self._check_external()
        if depth < 1:
            raise ValueError("channel capacity must be >= 1")
        if edge not in self._row:
            raise KeyError(f"edge {edge!r} is not a COMM edge")
        old = self._capacity.get(edge)
        self._capacity[edge] = int(depth)
        widening = old is not None and depth >= old
        comm = self._design.array.comm
        cap = dict(self._capacity)
        reused = 0
        recomputed = 0
        for key, (svc_map, analysis) in list(self._flow_cache.items()):
            wire = key[1]
            fg = flow_graph(comm, svc_map, wire, cap)
            keep = (
                widening
                and analysis.cycle is not None
                and edge not in analysis.critical_comm_edges()
            )
            if keep:
                fresh = FlowAnalysis(
                    graph=fg, deadlock=None, cycle=analysis.cycle
                )
                reused += 1
            else:
                dead = detect_deadlock(comm, cap)
                warm = (
                    analysis.cycle.policy
                    if analysis.cycle is not None
                    else None
                )
                cycle = (
                    mcm_howard(fg, warm_start=warm) if dead is None else None
                )
                fresh = FlowAnalysis(graph=fg, deadlock=dead, cycle=cycle)
                recomputed += 1
            self._flow_cache[key] = (svc_map, fresh)
        if self._metrics is not None:
            if reused:
                self._metrics.counter("eco.flow_reuse").inc(reused)
            if recomputed:
                self._metrics.counter("eco.flow_recompute").inc(recomputed)
        rows = np.empty(0, dtype=np.int64)
        return self._record(
            "set_channel_capacity",
            f"{_edge_str(edge)} depth={int(depth)}",
            rows,
            recomputed,
        )

    def apply(self, op: str, **params: Any) -> EcoEdit:
        """Dispatch one edit by name — the edit-script entry point."""
        if op == "repad_edge":
            return self.repad_edge(params["edge"], params["pad"])
        if op == "retarget_wire":
            return self.retarget_wire(params["edge"], params["length"])
        if op == "resize_buffer":
            return self.resize_buffer(params["node"], params["length"])
        if op == "graft_subtree":
            return self.graft_subtree(params["additions"])
        if op == "set_period":
            return self.set_period(params["period"])
        if op == "set_channel_capacity":
            return self.set_channel_capacity(params["edge"], params["depth"])
        raise ValueError(f"unknown ECO op {op!r}")

    # ------------------------------------------------------------------
    # queries (all bit-identical to the full recompute)
    # ------------------------------------------------------------------
    def worst_setup_slack(self) -> float:
        self._check_external()
        if not self._edges:
            return 0.0
        return float(self._design.period - self._max_need_exact.value())

    def worst_hold_slack(self) -> float:
        self._check_external()
        if not self._edges:
            return 0.0
        return self._min_need_exact.value()

    def minimum_feasible_period(
        self,
        mode: str = "exact",
        tol: float = 1e-9,
        max_iterations: int = 200,
    ) -> float:
        """Warm minimum-feasible-period: O(log) bisection from the tracked
        ``max(needs)`` — identical decisions, identical float, to the full
        O(edges) :func:`~repro.sta.slack.minimum_feasible_period`."""
        self._check_external()
        if not self._edges:
            return 0.0
        if mode == "exact":
            needs_max = self._max_need_exact.value()
        elif mode == "bound":
            needs_max = self._max_need_bound.value()
        else:
            raise ValueError(f"unknown slack mode {mode!r} (exact|bound)")
        return _bisect_period(needs_max, tol=tol, max_iterations=max_iterations)

    def _masks(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        period = self._design.period
        stale = (period - self._need_exact) < -SIM_TOL
        race = self._need_exact <= SIM_TOL
        stale_bound = (period - self._need_bound) < -SIM_TOL
        race_bound = self._hold_bound <= SIM_TOL
        race_floor = self._sigma_lb >= self._lag - SIM_TOL
        return stale, race, stale_bound, race_bound, race_floor

    def counts(self) -> Dict[str, int]:
        """Flag counts in the shape :func:`~repro.sta.report.build_report`
        computes (sans DRC), re-derived lazily after edits."""
        self._check_external()
        if self._counts_cache is None:
            stale, race, stale_bound, race_bound, race_floor = self._masks()
            self._counts_cache = {
                "edges": len(self._edges),
                "stale": int(np.count_nonzero(stale)),
                "race": int(np.count_nonzero(race)),
                "stale_possible": int(np.count_nonzero(stale_bound & ~stale)),
                "race_possible": int(np.count_nonzero(race_bound & ~race)),
                "race_floor": int(np.count_nonzero(race_floor)),
            }
        return dict(self._counts_cache)

    def timing_clean(self) -> bool:
        counts = self.counts()
        return counts["stale"] == 0 and counts["race"] == 0

    def robust_clean(self) -> bool:
        self._check_external()
        _, _, stale_bound, race_bound, _ = self._masks()
        return not (bool(stale_bound.any()) or bool(race_bound.any()))

    @property
    def channel_capacities(self) -> Dict[EdgeKey, int]:
        """The session's current per-edge FIFO depths (missing =
        unbounded)."""
        return dict(self._capacity)

    def flow(
        self, service: ServiceSpec = 1.0, wire_delay: float = 0.0
    ) -> FlowAnalysis:
        """Static flow analysis under the session's channel capacities.

        Memoized per (service vector, wire delay); capacity edits keep
        the memo live — see :meth:`set_channel_capacity`.  Every answer
        is bit-identical to a cold :func:`~repro.sta.flow.analyze_flow`
        over the current capacity map (the ``differential-eco`` suite
        replays edit scripts asserting exactly that).
        """
        self._check_external()
        comm = self._design.array.comm
        cells = comm.nodes()
        services = _service_vector(cells, service)
        key = (services.tobytes(), float(wire_delay))
        entry = self._flow_cache.get(key)
        if entry is None:
            svc_map = {
                c: float(s) for c, s in zip(cells, services.tolist())
            }
            cap = dict(self._capacity) if self._capacity else None
            fg = flow_graph(comm, svc_map, wire_delay, cap)
            dead = detect_deadlock(comm, cap)
            cycle = mcm_howard(fg) if dead is None else None
            entry = (svc_map, FlowAnalysis(graph=fg, deadlock=dead, cycle=cycle))
            self._flow_cache[key] = entry
        return entry[1]

    def analysis(self) -> SlackAnalysis:
        """Materialize the current state as a frozen
        :class:`~repro.sta.slack.SlackAnalysis` — bit-identical to
        ``analyze_slack(session.design)``."""
        self._check_external()
        period = self._design.period
        lag = self._lag.copy()
        lead = self._lead.copy()
        sigma_ub = self._sigma_ub.copy()
        sigma_lb = self._sigma_lb.copy()
        setup_exact = period - self._need_exact
        hold_exact = self._need_exact.copy()
        setup_bound = period - self._need_bound
        hold_bound = self._hold_bound.copy()
        for arr in (lag, lead, sigma_ub, sigma_lb, setup_exact, hold_exact,
                    setup_bound, hold_bound):
            arr.flags.writeable = False
        return SlackAnalysis(
            period=period,
            edges=tuple(self._edges),
            lag=lag,
            sigma_ub=sigma_ub,
            sigma_lb=sigma_lb,
            offset_lead=lead,
            setup_exact=setup_exact,
            hold_exact=hold_exact,
            setup_bound=setup_bound,
            hold_bound=hold_bound,
        )

    def summary(self) -> Dict[str, Any]:
        """The cheap always-incremental digest of the current state."""
        out: Dict[str, Any] = dict(self.counts())
        out["worst_setup_slack"] = self.worst_setup_slack()
        out["worst_hold_slack"] = self.worst_hold_slack()
        out["min_feasible_period_exact"] = self.minimum_feasible_period("exact")
        out["min_feasible_period_bound"] = self.minimum_feasible_period("bound")
        out["timing_clean"] = self.timing_clean()
        out["robust_clean"] = self.robust_clean()
        out["edits_applied"] = len(self._edits)
        return out

    def report(self) -> STAReport:
        """A full schema-valid report of the current state (the CLI emits
        one per edit-script step).  DRC re-runs fresh; the slack pieces
        come from the incremental state.  The last edit's audit record is
        attached as the report's ``eco`` block.
        """
        analysis = self.analysis()
        design = self._design
        drc_results = run_drc(design, analysis)
        empirical: Optional[Dict[str, Any]] = None
        if design.buffered is not None:
            max_skew = design.buffered.max_skew(self._edges)
            sigma_ub_max = float(self._sigma_ub.max()) if self._edges else 0.0
            empirical = {
                "max_skew": max_skew,
                "model_sigma_ub_max": sigma_ub_max,
                "within_model": bool(max_skew <= sigma_ub_max + 1e-12),
            }
        report = build_report(
            design,
            analysis,
            drc_results,
            self.minimum_feasible_period("exact"),
            self.minimum_feasible_period("bound"),
            empirical=empirical,
        )
        if self._edits:
            report.eco = self._edits[-1].to_dict()
        return report


def _edge_str(edge: EdgeKey) -> str:
    return f"{edge[0]!r}->{edge[1]!r}"
