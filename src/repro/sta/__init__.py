"""repro.sta — static timing analysis, race detection, and design rules.

The paper's argument is static: period and race safety follow from skew
*bounds*, never from running the array.  This package makes that argument
executable as a linter:

* :mod:`repro.sta.design` — the :class:`Design` bundle (program + clock
  tree + skew model + schedule + discipline) and ready-made/randomized
  design generators;
* :mod:`repro.sta.slack` — vectorized per-edge setup/hold slack in exact
  (schedule) and bound (model) modes, the minimum feasible period
  (monotone bisection), and worst-case hold padding;
* :mod:`repro.sta.drc` — assumptions A1-A11 as pass/fail/warn/skip rules;
* :mod:`repro.sta.analyzer` — the cached, instrumented facade;
* :mod:`repro.sta.eco` — the incremental what-if engine: typed edits
  (repad, reroute, buffer resize, graft, re-clock, channel capacity) with
  per-edit dirty-set derivation, bit-identical to a full re-analysis at
  every step;
* :mod:`repro.sta.flow` — simulation-free *self-timed* analysis: maximum
  cycle mean (Karp oracle + vectorized Howard kernel) with critical-cycle
  blame, static deadlock detection, minimal buffer sizing, and transient
  makespan bounds, all held to bit-exact agreement with the event-driven
  simulator;
* :mod:`repro.sta.flowreport` — the schema-pinned flow report
  (``python -m repro flow``);
* :mod:`repro.sta.tiles` — tiled composition by abutment: pre-characterize
  one tile, stitch an R x C array's analysis from cached summaries plus
  boundary edges, exactly equal to the flat pass;
* :mod:`repro.sta.report` — the schema-pinned JSON report and its CLI
  rendering (``python -m repro sta``).

Soundness contract (enforced by the ``sta-soundness`` oracle in
:mod:`repro.check`): a ``clean`` verdict implies the clocked simulator
runs violation-free, and every simulator-observed violation edge has
non-positive static slack.
"""

from repro.sta.analyzer import STAAnalyzer, analyze
from repro.sta.design import (
    Design,
    WORKLOADS,
    design_for_workload,
    random_design,
)
from repro.sta.drc import RuleResult, drc_counts, drc_failures, run_drc
from repro.sta.eco import ECOSession, EcoEdit
from repro.sta.flow import (
    FlowAnalysis,
    FlowCycle,
    FlowEdge,
    FlowGraph,
    SizingResult,
    SteadyState,
    analyze_flow,
    detect_deadlock,
    flow_graph,
    mcm_howard,
    mcm_karp,
    minimal_buffer_sizing,
    simulate_steady_state,
    simulate_steady_state_scalar,
)
from repro.sta.flowreport import build_flow_report, render_flow_report
from repro.sta.report import STAReport, build_report, render_report
from repro.sta.slack import (
    EdgeSlack,
    SlackAnalysis,
    analyze_slack,
    edge_lags,
    minimum_feasible_period,
    minimum_feasible_period_closed_form,
    pad_for_races,
)
from repro.sta.tiles import (
    ArraySummary,
    TileSpec,
    compose_design,
    flat_summary,
    stitched_analysis,
)

__all__ = [
    "ArraySummary",
    "Design",
    "ECOSession",
    "EcoEdit",
    "EdgeSlack",
    "FlowAnalysis",
    "FlowCycle",
    "FlowEdge",
    "FlowGraph",
    "RuleResult",
    "STAAnalyzer",
    "STAReport",
    "SizingResult",
    "SlackAnalysis",
    "SteadyState",
    "TileSpec",
    "WORKLOADS",
    "analyze",
    "analyze_flow",
    "analyze_slack",
    "build_flow_report",
    "build_report",
    "compose_design",
    "design_for_workload",
    "detect_deadlock",
    "drc_counts",
    "drc_failures",
    "edge_lags",
    "flat_summary",
    "flow_graph",
    "mcm_howard",
    "mcm_karp",
    "minimal_buffer_sizing",
    "minimum_feasible_period",
    "minimum_feasible_period_closed_form",
    "pad_for_races",
    "random_design",
    "render_flow_report",
    "render_report",
    "simulate_steady_state",
    "simulate_steady_state_scalar",
    "run_drc",
    "stitched_analysis",
]
