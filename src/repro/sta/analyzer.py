"""The analyzer facade: slack + DRC + report with caching and observability.

:class:`STAAnalyzer` owns the expensive vectors for one design and
memoizes them against a *fingerprint* of everything the math depends on:
the COMM graph's mutation counter, the buffered tree's rebuild counter
(see :attr:`repro.clocktree.buffered.BufferedClockTree.version` — this is
what makes a ``resample()`` visible through the cache), the period, and
the padding map.  Any change to those invalidates every derived quantity
at the next query; nothing else can change them, so hits are safe.

Instrumentation follows the repo convention — opt-in ``tracer=`` /
``metrics=`` kwargs, zero overhead when absent:

* trace events, category ``sta``: one ``analyze`` event per fresh
  computation with the verdict and flag counts;
* metrics: ``sta.runs`` / ``sta.cache_hits`` counters and an
  ``sta.duration_s`` histogram.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sta.design import Design
from repro.sta.drc import RuleResult, run_drc
from repro.sta.flow import (
    CapacitySpec,
    FlowAnalysis,
    ServiceSpec,
    _capacity_items,
    _service_vector,
    analyze_flow,
)
from repro.sta.report import STAReport, build_report
from repro.sta.slack import (
    SlackAnalysis,
    analyze_slack,
    minimum_feasible_period,
)

_Fingerprint = Tuple[
    int,
    int,
    int,
    float,
    float,
    Tuple[Tuple[Any, float], ...],
    Tuple[Tuple[Any, float], ...],
]


class STAAnalyzer:
    """Static timing analysis of one design, cached against its state."""

    def __init__(
        self,
        design: Design,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.design = design
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics
        self._fingerprint: Optional[_Fingerprint] = None
        self._slack: Optional[SlackAnalysis] = None
        self._drc: Optional[List[RuleResult]] = None
        self._feasible: Dict[str, float] = {}
        self._empirical: Optional[Dict[str, Any]] = None
        self._flow: Dict[Tuple[Any, ...], FlowAnalysis] = {}

    def _current_fingerprint(self) -> _Fingerprint:
        """Snapshot everything the slack math reads.

        Mutable inputs are captured by *value* (padding and wire-override
        maps, delta, period) or by mutation counter (COMM graph, geometric
        tree, buffered realization), so in-place edits — an ECO session
        repadding an edge, a script poking ``design.delta``, a
        ``set_edge_length`` retune — can never be served a stale report.
        """
        d = self.design
        buffered_version = d.buffered.version if d.buffered is not None else -1
        padding = tuple(
            sorted(d.edge_padding.items(), key=lambda kv: repr(kv[0]))
        )
        overrides = tuple(
            sorted(d.wire_overrides.items(), key=lambda kv: repr(kv[0]))
        )
        return (
            d.array.comm.version,
            d.tree.version,
            buffered_version,
            d.period,
            d.delta,
            padding,
            overrides,
        )

    def _fresh(self) -> bool:
        """Drop every memo if the design moved; report whether caches hold."""
        fp = self._current_fingerprint()
        if fp != self._fingerprint:
            self._fingerprint = fp
            self._slack = None
            self._drc = None
            self._feasible = {}
            self._empirical = None
            self._flow = {}
            return False
        return True

    def slack(self) -> SlackAnalysis:
        hit = self._fresh() and self._slack is not None
        if self._slack is None:
            t0 = time.perf_counter()
            if self._tracer.enabled:
                from repro.obs.spans import SpanTracer

                spans = SpanTracer(self._tracer)
                with spans.span("sta.slack", design=self.design.name) as h:
                    self._slack = analyze_slack(self.design)
                    h.annotate(edges=len(self._slack.edges))
            else:
                self._slack = analyze_slack(self.design)
            self._observe(time.perf_counter() - t0, self._slack)
        if hit:
            if self._metrics is not None:
                self._metrics.counter("sta.cache_hits").inc()
            if self._tracer.enabled:
                self._tracer.event(
                    0.0, "sta", "cache_hit", design=self.design.name
                )
        return self._slack

    def drc(self) -> List[RuleResult]:
        self._fresh()
        if self._drc is None:
            self._drc = run_drc(self.design, self.slack())
        return self._drc

    def minimum_feasible_period(self, mode: str = "exact") -> float:
        self._fresh()
        if mode not in self._feasible:
            self._feasible[mode] = minimum_feasible_period(self.design, mode)
        return self._feasible[mode]

    def empirical(self) -> Optional[Dict[str, Any]]:
        """Cross-check of the buffered realization against the abstract
        model: the largest *measured* arrival-time skew over COMM edges vs
        the model's largest upper bound.  ``within_model`` false means the
        concrete tree drifted outside the model the rest of the analysis
        assumed (bound-mode conclusions don't transfer to it)."""
        self._fresh()
        if self._empirical is None:
            buffered = self.design.buffered
            if buffered is None:
                return None
            edges = self.design.edges()
            analysis = self.slack()
            max_skew = buffered.max_skew(edges)
            sigma_ub_max = (
                float(analysis.sigma_ub.max()) if len(analysis.edges) else 0.0
            )
            self._empirical = {
                "max_skew": max_skew,
                "model_sigma_ub_max": sigma_ub_max,
                "within_model": bool(max_skew <= sigma_ub_max + 1e-12),
                "tree_version": buffered.version,
            }
        return self._empirical

    def flow(
        self,
        service: ServiceSpec = 1.0,
        wire_delay: float = 0.0,
        capacity: CapacitySpec = None,
    ) -> FlowAnalysis:
        """Self-timed flow analysis of this design's COMM graph, memoized.

        The cache key is the resolved per-cell service vector (by value
        — two specs resolving to the same vector share an entry), the
        wire delay, and the normalized capacity items, all under the
        design fingerprint: a COMM mutation drops every entry, while
        clock-side edits merely rotate the fingerprint (over-
        invalidation, never staleness).
        """
        self._fresh()
        comm = self.design.array.comm
        cells = comm.nodes()
        services = _service_vector(cells, service)
        key: Tuple[Any, ...] = (
            services.tobytes(),
            float(wire_delay),
            tuple(_capacity_items(comm, capacity)),
        )
        hit = key in self._flow
        if not hit:
            t0 = time.perf_counter()
            analysis = analyze_flow(comm, service, wire_delay, capacity)
            self._flow[key] = analysis
            duration = time.perf_counter() - t0
            if self._metrics is not None:
                self._metrics.counter("sta.flow_runs").inc()
                self._metrics.histogram("sta.flow_duration_s").observe(
                    duration
                )
            if self._tracer.enabled:
                self._tracer.event(
                    0.0,
                    "sta",
                    "flow",
                    design=self.design.name,
                    cells=len(cells),
                    dead=analysis.dead,
                    cycle_time=analysis.cycle_time,
                    duration_s=duration,
                )
        else:
            if self._metrics is not None:
                self._metrics.counter("sta.flow_cache_hits").inc()
            if self._tracer.enabled:
                self._tracer.event(
                    0.0, "sta", "flow_cache_hit", design=self.design.name
                )
        return self._flow[key]

    def report(self) -> STAReport:
        """The full report (slack + DRC + feasibility + empirical)."""
        return build_report(
            self.design,
            self.slack(),
            self.drc(),
            self.minimum_feasible_period("exact"),
            self.minimum_feasible_period("bound"),
            self.empirical(),
        )

    def _observe(self, duration: float, analysis: SlackAnalysis) -> None:
        if self._metrics is not None:
            self._metrics.counter("sta.runs").inc()
            self._metrics.histogram("sta.duration_s").observe(duration)
        if self._tracer.enabled:
            self._tracer.event(
                0.0,
                "sta",
                "analyze",
                design=self.design.name,
                edges=len(analysis.edges),
                stale=int(analysis.stale_mask.sum()),
                race=int(analysis.race_mask.sum()),
                timing_clean=analysis.timing_clean,
                duration_s=duration,
            )


def analyze(
    design: Design,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> STAReport:
    """One-shot convenience: analyze a design and return its report."""
    return STAAnalyzer(design, tracer=tracer, metrics=metrics).report()
