"""Simulation-free flow analysis of self-timed arrays (max-plus STA).

The paper's Section IV-V claim — self-timed steady state is governed by
local data dependences, not array diameter — is *statically* checkable:
the tandem recurrence of :mod:`repro.sim.dataflow` is a max-plus linear
system over a token-weighted dependence graph, and marked-graph theory
gives closed-form answers the event engine can only observe:

* **Steady-state cycle time** is the maximum cycle mean (MCM) of the
  graph: ``lambda = max over cycles (sum of weights / sum of tokens)``.
  Computed two ways — :func:`mcm_karp` (the scalar oracle: Karp's
  theorem on the token-expanded graph, per SCC) and :func:`mcm_howard`
  (the fast kernel: vectorized policy iteration, with critical-cycle
  extraction feeding the :mod:`repro.obs.critpath` blame format).
* **Deadlock** is a token-free cycle: under a capacity assignment the
  capacity-1 channels carry zero tokens, so :func:`detect_deadlock`
  reduces to a cycle search in that COMM subgraph — provably the same
  condition the simulator's eager
  :class:`~repro.sim.dataflow.ChannelDeadlockError` checks.
* **Minimal buffer sizing** (:func:`minimal_buffer_sizing`) relaxes
  critical cycles: start every channel at depth 1, repeatedly raise the
  capacities on the current critical cycle until the MCM meets the
  target, then greedily shrink — monotonicity (fewer tokens never
  lowers the MCM) makes the single reduction pass irreducible.
* **Transient bounds**: after the periodic regime is reached the
  makespan is exactly affine-periodic, so ``N * MCM + c`` brackets every
  horizon and :meth:`SteadyState.makespan_at` *predicts* —
  bit-for-bit — what :meth:`~repro.sim.compiled.CompiledRecurrence.
  makespan` computes by iterating (cross-checked in the report and the
  ``differential-mcm`` oracle).

Token model (finish-time events, wave-invariant per-cell services
``s_c``, uniform wire delay ``w``), with edge ``u -> v`` meaning ``v``
depends on ``u``: ``finish[v][k] >= finish[u][k - tokens] + weight``:

==========================  ======================  ==============
dependence                  weight                  tokens
==========================  ======================  ==============
self (c busy)               ``s_c``                 1
forward (COMM ``p -> c``)   ``w + s_c``             1
credit (COMM ``c -> s``,    ``s_c - s_s``           ``d - 1``
capacity ``d``)
==========================  ======================  ==============

(The credit row is ``start[c][k] >= start[s][k-d+1]`` rewritten over
finishes; its weight can be negative and its token count zero — zero-
token edges are contracted over their DAG before the cycle-mean solvers
run.)

Exactness contract: with dyadic-rational delays every path sum is an
exact float, so Karp's formula value, Howard's critical-cycle ratio,
and the simulator's measured long-run rate are all correctly-rounded
divisions of exact operands of the same rational — equal bit for bit.
The ``differential-mcm`` oracle and the property suite hold this at
zero diff.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.graphs.comm import CommGraph
from repro.graphs.csr import csr_from_comm
from repro.obs.critpath import CriticalPath, PathStep
from repro.sim.compiled import CompiledRecurrence, RecurrenceStepper
from repro.sim.dataflow import ChannelDeadlockError

CellId = Hashable
EdgeKey = Tuple[CellId, CellId]
ServiceSpec = Union[float, Mapping[CellId, float], Callable[[CellId, int], float]]
CapacitySpec = Optional[Union[int, Mapping[EdgeKey, int]]]

#: Policy-improvement threshold for Howard iteration.  Sits between
#: float rounding noise (~1e-16 relative) and the smallest true
#: rational improvement at test scales (>= ~1e-6 for dyadic delays with
#: token counts below ~64), so convergence is exact in the dyadic
#: regime and robust otherwise.
_HOWARD_EPS = 1e-9

#: Iteration cap for Howard policy iteration — generously above the
#: handful of sweeps real graphs need; hitting it raises.
_HOWARD_MAX_ITERS = 10_000

__all__ = [
    "FlowAnalysis",
    "FlowEdge",
    "FlowGraph",
    "FlowCycle",
    "SizingResult",
    "SteadyState",
    "analyze_flow",
    "detect_deadlock",
    "flow_graph",
    "mcm_howard",
    "mcm_karp",
    "minimal_buffer_sizing",
    "simulate_steady_state",
    "simulate_steady_state_scalar",
]


# ----------------------------------------------------------------------
# graph construction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FlowEdge:
    """One dependence: ``finish[dst][k] >= finish[src][k - tokens] +
    weight``.  ``kind`` is ``"compute"`` (self), ``"forward"`` (COMM
    data edge: ``wire`` propagation plus the receiver's ``service``), or
    ``"credit"`` (finite-channel back edge).  ``src``/``dst`` are dense
    cell ids into :attr:`FlowGraph.cells`."""

    src: int
    dst: int
    weight: float
    tokens: int
    kind: str
    wire: float = 0.0
    service: float = 0.0


_KIND_CODES = {"compute": 0, "forward": 1, "credit": 2}
_KIND_NAMES = ("compute", "forward", "credit")


@dataclass(frozen=True)
class FlowGraph:
    """The token-weighted dependence graph of a self-timed array.

    Build via :func:`flow_graph` (from a COMM graph plus services, wire
    delay, and a capacity assignment) or from raw :class:`FlowEdge` lists
    via :meth:`from_edges` (the handshake-discipline models do this).
    ``services`` is the per-cell wave-invariant service vector in dense
    order.  Edges live in parallel arrays (``esrc``/``edst``/``eweight``/
    ``etokens``/``ekind``/``ewire``/``eservice``) — the solvers consume
    the arrays; :class:`FlowEdge` objects are materialized on demand via
    :meth:`edge` (the build would otherwise be dominated by dataclass
    construction at mesh scale).
    """

    cells: List[CellId]
    services: np.ndarray
    esrc: np.ndarray
    edst: np.ndarray
    eweight: np.ndarray
    etokens: np.ndarray
    ekind: np.ndarray  # int8 codes into _KIND_NAMES
    ewire: np.ndarray
    eservice: np.ndarray

    @classmethod
    def from_edges(
        cls,
        cells: List[CellId],
        edges: Sequence[FlowEdge],
        services: np.ndarray,
    ) -> "FlowGraph":
        # The blame builder re-accumulates cycle weight from the typed
        # wire/service fields, so a hand-built edge whose weight does not
        # decompose that way would silently mis-report cycle times.
        for e in edges:
            expect = {
                "compute": e.service,
                "forward": e.wire + e.service,
                "credit": e.weight,
            }[e.kind]
            if e.weight != expect:
                raise ValueError(
                    f"{e.kind} edge {e.src}->{e.dst}: weight {e.weight} "
                    f"!= its wire/service decomposition {expect}"
                )
        return cls(
            cells=cells,
            services=np.asarray(services, dtype=np.float64),
            esrc=np.asarray([e.src for e in edges], dtype=np.int64),
            edst=np.asarray([e.dst for e in edges], dtype=np.int64),
            eweight=np.asarray([e.weight for e in edges], dtype=np.float64),
            etokens=np.asarray([e.tokens for e in edges], dtype=np.int64),
            ekind=np.asarray(
                [_KIND_CODES[e.kind] for e in edges], dtype=np.int8
            ),
            ewire=np.asarray([e.wire for e in edges], dtype=np.float64),
            eservice=np.asarray([e.service for e in edges], dtype=np.float64),
        )

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def n_edges(self) -> int:
        return len(self.esrc)

    def edge(self, i: int) -> FlowEdge:
        """Materialize edge ``i`` as a :class:`FlowEdge`."""
        return FlowEdge(
            src=int(self.esrc[i]),
            dst=int(self.edst[i]),
            weight=float(self.eweight[i]),
            tokens=int(self.etokens[i]),
            kind=_KIND_NAMES[int(self.ekind[i])],
            wire=float(self.ewire[i]),
            service=float(self.eservice[i]),
        )

    @property
    def edges(self) -> List[FlowEdge]:
        """All edges materialized (reporting/tests; solvers use arrays)."""
        return [self.edge(i) for i in range(self.n_edges)]


def _service_vector(
    cells: Sequence[CellId], service: ServiceSpec
) -> np.ndarray:
    """Resolve a service spec to the dense per-cell vector.  Callables
    are probed at wave 0 (static analysis needs wave-invariance; the
    ``constant_duration`` / ``cell_durations`` fast-path attributes of
    :mod:`repro.sim.dataflow` are honoured directly)."""
    if isinstance(service, (int, float)):
        value = float(service)
        if value < 0:
            raise ValueError("service time must be non-negative")
        return np.full(len(cells), value, dtype=np.float64)
    if isinstance(service, Mapping):
        out = np.asarray(
            [float(service[c]) for c in cells], dtype=np.float64
        )
    else:
        constant = getattr(service, "constant_duration", None)
        if constant is not None:
            return np.full(len(cells), float(constant), dtype=np.float64)
        durations = getattr(service, "cell_durations", None)
        if durations is not None:
            out = np.asarray(
                [float(durations[c]) for c in cells], dtype=np.float64
            )
        else:
            out = np.asarray(
                [float(service(c, 0)) for c in cells], dtype=np.float64
            )
    if (out < 0).any():
        raise ValueError("service times must be non-negative")
    return out


def _capacity_items(
    comm: CommGraph, capacity: CapacitySpec
) -> List[Tuple[EdgeKey, int]]:
    """Normalized ``(edge, depth)`` list (validated) for a spec."""
    if capacity is None:
        return []
    edges = comm.edges()
    if isinstance(capacity, Mapping):
        edge_set = set(edges)
        items: List[Tuple[EdgeKey, int]] = []
        for edge in edges:  # deterministic COMM order
            d_raw = capacity.get(edge)
            if d_raw is None:
                continue
            d = int(d_raw)
            if d < 1:
                raise ValueError(
                    f"per-edge channel capacity must be >= 1, got {d} "
                    f"for edge {edge!r}"
                )
            items.append((edge, d))
        unknown = [e for e in capacity if e not in edge_set]
        if unknown:
            raise ValueError(f"capacity for unknown COMM edge {unknown[0]!r}")
        return items
    d = int(capacity)
    if d < 1:
        raise ValueError("channel capacity must be >= 1 (or None)")
    return [(edge, d) for edge in edges]


def flow_graph(
    comm: CommGraph,
    service: ServiceSpec,
    wire_delay: float = 0.0,
    capacity: CapacitySpec = None,
) -> FlowGraph:
    """Lower a COMM graph + timing model to its flow graph.

    Edge order is deterministic: per-cell self edges first (dense
    order), then forward edges in canonical CSR predecessor order, then
    credit back edges in COMM edge order.  Zero-token (capacity-1)
    credit edges are *included* — deadlock detection and contraction
    happen in the solvers.
    """
    if wire_delay < 0:
        raise ValueError("wire delay must be non-negative")
    csr = csr_from_comm(comm)
    cells = csr.nodes if csr.nodes is not None else list(range(csr.n_cells))
    index = {c: i for i, c in enumerate(cells)}
    services = _service_vector(cells, service)
    n = len(cells)
    ids = np.arange(n, dtype=np.int64)
    # Self edges, then forward edges (CSR predecessor order), then
    # credit back edges (COMM edge order) — all as array blocks.
    fwd_dst = np.repeat(ids, np.diff(csr.indptr))
    fwd_src = csr.indices.astype(np.int64)
    cap_items = _capacity_items(comm, capacity)
    cr_src = np.asarray(
        [index[v] for (u, v), _ in cap_items], dtype=np.int64
    )
    cr_dst = np.asarray(
        [index[u] for (u, v), _ in cap_items], dtype=np.int64
    )
    cr_tok = np.asarray([d - 1 for _, d in cap_items], dtype=np.int64)
    n_fwd = len(fwd_src)
    n_cr = len(cr_src)
    esrc = np.concatenate([ids, fwd_src, cr_src])
    edst = np.concatenate([ids, fwd_dst, cr_dst])
    eservice = services[edst]
    eweight = np.concatenate(
        [
            services,
            wire_delay + services[fwd_dst],
            services[cr_dst] - services[cr_src],
        ]
    )
    etokens = np.concatenate(
        [np.ones(n + n_fwd, dtype=np.int64), cr_tok]
    )
    ekind = np.concatenate(
        [
            np.zeros(n, dtype=np.int8),
            np.ones(n_fwd, dtype=np.int8),
            np.full(n_cr, 2, dtype=np.int8),
        ]
    )
    ewire = np.concatenate(
        [
            np.zeros(n, dtype=np.float64),
            np.full(n_fwd, wire_delay, dtype=np.float64),
            np.zeros(n_cr, dtype=np.float64),
        ]
    )
    return FlowGraph(
        cells=list(cells),
        services=services,
        esrc=esrc,
        edst=edst,
        eweight=eweight,
        etokens=etokens,
        ekind=ekind,
        ewire=ewire,
        eservice=eservice,
    )


# ----------------------------------------------------------------------
# static deadlock detection
# ----------------------------------------------------------------------
def detect_deadlock(
    comm: CommGraph, capacity: CapacitySpec
) -> Optional[List[EdgeKey]]:
    """A token-free cycle under ``capacity``, or ``None`` when live.

    Returns the COMM edges of one directed cycle through capacity-1
    channels (in cycle order) — exactly the condition under which the
    simulator raises :class:`~repro.sim.dataflow.ChannelDeadlockError`
    eagerly (the ``flow-deadlock`` oracle asserts the equivalence).
    """
    cap1 = [edge for edge, d in _capacity_items(comm, capacity) if d == 1]
    if not cap1:
        return None
    succs: Dict[CellId, List[CellId]] = {}
    for u, v in cap1:
        succs.setdefault(u, []).append(v)
    # Iterative DFS with colors; the first back edge closes a cycle.
    color: Dict[CellId, int] = {}  # 1 = on stack, 2 = done
    for root in succs:
        if color.get(root):
            continue
        stack: List[Tuple[CellId, int]] = [(root, 0)]
        path: List[CellId] = []
        while stack:
            node, child = stack.pop()
            if child == 0:
                color[node] = 1
                path.append(node)
            out = succs.get(node, ())
            advanced = False
            for j in range(child, len(out)):
                nxt = out[j]
                state = color.get(nxt, 0)
                if state == 1:
                    start = path.index(nxt)
                    nodes = path[start:]
                    return [
                        (nodes[i], nodes[(i + 1) % len(nodes)])
                        for i in range(len(nodes))
                    ]
                if state == 0:
                    stack.append((node, j + 1))
                    stack.append((nxt, 0))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                path.pop()
    return None


# ----------------------------------------------------------------------
# zero-token contraction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Normalized:
    """Contracted edge arrays (every edge carries >= 1 token) plus the
    underlying original-edge-index chain per contracted edge.
    ``chains is None`` means the contraction was the identity (no
    zero-token edges): contracted edge ``i`` is original edge ``i``."""

    n: int
    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray
    tokens: np.ndarray
    chains: Optional[List[Tuple[int, ...]]]

    def chain(self, i: int) -> Tuple[int, ...]:
        return (i,) if self.chains is None else self.chains[i]


def _normalize(fg: FlowGraph) -> _Normalized:
    """Contract zero-token edges over their (acyclic) subgraph.

    Every positive-token edge ``u -> v`` spawns ``u -> v'`` for each
    ``v'`` zero-reachable from ``v``, weighted by the max-weight zero
    path (DAG longest path) — the classic marked-graph reduction that
    leaves every cycle mean unchanged while giving the solvers a graph
    with ``tokens >= 1`` everywhere.  Raises
    :class:`~repro.sim.dataflow.ChannelDeadlockError` when the zero
    subgraph has a cycle (a token-free cycle: deadlock).
    """
    n = fg.n_cells
    zero_mask = fg.etokens == 0
    if not zero_mask.any():
        return _Normalized(
            n=n,
            src=fg.esrc,
            dst=fg.edst,
            weight=fg.eweight,
            tokens=fg.etokens,
            chains=None,
        )
    zero_ids = np.nonzero(zero_mask)[0]
    pos_ids = np.nonzero(~zero_mask)[0]
    zsucc: Dict[int, List[int]] = {}
    indeg = [0] * n
    for i in zero_ids.tolist():
        zsucc.setdefault(int(fg.esrc[i]), []).append(i)
        indeg[int(fg.edst[i])] += 1
    # Kahn over the zero subgraph: topological order + cycle check.
    queue = [u for u in range(n) if indeg[u] == 0]
    topo: List[int] = []
    i = 0
    while i < len(queue):
        u = queue[i]
        i += 1
        topo.append(u)
        for e in zsucc.get(u, ()):
            d = int(fg.edst[e])
            indeg[d] -= 1
            if indeg[d] == 0:
                queue.append(d)
    if len(topo) != n:
        raise ChannelDeadlockError(
            "token-free cycle in the flow graph (capacity-1 channels on "
            "a COMM cycle): the marked graph is dead; raise a capacity "
            "on the cycle to >= 2"
        )
    # Longest zero-path expansion, processed in reverse topological
    # order so every successor's table exists before its predecessors'.
    best: Dict[int, Dict[int, Tuple[float, Tuple[int, ...]]]] = {}
    for u in reversed(topo):
        if u not in zsucc:
            continue
        table: Dict[int, Tuple[float, Tuple[int, ...]]] = {}
        for e in zsucc[u]:
            d = int(fg.edst[e])
            w = float(fg.eweight[e])
            if d not in table or w > table[d][0]:
                table[d] = (w, (e,))
            for v2, (w2, p2) in best.get(d, {}).items():
                total = w + w2
                if v2 not in table or total > table[v2][0]:
                    table[v2] = (total, (e,) + p2)
        best[u] = table
    src_l: List[int] = []
    dst_l: List[int] = []
    w_l: List[float] = []
    t_l: List[int] = []
    chains: List[Tuple[int, ...]] = []
    for e in pos_ids.tolist():
        u = int(fg.esrc[e])
        d = int(fg.edst[e])
        w = float(fg.eweight[e])
        t = int(fg.etokens[e])
        src_l.append(u)
        dst_l.append(d)
        w_l.append(w)
        t_l.append(t)
        chains.append((e,))
        for v2, (w2, p2) in best.get(d, {}).items():
            src_l.append(u)
            dst_l.append(v2)
            w_l.append(w + w2)
            t_l.append(t)
            chains.append((e,) + p2)
    return _Normalized(
        n=n,
        src=np.asarray(src_l, dtype=np.int64),
        dst=np.asarray(dst_l, dtype=np.int64),
        weight=np.asarray(w_l, dtype=np.float64),
        tokens=np.asarray(t_l, dtype=np.int64),
        chains=chains,
    )


# ----------------------------------------------------------------------
# the critical cycle
# ----------------------------------------------------------------------
@dataclass
class FlowCycle:
    """A critical cycle: the dependence loop whose weight/token ratio is
    the steady-state cycle time.

    ``edges`` are the original :class:`FlowEdge` links in cycle order
    (zero-token chains re-expanded); ``path`` renders them in the
    :mod:`repro.obs.critpath` blame format — one lap of the cycle, whose
    telescoped endpoint is ``weight`` (so blame shares sum to 1).
    ``cycle_time`` is ``weight / tokens`` with ``weight`` accumulated in
    step order — the exact rational, correctly rounded, under dyadic
    delays.
    """

    cycle_time: float
    weight: float
    tokens: int
    edges: List[FlowEdge]
    path: CriticalPath
    iterations: int = 0
    policy: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def throughput(self) -> float:
        return 1.0 / self.cycle_time if self.cycle_time > 0 else math.inf


def _finish_cycle(
    fg: FlowGraph,
    chain_edges: List[FlowEdge],
    iterations: int = 0,
    policy: Optional[np.ndarray] = None,
) -> FlowCycle:
    """Flatten a contracted cycle into the canonical :class:`FlowCycle`:
    rotate to start at the smallest dense id (deterministic), build the
    blame steps, and accumulate weight in step order."""
    if chain_edges:
        anchor = min(range(len(chain_edges)), key=lambda i: chain_edges[i].src)
        chain_edges = chain_edges[anchor:] + chain_edges[:anchor]
    cells = fg.cells
    steps: List[PathStep] = []
    t = 0.0
    tokens = 0
    for e in chain_edges:
        tokens += e.tokens
        if e.kind == "compute":
            steps.append(
                PathStep("compute", cells[e.dst], t, t + e.service)
            )
            t = t + e.service
        elif e.kind == "forward":
            steps.append(
                PathStep(
                    "wire", cells[e.dst], t, t + e.wire, src=cells[e.src]
                )
            )
            t = t + e.wire
            steps.append(
                PathStep("compute", cells[e.dst], t, t + e.service)
            )
            t = t + e.service
        else:
            steps.append(
                PathStep(
                    "credit", cells[e.dst], t, t + e.weight, src=cells[e.src]
                )
            )
            t = t + e.weight
    weight = t
    path = CriticalPath(
        engine="flow", steps=steps, makespan=weight, reported=weight
    )
    cycle_time = weight / tokens if tokens else math.inf
    return FlowCycle(
        cycle_time=cycle_time,
        weight=weight,
        tokens=tokens,
        edges=chain_edges,
        path=path,
        iterations=iterations,
        policy=policy,
    )


# ----------------------------------------------------------------------
# Karp's algorithm (the scalar oracle)
# ----------------------------------------------------------------------
def _expand_tokens(
    norm: _Normalized,
) -> Tuple[int, List[Tuple[int, int, float]]]:
    """Unit-token expansion: a ``t``-token edge becomes a chain of ``t``
    edges through ``t - 1`` fresh nodes, weight on the first link — the
    graph Karp's theorem applies to directly."""
    n = norm.n
    out: List[Tuple[int, int, float]] = []
    next_node = n
    for i in range(len(norm.src)):
        u = int(norm.src[i])
        v = int(norm.dst[i])
        w = float(norm.weight[i])
        t = int(norm.tokens[i])
        if t == 1:
            out.append((u, v, w))
            continue
        prev = u
        for j in range(t - 1):
            aux = next_node
            next_node += 1
            out.append((prev, aux, w if j == 0 else 0.0))
            prev = aux
        out.append((prev, v, 0.0))
    return next_node, out


def _sccs(n: int, edges: List[Tuple[int, int, float]]) -> List[List[int]]:
    """Strongly connected components (iterative Tarjan)."""
    succ: Dict[int, List[int]] = {}
    for u, v, _ in edges:
        succ.setdefault(u, []).append(v)
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    comp_stack: List[int] = []
    sccs: List[List[int]] = []
    counter = 0
    for root in range(n):
        if root in index_of:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child = work.pop()
            if child == 0:
                index_of[node] = low[node] = counter
                counter += 1
                comp_stack.append(node)
                on_stack.add(node)
            recurse = False
            out = succ.get(node, ())
            for j in range(child, len(out)):
                nxt = out[j]
                if nxt not in index_of:
                    work.append((node, j + 1))
                    work.append((nxt, 0))
                    recurse = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index_of[nxt])
            if recurse:
                continue
            if low[node] == index_of[node]:
                comp: List[int] = []
                while True:
                    w = comp_stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                sccs.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def mcm_karp(fg: FlowGraph) -> Optional[float]:
    """Maximum cycle mean by Karp's theorem — the scalar oracle for
    :func:`mcm_howard`.

    Per strongly connected component of the token-expanded graph:
    ``lambda = max_v min_{0 <= k < n} (D_n(v) - D_k(v)) / (n - k)``
    with ``D_0 === 0`` (multi-source form).  O(V * E) per component —
    the reference implementation, run at oracle sizes.  Returns ``None``
    when the graph has no cycle; raises
    :class:`~repro.sim.dataflow.ChannelDeadlockError` on a token-free
    cycle.
    """
    norm = _normalize(fg)
    if not len(norm.src):
        return None
    n_exp, edges = _expand_tokens(norm)
    best: Optional[float] = None
    for comp in _sccs(n_exp, edges):
        comp_set = set(comp)
        local = {node: i for i, node in enumerate(comp)}
        inner = [
            (local[u], local[v], w)
            for u, v, w in edges
            if u in comp_set and v in comp_set
        ]
        if not inner:
            continue
        m = len(comp)
        neg_inf = -math.inf
        D = [[neg_inf] * m for _ in range(m + 1)]
        for i in range(m):
            D[0][i] = 0.0
        for k in range(1, m + 1):
            row = D[k]
            prev = D[k - 1]
            for u, v, w in inner:
                if prev[u] > neg_inf:
                    cand = prev[u] + w
                    if cand > row[v]:
                        row[v] = cand
        lam = neg_inf
        last = D[m]
        for v in range(m):
            if last[v] == neg_inf:
                continue
            worst = math.inf
            for k in range(m):
                if D[k][v] > neg_inf:
                    ratio = (last[v] - D[k][v]) / (m - k)
                    if ratio < worst:
                        worst = ratio
            if worst > lam:
                lam = worst
        if lam > neg_inf and (best is None or lam > best):
            best = lam
    return best


# ----------------------------------------------------------------------
# Howard policy iteration (the fast kernel)
# ----------------------------------------------------------------------
def _cyclic_core(
    n: int, src: np.ndarray, dst: np.ndarray
) -> np.ndarray:
    """Boolean mask of nodes on or reachable-into cycles: iteratively
    strip nodes with zero in- or out-degree (over surviving edges)."""
    alive = np.ones(n, dtype=bool)
    while True:
        keep = alive[src] & alive[dst]
        outdeg = np.zeros(n, dtype=np.int64)
        indeg = np.zeros(n, dtype=np.int64)
        np.add.at(outdeg, src[keep], 1)
        np.add.at(indeg, dst[keep], 1)
        drop = alive & ((outdeg == 0) | (indeg == 0))
        if not drop.any():
            return alive
        alive &= ~drop


def mcm_howard(
    fg: FlowGraph, warm_start: Optional[np.ndarray] = None
) -> Optional[FlowCycle]:
    """Maximum cycle mean by Howard policy iteration, vectorized —
    the production kernel, with critical-cycle extraction.

    The policy picks one *incoming* edge per node (the recurrence's
    binding constraint points from constrainer to constrained); each
    round evaluates the policy's functional graph exactly (cycle means
    and potentials, O(V) Python) and then improves every node at once
    with two ``np.maximum.reduceat`` phases (cycle-mean first, then
    potential).  Converges in a handful of sweeps; the final policy
    cycle *is* the critical cycle.

    ``warm_start`` seeds the policy from a previous solve on the same
    node set (``FlowCycle.policy``: chosen predecessor per node, -1 for
    none) — the ECO path uses this after capacity edits.  The scalar
    oracle is :func:`mcm_karp`; the two agree bit-for-bit under dyadic
    delays (``differential-mcm``).
    """
    norm = _normalize(fg)
    if not len(norm.src):
        return None
    alive = _cyclic_core(norm.n, norm.src, norm.dst)
    keep = alive[norm.src] & alive[norm.dst]
    if not keep.any():
        return None
    e_ids = np.nonzero(keep)[0]
    esrc = norm.src[e_ids]
    edst = norm.dst[e_ids]
    ew = norm.weight[e_ids]
    et = norm.tokens[e_ids].astype(np.float64)
    core_nodes = np.nonzero(alive)[0]
    n_core = len(core_nodes)
    compact = np.full(norm.n, -1, dtype=np.int64)
    compact[core_nodes] = np.arange(n_core, dtype=np.int64)
    csrc = compact[esrc]
    cdst = compact[edst]
    # In-edge CSR: edges sorted by destination (stable, so ties keep
    # build order — deterministic policies).
    order = np.argsort(cdst, kind="stable")
    csrc = csrc[order]
    cdst = cdst[order]
    ew = ew[order]
    et = et[order]
    e_ids = e_ids[order]
    esrc_orig = core_nodes[csrc]  # original dense ids per sorted edge
    counts = np.bincount(cdst, minlength=n_core)
    indptr = np.zeros(n_core + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    starts = indptr[:-1]
    # Every core node has >= 1 in-edge by construction of the core.
    # Initial policy: the node's self edge where it has one — every
    # policy cycle is then a self loop, so the first evaluation already
    # surfaces max(service) as a candidate lambda and the broadcast
    # below spreads it in one sweep (a constant number of sweeps on
    # meshes, instead of O(diameter) from an arbitrary start).
    self_edge = np.minimum.reduceat(
        np.where(
            csrc == cdst,
            np.arange(len(csrc), dtype=np.int64),
            len(csrc),
        ),
        starts,
    )
    policy = np.where(self_edge < len(csrc), self_edge, starts)
    if warm_start is not None:
        for v in range(n_core):
            want = warm_start[core_nodes[v]]
            if want < 0:
                continue
            for e in range(int(indptr[v]), int(indptr[v + 1])):
                if esrc_orig[e] == want:
                    policy[v] = e
                    break
    lam = np.zeros(n_core, dtype=np.float64)
    h = np.zeros(n_core, dtype=np.float64)
    edge_arange = np.arange(len(csrc), dtype=np.int64)
    big = len(csrc)
    # Plain-list mirrors for the Python-side walk and broadcast below:
    # per-element numpy indexing boxes a scalar per access, which at
    # mesh scale costs more than the whole vectorized phase.
    csrc_l = csrc.tolist()
    cdst_l = cdst.tolist()
    ew_l = ew.tolist()
    et_l = et.tolist()
    # Out-adjacency (edge indices per source node) for the broadcast.
    out_edges: List[List[int]] = [[] for _ in range(n_core)]
    for e, u in enumerate(csrc_l):
        out_edges[u].append(e)
    best_cycle: List[int] = []
    best_lam = -math.inf
    iterations = 0
    for iterations in range(1, _HOWARD_MAX_ITERS + 1):
        # --- evaluate the policy's functional graph (walk v -> chosen
        # predecessor), exactly, in Python O(V) over plain lists.
        pol = policy.tolist()
        color = [0] * n_core  # 1 = on walk, 2 = done
        lam_l = [0.0] * n_core
        h_l = [0.0] * n_core
        best_cycle = []
        best_lam = -math.inf
        for v0 in range(n_core):
            if color[v0]:
                continue
            walk: List[int] = []
            v = v0
            while color[v] == 0:
                color[v] = 1
                walk.append(v)
                v = csrc_l[pol[v]]
            if color[v] == 1:
                # New cycle: the walk tail from v onwards.
                at = walk.index(v)
                cyc = walk[at:]
                W = 0.0
                T = 0.0
                for u in cyc:
                    e = pol[u]
                    W += ew_l[e]
                    T += et_l[e]
                lam_c = W / T
                if lam_c > best_lam:
                    best_lam = lam_c
                    best_cycle = list(cyc)
                # Potentials around the cycle: anchor the entry node,
                # then h[u] = h[pred] + w - lam * t walking backwards.
                h_l[v] = 0.0
                lam_l[v] = lam_c
                for u in reversed(cyc[1:]):
                    e = pol[u]
                    pred = csrc_l[e]
                    h_l[u] = h_l[pred] + (ew_l[e] - lam_c * et_l[e])
                    lam_l[u] = lam_c
                for u in cyc:
                    color[u] = 2
                tail = walk[:at]
            else:
                tail = walk
            # Tree part: value each stacked node off its predecessor.
            for u in reversed(tail):
                e = pol[u]
                pred = csrc_l[e]
                lam_u = lam_l[pred]
                lam_l[u] = lam_u
                h_l[u] = h_l[pred] + (ew_l[e] - lam_u * et_l[e])
                color[u] = 2
        lam = np.asarray(lam_l, dtype=np.float64)
        h = np.asarray(h_l, dtype=np.float64)
        # --- vectorized improvement.
        lam_src = lam[csrc]
        glam = np.maximum.reduceat(lam_src, starts)
        glam_e = np.repeat(glam, counts)
        # Phase 1: a predecessor on a faster cycle.
        imp1 = glam > lam + _HOWARD_EPS
        attain1 = lam_src >= glam_e  # == up to float identity
        cand1 = np.minimum.reduceat(
            np.where(attain1, edge_arange, big), starts
        )
        # Phase 2: same cycle mean, better potential.
        val = h[csrc] + (ew - lam[cdst] * et)
        val_masked = np.where(lam_src >= glam_e, val, -math.inf)
        gval = np.maximum.reduceat(val_masked, starts)
        imp2 = (~imp1) & (gval > h + _HOWARD_EPS)
        attain2 = val_masked >= np.repeat(gval, counts)
        cand2 = np.minimum.reduceat(
            np.where(attain2, edge_arange, big), starts
        )
        new_policy = policy.copy()
        new_policy[imp1] = cand1[imp1]
        new_policy[imp2] = cand2[imp2]
        # Lambda broadcast: the per-node improvement above adopts a
        # faster cycle one hop per sweep — O(diameter) sweeps on a mesh.
        # Instead, grow an in-tree from the current best cycle's region
        # in one BFS, repointing every slower node it can reach; each
        # repointed node's lambda jumps straight to best_lam (a strict
        # lexicographic improvement, so Howard's convergence argument is
        # untouched and sweep count stops scaling with diameter).
        floor = best_lam - _HOWARD_EPS
        seen = [x >= floor for x in lam_l]
        if not all(seen):
            frontier = [v for v, ok in enumerate(seen) if ok]
            repoint: List[Tuple[int, int]] = []
            while frontier:
                u = frontier.pop()
                for e in out_edges[u]:
                    v = cdst_l[e]
                    if not seen[v]:
                        seen[v] = True
                        repoint.append((v, e))
                        frontier.append(v)
            if repoint:
                idx, edges_r = zip(*repoint)
                new_policy[list(idx)] = list(edges_r)
        if np.array_equal(new_policy, policy):
            break
        policy = new_policy
    else:
        raise RuntimeError(
            f"Howard policy iteration failed to converge within "
            f"{_HOWARD_MAX_ITERS} sweeps"
        )
    # The best policy cycle is the critical cycle; flatten it back to
    # original edges (cycle order: follow the policy backwards, so the
    # edge list walks constrainer -> constrained).
    chain: List[FlowEdge] = []
    for u in reversed(best_cycle):
        e = int(policy[u])
        chain.extend(
            fg.edge(orig) for orig in norm.chain(int(e_ids[e]))
        )
    pred_choice = np.full(norm.n, -1, dtype=np.int64)
    pred_choice[core_nodes] = esrc_orig[policy]
    return _finish_cycle(
        fg, chain, iterations=iterations, policy=pred_choice
    )


# ----------------------------------------------------------------------
# simulate-to-convergence (the dynamic baseline) + transient bounds
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SteadyState:
    """The simulator's long-run regime, detected from the trajectory.

    Once the finish-vector increments repeat with period ``P`` over a
    window covering the recurrence's state depth, max-plus homogeneity
    makes the repetition permanent: ``finish[k + P] = finish[k] + delta``
    forever.  ``cycle_time`` is ``max(delta) / P`` — the pacing cells'
    per-wave advance, the exact long-run rate the static MCM must equal.
    :meth:`makespan_at` extrapolates any horizon in closed form,
    bit-equal to iterating the compiled recurrence (dyadic delays);
    :meth:`bounds` gives the ``N * MCM + c`` transient envelope.
    """

    cycle_time: float
    period: int
    increment: float  # max per-period finish advance (= MCM * P, exact)
    waves_run: int
    makespans: np.ndarray  # M[j] = max finish after wave j+1
    tail: np.ndarray  # finish vectors of the last ``period`` waves
    delta: np.ndarray  # per-cell per-period advance

    def makespan_at(self, waves: int) -> float:
        """Makespan after ``waves`` waves — observed when within the run,
        otherwise the closed-form periodic extension
        ``max_c(tail[j][c] + q * delta[c])`` (each term one multiply and
        one add of exact dyadic values, so it lands on the same float
        the iterated kernel computes)."""
        if waves < 1:
            raise ValueError("need at least one wave")
        if waves <= self.waves_run:
            return float(self.makespans[waves - 1])
        base = self.waves_run - self.period
        j = (waves - 1 - base) % self.period
        q = (waves - 1 - base) // self.period
        return float(np.max(self.tail[j] + q * self.delta))

    def bounds(self) -> Tuple[float, float]:
        """``(c_lo, c_hi)`` such that every *observed* makespan satisfies
        ``cycle_time * N + c_lo <= makespan(N) <= cycle_time * N + c_hi``
        — the transient envelope around the steady slope."""
        ns = np.arange(1, self.waves_run + 1, dtype=np.float64)
        offsets = self.makespans - self.cycle_time * ns
        return float(offsets.min()), float(offsets.max())


def simulate_steady_state(
    comm: CommGraph,
    service: ServiceSpec,
    wire_delay: float = 0.0,
    capacity: CapacitySpec = None,
    max_waves: int = 100_000,
    max_period: int = 64,
    compiled: Optional[CompiledRecurrence] = None,
) -> SteadyState:
    """Run the compiled recurrence until the periodic regime is verified.

    This is the *dynamic* way to learn the steady-state cycle time — the
    baseline the ``mcm_howard`` bench row beats, and the ground truth the
    differential oracle compares the static answer against.  Detection:
    the per-``P`` finish increments must be bit-identical across a window
    of ``P + depth`` consecutive waves (``depth`` = the recurrence's
    state memory: the deepest capacity window plus one), which by
    max-plus shift-invariance pins the regime exactly.
    """
    cells = comm.nodes()
    if not cells:
        raise ValueError("empty COMM graph")
    if compiled is None:
        compiled = CompiledRecurrence(comm)
    services = _service_vector(cells, service)
    from repro.sim.dataflow import per_cell_service

    svc = per_cell_service({c: float(services[i]) for i, c in enumerate(cells)})
    stepper = compiled.stepper(svc, wire_delay, capacity=capacity)
    depths = [d for _, d in _capacity_items(comm, capacity)]
    depth = max(depths, default=1) + 1
    history: deque = deque(maxlen=2 * max_period + depth + 1)
    makespans: List[float] = []
    for t in range(max_waves):
        finish = stepper.step()
        history.append(finish)
        makespans.append(float(finish.max()))
        period = _find_period(history, makespans, max_period, depth)
        if period is not None:
            delta = history[-1] - history[-1 - period]
            increment = float(delta.max())
            cycle_time = increment / period
            tail_rows = [history[-(period - j)] for j in range(period)]
            return SteadyState(
                cycle_time=cycle_time,
                period=period,
                increment=increment,
                waves_run=t + 1,
                makespans=np.asarray(makespans, dtype=np.float64),
                tail=np.asarray(tail_rows, dtype=np.float64),
                delta=delta,
            )
    raise RuntimeError(
        f"no periodic regime within {max_waves} waves (max_period="
        f"{max_period}); irrational delay ratios never repeat exactly — "
        "use the static analyzer instead"
    )


def _find_period(
    history: deque, makespans: List[float], max_period: int, depth: int
) -> Optional[int]:
    """Smallest ``P`` whose finish increments are constant (bit-equal
    vectors) over the last ``P + depth`` waves; ``None`` if none yet.
    Scalar makespan diffs pre-filter before any vector compare."""
    have = len(history)
    t = len(makespans) - 1
    for period in range(1, max_period + 1):
        window = period + depth
        if have < window + period:
            break
        # Cheap scalar screens first.
        if makespans[t] - makespans[t - period] != (
            makespans[t - 1] - makespans[t - 1 - period]
        ):
            continue
        ok = True
        for back in range(2, window):
            if makespans[t - back] - makespans[t - back - period] != (
                makespans[t] - makespans[t - period]
            ):
                ok = False
                break
        if not ok:
            continue
        ref = history[-1] - history[-1 - period]
        for back in range(1, window):
            if not np.array_equal(
                history[-1 - back] - history[-1 - back - period], ref
            ):
                ok = False
                break
        if ok:
            return period
    return None


def simulate_steady_state_scalar(
    comm: CommGraph,
    service: ServiceSpec,
    wire_delay: float = 0.0,
    capacity: CapacitySpec = None,
    max_waves: int = 100_000,
    max_period: int = 64,
) -> SteadyState:
    """Scalar oracle for :func:`simulate_steady_state`: per-(cell, wave)
    dict evaluation of the same recurrence (forward maxima from the
    previous wave, lagged start rows for deep channels, a consumers-first
    sweep for capacity-1 coupling) with the identical periodicity test.
    This is also the ``mcm_howard`` bench row's simulate-to-convergence
    baseline — the reference path a user without the static analyzer
    would run.
    """
    cells = comm.nodes()
    if not cells:
        raise ValueError("empty COMM graph")
    services = _service_vector(cells, service)
    svc = {c: float(services[i]) for i, c in enumerate(cells)}
    cap_items = _capacity_items(comm, capacity)
    cap: Dict[EdgeKey, int] = dict(cap_items)
    max_depth = max(cap.values(), default=1)
    depth = max_depth + 1
    # Consumers before producers along capacity-1 edges (the scalar
    # resolution of the same-wave coupling; raises on a zero-token cycle).
    cap1 = [e for e, d in cap.items() if d == 1]
    order = list(cells)
    if cap1:
        succs_1: Dict[Hashable, List[Hashable]] = {c: [] for c in cells}
        indeg = {c: 0 for c in cells}
        for u, v in cap1:
            succs_1[v].append(u)  # consumer -> producer
            indeg[u] += 1
        ready = [c for c in cells if indeg[c] == 0]
        order = []
        while ready:
            c = ready.pop()
            order.append(c)
            for u in succs_1[c]:
                indeg[u] -= 1
                if indeg[u] == 0:
                    ready.append(u)
        if len(order) != len(cells):
            raise ChannelDeadlockError(
                "capacity-1 channels form a directed COMM cycle: a "
                "zero-token marked-graph cycle (deadlock); raise some "
                "capacity on the cycle to >= 2"
            )
    preds = {c: comm.predecessors(c) for c in cells}
    succs = {c: comm.successors(c) for c in cells}
    finish = {c: 0.0 for c in cells}
    start_window: deque = deque(maxlen=max(max_depth - 1, 0) or None)
    history: deque = deque(maxlen=2 * max_period + depth + 1)
    makespans: List[float] = []
    for t in range(max_waves):
        starts: Dict[Hashable, float] = {}
        for c in order:
            st = finish[c]
            if t > 0:
                for p in preds[c]:
                    arrival = finish[p] + wire_delay
                    if arrival > st:
                        st = arrival
            for s in succs[c]:
                d = cap.get((c, s))
                if d is None or t < d:
                    continue
                bound = starts[s] if d == 1 else start_window[-(d - 1)][s]
                if bound > st:
                    st = bound
            starts[c] = st
        if start_window.maxlen:
            start_window.append(starts)
        finish = {c: starts[c] + svc[c] for c in cells}
        row = [finish[c] for c in cells]
        history.append(row)
        makespans.append(max(row))
        period = _find_period_scalar(history, makespans, max_period, depth)
        if period is not None:
            last = history[-1]
            prev = history[-1 - period]
            delta = [a - b for a, b in zip(last, prev)]
            increment = max(delta)
            tail_rows = [history[-(period - j)] for j in range(period)]
            return SteadyState(
                cycle_time=increment / period,
                period=period,
                increment=increment,
                waves_run=t + 1,
                makespans=np.asarray(makespans, dtype=np.float64),
                tail=np.asarray(tail_rows, dtype=np.float64),
                delta=np.asarray(delta, dtype=np.float64),
            )
    raise RuntimeError(
        f"no periodic regime within {max_waves} waves (max_period="
        f"{max_period})"
    )


def _find_period_scalar(
    history: deque, makespans: List[float], max_period: int, depth: int
) -> Optional[int]:
    """:func:`_find_period` over plain float lists (no numpy) — the
    scalar path's own periodicity test, same screens, same window."""
    have = len(history)
    t = len(makespans) - 1
    for period in range(1, max_period + 1):
        window = period + depth
        if have < window + period:
            break
        target = makespans[t] - makespans[t - period]
        ok = True
        for back in range(1, window):
            if makespans[t - back] - makespans[t - back - period] != target:
                ok = False
                break
        if not ok:
            continue
        ref = [
            a - b for a, b in zip(history[-1], history[-1 - period])
        ]
        for back in range(1, window):
            cur = history[-1 - back]
            old = history[-1 - back - period]
            if any(a - b != r for a, b, r in zip(cur, old, ref)):
                ok = False
                break
        if ok:
            return period
    return None


# ----------------------------------------------------------------------
# minimal buffer sizing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SizingResult:
    """Smallest per-edge capacities meeting a target cycle time.

    ``capacities`` maps every COMM edge to its depth; ``cycle_time`` is
    the achieved MCM.  Irreducible: decrementing any single capacity
    (where a decrement is legal, i.e. depth >= 2) either deadlocks the
    array or pushes the MCM above ``target`` — the ``sizing-minimality``
    oracle decrements each one and checks.
    """

    capacities: Dict[EdgeKey, int]
    cycle_time: float
    target: float
    mcm_calls: int

    @property
    def total_capacity(self) -> int:
        return sum(self.capacities.values())


def minimal_buffer_sizing(
    comm: CommGraph,
    service: ServiceSpec,
    wire_delay: float,
    target: float,
    max_capacity: int = 1 << 16,
    mcm: Callable[[FlowGraph], Optional[FlowCycle]] = mcm_howard,
) -> SizingResult:
    """Critical-cycle relaxation: start every channel at depth 1, break
    token-free cycles, then repeatedly add a token (one slot) to every
    credit edge on the current critical cycle until the MCM meets
    ``target``; finish with a greedy reduction pass.

    Monotonicity (removing a token never lowers any cycle mean) makes
    the greedy sound and the single reduction pass sufficient for
    irreducibility.  Raises ``ValueError`` when the target is infeasible
    — below the capacity-independent MCM of the unbounded graph (its
    cycles carry no credit edges to relax).

    ``mcm`` is injectable so the perf bench can run the identical
    algorithm over :func:`mcm_howard` (optimized) and :func:`mcm_karp`
    (baseline oracle) and assert exact agreement.
    """
    if target <= 0:
        raise ValueError("target cycle time must be positive")
    calls = 0

    def solve(fg: FlowGraph) -> Tuple[float, Optional[FlowCycle]]:
        nonlocal calls
        calls += 1
        result = mcm(fg)
        if result is None:
            return 0.0, None
        if isinstance(result, FlowCycle):
            return result.cycle_time, result
        return float(result), None  # scalar oracle (mcm_karp)

    floor_lam, _ = solve(flow_graph(comm, service, wire_delay, None))
    if floor_lam > target:
        raise ValueError(
            f"target cycle time {target} is infeasible: the unbounded "
            f"dependence graph already cycles at {floor_lam} (its "
            "critical cycle has no channel to deepen)"
        )
    caps: Dict[EdgeKey, int] = {e: 1 for e in comm.edges()}
    while True:
        dead = detect_deadlock(comm, caps)
        if dead is None:
            break
        caps[dead[0]] += 1  # one token per token-free cycle
    while True:
        lam, cycle = solve(flow_graph(comm, service, wire_delay, caps))
        if lam <= target:
            break
        if cycle is None:
            # Scalar-oracle mode carries no cycle: fall back to the
            # cycle extractor for the relaxation step (the lambda used
            # for the <= test stays the injected solver's).
            cycle = mcm_howard(flow_graph(comm, service, wire_delay, caps))
        assert cycle is not None
        bumped = False
        for e in cycle.edges:
            if e.kind != "credit":
                continue
            edge = _credit_comm_edge(e, comm)
            if caps[edge] < max_capacity:
                caps[edge] += 1
                bumped = True
        if not bumped:
            raise ValueError(
                f"target cycle time {target} unreachable: critical cycle "
                f"(mean {lam}) has no credit edge below max_capacity="
                f"{max_capacity}"
            )
    # Reduction pass: only deepened channels are candidates (depth-1
    # channels have no legal decrement), so this is O(deepened) solves.
    for edge in comm.edges():
        while caps[edge] > 1:
            caps[edge] -= 1
            if detect_deadlock(comm, caps) is not None:
                caps[edge] += 1
                break
            lam_try, _ = solve(flow_graph(comm, service, wire_delay, caps))
            if lam_try > target:
                caps[edge] += 1
                break
    lam, _ = solve(flow_graph(comm, service, wire_delay, caps))
    return SizingResult(
        capacities=caps, cycle_time=lam, target=target, mcm_calls=calls
    )


def _credit_comm_edge(e: FlowEdge, comm: CommGraph) -> EdgeKey:
    """The COMM edge a credit flow edge models: credit ``s -> c`` comes
    from COMM ``c -> s`` (the producer waits on its consumer)."""
    cells = comm.nodes()
    return (cells[e.dst], cells[e.src])


# ----------------------------------------------------------------------
# bundled one-shot analysis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FlowAnalysis:
    """One static flow query, bundled: the lowered graph, the deadlock
    verdict, and (when live) the Howard critical cycle.

    This is the unit the :class:`~repro.sta.analyzer.STAAnalyzer` memo
    and the :class:`~repro.sta.eco.ECOSession` capacity-edit path cache
    and reuse; :func:`analyze_flow` is the cold computation.
    """

    graph: FlowGraph
    deadlock: Optional[List[EdgeKey]]
    cycle: Optional[FlowCycle]

    @property
    def dead(self) -> bool:
        return self.deadlock is not None

    @property
    def cycle_time(self) -> Optional[float]:
        """Steady-state cycle time; ``None`` when deadlocked or acyclic."""
        if self.cycle is None:
            return None
        return self.cycle.cycle_time

    @property
    def throughput(self) -> Optional[float]:
        if self.cycle is None:
            return None
        return self.cycle.throughput

    def critical_comm_edges(self) -> Set[EdgeKey]:
        """The COMM channels whose capacities bound throughput: the
        credit hops of the critical cycle, mapped back to their COMM
        edges.  Empty when deadlocked or when the cycle is capacity-free
        (compute/wire bound)."""
        if self.cycle is None:
            return set()
        cells = self.graph.cells
        return {
            (cells[e.dst], cells[e.src])
            for e in self.cycle.edges
            if e.kind == "credit"
        }


def analyze_flow(
    comm: CommGraph,
    service: ServiceSpec,
    wire_delay: float = 0.0,
    capacity: CapacitySpec = None,
) -> FlowAnalysis:
    """Lower, check liveness, and solve: the one-call static answer.

    Deadlock is decided first (a token-free cycle makes the MCM
    meaningless — the array never reaches wave 1); on a live graph the
    Howard kernel supplies cycle time, throughput, and the critical
    cycle in one solve.
    """
    fg = flow_graph(comm, service, wire_delay, capacity)
    dead = detect_deadlock(comm, capacity)
    cycle = mcm_howard(fg) if dead is None else None
    return FlowAnalysis(graph=fg, deadlock=dead, cycle=cycle)
