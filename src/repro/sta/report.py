"""The STA report: one JSON-serializable verdict per design.

The shape is pinned by :data:`repro.obs.schema.STA_REPORT_SCHEMA` and
validated on every CLI emission; the verdict drives the exit code
(``clean`` -> 0, ``violations`` -> 1, analysis errors -> 2 — same contract
as ``python -m repro check``).

A design is ``clean`` when its exact-mode slack vector has no stale or
race edge *and* no design rule fails; bound-mode (worst-case-skew)
problems and DRC warnings leave the verdict clean but are counted and
listed so the caller can gate on robustness separately (``robust`` is the
stricter bit).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import __version__
from repro.sta.design import Design
from repro.sta.drc import RuleResult, STATUS_FAIL, STATUS_WARN, drc_counts
from repro.sta.slack import (
    FLAG_RACE,
    FLAG_RACE_FLOOR,
    FLAG_RACE_POSSIBLE,
    FLAG_STALE,
    FLAG_STALE_POSSIBLE,
    SlackAnalysis,
)
from repro.tables import render_table

VERDICT_CLEAN = "clean"
VERDICT_VIOLATIONS = "violations"


def _cell_str(cell: Any) -> str:
    return str(cell)


@dataclass
class STAReport:
    """Everything the static pass concluded about one design."""

    design: str
    period: float
    verdict: str
    robust: bool
    counts: Dict[str, int]
    slack_summary: Dict[str, float]
    edges: List[Dict[str, Any]]
    drc: List[Dict[str, str]]
    empirical: Optional[Dict[str, Any]] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    #: Audit record of the ECO edit this report reflects (one report per
    #: edit-script step); absent for plain full-analysis reports.
    eco: Optional[Dict[str, Any]] = None

    @property
    def passed(self) -> bool:
        return self.verdict == VERDICT_CLEAN

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "design": self.design,
            "period": self.period,
            "verdict": self.verdict,
            "robust": self.robust,
            "counts": dict(self.counts),
            "slack": dict(self.slack_summary),
            "edges": [dict(e) for e in self.edges],
            "drc": [dict(r) for r in self.drc],
            "empirical": dict(self.empirical) if self.empirical is not None else None,
            "meta": dict(self.meta),
        }
        if self.eco is not None:
            out["eco"] = dict(self.eco)
        return out


def build_report(
    design: Design,
    analysis: SlackAnalysis,
    drc_results: List[RuleResult],
    min_feasible_exact: float,
    min_feasible_bound: float,
    empirical: Optional[Dict[str, Any]] = None,
) -> STAReport:
    """Assemble the report from the analysis pieces (pure; no I/O)."""
    rows = analysis.rows()
    counts = {
        "edges": len(rows),
        "stale": sum(1 for r in rows if FLAG_STALE in r.flags),
        "race": sum(1 for r in rows if FLAG_RACE in r.flags),
        "stale_possible": sum(1 for r in rows if FLAG_STALE_POSSIBLE in r.flags),
        "race_possible": sum(1 for r in rows if FLAG_RACE_POSSIBLE in r.flags),
        "race_floor": sum(1 for r in rows if FLAG_RACE_FLOOR in r.flags),
        "drc_fail": drc_counts(drc_results)[STATUS_FAIL],
        "drc_warn": drc_counts(drc_results)[STATUS_WARN],
    }
    timing_clean = counts["stale"] == 0 and counts["race"] == 0
    verdict = (
        VERDICT_CLEAN
        if timing_clean and counts["drc_fail"] == 0
        else VERDICT_VIOLATIONS
    )
    robust = (
        verdict == VERDICT_CLEAN
        and analysis.robust_clean
        and counts["drc_warn"] == 0
    )
    return STAReport(
        design=design.name,
        period=design.period,
        verdict=verdict,
        robust=robust,
        counts=counts,
        slack_summary={
            "worst_setup_slack": analysis.worst_setup_slack,
            "worst_hold_slack": analysis.worst_hold_slack,
            "min_feasible_period_exact": min_feasible_exact,
            "min_feasible_period_bound": min_feasible_bound,
        },
        edges=[
            {
                "edge": [_cell_str(r.edge[0]), _cell_str(r.edge[1])],
                "lag": r.lag,
                "sigma_ub": r.sigma_ub,
                "sigma_lb": r.sigma_lb,
                "offset_lead": r.offset_lead,
                "setup_slack": r.setup_slack,
                "hold_slack": r.hold_slack,
                "setup_slack_bound": r.setup_slack_bound,
                "hold_slack_bound": r.hold_slack_bound,
                "flags": list(r.flags),
            }
            for r in rows
        ],
        drc=[
            {
                "rule": r.rule,
                "title": r.title,
                "status": r.status,
                "detail": r.detail,
            }
            for r in drc_results
        ],
        empirical=empirical,
        meta={"emitted_at": time.time(), "repro_version": __version__},
    )


def render_report(report: STAReport, verbose: bool = False) -> str:
    """Plain-text rendering for the CLI: summary, DRC table, and (with
    ``verbose`` or on a dirty design) the offending slack rows."""
    parts: List[str] = []
    s = report.slack_summary
    parts.append(
        render_table(
            ["design", "period", "verdict", "robust", "edges",
             "worst setup", "worst hold", "min T (exact)", "min T (bound)"],
            [[
                report.design,
                report.period,
                report.verdict,
                "yes" if report.robust else "no",
                report.counts["edges"],
                s["worst_setup_slack"],
                s["worst_hold_slack"],
                s["min_feasible_period_exact"],
                s["min_feasible_period_bound"],
            ]],
            title="static timing",
        )
    )
    parts.append(
        render_table(
            ["rule", "status", "title", "detail"],
            [[r["rule"], r["status"], r["title"], r["detail"]] for r in report.drc],
            title="design rules (A1-A11)",
        )
    )
    flagged = [e for e in report.edges if e["flags"]]
    if flagged and (verbose or report.verdict != VERDICT_CLEAN):
        parts.append(
            render_table(
                ["edge", "lag", "setup", "hold", "setup(b)", "hold(b)", "flags"],
                [[
                    f"{e['edge'][0]}->{e['edge'][1]}",
                    e["lag"],
                    e["setup_slack"],
                    e["hold_slack"],
                    e["setup_slack_bound"],
                    e["hold_slack_bound"],
                    ",".join(e["flags"]),
                ] for e in flagged],
                title=f"flagged edges ({len(flagged)})",
            )
        )
    if report.empirical is not None:
        emp = report.empirical
        parts.append(
            render_table(
                ["empirical max skew", "model sigma_ub max", "within model"],
                [[
                    emp["max_skew"],
                    emp["model_sigma_ub_max"],
                    "yes" if emp["within_model"] else "no",
                ]],
                title="buffered realization vs model",
            )
        )
    return "\n\n".join(parts)
