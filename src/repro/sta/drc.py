"""Design-rule conformance: the paper's assumptions A1-A11 as lint rules.

Each rule inspects the :class:`~repro.sta.design.Design` statically and
returns a :class:`RuleResult` with one of four statuses:

* ``pass`` — the rule was checked and holds;
* ``fail`` — the rule was checked and is violated (drives the CLI's exit
  code, together with exact-mode slack violations);
* ``warn`` — the rule holds for the concrete schedule but not at the skew
  model's worst case (or is otherwise marginal);
* ``skip`` — the rule does not apply to this design (no routed wires, no
  buffered realization, no ``s`` budget) or is an axiom the abstract model
  cannot falsify.

Structural rules (A1-A4, A6-A10) delegate to the executable audit in
:mod:`repro.core.assumptions`; the timing rules A5 (period covers
``sigma + delta + tau`` plus the discipline's setup window) and A11 (data
paths clear the skew floor — race immunity) are evaluated from the same
slack vectors the analyzer reports, so the DRC verdict and the slack
verdict can never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import assumptions as A
from repro.core.models import DifferenceModel
from repro.sta.design import Design
from repro.sta.slack import SIM_TOL, SlackAnalysis, analyze_slack

STATUS_PASS = "pass"
STATUS_FAIL = "fail"
STATUS_WARN = "warn"
STATUS_SKIP = "skip"


@dataclass(frozen=True)
class RuleResult:
    """Outcome of one design rule."""

    rule: str
    title: str
    status: str
    detail: str

    @property
    def ok(self) -> bool:
        return self.status != STATUS_FAIL


def _from_assumption(rule: str, title: str, check: A.AssumptionCheck) -> RuleResult:
    if not check.checkable:
        return RuleResult(rule, title, STATUS_SKIP, check.detail)
    return RuleResult(
        rule, title, STATUS_PASS if check.holds else STATUS_FAIL, check.detail
    )


def _rule_a1(design: Design, slack: SlackAnalysis) -> RuleResult:
    return _from_assumption(
        "A1", "COMM laid out in the plane", A.check_a1_comm_graph(design.array)
    )


def _rule_a2(design: Design, slack: SlackAnalysis) -> RuleResult:
    return _from_assumption(
        "A2", "unit-area cells", A.check_a2_unit_area(design.array)
    )


def _rule_a3(design: Design, slack: SlackAnalysis) -> RuleResult:
    return _from_assumption(
        "A3",
        "rectilinear unit-width wires",
        A.check_a3_rectilinear_wires(design.array),
    )


def _rule_a4(design: Design, slack: SlackAnalysis) -> RuleResult:
    return _from_assumption(
        "A4",
        "CLK binary tree over all cells",
        A.check_a4_clock_tree(design.array, design.tree),
    )


def _rule_a5(design: Design, slack: SlackAnalysis) -> RuleResult:
    """Period covers sigma + delta + tau + t_setup (the A5 inequality).

    Failing against the *concrete* schedule means stale reads will happen
    (same condition as the slack verdict); meeting the schedule but not the
    skew model's worst case is a warning — the design is betting on this
    particular skew realization.
    """
    tau = design.buffered.tau() if design.buffered is not None else 0.0
    sigma_ub = float(slack.sigma_ub.max()) if len(slack.edges) else 0.0
    model_need = design.discipline.min_period(sigma_ub, design.delta, tau)
    stale = int(slack.stale_mask.sum())
    detail = (
        f"period {design.period:.4g} vs model min_period {model_need:.4g} "
        f"(sigma_ub {sigma_ub:.4g}, delta {design.delta:.4g}, tau {tau:.4g})"
    )
    if stale:
        return RuleResult(
            "A5", "period >= sigma + delta + tau", STATUS_FAIL,
            f"{stale} edges read stale data at this schedule; {detail}",
        )
    if design.period < model_need - SIM_TOL:
        return RuleResult(
            "A5", "period >= sigma + delta + tau", STATUS_WARN,
            f"schedule-clean but below the model's worst case; {detail}",
        )
    return RuleResult("A5", "period >= sigma + delta + tau", STATUS_PASS, detail)


def _rule_a6(design: Design, slack: SlackAnalysis) -> RuleResult:
    return _from_assumption(
        "A6",
        "equipotential tau floor",
        A.check_a6_equipotential_floor(design.tree),
    )


def _rule_a7(design: Design, slack: SlackAnalysis) -> RuleResult:
    if design.buffered is None:
        return RuleResult(
            "A7", "pipelined tau constant", STATUS_SKIP,
            "no buffered realization attached",
        )
    return _from_assumption(
        "A7", "pipelined tau constant", A.check_a7_bounded_tau(design.buffered)
    )


def _rule_a8(design: Design, slack: SlackAnalysis) -> RuleResult:
    if design.buffered is None:
        return RuleResult(
            "A8", "time-invariant path delays", STATUS_SKIP,
            "no buffered realization attached",
        )
    return _from_assumption(
        "A8", "time-invariant path delays", A.check_a8_time_invariance(design.buffered)
    )


def _rule_a9(design: Design, slack: SlackAnalysis) -> RuleResult:
    """Equidistance readiness.  A hard requirement only when the skew model
    is a DifferenceModel pinned at f(0) (H-tree designs); otherwise the
    worst path difference is reported informationally."""
    check = A.check_a9_equidistance(
        design.array, design.tree, design.equidistance_tolerance
    )
    if isinstance(design.model, DifferenceModel):
        status = STATUS_PASS if check.holds else STATUS_FAIL
    else:
        status = STATUS_PASS if check.holds else STATUS_WARN
    return RuleResult("A9", "equidistant cells (d = 0)", status, check.detail)


def _rule_a10(design: Design, slack: SlackAnalysis) -> RuleResult:
    if design.s_budget is None:
        return RuleResult(
            "A10", "bounded communicating-pair s", STATUS_SKIP,
            "no s budget declared for this design",
        )
    return _from_assumption(
        "A10",
        "bounded communicating-pair s",
        A.check_a10_bounded_s(design.array, design.tree, design.s_budget),
    )


def _rule_a11(design: Design, slack: SlackAnalysis) -> RuleResult:
    """Race immunity: every data path clears the skew floor.

    Exact-mode hold violations are failures (the simulator *will* race).
    Edges that are safe at this schedule but whose lag does not clear the
    model's worst-case skew (``sigma_ub``), or sits under the ``beta*s``
    floor no tree tuning can remove, are warnings: the fix is padding.
    """
    races = int(slack.race_mask.sum())
    floor = int(slack.race_floor_mask.sum())
    possible = int(((slack.hold_bound <= SIM_TOL) & ~slack.race_mask).sum())
    min_lag = float(slack.lag.min()) if len(slack.edges) else 0.0
    sigma_ub = float(slack.sigma_ub.max()) if len(slack.edges) else 0.0
    report = design.discipline.evaluate(
        sigma_ub,
        design.delta,
        design.buffered.tau() if design.buffered is not None else 0.0,
        min_lag,
    )
    detail = (
        f"min data lag {min_lag:.4g}; {report.detail}; "
        f"{floor} edges under the beta*s floor"
    )
    if races:
        return RuleResult(
            "A11", "race immunity (hold)", STATUS_FAIL,
            f"{races} edges race at this schedule; {detail}",
        )
    if possible or floor or not report.race_immune:
        return RuleResult(
            "A11", "race immunity (hold)", STATUS_WARN,
            f"{possible} edges racy at worst-case skew; {detail}",
        )
    return RuleResult("A11", "race immunity (hold)", STATUS_PASS, detail)


_RULES: Tuple[Callable[[Design, SlackAnalysis], RuleResult], ...] = (
    _rule_a1,
    _rule_a2,
    _rule_a3,
    _rule_a4,
    _rule_a5,
    _rule_a6,
    _rule_a7,
    _rule_a8,
    _rule_a9,
    _rule_a10,
    _rule_a11,
)


def run_drc(
    design: Design, slack: Optional[SlackAnalysis] = None
) -> List[RuleResult]:
    """Run every design rule; ``slack`` may be shared with the caller to
    avoid recomputing the vectors."""
    analysis = slack if slack is not None else analyze_slack(design)
    return [rule(design, analysis) for rule in _RULES]


def drc_failures(results: List[RuleResult]) -> List[RuleResult]:
    return [r for r in results if r.status == STATUS_FAIL]


def drc_counts(results: List[RuleResult]) -> Dict[str, int]:
    counts = {STATUS_PASS: 0, STATUS_FAIL: 0, STATUS_WARN: 0, STATUS_SKIP: 0}
    for r in results:
        counts[r.status] += 1
    return counts
