"""The schema-pinned flow report: one JSON document per flow query.

:func:`build_flow_report` runs the full static stack — deadlock verdict,
Howard MCM with critical-cycle blame, the Karp oracle, optionally the
dynamic steady-state cross-check and the buffer-sizing optimizer — and
packs the result in the :data:`repro.obs.schema.FLOW_REPORT_SCHEMA`
shape, self-validating before returning (an invalid report is a bug,
never an artifact).  ``python -m repro flow`` / ``python -m repro sta
--flow`` emit and render these.

The ``agreement`` block is the report's teeth: on live designs it
records the Howard-vs-Karp and static-vs-simulated cycle times and the
worst absolute difference, with ``exact`` true only at a bitwise zero —
the same contract the ``differential-mcm`` oracle enforces in
:mod:`repro.check`.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro import __version__
from repro.graphs.comm import CommGraph
from repro.obs.schema import validate_flow_report
from repro.sim.compiled import CompiledRecurrence
from repro.sim.dataflow import per_cell_service
from repro.sta.flow import (
    CapacitySpec,
    FlowAnalysis,
    ServiceSpec,
    _capacity_items,
    _service_vector,
    analyze_flow,
    mcm_karp,
    minimal_buffer_sizing,
    simulate_steady_state,
)

__all__ = ["build_flow_report", "render_flow_report"]


def _capacity_label(comm: CommGraph, capacity: CapacitySpec) -> str:
    if capacity is None:
        return "unbounded"
    if isinstance(capacity, int):
        return f"uniform:{capacity}"
    items = _capacity_items(comm, capacity)
    return f"per-edge:{len(items)}"


def _mcm_block(analysis: FlowAnalysis) -> Optional[Dict[str, Any]]:
    cycle = analysis.cycle
    if cycle is None:
        return None
    blame = [
        {
            "label": label,
            "kind": kind,
            "seconds": seconds,
            # A credit hop's weight (s_dst - s_src) can be negative; the
            # blame share is its fraction of the cycle weight clipped to
            # the unit interval — a negative contribution blames zero.
            "share": min(1.0, max(0.0, share)),
        }
        for label, kind, seconds, share in cycle.path.blame()
    ]
    return {
        "cycle_time": cycle.cycle_time,
        "throughput": cycle.throughput,
        "weight": cycle.weight,
        "tokens": int(cycle.tokens),
        "iterations": int(cycle.iterations),
        "critical_cycle": blame,
    }


def build_flow_report(
    comm: CommGraph,
    service: ServiceSpec,
    wire_delay: float = 0.0,
    capacity: CapacitySpec = None,
    *,
    design_name: str = "design",
    simulate: bool = True,
    sizing_target: Optional[float] = None,
    max_waves: int = 100_000,
    max_period: int = 64,
) -> Dict[str, Any]:
    """Run the static flow stack and pack a schema-valid report.

    ``simulate=True`` (the default) adds the dynamic cross-check: the
    compiled recurrence runs to its periodic regime, its long-run rate
    lands in ``agreement.simulated_cycle_time``, and the closed-form
    :meth:`~repro.sta.flow.SteadyState.makespan_at` is checked bit-for-
    bit against the iterated makespan at two extrapolated horizons
    (``transient.makespan_max_err``).  ``sizing_target`` additionally
    runs :func:`~repro.sta.flow.minimal_buffer_sizing` toward that
    cycle time.
    """
    cells = comm.nodes()
    analysis = analyze_flow(comm, service, wire_delay, capacity)
    agreement: Optional[Dict[str, Any]] = None
    transient: Optional[Dict[str, Any]] = None
    if not analysis.dead and analysis.cycle is not None:
        howard = analysis.cycle.cycle_time
        karp = mcm_karp(analysis.graph)
        diffs: List[float] = []
        if karp is not None:
            diffs.append(abs(howard - karp))
        simulated: Optional[float] = None
        if simulate:
            steady = simulate_steady_state(
                comm,
                service,
                wire_delay,
                capacity,
                max_waves=max_waves,
                max_period=max_period,
            )
            simulated = steady.cycle_time
            diffs.append(abs(howard - simulated))
            c_lo, c_hi = steady.bounds()
            services = _service_vector(cells, service)
            svc = per_cell_service(
                {c: float(s) for c, s in zip(cells, services.tolist())}
            )
            compiled = CompiledRecurrence(comm)
            horizons = (steady.waves_run + 7, 2 * steady.waves_run + 3)
            max_err = 0.0
            for horizon in horizons:
                predicted = steady.makespan_at(horizon)
                iterated = compiled.makespan(
                    svc, wire_delay, horizon, capacity=capacity
                )
                max_err = max(max_err, abs(predicted - iterated))
            transient = {
                "period": int(steady.period),
                "waves_run": int(steady.waves_run),
                "c_lo": c_lo,
                "c_hi": c_hi,
                "makespan_checks": len(horizons),
                "makespan_max_err": max_err,
            }
        max_abs_diff = max(diffs, default=0.0)
        agreement = {
            "karp_cycle_time": karp,
            "simulated_cycle_time": simulated,
            "max_abs_diff": max_abs_diff,
            "exact": max_abs_diff == 0.0,
        }
    sizing: Optional[Dict[str, Any]] = None
    if sizing_target is not None:
        result = minimal_buffer_sizing(
            comm, service, wire_delay, sizing_target
        )
        sizing = {
            "target": result.target,
            "cycle_time": result.cycle_time,
            "total_capacity": int(result.total_capacity),
            "mcm_calls": int(result.mcm_calls),
            "capacities": [
                [repr(u), repr(v), int(d)]
                for (u, v), d in result.capacities.items()
            ],
        }
    report: Dict[str, Any] = {
        "design": design_name,
        "cells": len(cells),
        "comm_edges": len(comm.edges()),
        "wire_delay": float(wire_delay),
        "capacity": _capacity_label(comm, capacity),
        "deadlock": {
            "dead": analysis.dead,
            "cycle": [
                [repr(u), repr(v)] for u, v in (analysis.deadlock or [])
            ],
        },
        "mcm": _mcm_block(analysis),
        "agreement": agreement,
        "transient": transient,
        "sizing": sizing,
        "meta": {
            "emitted_at": time.time(),
            "repro_version": __version__,
        },
    }
    errors = validate_flow_report(report)
    if errors:
        raise RuntimeError(
            "flow report failed its own schema: " + "; ".join(errors)
        )
    return report


def render_flow_report(report: Dict[str, Any]) -> str:
    """Human rendering of a flow report (the CLI's default output)."""
    lines = [
        f"flow report — {report['design']}",
        f"  cells={report['cells']} comm_edges={report['comm_edges']} "
        f"wire_delay={report['wire_delay']:g} "
        f"capacity={report['capacity']}",
    ]
    dead = report["deadlock"]
    if dead["dead"]:
        lines.append("  DEADLOCK: token-free cycle")
        for u, v in dead["cycle"]:
            lines.append(f"    {u} -> {v}")
        return "\n".join(lines)
    mcm = report["mcm"]
    if mcm is None:
        lines.append("  acyclic: no steady-state cycle")
        return "\n".join(lines)
    lines.append(
        f"  cycle time {mcm['cycle_time']:g}  throughput "
        f"{mcm['throughput']:g}  (weight {mcm['weight']:g} / tokens "
        f"{mcm['tokens']}, {mcm['iterations']} Howard sweeps)"
    )
    lines.append("  critical cycle:")
    for step in mcm["critical_cycle"]:
        lines.append(
            f"    {step['share']:6.1%}  {step['kind']:8s} "
            f"{step['label']}  ({step['seconds']:g}s)"
        )
    agreement = report["agreement"]
    if agreement is not None:
        sim = agreement["simulated_cycle_time"]
        sim_txt = f"{sim:g}" if sim is not None else "skipped"
        lines.append(
            f"  agreement: karp={agreement['karp_cycle_time']:g} "
            f"simulated={sim_txt} max_abs_diff="
            f"{agreement['max_abs_diff']:g} "
            f"{'EXACT' if agreement['exact'] else 'APPROX'}"
        )
    transient = report["transient"]
    if transient is not None:
        lines.append(
            f"  transient: period={transient['period']} over "
            f"{transient['waves_run']} waves, makespan in "
            f"[N*mcm{transient['c_lo']:+g}, N*mcm{transient['c_hi']:+g}], "
            f"{transient['makespan_checks']} closed-form checks "
            f"(max err {transient['makespan_max_err']:g})"
        )
    sizing = report["sizing"]
    if sizing is not None:
        lines.append(
            f"  sizing: target {sizing['target']:g} met at "
            f"{sizing['cycle_time']:g} with total capacity "
            f"{sizing['total_capacity']} ({sizing['mcm_calls']} MCM "
            "solves)"
        )
    return "\n".join(lines)
