"""Per-edge setup/hold slack, statically — the A5 inequalities as vectors.

For a directed COMM edge ``u -> v`` with data-path lag
``lag = delta + wire + padding`` and clock period ``T``, the clocked
simulator's latch conditions (:mod:`repro.sim.clocked`) are:

* **setup** — the sender's tick ``k-1`` output must arrive by the
  receiver's tick ``k``:  ``offset(u) - offset(v) + lag <= T``;
* **hold** — the sender's tick ``k`` output must *not* arrive by the
  receiver's tick ``k``:  ``offset(u) + lag > offset(v)``.

Two evaluation modes, both pure arithmetic (no simulation):

* **exact** (a.k.a. schedule mode) — uses the concrete schedule offsets.
  Complete *and* sound for affine schedules: an edge is flagged iff the
  simulator observes a violation on it.
* **bound** (model mode) — replaces the offset difference with the skew
  model's per-pair upper bound ``sigma_ub(u, v)`` (the batched LCA kernels
  of :mod:`repro.core.models`), i.e. the paper's actual derivation: skew is
  only known as a bracket.  When the schedule's offsets are an admissible
  realization of the model (``|lead| <= sigma_ub`` on every pair), bound
  slacks never exceed exact slacks and bound-clean implies exact-clean
  implies simulated-clean.  A concrete buffered tree can drift outside its
  abstract model (buffer jitter the model does not cover), which is why
  verdicts are driven by exact mode and bound mode adds robustness
  warnings (``*-possible`` flags) on top.

Hold races are *directional*: only a sender whose clock leads can race,
and under A11 the skew floor ``beta * s <= sigma`` means an edge whose lag
does not clear ``sigma_lb`` can race in some admissible realization no
matter how the tree is tuned — only added delay (padding) fixes it.
:func:`pad_for_races` computes that padding from the bounds.

The minimum feasible period is the smallest ``T`` with every setup slack
non-negative.  Setup slack is monotone increasing in ``T``, so
:func:`minimum_feasible_period` runs a monotone bisection on the slack
vector (with :func:`minimum_feasible_period_closed_form` kept as the
algebraic oracle the tests compare against).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.sta.design import Design, EdgeKey

#: The clocked simulator's comparison tolerance (repro.sim.clocked uses
#: ``<= t + 1e-12`` when deciding whether a value has arrived); slack
#: classification mirrors it so static and simulated verdicts agree.
SIM_TOL = 1e-12

#: Flags a slack row can carry.
FLAG_STALE = "stale"                    # exact setup slack negative
FLAG_STALE_POSSIBLE = "stale-possible"  # bound setup slack negative
FLAG_RACE = "race"                      # exact hold slack non-positive
FLAG_RACE_POSSIBLE = "race-possible"    # bound hold slack non-positive
FLAG_RACE_FLOOR = "race-floor"          # A11 floor alone defeats the lag


@dataclass(frozen=True)
class EdgeSlack:
    """One edge's static timing row."""

    edge: EdgeKey
    lag: float
    sigma_ub: float
    sigma_lb: float
    offset_lead: float
    setup_slack: float
    hold_slack: float
    setup_slack_bound: float
    hold_slack_bound: float
    flags: Tuple[str, ...]

    @property
    def clean(self) -> bool:
        """No exact-mode violation (possible-mode flags are warnings)."""
        return FLAG_STALE not in self.flags and FLAG_RACE not in self.flags


@dataclass(frozen=True)
class SlackAnalysis:
    """The full slack vector of a design, plus summary accessors.

    All arrays are float64, aligned with ``edges`` (the COMM graph's
    stable directed-edge order), and read-only.
    """

    period: float
    edges: Tuple[EdgeKey, ...]
    lag: np.ndarray
    sigma_ub: np.ndarray
    sigma_lb: np.ndarray
    offset_lead: np.ndarray
    setup_exact: np.ndarray
    hold_exact: np.ndarray
    setup_bound: np.ndarray
    hold_bound: np.ndarray

    # -- classification --------------------------------------------------
    @property
    def stale_mask(self) -> np.ndarray:
        """Edges the simulator will read stale (setup) data on."""
        return self.setup_exact < -SIM_TOL

    @property
    def race_mask(self) -> np.ndarray:
        """Edges the simulator will race through (hold) on."""
        return self.hold_exact <= SIM_TOL

    @property
    def race_floor_mask(self) -> np.ndarray:
        """Edges whose lag does not clear the A11 skew floor — no tree
        tuning can make them safe; padding is mandatory."""
        return self.sigma_lb >= self.lag - SIM_TOL

    def stale_edges(self) -> List[EdgeKey]:
        return [e for e, bad in zip(self.edges, self.stale_mask) if bad]

    def race_edges(self) -> List[EdgeKey]:
        return [e for e, bad in zip(self.edges, self.race_mask) if bad]

    @property
    def timing_clean(self) -> bool:
        return not (bool(self.stale_mask.any()) or bool(self.race_mask.any()))

    @property
    def robust_clean(self) -> bool:
        """Clean even at the model's worst-case skew (bound mode)."""
        return bool(
            (self.setup_bound >= -SIM_TOL).all()
            and (self.hold_bound > SIM_TOL).all()
        )

    @property
    def worst_setup_slack(self) -> float:
        return float(self.setup_exact.min()) if len(self.edges) else 0.0

    @property
    def worst_hold_slack(self) -> float:
        return float(self.hold_exact.min()) if len(self.edges) else 0.0

    def slack_for(self, edge: EdgeKey) -> Tuple[float, float]:
        """(setup, hold) exact slack of one directed edge."""
        i = self.edges.index(edge)
        return float(self.setup_exact[i]), float(self.hold_exact[i])

    def rows(self) -> List[EdgeSlack]:
        out: List[EdgeSlack] = []
        stale = self.stale_mask
        race = self.race_mask
        floor = self.race_floor_mask
        for i, edge in enumerate(self.edges):
            flags: List[str] = []
            if stale[i]:
                flags.append(FLAG_STALE)
            elif self.setup_bound[i] < -SIM_TOL:
                flags.append(FLAG_STALE_POSSIBLE)
            if race[i]:
                flags.append(FLAG_RACE)
            elif self.hold_bound[i] <= SIM_TOL:
                flags.append(FLAG_RACE_POSSIBLE)
            if floor[i]:
                flags.append(FLAG_RACE_FLOOR)
            out.append(
                EdgeSlack(
                    edge=edge,
                    lag=float(self.lag[i]),
                    sigma_ub=float(self.sigma_ub[i]),
                    sigma_lb=float(self.sigma_lb[i]),
                    offset_lead=float(self.offset_lead[i]),
                    setup_slack=float(self.setup_exact[i]),
                    hold_slack=float(self.hold_exact[i]),
                    setup_slack_bound=float(self.setup_bound[i]),
                    hold_slack_bound=float(self.hold_bound[i]),
                    flags=tuple(flags),
                )
            )
        return out


def edge_lags(design: Design) -> np.ndarray:
    """The per-edge data-path lag vector (delta + wire + padding)."""
    edges = design.edges()
    return np.fromiter(
        (design.edge_lag(e) for e in edges), dtype=np.float64, count=len(edges)
    )


def _edge_vectors(
    design: Design,
) -> Tuple[List[EdgeKey], np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(edges, lag, offset_lead, sigma_ub, sigma_lb) for a design — the
    shared precomputation of every analysis entry point."""
    edges = design.edges()
    lag = edge_lags(design)
    offsets = {c: design.schedule.offset(c) for c in design.schedule.cells()}
    lead = np.fromiter(
        (offsets[u] - offsets[v] for u, v in edges),
        dtype=np.float64,
        count=len(edges),
    )
    if edges:
        sigma_ub = design.model.skew_bound_batch(design.tree, edges)
        sigma_lb = design.model.skew_lower_bound_batch(design.tree, edges)
    else:  # pragma: no cover - degenerate empty graph
        sigma_ub = np.empty(0, dtype=np.float64)
        sigma_lb = np.empty(0, dtype=np.float64)
    return edges, lag, lead, sigma_ub, sigma_lb


def analyze_slack(design: Design) -> SlackAnalysis:
    """Compute every edge's setup/hold slack in both modes, vectorized."""
    edges, lag, lead, sigma_ub, sigma_lb = _edge_vectors(design)
    period = design.period
    setup_exact = period - (lead + lag)
    hold_exact = lead + lag
    setup_bound = period - (sigma_ub + lag)
    hold_bound = lag - sigma_ub
    for arr in (lag, lead, sigma_ub, sigma_lb, setup_exact, hold_exact,
                setup_bound, hold_bound):
        arr.flags.writeable = False
    return SlackAnalysis(
        period=period,
        edges=tuple(edges),
        lag=lag,
        sigma_ub=sigma_ub,
        sigma_lb=sigma_lb,
        offset_lead=lead,
        setup_exact=setup_exact,
        hold_exact=hold_exact,
        setup_bound=setup_bound,
        hold_bound=hold_bound,
    )


def _period_needs(design: Design, mode: str) -> np.ndarray:
    """Per-edge minimum period requirement in the given mode."""
    edges, lag, lead, sigma_ub, _ = _edge_vectors(design)
    if mode == "exact":
        return lead + lag
    if mode == "bound":
        return sigma_ub + lag
    raise ValueError(f"unknown slack mode {mode!r} (exact|bound)")


def minimum_feasible_period_closed_form(design: Design, mode: str = "exact") -> float:
    """Algebraic oracle: the largest per-edge period requirement."""
    needs = _period_needs(design, mode)
    return float(needs.max(initial=0.0))


def _bisect_period(
    needs_max: float,
    tol: float = 1e-9,
    max_iterations: int = 200,
) -> float:
    """Bisection core shared by the full and incremental analyses.

    Feasibility of a period T is ``all(needs <= T + SIM_TOL)``, which for
    a float vector is exactly ``max(needs) <= T + SIM_TOL`` (the max is an
    element of the vector), so the whole search depends only on the
    scalar maximum.  That is what lets :class:`repro.sta.eco.ECOSession`
    answer ``minimum_feasible_period`` in O(log) from its running
    extremum while staying bit-identical to the O(edges) path here: same
    predicate decisions, same iterates, same returned float.
    """
    def feasible(period: float) -> bool:
        return needs_max <= period + SIM_TOL

    lo, hi = 0.0, 1.0
    iterations = 0
    while not feasible(hi):
        lo, hi = hi, hi * 2.0
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - defensive
            raise RuntimeError("period bracket failed to close")
    if feasible(lo):
        return lo if lo > 0.0 else max(needs_max, 0.0)
    scale = max(1.0, hi)
    while hi - lo > tol * scale and iterations < max_iterations:
        mid = 0.5 * (lo + hi)
        if feasible(mid):
            hi = mid
        else:
            lo = mid
        iterations += 1
    return hi


def minimum_feasible_period(
    design: Design,
    mode: str = "exact",
    tol: float = 1e-9,
    max_iterations: int = 200,
) -> float:
    """The smallest period with a non-negative setup-slack vector, found by
    monotone bisection.

    Setup slack is affine (hence monotone) in the period, so feasibility —
    ``all(T >= need_e)`` — is a monotone predicate and bisection converges
    to the closed-form answer; the bisection exists because realistic slack
    models (duty-cycle constraints, level-sensitive borrowing) are monotone
    but not closed-form, and the property tests pin the two to within
    ``tol`` on the affine case.
    """
    needs = _period_needs(design, mode)
    if len(needs) == 0:
        return 0.0
    return _bisect_period(float(needs.max()), tol=tol, max_iterations=max_iterations)


def pad_for_races(
    design: Design,
    margin: float = 1e-6,
) -> Dict[EdgeKey, float]:
    """Padding that clears every hold hazard at the model's worst case.

    The hold condition is ``lag > offset(v) - offset(u) = -lead``, and at
    the model's worst case ``lag > sigma_ub``; so each edge needs
    ``pad = max(0, need - (delta + wire))`` with
    ``need = max(-offset_lead, sigma_ub) + t_hold + margin``.  Padding never
    hurts hold safety; it raises the setup requirement, which the feasible
    period then covers (compute the period *after* padding).
    """
    edges, lag, lead, sigma_ub, _ = _edge_vectors(design)
    base = lag - np.fromiter(
        (design.edge_padding.get(e, 0.0) for e in edges),
        dtype=np.float64,
        count=len(edges),
    )
    need = np.maximum(-lead, sigma_ub) + design.discipline.t_hold + margin
    pad = np.maximum(0.0, need - base)
    return {e: float(p) for e, p in zip(edges, pad) if p > 0.0}
