"""Scaling oracles: the streamed/shared paths must change nothing.

The million-cell machinery trades memory and pickling for nothing else —
by construction, a chunked tick-matrix scan and a shared-memory trial
pool produce the *same bits* as their monolithic/serial formulations.
These checks make that claim a named, diagnosable failure:

* ``differential-chunked-timing`` — :class:`~repro.sim.compiled.CompiledTimingKernel`
  timing over several grid shapes and block sizes must equal the
  monolithic evaluation and the per-event scalar oracle exactly
  (violation list, order, makespan); the clocked simulator's
  ``run(edge_block=...)`` must equal its monolithic ``run`` on a real
  workload.
* ``differential-shared-arena`` — a compiled sampler round-tripped
  through a :class:`~repro.analysis.shared.SharedTrialArena` must
  reproduce the serial ``run_trials`` summary bit-for-bit under thread
  and process executors, and the attached views must equal the source
  arrays byte-for-byte.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.analysis.montecarlo import run_trials
from repro.analysis.shared import SharedTrialArena
from repro.arrays.topologies import mesh
from repro.check.registry import REGISTRY, CheckContext, require
from repro.clocktree.htree import htree_for_array
from repro.clocktree.sampler import CompiledSkewSampler
from repro.graphs.csr import csr_from_comm, grid_csr
from repro.sim.compiled import CompiledTimingKernel


def _random_offsets(ctx: CheckContext, salt: str, n: int, period: float) -> np.ndarray:
    rng = ctx.rng(salt)
    return np.array([rng.uniform(0.0, 1.5 * period) for _ in range(n)])


@REGISTRY.register(
    "differential-chunked-timing",
    "differential",
    "chunked tick-matrix timing (any edge-block size) equals the monolithic "
    "evaluation and the per-event scalar oracle bit-for-bit",
)
def check_chunked_timing(ctx: CheckContext) -> Dict[str, Any]:
    shapes: List[Tuple[int, int]] = [(3, 4), (7, 5), (9, 9)]
    if ctx.full:
        shapes.append((16, 16))
    period, lag, ticks = 1.0, 0.3, 4
    cases = 0
    for rows, cols in shapes:
        n = rows * cols
        grid = grid_csr(rows, cols)
        lowered = csr_from_comm(mesh(rows, cols).comm)
        require(
            lowered.same_structure(grid),
            f"grid_csr({rows},{cols}) disagrees with the CommGraph lowering",
            rows=rows, cols=cols,
        )
        offsets = _random_offsets(ctx, f"chunked|{rows}x{cols}", n, period)
        kernel = CompiledTimingKernel(grid, offsets, period=period, lag=lag)
        mono = kernel.timing(ticks)
        scalar = kernel.timing_scalar(ticks)
        require(
            mono.violations == scalar.violations
            and mono.makespan == scalar.makespan
            and mono.ticks == scalar.ticks,
            f"monolithic timing diverged from the scalar oracle on {rows}x{cols}",
            rows=rows, cols=cols,
            mono_violations=len(mono.violations),
            scalar_violations=len(scalar.violations),
        )
        for block in (1, 3, kernel.n_edges // 2 or 1, kernel.n_edges + 7):
            streamed = kernel.timing(ticks, edge_block=block)
            require(
                streamed.violations == mono.violations
                and streamed.makespan == mono.makespan
                and streamed.ticks == mono.ticks,
                f"edge_block={block} changed the timing result on {rows}x{cols}",
                rows=rows, cols=cols, edge_block=block,
            )
            cases += 1

    # The clocked simulator's streamed run on a real systolic workload.
    from repro.arrays.systolic import build_fir_array
    from repro.clocktree.builders import serpentine_clock
    from repro.clocktree.buffered import BufferedClockTree
    from repro.core.padding import plan_safe_clocking
    from repro.delay.variation import BoundedUniformVariation
    from repro.sim.clock_distribution import ClockSchedule
    from repro.sim.clocked import ClockedArraySimulator

    rng = ctx.rng("chunked|fir")
    program = build_fir_array(
        [rng.uniform(-1.0, 1.0) for _ in range(4)],
        [rng.uniform(-2.0, 2.0) for _ in range(8)],
    )
    tree = serpentine_clock(program.array)
    buffered = BufferedClockTree(
        tree,
        buffer_spacing=1.0,
        wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.1, seed=ctx.seed),
    )
    cells = program.array.comm.nodes()
    probe = ClockSchedule.from_buffered_tree(buffered, 1.0, cells)
    plan = plan_safe_clocking(program.array, probe, delta=1.0)
    for factor in (1.05, 0.5):  # one clean run, one with violations
        period = plan.min_safe_period * factor + 1e-6
        schedule = ClockSchedule.from_buffered_tree(buffered, period, cells)
        sim = ClockedArraySimulator(
            program, schedule, delta=1.0, edge_padding=plan.padding
        )
        kernel = sim.compiled()
        whole = kernel.run()
        for block in (1, 5, 64):
            streamed = kernel.run(edge_block=block)
            require(
                streamed.result == whole.result
                and streamed.violations == whole.violations
                and streamed.makespan == whole.makespan
                and streamed.ticks == whole.ticks,
                f"clocked run(edge_block={block}) diverged at period factor {factor}",
                edge_block=block, period_factor=factor,
                violations=len(whole.violations),
            )
            cases += 1
    return {"cases": cases, "shapes": len(shapes)}


def _arena_build(arrays: Any) -> CompiledSkewSampler:
    return CompiledSkewSampler.from_arrays(arrays)


def _arena_run(state: CompiledSkewSampler, seed: int) -> float:
    return state.sample_max_skew(seed)


@REGISTRY.register(
    "differential-shared-arena",
    "differential",
    "shared-memory trial arena reproduces the serial Monte-Carlo summary "
    "bit-for-bit under thread and process executors",
)
def check_shared_arena(ctx: CheckContext) -> Dict[str, Any]:
    side = 8 if not ctx.full else 12
    array = mesh(side, side)
    sampler = CompiledSkewSampler.from_tree(
        htree_for_array(array), array.communicating_pairs()
    )
    source = sampler.arrays()
    trials = 8
    serial = run_trials(sampler.sample_max_skew, trials, base_seed=ctx.seed)
    # The scalar oracle consumes the same seeded uniform vector — one
    # divergent trial and the arena comparison below is meaningless.
    for seed in range(ctx.seed, ctx.seed + 3):
        require(
            sampler.sample_max_skew(seed) == sampler.sample_max_skew_scalar(seed),
            "vectorized sampler diverged from its scalar oracle",
            seed=seed,
        )
    arena = SharedTrialArena(source)
    try:
        attached = arena.handle.arrays()
        for key, value in source.items():
            require(
                np.array_equal(attached[key], np.asarray(value)),
                f"attached view {key!r} differs from the source array",
                key=key,
            )
        trial = arena.trial(_arena_build, _arena_run)
        for executor, workers in (("thread", 2), ("process", 2)):
            pooled = run_trials(
                trial, trials, base_seed=ctx.seed, workers=workers, executor=executor
            )
            require(
                pooled.mean == serial.mean
                and pooled.stdev == serial.stdev
                and pooled.minimum == serial.minimum
                and pooled.maximum == serial.maximum
                and pooled.ci_half_width == serial.ci_half_width,
                f"{executor} pool summary diverged from the serial run",
                executor=executor, workers=workers,
                serial_mean=serial.mean, pooled_mean=pooled.mean,
            )
    finally:
        arena.close()
    return {
        "side": side,
        "trials": trials,
        "segments": sampler.n_segments,
        "arena_bytes": sum(np.asarray(v).nbytes for v in source.values()),
    }
