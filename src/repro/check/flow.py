"""Flow-analysis oracles: the static answers vs the running machine.

Three checks hold :mod:`repro.sta.flow` to the event-driven truth:

* ``differential-mcm`` — on dyadic-rational designs the Karp formula
  value, the Howard critical-cycle ratio, and the simulator's measured
  long-run rate are the same rational, so they must be the same float —
  zero diff, at every tested topology, size, and capacity regime.  The
  transient side rides along: the closed-form
  :meth:`~repro.sta.flow.SteadyState.makespan_at` must be bit-equal to
  the iterated compiled recurrence at extrapolated horizons.
* ``flow-deadlock`` — :func:`~repro.sta.flow.detect_deadlock` must
  agree with the simulator's eager
  :class:`~repro.sim.dataflow.ChannelDeadlockError` on every capacity
  assignment: a cycle reported implies construction refuses, none
  reported implies the run completes.
* ``sizing-minimality`` — :func:`~repro.sta.flow.minimal_buffer_sizing`
  must return capacities that meet the target and are irreducible:
  decrementing any single returned depth either deadlocks the array or
  pushes the cycle time above the target.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.check.registry import REGISTRY, CheckContext, require
from repro.graphs.comm import CommGraph
from repro.sim.dataflow import (
    ChannelDeadlockError,
    SelfTimedProgramSimulator,
    constant_service,
)
from repro.sta.flow import (
    analyze_flow,
    detect_deadlock,
    flow_graph,
    mcm_howard,
    mcm_karp,
    minimal_buffer_sizing,
    simulate_steady_state,
    simulate_steady_state_scalar,
)


def _dyadic_services(ctx: CheckContext, salt: str, cells) -> Dict[Any, float]:
    """Per-cell service times on the 1/8 grid in [1, 2): exact dyadic
    rationals, so every static/dynamic comparison is a bit-equality."""
    rng = ctx.rng(salt)
    return {c: 1.0 + rng.randrange(8) / 8 for c in cells}


def _mesh(side: int) -> CommGraph:
    comm = CommGraph()
    for r in range(side):
        for c in range(side):
            comm.add_node((r, c))
    for r in range(side):
        for c in range(side):
            if c + 1 < side:
                comm.add_edge((r, c), (r, c + 1))
            if r + 1 < side:
                comm.add_edge((r, c), (r + 1, c))
    return comm


def _ring(n: int) -> CommGraph:
    comm = CommGraph()
    for i in range(n):
        comm.add_node(i)
    for i in range(n):
        comm.add_edge(i, (i + 1) % n)
    return comm


def _topologies(ctx: CheckContext) -> List[Tuple[str, CommGraph]]:
    sides = (3, 5) if not ctx.full else (3, 5, 8)
    topos: List[Tuple[str, CommGraph]] = [
        (f"mesh{s}", _mesh(s)) for s in sides
    ]
    topos.append(("ring4", _ring(4)))
    if ctx.full:
        topos.append(("ring7", _ring(7)))
    return topos


@REGISTRY.register(
    "differential-mcm",
    "differential",
    "the static maximum cycle mean (Karp oracle and Howard kernel) equals "
    "the simulator's measured long-run cycle time bit-for-bit on dyadic "
    "designs, and the closed-form steady-state makespan extrapolation "
    "matches the iterated recurrence exactly",
)
def check_differential_mcm(ctx: CheckContext) -> Dict[str, Any]:
    from repro.sim.compiled import CompiledRecurrence
    from repro.sim.dataflow import per_cell_service

    rows = []
    for name, comm in _topologies(ctx):
        cells = comm.nodes()
        service = _dyadic_services(ctx, f"mcm|{name}", cells)
        cyclic = not comm.is_acyclic()
        for cap in (None, 2, 4) if cyclic else (None, 1, 2):
            fg = flow_graph(comm, service, 0.5, cap)
            howard = mcm_howard(fg)
            karp = mcm_karp(fg)
            require(howard is not None and karp is not None,
                    f"{name}/cap={cap}: no cycle found on a cyclic "
                    f"flow graph",
                    topology=name, capacity=cap)
            assert howard is not None and karp is not None
            require(howard.cycle_time == karp,
                    f"{name}/cap={cap}: Howard and Karp disagree",
                    topology=name, capacity=cap,
                    howard=howard.cycle_time, karp=karp)
            steady = simulate_steady_state(comm, service, 0.5, cap)
            require(howard.cycle_time == steady.cycle_time,
                    f"{name}/cap={cap}: static MCM != simulated rate",
                    topology=name, capacity=cap,
                    static=howard.cycle_time, simulated=steady.cycle_time)
            scalar = simulate_steady_state_scalar(comm, service, 0.5, cap)
            require(scalar.cycle_time == steady.cycle_time
                    and scalar.period == steady.period,
                    f"{name}/cap={cap}: scalar steady-state oracle "
                    f"diverged from the stepper",
                    topology=name, capacity=cap,
                    scalar=scalar.cycle_time, stepper=steady.cycle_time)
            svc = per_cell_service(service)
            compiled = CompiledRecurrence(comm)
            for horizon in (steady.waves_run + 5, 2 * steady.waves_run + 3):
                predicted = steady.makespan_at(horizon)
                iterated = compiled.makespan(
                    svc, 0.5, horizon, capacity=cap
                )
                require(predicted == iterated,
                        f"{name}/cap={cap}: closed-form makespan at "
                        f"{horizon} waves != iterated recurrence",
                        topology=name, capacity=cap, horizon=horizon,
                        predicted=predicted, iterated=iterated)
            rows.append({"topology": name, "capacity": cap,
                         "cycle_time": howard.cycle_time,
                         "period": steady.period,
                         "iterations": howard.iterations})
    return {"cases": rows}


@REGISTRY.register(
    "flow-deadlock",
    "differential",
    "the static token-free-cycle detector agrees with the simulator's "
    "eager ChannelDeadlockError on every sampled capacity assignment",
)
def check_flow_deadlock(ctx: CheckContext) -> Dict[str, Any]:
    from repro.arrays.systolic import build_fir_array, build_odd_even_sorter

    rng = ctx.rng("flow-deadlock")
    rows = []
    programs = [
        ("fir", build_fir_array([0.5, -0.25], [1.0, 2.0, 3.0])),
        ("sorter", build_odd_even_sorter([3.0, 1.0, 2.0, 0.0])),
    ]
    trials = 12 if not ctx.full else 40
    for name, program in programs:
        comm = program.array.comm
        edges = comm.edges()
        for trial in range(trials):
            cap = {e: rng.randint(1, 3) for e in edges}
            cycle = detect_deadlock(comm, cap)
            raised = False
            try:
                sim = SelfTimedProgramSimulator(
                    program, service=constant_service(1.0), wire_delay=0.5,
                    channel_capacity=cap,
                )
                sim.run()
            except ChannelDeadlockError:
                raised = True
            require(raised == (cycle is not None),
                    f"{name}: static deadlock verdict disagrees with the "
                    f"simulator",
                    workload=name, capacities=repr(cap),
                    static=repr(cycle), simulator_raised=raised)
            if cycle is not None:
                # The witness must be a genuine capacity-1 cycle.
                for (u, v) in cycle:
                    require(cap[(u, v)] == 1,
                            f"{name}: deadlock witness uses a non-unit "
                            f"channel",
                            workload=name, edge=repr((u, v)))
                closure = [u for u, _ in cycle]
                require(len(set(closure)) == len(closure),
                        f"{name}: deadlock witness revisits a cell",
                        workload=name, cycle=repr(cycle))
            rows.append({"workload": name, "trial": trial,
                         "dead": cycle is not None})
    dead = sum(1 for r in rows if r["dead"])
    require(0 < dead < len(rows),
            "sampling never exercised both verdicts — widen the "
            "capacity distribution",
            dead=dead, total=len(rows))
    return {"cases": len(rows), "dead": dead}


@REGISTRY.register(
    "sizing-minimality",
    "metamorphic",
    "minimal_buffer_sizing meets its target and is irreducible: "
    "decrementing any single returned capacity deadlocks the array or "
    "pushes the cycle time above the target",
)
def check_sizing_minimality(ctx: CheckContext) -> Dict[str, Any]:
    rows = []
    topos = [("mesh3", _mesh(3)), ("ring5", _ring(5))]
    if ctx.full:
        topos.append(("mesh5", _mesh(5)))
    for name, comm in topos:
        cells = comm.nodes()
        service = _dyadic_services(ctx, f"sizing|{name}", cells)
        fg_unbounded = flow_graph(comm, service, 0.5, None)
        base = mcm_howard(fg_unbounded)
        assert base is not None
        for slack_num in (0, 1, 3):
            target = base.cycle_time + slack_num / 8
            result = minimal_buffer_sizing(comm, service, 0.5, target)
            require(result.cycle_time <= target,
                    f"{name}: sizing missed its target",
                    topology=name, target=target,
                    achieved=result.cycle_time)
            verdict = analyze_flow(comm, service, 0.5, result.capacities)
            require(not verdict.dead
                    and verdict.cycle_time == result.cycle_time,
                    f"{name}: sizing result re-analysis disagrees",
                    topology=name, reported=result.cycle_time,
                    recomputed=verdict.cycle_time)
            for edge, depth in result.capacities.items():
                if depth <= 1:
                    continue
                trial = dict(result.capacities)
                trial[edge] = depth - 1
                if detect_deadlock(comm, trial) is not None:
                    continue  # decrement deadlocks: reduction is blocked
                shrunk = mcm_howard(flow_graph(comm, service, 0.5, trial))
                assert shrunk is not None
                require(shrunk.cycle_time > target,
                        f"{name}: capacity on {edge!r} is reducible — "
                        f"sizing was not minimal",
                        topology=name, edge=repr(edge), target=target,
                        reduced=shrunk.cycle_time)
            rows.append({"topology": name, "target": target,
                         "cycle_time": result.cycle_time,
                         "total_capacity": result.total_capacity,
                         "mcm_calls": result.mcm_calls})
    return {"cases": rows}
