"""The invariant registry: paper-derived oracles as runnable checks.

Every claim the reproduction makes — the Section III skew bracket, the A5
period decomposition, the Theorem 2/3 growth laws, the Section V-B lower
bound, the clocked/self-timed/hybrid functional equivalence — lives here
as a registered :class:`Check`: a named callable that raises
:class:`CheckFailure` when the codebase stops honouring the claim.  The
``check-suite`` CI job runs the quick suite on every PR, so a regression
in any layer (sim/, core/, clocktree/, analysis/) turns into a named,
diagnosable failure instead of a silent drift.

Three check kinds:

* ``invariant`` — a single-configuration oracle (a bound holds, a sweep is
  flat, a certificate verifies);
* ``differential`` — the same workload through independent execution paths
  (lockstep, clocked, self-timed dataflow, hybrid) must agree;
* ``metamorphic`` — a transformed input (rescaled geometry, re-seeded
  jitter, relabelled ids) must leave results invariant.

Checks registered with ``suites=("quick", "full")`` run everywhere;
``("full",)`` marks the expensive configurations only ``--suite full``
exercises.  Results aggregate into a schema-valid JSON report
(:data:`repro.obs.schema.CHECK_REPORT_SCHEMA`).
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer

SUITES = ("quick", "full")


class CheckFailure(AssertionError):
    """A registered oracle found a violated claim.

    ``details`` carries the concrete numbers for the failure report — the
    measured value, the bound it broke, the configuration that broke it.
    """

    def __init__(self, message: str, **details: Any) -> None:
        super().__init__(message)
        self.details: Dict[str, Any] = details


def require(condition: bool, message: str, **details: Any) -> None:
    """Assert a claim inside a check, attaching diagnosis details."""
    if not condition:
        raise CheckFailure(message, **details)


@dataclass
class CheckContext:
    """Everything a check may depend on: the seed, the suite, and the
    observability handles (failure reports reuse ``repro.obs`` tracing)."""

    seed: int = 0
    suite: str = "quick"
    tracer: Tracer = NULL_TRACER
    metrics: Optional[MetricsRegistry] = None

    @property
    def full(self) -> bool:
        return self.suite == "full"

    def rng(self, salt: str) -> random.Random:
        """A deterministic per-check RNG: same seed + salt, same stream,
        independent of check execution order."""
        return random.Random(f"{self.seed}|{salt}")


CheckFunc = Callable[[CheckContext], Dict[str, Any]]


@dataclass(frozen=True)
class Check:
    """One registered oracle."""

    name: str
    kind: str          # "invariant" | "differential" | "metamorphic"
    description: str
    func: CheckFunc
    suites: Tuple[str, ...] = SUITES


@dataclass(frozen=True)
class CheckResult:
    """Outcome of running one check."""

    name: str
    kind: str
    passed: bool
    duration_s: float
    details: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None


class CheckRegistry:
    """Ordered name -> :class:`Check` registry with a decorator interface."""

    KINDS = ("invariant", "differential", "metamorphic")

    def __init__(self) -> None:
        self._checks: Dict[str, Check] = {}

    def register(
        self,
        name: str,
        kind: str,
        description: str,
        suites: Tuple[str, ...] = SUITES,
    ) -> Callable[[CheckFunc], CheckFunc]:
        """Decorator: ``@REGISTRY.register("skew-bracket", "invariant", ...)``."""
        if kind not in self.KINDS:
            raise ValueError(f"unknown check kind {kind!r}")
        if not suites or any(s not in SUITES for s in suites):
            raise ValueError(f"suites must be a non-empty subset of {SUITES}")

        def decorate(func: CheckFunc) -> CheckFunc:
            if name in self._checks:
                raise ValueError(f"check {name!r} already registered")
            self._checks[name] = Check(
                name=name,
                kind=kind,
                description=description,
                func=func,
                suites=tuple(suites),
            )
            return func

        return decorate

    def checks(self, suite: Optional[str] = None) -> List[Check]:
        """All checks, or the ones belonging to ``suite``, in registration
        order (invariants first by module import order)."""
        if suite is None:
            return list(self._checks.values())
        if suite not in SUITES:
            raise ValueError(f"unknown suite {suite!r} (one of {SUITES})")
        return [c for c in self._checks.values() if suite in c.suites]

    def get(self, name: str) -> Check:
        return self._checks[name]

    def __len__(self) -> int:
        return len(self._checks)

    def run(
        self,
        suite: str = "quick",
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        names: Optional[List[str]] = None,
    ) -> List[CheckResult]:
        """Run the suite's checks; never raises for a failing oracle —
        failures become :class:`CheckResult` rows (and trace events)."""
        ctx = CheckContext(
            seed=seed,
            suite=suite,
            tracer=tracer if tracer is not None else NULL_TRACER,
            metrics=metrics,
        )
        selected = self.checks(suite)
        if names is not None:
            wanted = set(names)
            unknown = wanted - {c.name for c in self._checks.values()}
            if unknown:
                raise KeyError(f"unknown checks: {sorted(unknown)}")
            selected = [c for c in selected if c.name in wanted]
        from repro.obs.spans import SpanTracer

        spans = SpanTracer(ctx.tracer)
        results: List[CheckResult] = []
        with spans.span(
            "check.suite", suite=suite, seed=seed, checks=len(selected)
        ) as suite_handle:
            failures = 0
            for i, check in enumerate(selected):
                if ctx.tracer.enabled:
                    ctx.tracer.event(
                        float(i), "check", "start",
                        name=check.name, check_kind=check.kind,
                    )
                t0 = _time.perf_counter()
                details: Dict[str, Any] = {}
                error: Optional[str] = None
                passed = True
                with spans.span(
                    f"check.{check.name}", t=float(i), check_kind=check.kind
                ) as check_handle:
                    try:
                        details = check.func(ctx) or {}
                    except CheckFailure as exc:
                        passed = False
                        error = str(exc)
                        details = dict(exc.details)
                    except Exception as exc:  # a broken check is a failed check
                        passed = False
                        error = f"{type(exc).__name__}: {exc}"
                    check_handle.annotate(passed=passed)
                duration = _time.perf_counter() - t0
                if not passed:
                    failures += 1
                if ctx.tracer.enabled:
                    ctx.tracer.event(
                        float(i), "check", "pass" if passed else "fail",
                        name=check.name, check_kind=check.kind,
                        duration_s=duration, error=error,
                    )
                if ctx.metrics is not None:
                    ctx.metrics.counter("check.runs").inc()
                    if not passed:
                        ctx.metrics.counter("check.failures").inc()
                    ctx.metrics.histogram("check.duration_s").observe(duration)
                results.append(
                    CheckResult(
                        name=check.name,
                        kind=check.kind,
                        passed=passed,
                        duration_s=duration,
                        details=details,
                        error=error,
                    )
                )
            suite_handle.annotate(failures=failures)
        return results


#: The registry the oracle modules populate at import time.
REGISTRY = CheckRegistry()


def default_registry() -> CheckRegistry:
    """Import every oracle module (registering its checks) and return the
    populated registry."""
    from repro.check import differential, eco, flow, invariants  # noqa: F401
    from repro.check import metamorphic, scaling, sta_soundness  # noqa: F401

    return REGISTRY
