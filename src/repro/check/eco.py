"""ECO and tile-composition oracles: incremental must equal full, exactly.

Two differential checks guard the PR-9 fast paths:

* ``differential-eco`` replays randomized edit scripts (repads, wire
  retargets, buffer resizes, subtree grafts, re-clockings) through an
  :class:`~repro.sta.eco.ECOSession` and, **after every single edit**,
  holds the session's incrementally-maintained state bit-identical to a
  from-scratch :func:`~repro.sta.slack.analyze_slack` — every slack array
  byte-for-byte, the running worst slacks, and the warm-started minimum
  feasible period in both modes.  Scripts deliberately include edits that
  *relax* the current worst edge, exercising the lazy argmin rescan.

* ``differential-tiles`` composes R x C abutted-tile arrays and holds
  :func:`~repro.sta.tiles.stitched_analysis` (prototype-tile cache +
  boundary stitching) equal — floats and counts, no tolerance — to
  :func:`~repro.sta.tiles.flat_summary` over the same design, on a cold
  and a warm cache and across periods.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

from repro.check.registry import REGISTRY, CheckContext, require
from repro.geometry.point import Point
from repro.sta.design import random_design
from repro.sta.eco import ECOSession
from repro.sta.slack import analyze_slack, minimum_feasible_period
from repro.sta.tiles import (
    TileSpec,
    compose_design,
    flat_summary,
    stitched_analysis,
    tile_cache_clear,
)

_ARRAYS = (
    "lag",
    "sigma_ub",
    "sigma_lb",
    "offset_lead",
    "setup_exact",
    "hold_exact",
    "setup_bound",
    "hold_bound",
)


def assert_session_matches_oracle(
    session: ECOSession, context: Dict[str, Any]
) -> None:
    """Bitwise incremental-vs-full comparison after one edit."""
    full = analyze_slack(session.design)
    incremental = session.analysis()
    require(
        incremental.edges == full.edges,
        "ECO session edge order diverged from the oracle",
        **context,
    )
    for name in _ARRAYS:
        ours = getattr(incremental, name)
        theirs = getattr(full, name)
        require(
            ours.tobytes() == theirs.tobytes(),
            f"ECO incremental array {name!r} is not bit-identical to "
            "a full analyze_slack",
            array=name,
            max_abs_diff=float(abs(ours - theirs).max()) if len(ours) else 0.0,
            **context,
        )
    require(
        session.worst_setup_slack() == full.worst_setup_slack
        and session.worst_hold_slack() == full.worst_hold_slack,
        "ECO running extrema diverged from the oracle",
        incremental=(session.worst_setup_slack(), session.worst_hold_slack()),
        full=(full.worst_setup_slack, full.worst_hold_slack),
        **context,
    )
    for mode in ("exact", "bound"):
        ours_t = session.minimum_feasible_period(mode)
        theirs_t = minimum_feasible_period(session.design, mode)
        require(
            ours_t == theirs_t,
            f"ECO minimum feasible period ({mode}) diverged from the oracle",
            mode=mode,
            incremental=ours_t,
            full=theirs_t,
            **context,
        )


def random_edit(
    rng: random.Random, session: ECOSession, graft_serial: List[int]
) -> Dict[str, Any]:
    """Draw one random edit, apply it, and return its descriptor.

    The distribution is biased toward single-row edits (the common ECO),
    with occasional structural ops; ~1 in 6 single-row edits targets the
    *current worst* setup edge and relaxes it, forcing the lazy extremum
    trackers through their un-dirty-the-champion path.
    """
    design = session.design
    edges = design.edges()
    op = rng.choice(
        ["repad_edge", "repad_edge", "retarget_wire", "retarget_wire",
         "resize_buffer", "resize_buffer", "graft_subtree", "set_period"]
    )
    if op in ("repad_edge", "retarget_wire"):
        if rng.random() < 1 / 3:
            analysis = analyze_slack(design)
            edge = analysis.edges[int(analysis.setup_exact.argmin())]
            relax = True
        else:
            edge = rng.choice(edges)
            relax = False
        if op == "repad_edge":
            # relax: drop the pad (possibly to zero) on the worst edge
            pad = 0.0 if (relax and rng.random() < 0.5) else rng.uniform(0.0, 0.6)
            session.repad_edge(edge, pad)
            return {"op": op, "edge": edge, "pad": pad}
        length = rng.uniform(0.0, 0.5 if relax else 4.0)
        session.retarget_wire(edge, length)
        return {"op": op, "edge": edge, "length": length}
    tree = design.tree
    if op == "resize_buffer":
        node = rng.choice(tree.dense_store.nodes[1:])
        length = rng.uniform(0.0, 5.0)
        session.resize_buffer(node, length)
        return {"op": op, "node": node, "length": length}
    if op == "graft_subtree":
        # CLK is a binary tree (A4): graft only under nodes with fanout < 2
        open_nodes = [
            n for n in tree.dense_store.nodes if len(tree.children(n)) < 2
        ]
        parent = rng.choice(open_nodes)
        additions = []
        for _ in range(rng.randint(1, 3)):
            graft_serial[0] += 1
            node = ("eco-graft", graft_serial[0])
            additions.append(
                (
                    parent,
                    node,
                    Point(rng.uniform(-4.0, 4.0), rng.uniform(-4.0, 4.0)),
                    rng.uniform(0.1, 3.0),
                )
            )
            parent = node  # grow a short chain, not just leaves
        session.graft_subtree(additions)
        return {"op": op, "count": len(additions)}
    period = design.period * rng.uniform(0.5, 1.6)
    session.set_period(period)
    return {"op": op, "period": period}


@REGISTRY.register(
    "differential-eco",
    "differential",
    "incremental ECO re-analysis is bit-identical to full analyze_slack "
    "after every edit of randomized scripts",
)
def check_differential_eco(ctx: CheckContext) -> Dict[str, Any]:
    n_designs = 8 if ctx.full else 3
    n_edits = 30 if ctx.full else 12
    rng = ctx.rng("differential-eco")
    total_edits = 0
    total_dirty = 0
    total_rows = 0
    for k in range(n_designs):
        design = random_design(seed=rng.randrange(2**31))
        session = ECOSession(design)
        graft_serial = [0]
        for step in range(n_edits):
            descriptor = random_edit(rng, session, graft_serial)
            assert_session_matches_oracle(
                session,
                {"design_index": k, "step": step, "edit": repr(descriptor)},
            )
        edits = session.edits
        total_edits += len(edits)
        total_dirty += sum(e.dirty_rows for e in edits)
        total_rows += sum(e.edges for e in edits)
    return {
        "designs": n_designs,
        "edits": total_edits,
        "dirty_rows": total_dirty,
        "reuse_fraction": 1.0 - total_dirty / total_rows if total_rows else 1.0,
    }


@REGISTRY.register(
    "differential-tiles",
    "differential",
    "tiled-by-abutment analysis stitched from cached tile summaries "
    "equals the flat analysis exactly",
)
def check_differential_tiles(ctx: CheckContext) -> Dict[str, Any]:
    configs = (
        [(4, 4, 4, 4), (4, 4, 8, 8), (2, 8, 8, 8)]
        if ctx.full
        else [(4, 4, 4, 4), (2, 2, 4, 4)]
    )
    tile_cache_clear()
    checked = 0
    cells_max = 0
    for tiles_rows, tiles_cols, tile_rows, tile_cols in configs:
        spec = TileSpec(rows=tile_rows, cols=tile_cols, m=1.0, eps=0.1, delta=1.0)
        base = float(
            2 * (tiles_rows * tile_rows + tiles_cols * tile_cols)
        )
        for scale, label in ((1.0, "cold"), (0.5, "warm"), (2.5, "warm")):
            period = base * scale
            design = compose_design(spec, tiles_rows, tiles_cols, period)
            flat = flat_summary(design)
            stitched = stitched_analysis(
                spec, tiles_rows, tiles_cols, period, design=design
            )
            require(
                stitched == flat,
                "stitched tile analysis diverged from the flat analysis",
                grid=(tiles_rows, tiles_cols),
                tile=(tile_rows, tile_cols),
                period=period,
                cache=label,
                stitched=repr(stitched),
                flat=repr(flat),
            )
            checked += 1
        cells_max = max(
            cells_max, tiles_rows * tiles_cols * tile_rows * tile_cols
        )
    return {"configurations": len(configs), "comparisons": checked,
            "largest_cells": cells_max}
