"""The ``sta-soundness`` oracle: static verdicts vs the clocked simulator.

The static analyzer (:mod:`repro.sta`) claims a *soundness contract*:

1. a ``clean`` verdict implies the clocked simulator runs violation-free
   (static-clean => simulated-clean), and
2. every simulator-observed violation edge has non-positive static slack
   (it appears in the analyzer's stale or race set).

This check enforces both directions on a fleet of randomized designs —
half certified-safe by construction, half deliberately stressed — plus
three cheap internal consistency claims along the way:

* the analyzer's per-edge lag arithmetic agrees *exactly* with the
  simulator's own (:meth:`ClockedArraySimulator.edge_lags`), so the two
  sides cannot drift apart silently;
* the monotone-bisection minimum feasible period matches the closed-form
  algebraic oracle;
* the emitted report is schema-valid
  (:data:`repro.obs.schema.STA_REPORT_SCHEMA` + cross-field rules).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.check.registry import REGISTRY, CheckContext, require
from repro.obs.schema import validate_sta_report
from repro.sta.analyzer import STAAnalyzer
from repro.sta.design import random_design
from repro.sta.slack import (
    minimum_feasible_period,
    minimum_feasible_period_closed_form,
)

#: Designs checked per suite; the issue's acceptance gate demands >= 50
#: in the quick suite.
QUICK_DESIGNS = 50
FULL_DESIGNS = 120


@REGISTRY.register(
    "sta-soundness",
    "differential",
    "static analyzer verdicts bracket the clocked simulator on randomized designs",
)
def check_sta_soundness(ctx: CheckContext) -> Dict[str, Any]:
    n_designs = FULL_DESIGNS if ctx.full else QUICK_DESIGNS
    base = ctx.rng("sta-soundness").randrange(1 << 30)
    n_clean = 0
    n_dirty = 0
    n_sim_violations = 0
    for i in range(n_designs):
        seed = base + i
        # Alternate certified-safe and stressed constructions so both
        # contract directions are exercised on every run.
        design = random_design(seed, clean=(i % 2 == 0))
        analyzer = STAAnalyzer(design)
        analysis = analyzer.slack()
        report = analyzer.report()

        schema_errors = validate_sta_report(report.to_dict())
        require(
            not schema_errors,
            f"design {design.name} (seed {seed}): report fails schema",
            errors=schema_errors[:5],
        )

        bisect = minimum_feasible_period(design, mode="exact")
        closed = minimum_feasible_period_closed_form(design, mode="exact")
        require(
            abs(bisect - closed) <= 1e-6 * max(1.0, closed),
            f"design {design.name} (seed {seed}): bisection disagrees with "
            "the closed-form minimum feasible period",
            bisect=bisect,
            closed_form=closed,
        )

        simulator = design.simulator()
        sim_lags = simulator.edge_lags()
        for edge in design.edges():
            require(
                sim_lags[edge] == design.edge_lag(edge),
                f"design {design.name} (seed {seed}): analyzer and simulator "
                f"disagree on the lag of edge {edge!r}",
                analyzer_lag=design.edge_lag(edge),
                simulator_lag=sim_lags[edge],
            )

        result = simulator.run()
        violated = {v.edge for v in result.violations}
        n_sim_violations += len(result.violations)

        if report.passed:
            n_clean += 1
            require(
                not violated,
                f"design {design.name} (seed {seed}): static verdict is "
                "clean but the simulator observed violations",
                violations=len(result.violations),
                edges=[str(e) for e in sorted(violated, key=str)[:5]],
            )
        else:
            n_dirty += 1

        flagged = set(analysis.stale_edges()) | set(analysis.race_edges())
        unexplained = violated - flagged
        require(
            not unexplained,
            f"design {design.name} (seed {seed}): simulator violations on "
            "edges the static analyzer left with positive slack",
            unexplained=[str(e) for e in sorted(unexplained, key=str)[:5]],
            flagged=len(flagged),
            violated=len(violated),
        )

    return {
        "designs": n_designs,
        "clean_verdicts": n_clean,
        "dirty_verdicts": n_dirty,
        "simulated_violations": n_sim_violations,
    }
