"""Differential oracles: one workload, four independent execution paths.

"Correctly synchronized" has a functional definition in this repo: a
skew-aware (or self-timed, or hybrid) run of a systolic program produces
exactly what the ideal lockstep interpreter produces.  These checks run
each workload through

* the **lockstep executor** (``SystolicProgram.run_lockstep``) — the A1
  reference semantics;
* the **clocked simulator** on a buffered serpentine clock, hold-fixed by
  :func:`repro.core.padding.plan_safe_clocking` and run above the minimum
  safe period — must be violation-free and lockstep-equal;
* the **self-timed dataflow simulator** with deterministic two-speed
  service times — must be lockstep-equal, and its engine-driven makespan
  must land exactly on the tandem recurrence computed directly;
* the **hybrid executor** (Section VI) — must be lockstep-equal with its
  cross-element dependency guarantee verified.

Violation-count consistency rides along: the clean run reports zero
violations, a run at half the safe period reports more than zero, and
:func:`repro.sim.faults.summarize_violations` totals must agree with the
raw violation list — on both the unpadded serpentine (setup failures) and
the hold-padded, wave-pipelined one (finite-channel overflows, via the
capacity-aware safe period).  ``differential-backpressure`` extends the
self-timed leg to finite channel capacities: the event-driven engine, the
scalar bounded recurrence, and the compiled marked-graph kernel must agree
exactly at every capacity — uniform depths and heterogeneous per-edge maps
alike — and ``capacity >= waves`` must be bit-identical to the unbounded
model.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple

from repro.arrays.systolic import (
    SystolicProgram,
    build_fir_array,
    build_matvec_array,
    build_mesh_matmul,
    build_odd_even_sorter,
)
from repro.clocktree.builders import serpentine_clock
from repro.clocktree.buffered import BufferedClockTree
from repro.core.padding import plan_safe_clocking
from repro.delay.variation import BoundedUniformVariation
from repro.check.registry import REGISTRY, CheckContext, require
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import ClockedArraySimulator
from repro.sim.dataflow import SelfTimedProgramSimulator, hashed_service
from repro.sim.faults import summarize_violations
from repro.sim.hybrid_exec import execute_program_hybrid

TOL = 1e-9


def _values_equal(a: Any, b: Any) -> bool:
    """Structural equality with float tolerance (the simulators perform the
    identical per-cell arithmetic, so agreement is expected to be exact;
    the tolerance only absorbs representation noise)."""
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _values_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, float) or isinstance(b, float):
        return math.isclose(float(a), float(b), rel_tol=1e-12, abs_tol=1e-12)
    return a == b


def _workloads(ctx: CheckContext) -> List[Tuple[str, SystolicProgram]]:
    rng = ctx.rng("differential-workloads")
    weights = [rng.uniform(-1.0, 1.0) for _ in range(4)]
    xs = [rng.uniform(-2.0, 2.0) for _ in range(8)]
    matrix = [[rng.uniform(-1.0, 1.0) for _ in range(4)] for _ in range(4)]
    vec = [rng.uniform(-1.0, 1.0) for _ in range(4)]
    values = [rng.uniform(-10.0, 10.0) for _ in range(8)]
    programs = [
        ("fir", build_fir_array(weights, xs)),
        ("matvec", build_matvec_array(matrix, vec)),
        ("sorter", build_odd_even_sorter(values)),
    ]
    if ctx.full:
        a = [[rng.uniform(-1.0, 1.0) for _ in range(4)] for _ in range(4)]
        b = [[rng.uniform(-1.0, 1.0) for _ in range(4)] for _ in range(4)]
        programs.append(("matmul", build_mesh_matmul(a, b)))
    return programs


def _clocked_setup(program: SystolicProgram, seed: int, delta: float):
    """Hold-fixed clocked simulator above its minimum safe period, plus the
    ingredients to rebuild it at other periods."""
    tree = serpentine_clock(program.array)
    buffered = BufferedClockTree(
        tree,
        buffer_spacing=1.0,
        wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.1, seed=seed),
    )
    cells = program.array.comm.nodes()
    probe = ClockSchedule.from_buffered_tree(buffered, 1.0, cells)
    plan = plan_safe_clocking(program.array, probe, delta=delta)
    return buffered, cells, plan


@REGISTRY.register(
    "differential-functional",
    "differential",
    "lockstep, clocked (hold-fixed, safe period), self-timed dataflow, and "
    "hybrid execution all compute the same result",
)
def check_differential_functional(ctx: CheckContext) -> Dict[str, Any]:
    delta = 1.0
    checked = []
    for name, program in _workloads(ctx):
        reference = program.run_lockstep()

        # Clocked, above the safe period with hold padding applied.
        buffered, cells, plan = _clocked_setup(program, ctx.seed, delta)
        period = plan.min_safe_period * 1.05 + 1e-6
        schedule = ClockSchedule.from_buffered_tree(buffered, period, cells)
        sim = ClockedArraySimulator(
            program, schedule, delta=delta, edge_padding=plan.padding
        )
        require(not sim.hold_hazards(),
                f"{name}: hold hazards survived the padding plan",
                workload=name, padded_edges=plan.padded_edges)
        clocked = sim.run()
        require(clocked.clean,
                f"{name}: clocked run above the safe period had violations",
                workload=name, violations=len(clocked.violations),
                period=period, min_safe_period=plan.min_safe_period)
        require(_values_equal(clocked.result, reference),
                f"{name}: clocked result diverged from lockstep",
                workload=name, clocked=repr(clocked.result),
                lockstep=repr(reference))

        # Self-timed dataflow with irregular (two-speed) service times.
        selftimed = SelfTimedProgramSimulator(
            program,
            service=hashed_service(1.0, 3.0, 0.2, seed=ctx.seed),
            wire_delay=0.25,
        )
        df = selftimed.run()
        require(_values_equal(df.result, reference),
                f"{name}: self-timed result diverged from lockstep",
                workload=name, selftimed=repr(df.result),
                lockstep=repr(reference))
        require(df.events_processed > 0,
                f"{name}: self-timed run processed no events",
                workload=name)

        # Hybrid (Section VI): lockstep-equal with verified dependencies.
        hybrid = execute_program_hybrid(program, element_size=3.0, delta=delta)
        require(_values_equal(hybrid.result, reference),
                f"{name}: hybrid result diverged from lockstep",
                workload=name, hybrid=repr(hybrid.result),
                lockstep=repr(reference))
        require(hybrid.verify_dependencies(),
                f"{name}: hybrid cross-element dependency check failed",
                workload=name)
        checked.append(name)
    return {"workloads": checked}


@REGISTRY.register(
    "differential-timing",
    "differential",
    "the engine-driven self-timed makespan equals the tandem recurrence "
    "computed directly, under constant and irregular service times",
)
def check_differential_timing(ctx: CheckContext) -> Dict[str, Any]:
    services = [
        ("constant", None),  # default constant_service(1.0)
        ("two-speed", hashed_service(1.0, 4.0, 0.3, seed=ctx.seed)),
    ]
    rows = []
    for name, program in _workloads(ctx):
        for service_name, service in services:
            sim = SelfTimedProgramSimulator(
                program, service=service, wire_delay=0.5
            )
            run = sim.run()
            expected = sim.recurrence_makespan()
            require(abs(run.makespan - expected) <= TOL,
                    f"{name}/{service_name}: engine makespan diverged from "
                    f"the tandem recurrence",
                    workload=name, service=service_name,
                    engine=run.makespan, recurrence=expected)
            rows.append({"workload": name, "service": service_name,
                         "makespan": run.makespan})
    return {"cases": rows}


@REGISTRY.register(
    "differential-compiled",
    "differential",
    "the array-compiled simulation kernels agree exactly with their "
    "scalar oracles: identical clocked payloads, violation lists (contents "
    "and order), makespans, and tandem-recurrence makespans, across clean, "
    "overdriven, and jittered schedules",
)
def check_differential_compiled(ctx: CheckContext) -> Dict[str, Any]:
    from repro.sim.dataflow import constant_service
    from repro.sim.faults import JitteredSchedule

    delta = 1.0
    cases = []
    for name, program in _workloads(ctx):
        buffered, cells, plan = _clocked_setup(program, ctx.seed, delta)
        period = plan.min_safe_period * 1.05 + 1e-6
        safe = ClockSchedule.from_buffered_tree(buffered, period, cells)
        tight = ClockSchedule.from_buffered_tree(buffered, 0.5 * period, cells)
        jittered = JitteredSchedule(safe, amplitude=0.3 * period, seed=ctx.seed)
        regimes = [
            ("clean", safe, plan.padding),
            ("overdriven", tight, None),
            ("jittered", jittered, plan.padding),
        ]
        for regime, schedule, padding in regimes:
            sim = ClockedArraySimulator(
                program, schedule, delta=delta, edge_padding=padding
            )
            compiled = sim.run()
            scalar = sim.run_scalar()
            require(repr(compiled.result) == repr(scalar.result),
                    f"{name}/{regime}: compiled payload diverged from scalar",
                    workload=name, regime=regime,
                    compiled=repr(compiled.result), scalar=repr(scalar.result))
            require(compiled.violations == scalar.violations,
                    f"{name}/{regime}: compiled violation list diverged "
                    f"(contents or order)",
                    workload=name, regime=regime,
                    compiled=len(compiled.violations),
                    scalar=len(scalar.violations))
            require(compiled.makespan == scalar.makespan
                    and compiled.ticks == scalar.ticks,
                    f"{name}/{regime}: compiled timing diverged from scalar",
                    workload=name, regime=regime,
                    compiled=[compiled.makespan, compiled.ticks],
                    scalar=[scalar.makespan, scalar.ticks])
            cases.append({"workload": name, "regime": regime,
                          "violations": len(compiled.violations)})

        for service_name, service in [
            ("constant", constant_service(1.0)),
            ("two-speed", hashed_service(1.0, 3.0, 0.25, seed=ctx.seed)),
        ]:
            selftimed = SelfTimedProgramSimulator(
                program, service=service, wire_delay=0.5
            )
            fast = selftimed.recurrence_makespan()
            slow = selftimed.recurrence_makespan_scalar()
            require(fast == slow,
                    f"{name}/{service_name}: compiled recurrence makespan "
                    f"diverged from the scalar loop",
                    workload=name, service=service_name,
                    compiled=fast, scalar=slow)
    return {"cases": cases}


@REGISTRY.register(
    "differential-violations",
    "differential",
    "violation counts are consistent on both serpentine constructions: the "
    "unpadded array is clean above its setup period and violates at half of "
    "it; the hold-padded (wave-pipelined) array has a genuine capacity-aware "
    "safe period — channels fit above it, overflow below it; "
    "summarize_violations agrees with the raw list",
)
def check_differential_violations(ctx: CheckContext) -> Dict[str, Any]:
    name, program = _workloads(ctx)[0]  # fir: linear, fast, representative
    tree = serpentine_clock(program.array)
    buffered = BufferedClockTree(
        tree,
        buffer_spacing=1.0,
        wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.1, seed=ctx.seed),
    )
    cells = program.array.comm.nodes()
    probe = ClockSchedule.from_buffered_tree(buffered, 1.0, cells)

    # --- Unpadded regression: setup-only failure mode. ------------------
    # Delta above the largest sender->receiver clock lead removes every
    # hold hazard without padding, so the minimum safe period is the
    # genuine setup requirement and halving it must produce violations.
    max_lead = max(
        abs(probe.offset(u) - probe.offset(v))
        for u, v in program.array.comm.edges()
    )
    delta = max_lead + 1.0

    safe_sim = ClockedArraySimulator(program, probe, delta=delta)
    require(not safe_sim.hold_hazards(),
            f"{name}: hold hazards despite delta above the worst clock lead",
            workload=name, delta=delta, max_lead=max_lead)
    msp = safe_sim.minimum_safe_period()

    tight = 0.5 * msp
    schedule = ClockSchedule.from_buffered_tree(buffered, tight, cells)
    run = ClockedArraySimulator(program, schedule, delta=delta).run()
    require(len(run.violations) > 0,
            f"{name}: half the safe period produced no violations",
            workload=name, period=tight, min_safe_period=msp)

    summary = summarize_violations(run.violations)
    require(summary.total == len(run.violations),
            "summary total disagrees with the raw violation list",
            summary_total=summary.total, raw=len(run.violations))
    require(summary.stale + summary.race == summary.total,
            "stale + race does not add up to the total",
            stale=summary.stale, race=summary.race, total=summary.total)
    require(sum(summary.per_cell.values()) == summary.total,
            "per-cell counts do not add up to the total",
            per_cell_sum=sum(summary.per_cell.values()), total=summary.total)
    kinds = {"stale": 0, "race": 0}
    for v in run.violations:
        kinds[v.kind] += 1
    require(kinds["stale"] == summary.stale and kinds["race"] == summary.race,
            "summary stale/race split disagrees with per-violation kinds",
            summary=[summary.stale, summary.race],
            recount=[kinds["stale"], kinds["race"]])

    # --- Hold-padded serpentine: the wave-pipelined construction. -------
    # PR 3 excluded this case as vacuous: with unbounded channels the
    # padded array's setup msp is just the guard margin.  Finite channel
    # capacities close that hole — the capacity-aware msp bounds the
    # in-flight generations per edge, so the padded construction gets a
    # genuine boundary to drive from both sides.
    pad_delta = 1.0
    pad_buffered, pad_cells, plan = _clocked_setup(program, ctx.seed, pad_delta)
    capacity = 2

    pad_probe = ClockSchedule.from_buffered_tree(pad_buffered, 1.0, pad_cells)
    pad_probe_sim = ClockedArraySimulator(
        program, pad_probe, delta=pad_delta, edge_padding=plan.padding
    )
    msp_cap = pad_probe_sim.minimum_safe_period(channel_capacity=capacity)
    require(math.isfinite(msp_cap),
            f"{name}: padded serpentine has no finite capacity-aware safe "
            f"period at capacity {capacity}",
            workload=name, capacity=capacity)
    require(msp_cap > 10.0 * plan.min_safe_period,
            f"{name}: capacity-aware safe period is not a genuine bound — "
            f"it collapsed to the hold-guard margin",
            workload=name, capacity_aware=msp_cap,
            setup_only=plan.min_safe_period)

    pad_period = msp_cap * 1.05 + 1e-6
    pad_schedule = ClockSchedule.from_buffered_tree(
        pad_buffered, pad_period, pad_cells
    )
    pad_sim = ClockedArraySimulator(
        program, pad_schedule, delta=pad_delta, edge_padding=plan.padding
    )
    pad_run = pad_sim.run()
    require(pad_run.clean,
            f"{name}: padded run above the capacity-aware period had "
            f"latch violations",
            workload=name, violations=len(pad_run.violations),
            period=pad_period)
    above_overflows = pad_sim.channel_overflows(capacity)
    require(not above_overflows,
            f"{name}: channels overflowed above the capacity-aware period",
            workload=name, capacity=capacity, period=pad_period,
            overflows=len(above_overflows))
    depths = pad_sim.channel_depths()
    require(max(depths.values()) <= capacity,
            f"{name}: peak channel depth exceeded capacity above the "
            f"capacity-aware period",
            workload=name, capacity=capacity,
            peak_depth=max(depths.values()))

    tight_period = 0.5 * msp_cap
    tight_schedule = ClockSchedule.from_buffered_tree(
        pad_buffered, tight_period, pad_cells
    )
    tight_sim = ClockedArraySimulator(
        program, tight_schedule, delta=pad_delta, edge_padding=plan.padding
    )
    below_overflows = tight_sim.channel_overflows(capacity)
    require(len(below_overflows) > 0,
            f"{name}: half the capacity-aware period overflowed no channel",
            workload=name, capacity=capacity, period=tight_period)

    return {
        "workload": name,
        "min_safe_period": msp,
        "violations_at_half_period": summary.total,
        "stale": summary.stale,
        "race": summary.race,
        "padded_capacity": capacity,
        "padded_capacity_aware_msp": msp_cap,
        "padded_peak_depth": max(depths.values()),
        "padded_overflows_at_half_period": len(below_overflows),
    }


@REGISTRY.register(
    "differential-backpressure",
    "differential",
    "under finite channel capacities the event-driven engine, the scalar "
    "bounded recurrence, and the compiled marked-graph kernel agree exactly; "
    "results stay lockstep-equal, capacity >= waves is bit-identical to "
    "unbounded, and a zero-token cycle deadlocks eagerly",
)
def check_differential_backpressure(ctx: CheckContext) -> Dict[str, Any]:
    from repro.sim.dataflow import ChannelDeadlockError

    rows = []
    for name, program in _workloads(ctx):
        reference = program.run_lockstep()
        service = hashed_service(1.0, 3.0, 0.25, seed=ctx.seed)
        unbounded = SelfTimedProgramSimulator(
            program, service=service, wire_delay=0.5
        )
        unbounded_run = unbounded.run()
        cyclic = not program.array.comm.is_acyclic()

        if cyclic:
            # A cyclic COMM graph at capacity 1 is a zero-token marked-graph
            # cycle: every construction path must refuse it eagerly.
            try:
                SelfTimedProgramSimulator(
                    program, service=service, wire_delay=0.5,
                    channel_capacity=1,
                )
            except ChannelDeadlockError:
                pass
            else:
                require(False,
                        f"{name}: capacity 1 on a cyclic COMM graph did not "
                        f"deadlock",
                        workload=name)

        capacities = [2, 4] if cyclic else [1, 2, 4]
        prev_makespan = None
        for cap in capacities:
            sim = SelfTimedProgramSimulator(
                program, service=service, wire_delay=0.5,
                channel_capacity=cap,
            )
            run = sim.run()
            recurrence = sim.recurrence_makespan()
            scalar = sim.recurrence_makespan_scalar()
            require(run.makespan == recurrence == scalar,
                    f"{name}/cap={cap}: the three execution paths diverged",
                    workload=name, capacity=cap, engine=run.makespan,
                    compiled=recurrence, scalar=scalar)
            require(_values_equal(run.result, reference),
                    f"{name}/cap={cap}: bounded-channel result diverged "
                    f"from lockstep",
                    workload=name, capacity=cap,
                    bounded=repr(run.result), lockstep=repr(reference))
            require(run.makespan >= unbounded_run.makespan - TOL,
                    f"{name}/cap={cap}: backpressure made the run faster "
                    f"than unbounded",
                    workload=name, capacity=cap, bounded=run.makespan,
                    unbounded=unbounded_run.makespan)
            require(run.max_occupancy is not None
                    and run.max_occupancy <= cap,
                    f"{name}/cap={cap}: engine occupancy exceeded capacity",
                    workload=name, capacity=cap,
                    max_occupancy=run.max_occupancy)
            if prev_makespan is not None:
                require(run.makespan <= prev_makespan + TOL,
                        f"{name}: makespan not monotone non-increasing "
                        f"in capacity",
                        workload=name, capacity=cap,
                        makespan=run.makespan, previous=prev_makespan)
            prev_makespan = run.makespan
            rows.append({"workload": name, "capacity": cap,
                         "makespan": run.makespan,
                         "max_occupancy": run.max_occupancy})

        # Heterogeneous per-edge depths: the three execution paths must
        # stay lockstep on arbitrary capacity maps, and the map must be
        # bracketed by its tightest and widest uniform depths.
        rng = ctx.rng(f"backpressure-map|{name}")
        lo = 2 if cyclic else 1
        cap_map = {
            edge: rng.randint(lo, 4)
            for edge in program.array.comm.edges()
        }
        mapped = SelfTimedProgramSimulator(
            program, service=service, wire_delay=0.5,
            channel_capacity=cap_map,
        )
        mapped_run = mapped.run()
        mapped_compiled = mapped.recurrence_makespan()
        mapped_scalar = mapped.recurrence_makespan_scalar()
        require(mapped_run.makespan == mapped_compiled == mapped_scalar,
                f"{name}/per-edge: the three execution paths diverged",
                workload=name, capacities=repr(cap_map),
                engine=mapped_run.makespan, compiled=mapped_compiled,
                scalar=mapped_scalar)
        require(_values_equal(mapped_run.result, reference),
                f"{name}/per-edge: capacity-map result diverged from "
                f"lockstep",
                workload=name, capacities=repr(cap_map))
        tight = SelfTimedProgramSimulator(
            program, service=service, wire_delay=0.5,
            channel_capacity=min(cap_map.values()),
        ).run()
        wide_uniform = SelfTimedProgramSimulator(
            program, service=service, wire_delay=0.5,
            channel_capacity=max(cap_map.values()),
        ).run()
        require(
            wide_uniform.makespan - TOL <= mapped_run.makespan
            <= tight.makespan + TOL,
            f"{name}/per-edge: map makespan outside its uniform bracket",
            workload=name, capacities=repr(cap_map),
            mapped=mapped_run.makespan, tight=tight.makespan,
            wide=wide_uniform.makespan)
        rows.append({"workload": name, "capacity": repr(cap_map),
                     "makespan": mapped_run.makespan,
                     "max_occupancy": mapped_run.max_occupancy})

        # Capacity at least the wave count never binds: bit-identical to
        # the unbounded model, makespan and per-cell finish times alike.
        wide = SelfTimedProgramSimulator(
            program, service=service, wire_delay=0.5,
            channel_capacity=program.cycles,
        )
        wide_run = wide.run()
        require(wide_run.makespan == unbounded_run.makespan,
                f"{name}: capacity >= waves changed the makespan",
                workload=name, capacity=program.cycles,
                wide=wide_run.makespan, unbounded=unbounded_run.makespan)
        require(wide_run.finish_times == unbounded_run.finish_times,
                f"{name}: capacity >= waves changed per-cell finish times",
                workload=name, capacity=program.cycles)
        require(wide.recurrence_makespan() == unbounded.recurrence_makespan(),
                f"{name}: compiled wide-capacity recurrence diverged from "
                f"unbounded",
                workload=name, capacity=program.cycles)
    return {"cases": rows}
