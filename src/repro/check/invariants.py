"""Invariant oracles: the paper's quantitative claims, checked end to end.

Each check builds concrete arrays/trees/schedules and asserts a claim the
paper derives:

* ``skew-bracket``     — Section III: measured ``BufferedClockTree`` skew
  sits inside the analytic per-pair bracket, and the model-level bracket
  ``eps*s <= sigma <= (m+eps)*s`` holds around the physical model.
* ``a5-period``        — A5: running a real workload at period
  ``sigma + delta + tau`` is violation-free and functionally lockstep;
  running well below the minimum safe period is not.
* ``theorem-scaling``  — Theorems 2/3 keep sigma flat under array scaling;
  the Fig. 3(a) dissection tree grows linearly; Theorem 6's bisection
  floor holds on meshes (full suite).
* ``tuning-monotonicity`` — tuning drives the difference metric ``d`` to 0
  for every pair and never decreases the summation metric ``s``.
* ``lower-bound-consistency`` — the executed Section V-B certificate is
  internally consistent and agrees with :func:`repro.core.models.
  max_skew_lower_bound` and the tree-independent floor.
* ``capacity-monotonicity`` — finite self-timed channel capacities only
  ever slow a run down: makespan is monotone non-increasing in capacity,
  and capacity at least the wave count is bit-identical to unbounded.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, List, Tuple

from repro.arrays.systolic import build_fir_array
from repro.arrays.topologies import linear_array, mesh
from repro.clocktree.builders import kdtree_clock, serpentine_clock
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.htree import htree_for_array
from repro.clocktree.spine import spine_clock
from repro.clocktree.tree import ClockTree
from repro.clocktree.tuning import tune_to_equidistant
from repro.core.lower_bound import lower_bound_value, prove_skew_lower_bound
from repro.core.models import (
    DifferenceModel,
    PhysicalModel,
    SummationModel,
    max_skew_bound,
    max_skew_lower_bound,
)
from repro.core.parameters import ClockParameters
from repro.core.theorems import (
    fig3a_counterexample_sweep,
    theorem2_sweep,
    theorem3_sweep,
    theorem6_sweep,
)
from repro.delay.buffer import InverterPairModel
from repro.delay.variation import BoundedUniformVariation
from repro.check.registry import REGISTRY, CheckContext, require
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import ClockedArraySimulator

NodeId = Hashable

TOL = 1e-9


def _segments_to_ancestor(
    tree: ClockTree, node: NodeId, ancestor: NodeId, spacing: float
) -> int:
    """Buffer/segment count on the tree path from ``node`` up to
    ``ancestor``, mirroring ``BufferedClockTree._edge_delay`` exactly:
    a zero-length edge gets no buffer, otherwise ``ceil(length / spacing)``
    with the same 1e-12 tolerance."""
    count = 0
    while node != ancestor:
        length = tree.edge_length(node)
        if length > 0:
            count += max(1, math.ceil(length / spacing - 1e-12))
        node = tree.parent(node)
    return count


def _pair_bracket(
    tree: ClockTree,
    a: NodeId,
    b: NodeId,
    m: float,
    eps: float,
    spacing: float,
    buffer_delay: float,
) -> Tuple[float, float]:
    """Analytic (lower, upper) bracket on the skew between ``a`` and ``b``
    for per-unit wire delay in ``[m - eps, m + eps]`` plus a deterministic
    ``buffer_delay`` per segment.

    Only the paths below the LCA contribute (the shared prefix cancels):
    with ``h_a``/``h_b`` the wire lengths and ``n_a``/``n_b`` the segment
    counts below the LCA, the arrival difference lies in
    ``[(m-eps)*h_a - (m+eps)*h_b + D, (m+eps)*h_a - (m-eps)*h_b + D]``
    where ``D = buffer_delay * (n_a - n_b)``; the skew (its absolute
    value) is bracketed by maximizing over both orientations.
    """
    lca = tree.lca(a, b)
    h_a = tree.root_distance(a) - tree.root_distance(lca)
    h_b = tree.root_distance(b) - tree.root_distance(lca)
    n_a = _segments_to_ancestor(tree, a, lca, spacing)
    n_b = _segments_to_ancestor(tree, b, lca, spacing)

    def spread(hx: float, nx: int, hy: float, ny: int) -> Tuple[float, float]:
        low = (m - eps) * hx + buffer_delay * nx - ((m + eps) * hy + buffer_delay * ny)
        high = (m + eps) * hx + buffer_delay * nx - ((m - eps) * hy + buffer_delay * ny)
        return low, high

    lo_ab, hi_ab = spread(h_a, n_a, h_b, n_b)
    lo_ba, hi_ba = spread(h_b, n_b, h_a, n_a)
    upper = max(hi_ab, hi_ba, 0.0)
    # |x| for x in [lo, hi]: the minimum is 0 unless the interval excludes 0.
    lower = max(lo_ab, lo_ba, 0.0)
    return lower, upper


@REGISTRY.register(
    "skew-bracket",
    "invariant",
    "measured buffered-tree skew lies in the Section III bracket "
    "eps*s <= sigma <= (m+eps)*s (plus deterministic buffer terms)",
)
def check_skew_bracket(ctx: CheckContext) -> Dict[str, Any]:
    m, eps, spacing, buffer_delay = 1.0, 0.1, 1.0, 0.25
    cases = [("serpentine-mesh-5", serpentine_clock(mesh(5, 5)), mesh(5, 5))]
    if ctx.full:
        cases.append(("spine-linear-32", spine_clock(linear_array(32)), linear_array(32)))
        cases.append(("kdtree-mesh-8", kdtree_clock(mesh(8, 8)), mesh(8, 8)))
    pairs_checked = 0
    worst_measured = 0.0
    for label, tree, array in cases:
        buffered = BufferedClockTree(
            tree,
            buffer_spacing=spacing,
            wire_variation=BoundedUniformVariation(m=m, epsilon=eps, seed=ctx.seed),
            buffer_model=InverterPairModel(nominal=buffer_delay),
        )
        pairs = array.communicating_pairs()
        for a, b in pairs:
            lower, upper = _pair_bracket(tree, a, b, m, eps, spacing, buffer_delay)
            measured = buffered.skew(a, b)
            require(
                lower - TOL <= measured <= upper + TOL,
                f"{label}: measured skew outside analytic bracket",
                case=label, pair=[repr(a), repr(b)],
                measured=measured, lower=lower, upper=upper,
            )
            worst_measured = max(worst_measured, measured)
            pairs_checked += 1
        # Model-level bracket around the physical model's sigma.
        phys = PhysicalModel(m=m, eps=eps)
        sigma = max_skew_bound(tree, pairs, phys)
        floor = max_skew_lower_bound(tree, pairs, phys)
        ceiling = max_skew_bound(tree, pairs, SummationModel(m=m, eps=eps))
        require(
            floor - TOL <= sigma <= ceiling + TOL,
            f"{label}: physical-model sigma escapes eps*s..(m+eps)*s",
            case=label, sigma=sigma, floor=floor, ceiling=ceiling,
        )
    return {"pairs_checked": pairs_checked, "worst_measured_skew": worst_measured}


@REGISTRY.register(
    "a5-period",
    "invariant",
    "running at the A5 period sigma+delta+tau is clean and lockstep-equal; "
    "running far below the minimum safe period is not",
)
def check_a5_period(ctx: CheckContext) -> Dict[str, Any]:
    rng = ctx.rng("a5-period")
    taps = 5 if ctx.full else 3
    weights = [rng.uniform(-1.0, 1.0) for _ in range(taps)]
    xs = [rng.uniform(-2.0, 2.0) for _ in range(8)]
    program = build_fir_array(weights, xs)
    reference = program.run_lockstep()

    layout = program.array.layout
    order = sorted(
        program.array.comm.nodes(), key=lambda c: (layout[c].x, layout[c].y)
    )
    tree = spine_clock(program.array, order=order)
    buffered = BufferedClockTree(
        tree,
        buffer_spacing=1.0,
        wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.05, seed=ctx.seed),
    )
    cells = program.array.comm.nodes()
    pairs = program.array.communicating_pairs()
    sigma = buffered.max_skew(pairs)
    # A sender's clock can lead its receiver's by at most sigma, so any
    # delta above sigma leaves no hold hazards — the A5 period argument is
    # purely about the setup side.
    delta = sigma + 1.0
    tau = buffered.tau()
    period = ClockParameters(sigma=sigma, delta=delta, tau=tau).period

    schedule = ClockSchedule.from_buffered_tree(buffered, period, cells)
    sim = ClockedArraySimulator(program, schedule, delta=delta)
    require(
        not sim.hold_hazards(),
        "spine schedule has hold hazards; the A5 setup argument needs none",
        sigma=sigma, delta=delta,
    )
    msp = sim.minimum_safe_period()
    require(
        period + TOL >= msp,
        "A5 period sigma+delta+tau fell below the minimum safe period",
        period=period, minimum_safe_period=msp,
        sigma=sigma, delta=delta, tau=tau,
    )
    run = sim.run()
    require(run.clean, "run at the A5 period produced timing violations",
            violations=len(run.violations), period=period)
    require(run.result == reference,
            "clocked result at the A5 period diverged from lockstep",
            period=period)

    # The converse: well below the safe period, stale reads must appear.
    bad_period = 0.5 * msp
    bad_schedule = ClockSchedule.from_buffered_tree(buffered, bad_period, cells)
    bad_run = ClockedArraySimulator(program, bad_schedule, delta=delta).run()
    require(
        len(bad_run.violations) > 0,
        "running at half the minimum safe period produced no violations",
        bad_period=bad_period, minimum_safe_period=msp,
    )
    return {
        "sigma": sigma, "tau": tau, "period": period,
        "minimum_safe_period": msp,
        "violations_below_period": len(bad_run.violations),
    }


@REGISTRY.register(
    "theorem-scaling",
    "invariant",
    "Theorems 2/3: sigma stays flat under array scaling; Fig. 3(a) grows "
    "linearly; Theorem 6's floor holds (full suite)",
)
def check_theorem_scaling(ctx: CheckContext) -> Dict[str, Any]:
    t2_sizes = [2, 4, 8] if ctx.full else [2, 4]
    t2 = theorem2_sweep(t2_sizes, topology="mesh")
    for rec in t2:
        require(abs(rec.sigma) <= TOL,
                "Theorem 2: H-tree sigma is nonzero under the difference model",
                size=rec.size, sigma=rec.sigma)
    periods = [rec.period for rec in t2]
    require(max(periods) - min(periods) <= TOL,
            "Theorem 2: period varies with array size",
            periods=periods)

    t3_sizes = [4, 8, 16, 32] if ctx.full else [4, 8, 16]
    t3 = theorem3_sweep(t3_sizes, m=1.0, eps=0.1, spacing=1.0)
    expected = (1.0 + 0.1) * 1.0  # g(spacing) = (m + eps) * spacing
    for rec in t3:
        require(abs(rec.sigma - expected) <= TOL,
                "Theorem 3: spine sigma is not the constant g(spacing)",
                size=rec.size, sigma=rec.sigma, expected=expected)

    fig3a_sizes = [8, 16, 32]
    fig3a = fig3a_counterexample_sweep(fig3a_sizes, m=1.0, eps=0.1)
    sigmas = [rec.sigma for rec in fig3a]
    require(all(b > a + TOL for a, b in zip(sigmas, sigmas[1:])),
            "Fig. 3(a): dissection-tree sigma is not strictly increasing",
            sigmas=sigmas)
    ratio = sigmas[-1] / sigmas[0]
    require(ratio > 2.0,
            "Fig. 3(a): dissection-tree sigma grows slower than linearly",
            sigmas=sigmas, ratio=ratio)

    details: Dict[str, Any] = {
        "t2_periods": periods,
        "t3_sigma": expected,
        "fig3a_sigmas": sigmas,
    }
    if ctx.full:
        for rec in theorem6_sweep([4, 6], families=["mesh"], beta=0.1):
            floor = float(rec.extra["theorem6_floor"])
            require(rec.sigma + TOL >= floor,
                    "Theorem 6: best-scheme sigma fell below the bisection floor",
                    size=rec.size, sigma=rec.sigma, floor=floor)
        details["theorem6_checked"] = True
    return details


@REGISTRY.register(
    "tuning-monotonicity",
    "invariant",
    "delay tuning drives d to 0 for every pair and never decreases s",
)
def check_tuning_monotonicity(ctx: CheckContext) -> Dict[str, Any]:
    n = 6 if ctx.full else 4
    array = mesh(n, n)
    tree = serpentine_clock(array)
    cells = list(array.comm.nodes())
    pairs = array.communicating_pairs()

    sigma_diff_before = max_skew_bound(tree, pairs, DifferenceModel(m=1.0))
    sigma_sum_before = max_skew_bound(tree, pairs, SummationModel(m=1.0, eps=0.1))
    require(sigma_diff_before > TOL,
            "serpentine tree is already equidistant; the tuning oracle is vacuous",
            sigma=sigma_diff_before)

    tuned, added = tune_to_equidistant(tree, cells)
    require(added >= -TOL, "tuning removed wire", added=added)
    distances = [tuned.root_distance(c) for c in cells]
    require(max(distances) - min(distances) <= TOL,
            "tuned tree is not equidistant",
            spread=max(distances) - min(distances))

    sigma_diff_after = max_skew_bound(tuned, pairs, DifferenceModel(m=1.0))
    require(abs(sigma_diff_after) <= TOL,
            "tuning failed to drive the difference-model sigma to zero",
            sigma_after=sigma_diff_after)

    sigma_sum_after = max_skew_bound(tuned, pairs, SummationModel(m=1.0, eps=0.1))
    require(sigma_sum_after + TOL >= sigma_sum_before,
            "tuning decreased the summation-model sigma (s shrank)",
            before=sigma_sum_before, after=sigma_sum_after)
    for a, b in pairs:
        require(tuned.path_length(a, b) + TOL >= tree.path_length(a, b),
                "tuning shortened a connecting path (s must never decrease)",
                pair=[repr(a), repr(b)],
                before=tree.path_length(a, b), after=tuned.path_length(a, b))
    return {
        "added_wire": added,
        "sigma_diff": [sigma_diff_before, sigma_diff_after],
        "sigma_sum": [sigma_sum_before, sigma_sum_after],
    }


@REGISTRY.register(
    "lower-bound-consistency",
    "invariant",
    "the Section V-B certificate verifies and agrees with the model-level "
    "A11 floor and the tree-independent Omega(n) value",
)
def check_lower_bound_consistency(ctx: CheckContext) -> Dict[str, Any]:
    beta = 0.1
    n = 10 if ctx.full else 6
    array = mesh(n, n)
    pairs = array.communicating_pairs()
    floor = lower_bound_value(n, beta)
    builders = [
        ("htree", htree_for_array),
        ("serpentine", serpentine_clock),
        ("kdtree", kdtree_clock),
    ]
    rows: List[Dict[str, Any]] = []
    for name, builder in builders:
        tree = builder(array)
        cert = prove_skew_lower_bound(tree, array, beta=beta)
        cert.check()  # raises AssertionError on an inconsistent certificate
        model_floor = max_skew_lower_bound(
            tree, pairs, SummationModel(m=1.0, eps=beta, beta=beta)
        )
        require(abs(cert.sigma - model_floor) <= TOL,
                f"{name}: certificate sigma disagrees with the A11 model floor",
                scheme=name, cert_sigma=cert.sigma, model_floor=model_floor)
        require(cert.sigma + TOL >= cert.bound,
                f"{name}: certificate concluded a bound above its own sigma",
                scheme=name, sigma=cert.sigma, bound=cert.bound)
        require(cert.sigma + TOL >= floor,
                f"{name}: sigma fell below the tree-independent Omega(n) floor",
                scheme=name, sigma=cert.sigma, floor=floor)
        rows.append({"scheme": name, "sigma": cert.sigma,
                     "branch": cert.branch, "bound": cert.bound})
    return {"mesh_side": n, "floor": floor, "certificates": rows}


@REGISTRY.register(
    "capacity-monotonicity",
    "invariant",
    "self-timed makespan is monotone non-increasing in channel capacity, "
    "and capacity >= waves reproduces the unbounded model bit for bit",
)
def check_capacity_monotonicity(ctx: CheckContext) -> Dict[str, Any]:
    from repro.sim.dataflow import SelfTimedProgramSimulator, hashed_service

    rng = ctx.rng("capacity-monotonicity")
    weights = [rng.uniform(-1.0, 1.0) for _ in range(5)]
    xs = [rng.uniform(-2.0, 2.0) for _ in range(10)]
    program = build_fir_array(weights, xs)
    service = hashed_service(1.0, 3.0, 0.25, seed=ctx.seed)

    def sim_at(cap):
        return SelfTimedProgramSimulator(
            program, service=service, wire_delay=0.5, channel_capacity=cap
        )

    unbounded_run = sim_at(None).run()
    capacities = [1, 2, 3, program.cycles]
    makespans: List[float] = []
    prev = math.inf
    for cap in capacities:
        sim = sim_at(cap)
        run = sim.run()
        require(run.makespan == sim.recurrence_makespan()
                == sim.recurrence_makespan_scalar(),
                f"cap={cap}: engine and recurrences disagree",
                capacity=cap, engine=run.makespan,
                compiled=sim.recurrence_makespan(),
                scalar=sim.recurrence_makespan_scalar())
        require(run.makespan <= prev + TOL,
                f"cap={cap}: makespan increased with more capacity",
                capacity=cap, makespan=run.makespan, previous=prev)
        require(run.makespan + TOL >= unbounded_run.makespan,
                f"cap={cap}: bounded run beat the unbounded model",
                capacity=cap, bounded=run.makespan,
                unbounded=unbounded_run.makespan)
        prev = run.makespan
        makespans.append(run.makespan)

    wide_run = sim_at(program.cycles).run()
    require(wide_run.makespan == unbounded_run.makespan
            and wide_run.finish_times == unbounded_run.finish_times,
            "capacity >= waves is not bit-identical to unbounded",
            capacity=program.cycles, wide=wide_run.makespan,
            unbounded=unbounded_run.makespan)
    return {
        "capacities": capacities,
        "makespans": makespans,
        "unbounded": unbounded_run.makespan,
    }
