"""repro.check — cross-simulator differential checker and invariant oracles.

Entry points:

* :func:`default_registry` — the populated :class:`CheckRegistry` (imports
  the invariant/differential/metamorphic oracle modules);
* :func:`run_suite` — run a suite and get ``(results, report)`` with the
  report already schema-shaped (``repro.obs.schema.CHECK_REPORT_SCHEMA``);
* ``python -m repro check --suite quick|full [--seed N] [--json FILE]\n  [--only NAME ...]`` —
  the CLI face, wired into the ``check-suite`` CI job.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro import __version__
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.check.registry import (
    REGISTRY,
    Check,
    CheckContext,
    CheckFailure,
    CheckRegistry,
    CheckResult,
    default_registry,
    require,
)

__all__ = [
    "REGISTRY",
    "Check",
    "CheckContext",
    "CheckFailure",
    "CheckRegistry",
    "CheckResult",
    "build_report",
    "default_registry",
    "require",
    "run_suite",
]


def build_report(
    results: List[CheckResult], suite: str, seed: int
) -> Dict[str, Any]:
    """Aggregate check results into the schema-valid JSON report
    (:data:`repro.obs.schema.CHECK_REPORT_SCHEMA`)."""
    failed = sum(1 for r in results if not r.passed)
    return {
        "suite": suite,
        "seed": seed,
        "passed": failed == 0,
        "counts": {
            "total": len(results),
            "passed": len(results) - failed,
            "failed": failed,
        },
        "checks": [
            {
                "name": r.name,
                "kind": r.kind,
                "passed": r.passed,
                "duration_s": r.duration_s,
                "error": r.error,
                "details": r.details,
            }
            for r in results
        ],
        "meta": {"emitted_at": time.time(), "repro_version": __version__},
    }


def run_suite(
    suite: str = "quick",
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    names: Optional[List[str]] = None,
) -> Tuple[List[CheckResult], Dict[str, Any]]:
    """Run every check in ``suite`` (or just ``names``) and return results
    plus the report."""
    registry = default_registry()
    results = registry.run(
        suite=suite, seed=seed, tracer=tracer, metrics=metrics, names=names
    )
    return results, build_report(results, suite=suite, seed=seed)
