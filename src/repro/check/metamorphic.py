"""Metamorphic oracles: transformed inputs, invariant conclusions.

Where the invariant checks pin absolute values and the differential checks
pin cross-simulator agreement, these pin *relations*: apply a
transformation whose effect on the answer is known exactly, and assert the
answer moved exactly that way.

* ``metamorphic-rescale`` — scaling every geometric length by ``c`` scales
  ``d`` and ``s`` by ``c``, so the physical-model sigma scales exactly by
  ``c`` (the models are degree-1 homogeneous in the layout).
* ``metamorphic-jitter-seed`` — with the jitter amplitude inside the timing
  margin, the clean verdict and the functional result are invariant under
  re-seeding: which pseudo-random wobble occurs must not matter, only its
  bound (A8's breakage is bounded, not adversarial).
* ``metamorphic-relabel`` — node identities carry no physics: renaming
  every clock-tree node preserves all path metrics and sigma, and
  permuting a sorter's input order preserves its sorted output.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.arrays.systolic import build_odd_even_sorter
from repro.arrays.topologies import linear_array
from repro.clocktree.spine import spine_clock
from repro.clocktree.tree import ClockTree
from repro.core.models import PhysicalModel, max_skew_bound
from repro.check.registry import REGISTRY, CheckContext, require
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import ClockedArraySimulator
from repro.sim.faults import JitteredSchedule

TOL = 1e-9


@REGISTRY.register(
    "metamorphic-rescale",
    "metamorphic",
    "scaling the layout by c scales the physical-model sigma exactly by c",
)
def check_rescale(ctx: CheckContext) -> Dict[str, Any]:
    n = 24 if ctx.full else 12
    model = PhysicalModel(m=1.0, eps=0.1)
    base_array = linear_array(n, spacing=1.0)
    base_sigma = max_skew_bound(
        spine_clock(base_array), base_array.communicating_pairs(), model
    )
    require(base_sigma > TOL,
            "base sigma is zero; the rescale oracle is vacuous",
            sigma=base_sigma)
    scales = [0.5, 2.0, 3.0] if ctx.full else [0.5, 2.0]
    for c in scales:
        scaled_array = linear_array(n, spacing=c)
        scaled_sigma = max_skew_bound(
            spine_clock(scaled_array),
            scaled_array.communicating_pairs(),
            model,
        )
        require(abs(scaled_sigma - c * base_sigma) <= TOL * max(1.0, c),
                "sigma did not scale linearly with the layout",
                scale=c, base_sigma=base_sigma, scaled_sigma=scaled_sigma,
                expected=c * base_sigma)
    return {"base_sigma": base_sigma, "scales": scales}


@REGISTRY.register(
    "metamorphic-jitter-seed",
    "metamorphic",
    "within the timing margin, re-seeding clock jitter changes neither the "
    "clean verdict nor the functional result",
)
def check_jitter_seed(ctx: CheckContext) -> Dict[str, Any]:
    values = [float(v) for v in ctx.rng("jitter-seed").sample(range(-50, 50), 8)]
    program = build_odd_even_sorter(values)
    reference = program.run_lockstep()
    cells = program.array.comm.nodes()
    delta = 1.0
    amplitude = 0.3

    probe = ClockSchedule.ideal(cells, 1.0)
    msp = ClockedArraySimulator(program, probe, delta=delta).minimum_safe_period()
    # Setup needs period >= msp + 2*amplitude (sender late, receiver early);
    # hold needs delta + wire > 2*amplitude — both hold with margin here.
    period = msp + 2.0 * amplitude + 0.2
    require(delta > 2.0 * amplitude,
            "amplitude too large for the hold margin; bad oracle parameters",
            delta=delta, amplitude=amplitude)

    seeds = [ctx.seed + k for k in range(5 if ctx.full else 3)]
    for seed in seeds:
        base = ClockSchedule.ideal(cells, period)
        schedule = JitteredSchedule(base, amplitude=amplitude, seed=seed)
        run = ClockedArraySimulator(program, schedule, delta=delta).run()
        require(run.clean,
                "within-margin jitter produced violations for one seed",
                seed=seed, violations=len(run.violations),
                period=period, amplitude=amplitude)
        require(run.result == reference,
                "within-margin jitter changed the functional result",
                seed=seed)
    return {"seeds": seeds, "period": period, "amplitude": amplitude}


def _relabelled(tree: ClockTree):
    """A structurally identical tree with every node renamed."""
    rename = lambda node: ("relabel", node)
    copy = ClockTree(
        rename(tree.root), tree.position(tree.root), max_children=tree.max_children
    )
    for node in tree.nodes():
        if node == tree.root:
            continue
        copy.add_child(
            rename(tree.parent(node)),
            rename(node),
            tree.position(node),
            length=tree.edge_length(node),
        )
    return copy, rename


@REGISTRY.register(
    "metamorphic-relabel",
    "metamorphic",
    "renaming clock-tree nodes preserves path metrics and sigma; permuting "
    "sorter input order preserves the sorted output",
)
def check_relabel(ctx: CheckContext) -> Dict[str, Any]:
    n = 24 if ctx.full else 12
    array = linear_array(n)
    tree = spine_clock(array)
    pairs = array.communicating_pairs()
    copy, rename = _relabelled(tree)
    for a, b in pairs:
        require(
            abs(tree.path_length(a, b) - copy.path_length(rename(a), rename(b))) <= TOL,
            "relabelling changed a path length",
            pair=[repr(a), repr(b)],
        )
        require(
            abs(tree.path_difference(a, b) - copy.path_difference(rename(a), rename(b))) <= TOL,
            "relabelling changed a path difference",
            pair=[repr(a), repr(b)],
        )
    model = PhysicalModel(m=1.0, eps=0.1)
    sigma = max_skew_bound(tree, pairs, model)
    sigma_renamed = max_skew_bound(
        copy, [(rename(a), rename(b)) for a, b in pairs], model
    )
    require(abs(sigma - sigma_renamed) <= TOL,
            "relabelling changed sigma",
            sigma=sigma, renamed=sigma_renamed)

    rng = ctx.rng("relabel-sorter")
    values = [rng.uniform(-100.0, 100.0) for _ in range(8)]
    sorted_once = build_odd_even_sorter(values).run_lockstep()
    shuffled = list(values)
    rng.shuffle(shuffled)
    sorted_again = build_odd_even_sorter(shuffled).run_lockstep()
    require(sorted_once == sorted_again,
            "permuting the sorter's input changed its sorted output",
            first=sorted_once, second=sorted_again)
    require(sorted_once == sorted(values),
            "sorter output is not the sorted input",
            output=sorted_once)
    return {"pairs_checked": len(pairs), "sigma": sigma}
