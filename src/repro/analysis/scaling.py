"""Growth-law fitting: is this series constant, sqrt, linear, ...?

The theorems assert asymptotic shapes; benchmark sweeps produce finite
series.  :func:`fit_growth` least-squares-fits ``y ~ a * basis(x) + b`` for
each candidate basis and :func:`classify_growth` picks the best by residual
(with a flatness pre-test so noisy constants are not misread as slow
growth).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

Basis = Callable[[float], float]

BASES: Dict[str, Basis] = {
    "constant": lambda x: 0.0,
    "log": lambda x: math.log(max(x, 1e-12)),
    "sqrt": math.sqrt,
    "linear": lambda x: x,
    "quadratic": lambda x: x * x,
}


@dataclass(frozen=True)
class GrowthFit:
    """One basis fit: ``y ~= slope * basis(x) + intercept``."""

    law: str
    slope: float
    intercept: float
    rmse: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * BASES[self.law](x) + self.intercept


def fit_growth(xs: Sequence[float], ys: Sequence[float]) -> Dict[str, GrowthFit]:
    """Fit every candidate law; returns law -> fit."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 3:
        raise ValueError("need at least three points to fit growth")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    total_var = float(np.sum((y - y.mean()) ** 2))
    fits: Dict[str, GrowthFit] = {}
    for law, basis in BASES.items():
        if law == "constant":
            slope, intercept = 0.0, float(y.mean())
            residual = y - intercept
        else:
            design = np.column_stack([np.array([basis(v) for v in x]), np.ones_like(x)])
            coef, *_ = np.linalg.lstsq(design, y, rcond=None)
            slope, intercept = float(coef[0]), float(coef[1])
            residual = y - design @ coef
        sse = float(np.sum(residual**2))
        rmse = math.sqrt(sse / len(x))
        r2 = 1.0 - sse / total_var if total_var > 0 else 1.0
        fits[law] = GrowthFit(law, slope, intercept, rmse, r2)
    return fits


def classify_growth(
    xs: Sequence[float],
    ys: Sequence[float],
    flatness_tolerance: float = 0.05,
) -> GrowthFit:
    """The best-fitting growth law.

    A series whose spread is within ``flatness_tolerance`` (relative to its
    mean, or absolute when the mean is ~0) is classified constant outright —
    least squares would otherwise happily thread a tiny slope through noise.
    Negative-slope fits are discarded (the quantities studied grow).
    """
    y = np.asarray(ys, dtype=float)
    mean = float(np.abs(y).mean())
    spread = float(y.max() - y.min())
    if spread <= flatness_tolerance * max(mean, 1e-12) or spread <= 1e-12:
        fits = fit_growth(xs, ys)
        return fits["constant"]
    fits = fit_growth(xs, ys)
    candidates = [
        fit for law, fit in fits.items() if law == "constant" or fit.slope > 0
    ]
    return min(candidates, key=lambda fit: fit.rmse)


def doubling_ratios(xs: Sequence[float], ys: Sequence[float]) -> List[Tuple[float, float]]:
    """``(x, y(2x)/y(x))`` for consecutive doubling points present in the
    series — a scale-free check: ~1 constant, ~1.41 sqrt, ~2 linear."""
    table = dict(zip(xs, ys))
    out: List[Tuple[float, float]] = []
    for x in sorted(table):
        if 2 * x in table and table[x] != 0:
            out.append((x, table[2 * x] / table[x]))
    return out
