"""Analysis utilities: scheme evaluation, growth-law fitting, Monte Carlo.

The paper's results are asymptotic ("constant", "Omega(n)", "sqrt(n)"); the
benchmarks turn measured sweeps into claims via :mod:`repro.analysis.scaling`
(least-squares classification of growth laws), evaluate whole schemes via
:mod:`repro.analysis.skew`, and quantify stochastic experiments via
:mod:`repro.analysis.montecarlo`.
"""

from repro.analysis.scaling import GrowthFit, classify_growth, fit_growth
from repro.analysis.skew import SchemeEvaluation, compare_schemes, evaluate_scheme
from repro.analysis.montecarlo import (
    CompiledTrialContext,
    MonteCarloSummary,
    run_trials,
    summarize,
)
from repro.analysis.crossover import Crossover, find_crossover, winning_factor
from repro.analysis.perf import (
    KernelTiming,
    run_perf_suite,
    speedup_by_kernel,
    write_bench_results,
)

__all__ = [
    "GrowthFit",
    "classify_growth",
    "fit_growth",
    "SchemeEvaluation",
    "evaluate_scheme",
    "compare_schemes",
    "CompiledTrialContext",
    "MonteCarloSummary",
    "run_trials",
    "summarize",
    "Crossover",
    "find_crossover",
    "winning_factor",
    "KernelTiming",
    "run_perf_suite",
    "speedup_by_kernel",
    "write_bench_results",
]
