"""Microbenchmarks for the repo's hot kernels — the perf trajectory.

Times the scalar reference paths against the batched/parallel kernels
they were replaced by:

* ``max_skew_bound`` / ``max_skew_lower_bound`` — per-pair LCA walks vs
  the Euler-tour O(1)-LCA batch kernel (warm, i.e. index built and pair
  translation memoized: the steady state every sweep and repeated bound
  runs in);
* the same bound evaluated *cold* on a fresh tree (index build + pair
  translation included — the one-shot price of the batch path);
* ``BufferedClockTree.max_skew`` — per-pair dict lookups vs the aligned
  arrival-array kernel;
* ``clocked_run`` / ``selftimed_makespan`` — the scalar per-(cell, tick)
  simulators vs the array-compiled kernels of :mod:`repro.sim.compiled`
  (full ``ClockedRunResult`` agreement enforced in the diff column);
* ``engine_dispatch`` — the per-event instrumented engine loop structure
  vs the uninstrumented fast path;
* ``run_trials`` — the serial Monte-Carlo loop vs the
  ``workers=N`` process pool (outputs are bit-identical by design, and
  checked here), and the rebuild-per-trial formulation vs the
  ``CompiledTrialContext`` structure cache (``montecarlo_cached``).

Every timing row records the measured equivalence gap
(``max_abs_diff``) alongside the speedup, so a fast-but-wrong kernel
cannot slip through the perf suite.  ``write_bench_results`` emits the
rows as a ``BENCH_perf.json`` conforming to
:data:`repro.obs.schema.BENCHMARK_RESULT_SCHEMA` (validated before
writing); ``benchmarks/perf/`` and ``python -m repro bench`` are thin
drivers over this module.
"""

from __future__ import annotations

import dataclasses
import json
import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.analysis.montecarlo import (
    CompiledTrialContext,
    run_trials,
    run_trials_traced,
)
from repro.analysis.shared import SharedTrialArena
from repro.arrays.topologies import mesh
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.htree import htree_for_array
from repro.clocktree.sampler import CompiledSkewSampler
from repro.core.models import (
    PhysicalModel,
    SkewModel,
    max_skew_bound,
    max_skew_bound_scalar,
    max_skew_lower_bound,
    max_skew_lower_bound_scalar,
)
from repro.clocktree.lca import EulerTourIndex, LiftingLCAIndex
from repro.graphs.csr import csr_from_comm, grid_csr
from repro.obs.schema import validate_benchmark_result
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.sim.compiled import CompiledTimingKernel

# repro.sta imports are deferred into the bench functions below:
# repro/__init__ imports this package before __version__ exists, and
# repro.sta.report reads repro.__version__ at import time.

BENCH_HEADERS = [
    "kernel",
    "size",
    "items",
    "baseline_s",
    "optimized_s",
    "speedup",
    "max_abs_diff",
    "pickle_s",
    "compile_s",
    "run_s",
    "peak_mem_bytes",
]


@dataclass(frozen=True)
class KernelTiming:
    """One microbenchmark: a baseline path vs its optimized kernel.

    ``size`` is the problem scale (cells for skew kernels, trials for
    Monte-Carlo), ``items`` the inner quantity (communicating pairs, or
    pool workers), and ``max_abs_diff`` the largest observed output
    discrepancy between the two paths (0.0 when bit-identical).

    The phase columns (``pickle_s``/``compile_s``/``run_s``) decompose
    the *optimized* side's wall clock where the harness can measure it —
    currently the Monte-Carlo rows, via
    :func:`repro.analysis.montecarlo.run_trials_traced` — and stay
    ``None`` (JSON ``null``) for kernels without a phase split, keeping
    every BENCH row schema-uniform.  ``peak_mem_bytes`` is the optimized
    path's peak traced allocation (``tracemalloc``; numpy buffers
    included), filled only when the suite runs with memory measurement
    on (``--mem``) — it is the column that makes a memory regression as
    visible as a slowdown.
    """

    kernel: str
    size: int
    items: int
    baseline_s: float
    optimized_s: float
    max_abs_diff: float
    pickle_s: Optional[float] = None
    compile_s: Optional[float] = None
    run_s: Optional[float] = None
    peak_mem_bytes: Optional[int] = None

    @property
    def speedup(self) -> float:
        return self.baseline_s / self.optimized_s if self.optimized_s > 0 else float("inf")

    def row(self) -> List:
        return [
            self.kernel,
            self.size,
            self.items,
            self.baseline_s,
            self.optimized_s,
            self.speedup,
            self.max_abs_diff,
            self.pickle_s,
            self.compile_s,
            self.run_s,
            self.peak_mem_bytes,
        ]


def peak_mem_bytes(fn: Callable[[], object]) -> int:
    """Peak traced allocation of one call to ``fn`` (bytes).

    ``tracemalloc`` sees numpy's buffers (numpy registers its allocator
    domain), so this captures exactly the tick-matrix/latch-scan arrays
    the streaming kernels exist to bound.  Tracing multiplies allocation
    cost, so memory is measured on a *separate* call from the timed one.
    """
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def _with_mem(
    timing: KernelTiming, fn: Callable[[], object], measure: bool
) -> KernelTiming:
    """Attach the optimized path's peak memory to a finished row."""
    if not measure:
        return timing
    return dataclasses.replace(timing, peak_mem_bytes=peak_mem_bytes(fn))


def _best_time(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-N wall clock — the standard noise floor for microbenches."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_skew_kernels(
    side: int,
    model: Optional[SkewModel] = None,
    repeats: int = 3,
    measure_mem: bool = False,
) -> List[KernelTiming]:
    """Time the skew-bound kernels on a ``side x side`` mesh under an
    H-tree clock (the Fig. 3 workload every sweep repeats)."""
    model = model or PhysicalModel()
    array = mesh(side, side)
    pairs = array.communicating_pairs()
    tree = htree_for_array(array)
    n = array.size
    results: List[KernelTiming] = []

    # Cold: fresh tree each repeat, so the O(n log n) index build and
    # the pair translation are inside the measurement.
    scalar_s = _best_time(lambda: max_skew_bound_scalar(tree, pairs, model), repeats)
    cold_s = float("inf")
    cold_value = scalar_value = 0.0
    for _ in range(repeats):
        cold_tree = htree_for_array(array)
        t0 = time.perf_counter()
        cold_value = max_skew_bound(cold_tree, pairs, model)
        cold_s = min(cold_s, time.perf_counter() - t0)
        scalar_value = max_skew_bound_scalar(cold_tree, pairs, model)
    results.append(
        _with_mem(
            KernelTiming(
                "max_skew_bound_cold", n, len(pairs), scalar_s, cold_s,
                abs(cold_value - scalar_value),
            ),
            lambda: max_skew_bound(htree_for_array(array), pairs, model),
            measure_mem,
        )
    )

    # Warm: index built and memo populated — the steady state.
    batch_value = max_skew_bound(tree, pairs, model)
    results.append(
        _with_mem(
            KernelTiming(
                "max_skew_bound", n, len(pairs),
                _best_time(lambda: max_skew_bound_scalar(tree, pairs, model), repeats),
                _best_time(lambda: max_skew_bound(tree, pairs, model), repeats),
                abs(batch_value - max_skew_bound_scalar(tree, pairs, model)),
            ),
            lambda: max_skew_bound(tree, pairs, model),
            measure_mem,
        )
    )

    floor_value = max_skew_lower_bound(tree, pairs, model)
    results.append(
        _with_mem(
            KernelTiming(
                "max_skew_lower_bound", n, len(pairs),
                _best_time(lambda: max_skew_lower_bound_scalar(tree, pairs, model), repeats),
                _best_time(lambda: max_skew_lower_bound(tree, pairs, model), repeats),
                abs(floor_value - max_skew_lower_bound_scalar(tree, pairs, model)),
            ),
            lambda: max_skew_lower_bound(tree, pairs, model),
            measure_mem,
        )
    )

    buffered = BufferedClockTree(tree)
    buffered_value = buffered.max_skew(pairs)
    results.append(
        _with_mem(
            KernelTiming(
                "buffered_max_skew", n, len(pairs),
                _best_time(lambda: buffered.max_skew_scalar(pairs), repeats),
                _best_time(lambda: buffered.max_skew(pairs), repeats),
                abs(buffered_value - buffered.max_skew_scalar(pairs)),
            ),
            lambda: buffered.max_skew(pairs),
            measure_mem,
        )
    )

    # Cold LCA index construction: the Python-loop Euler tour + sparse
    # table vs the vectorized binary-lifting build over the tree's dense
    # store.  Both builds end with the same batch metric query; inputs
    # (children map, root-distance dict) are prepared outside the timing.
    children = tree.children_map()
    rd = {node: tree.root_distance(node) for node in tree.nodes()}
    root = tree.nodes()[0]
    store = tree.dense_store

    def euler_build():
        return EulerTourIndex(root, children, rd).path_metrics(pairs)

    def lifting_build():
        return LiftingLCAIndex(store).path_metrics(pairs)

    ed, es = euler_build()
    ld, ls = lifting_build()
    lca_diff = float(
        max(
            np.abs(ed - ld).max() if len(ed) else 0.0,
            np.abs(es - ls).max() if len(es) else 0.0,
        )
    )
    results.append(
        _with_mem(
            KernelTiming(
                "lca_cold_build", n, len(pairs),
                _best_time(euler_build, repeats),
                _best_time(lifting_build, repeats),
                lca_diff,
            ),
            lifting_build,
            measure_mem,
        )
    )
    return results


def _eco_bench_design(side: int):
    """A ``side x side`` single-tile composition (serpentine clock chain)
    clocked at 1.1x its exact minimum feasible period — the what-if
    workload both ECO rows edit."""
    from repro.sta.slack import minimum_feasible_period
    from repro.sta.tiles import TileSpec, compose_design

    spec = TileSpec(rows=side, cols=side)
    design = compose_design(spec, 1, 1, period=1.0)
    period = 1.1 * minimum_feasible_period(design, "exact")
    return compose_design(spec, 1, 1, period=period)


def bench_eco(
    side: int, repeats: int = 3, measure_mem: bool = False
) -> List[KernelTiming]:
    """ECO what-if rows on a ``side x side`` array (4096 cells at the
    side-64 acceptance gate).

    Each row compares one *edit + re-query* cycle: the baseline mutates a
    plain design and recomputes ``analyze_slack`` + both feasible periods
    from scratch; the optimized path pushes the same edit through a live
    :class:`~repro.sta.eco.ECOSession`.  After timing, both sides are
    driven to the identical final state and their full verdicts compared
    — ``max_abs_diff`` is 0.0 only when every slack array is
    bit-identical and the summary floats agree exactly.
    """
    from repro.sta.eco import ECOSession
    from repro.sta.slack import analyze_slack, minimum_feasible_period

    baseline_design = _eco_bench_design(side)
    session = ECOSession(_eco_bench_design(side))
    edges = baseline_design.edges()
    n = side * side
    results: List[KernelTiming] = []

    def full_query(design):
        analysis = analyze_slack(design)
        return (
            analysis.worst_setup_slack,
            analysis.worst_hold_slack,
            minimum_feasible_period(design, "exact"),
            minimum_feasible_period(design, "bound"),
        )

    def session_query():
        return (
            session.worst_setup_slack(),
            session.worst_hold_slack(),
            session.minimum_feasible_period("exact"),
            session.minimum_feasible_period("bound"),
        )

    def compare() -> float:
        """Bitwise agreement of the two sides' current verdicts."""
        full = analyze_slack(baseline_design)
        incremental = session.analysis()
        for name in (
            "lag", "sigma_ub", "sigma_lb", "offset_lead",
            "setup_exact", "hold_exact", "setup_bound", "hold_bound",
        ):
            a, b = getattr(full, name), getattr(incremental, name)
            if a.tobytes() != b.tobytes():
                return float(np.abs(a - b).max())
        if full_query(baseline_design) != session_query():
            return float("inf")
        return 0.0

    # -- eco_repad: retune the hold padding of one COMM edge ------------
    edge = edges[len(edges) // 2]
    pads = [0.15, 0.35]
    state = {"baseline": 0, "session": 0}

    def baseline_repad():
        state["baseline"] ^= 1
        baseline_design.edge_padding[edge] = pads[state["baseline"]]
        return full_query(baseline_design)

    def session_repad():
        state["session"] ^= 1
        session.repad_edge(edge, pads[state["session"]])
        return session_query()

    baseline_s = _best_time(baseline_repad, repeats)
    optimized_s = _best_time(session_repad, repeats)
    # drive both sides to the identical state before the equivalence check
    baseline_design.edge_padding[edge] = pads[1]
    session.repad_edge(edge, pads[1])
    results.append(
        _with_mem(
            KernelTiming(
                "eco_repad", n, len(edges), baseline_s, optimized_s, compare()
            ),
            session_repad,
            measure_mem,
        )
    )

    # -- eco_resize: retune a clock-tree edge near the chain's tail -----
    nodes = baseline_design.tree.dense_store.nodes
    node = nodes[max(1, len(nodes) - 32)]
    lengths = [0.7, 1.3]

    def baseline_resize():
        state["baseline"] ^= 1
        baseline_design.tree.set_edge_length(node, lengths[state["baseline"]])
        return full_query(baseline_design)

    def session_resize():
        state["session"] ^= 1
        session.resize_buffer(node, lengths[state["session"]])
        return session_query()

    baseline_s = _best_time(baseline_resize, repeats)
    optimized_s = _best_time(session_resize, repeats)
    baseline_design.tree.set_edge_length(node, lengths[1])
    session.resize_buffer(node, lengths[1])
    results.append(
        _with_mem(
            KernelTiming(
                "eco_resize", n, len(edges), baseline_s, optimized_s, compare()
            ),
            session_resize,
            measure_mem,
        )
    )
    return results


def bench_tiles(
    side: int, repeats: int = 3, measure_mem: bool = False
) -> Optional[KernelTiming]:
    """Tiled-composition row: a ``side x side`` array as a grid of 8x8
    tiles, flat analysis vs warm-cache stitching.  ``None`` when ``side``
    doesn't decompose into a power-of-two grid of 8x8 tiles."""
    from repro.sta.tiles import (
        TileSpec,
        compose_design,
        flat_summary,
        stitched_analysis,
        tile_cache_clear,
    )

    grid = side // 8
    if grid * 8 != side or grid & (grid - 1):
        return None
    spec = TileSpec(rows=8, cols=8)
    period = float(4 * side)
    design = compose_design(spec, grid, grid, period)
    tile_cache_clear()
    flat = flat_summary(design)
    stitched = stitched_analysis(spec, grid, grid, period, design=design)
    return _with_mem(
        KernelTiming(
            "tile_stitch", side * side, flat.edges,
            _best_time(lambda: flat_summary(design), repeats),
            _best_time(
                lambda: stitched_analysis(spec, grid, grid, period), repeats
            ),
            0.0 if stitched == flat else float("inf"),
        ),
        lambda: stitched_analysis(spec, grid, grid, period),
        measure_mem,
    )


def _flow_mesh_comm(side: int):
    """A deterministic ``side x side`` nearest-neighbour mesh COMM graph
    (4096 cells at side 64 — the flow acceptance-gate scale)."""
    from repro.graphs.comm import CommGraph

    comm = CommGraph()
    for r in range(side):
        for c in range(side):
            comm.add_node((r, c))
    for r in range(side):
        for c in range(side):
            if c + 1 < side:
                comm.add_edge((r, c), (r, c + 1))
            if r + 1 < side:
                comm.add_edge((r, c), (r + 1, c))
    return comm


def bench_flow(
    side: int, repeats: int = 3, measure_mem: bool = False
) -> List[KernelTiming]:
    """Flow-analysis rows: the static max-plus answers vs their scalar/
    simulated baselines, on a ``side x side`` mesh with dyadic services.

    ``mcm_howard`` — steady-state cycle time by simulate-to-convergence
    (the pure-Python scalar reference, the paired ``*_scalar`` oracle)
    vs lowering the COMM graph and solving the MCM with vectorized
    Howard iteration; ``max_abs_diff`` compares the two cycle times and
    must be 0.0 (same exact rational, correctly rounded).

    ``buffer_sizing`` — the identical critical-cycle relaxation driven
    by the token-expanded Karp oracle (baseline) vs the Howard kernel
    (optimized), on a reduced mesh; exact agreement required on both the
    achieved cycle time and the returned capacity map.
    """
    from repro.sta.flow import (
        flow_graph,
        mcm_howard,
        mcm_karp,
        minimal_buffer_sizing,
        simulate_steady_state_scalar,
    )

    comm = _flow_mesh_comm(side)
    cells = comm.nodes()
    service = {c: 1.0 + ((i * 31) % 8) / 8 for i, c in enumerate(cells)}
    wire, cap = 0.5, 2

    def simulated() -> float:
        return simulate_steady_state_scalar(
            comm, service, wire, cap
        ).cycle_time

    def static() -> float:
        cycle = mcm_howard(flow_graph(comm, service, wire, cap))
        assert cycle is not None
        return cycle.cycle_time

    sim_lam = simulated()
    static_lam = static()
    fg = flow_graph(comm, service, wire, cap)
    rows = [
        _with_mem(
            KernelTiming(
                "mcm_howard", side * side, fg.n_edges,
                _best_time(simulated, repeats),
                _best_time(static, repeats),
                abs(static_lam - sim_lam),
            ),
            static,
            measure_mem,
        )
    ]

    # The sizing row runs O(edges) MCM solves (the reduction pass), and
    # its baseline solver is the token-expanded Karp oracle — quadratic
    # territory.  Cap the mesh at side 8: big enough to exercise every
    # relaxation path, small enough to keep the Karp leg in seconds.
    small = max(4, min(8, side // 8))
    comm_s = _flow_mesh_comm(small)
    service_s = {
        c: 1.0 + ((i * 31) % 8) / 8 for i, c in enumerate(comm_s.nodes())
    }
    base = mcm_howard(flow_graph(comm_s, service_s, wire, None))
    assert base is not None
    target = base.cycle_time + 0.125

    def size_with(solver):
        return minimal_buffer_sizing(
            comm_s, service_s, wire, target, mcm=solver
        )

    karp_sized = size_with(mcm_karp)
    howard_sized = size_with(mcm_howard)
    sizing_diff = abs(karp_sized.cycle_time - howard_sized.cycle_time)
    if karp_sized.capacities != howard_sized.capacities:
        sizing_diff = float("inf")
    rows.append(
        _with_mem(
            KernelTiming(
                "buffer_sizing", small * small,
                howard_sized.mcm_calls,
                _best_time(lambda: size_with(mcm_karp), repeats),
                _best_time(lambda: size_with(mcm_howard), repeats),
                sizing_diff,
            ),
            lambda: size_with(mcm_howard),
            measure_mem,
        )
    )
    return rows


def _bench_matmul_program(side: int):
    """A deterministic ``side x side`` mesh matmul — the simulation-kernel
    workload (4096 cells at side 64, the acceptance-gate scale)."""
    from repro.arrays.systolic import build_mesh_matmul

    a = [
        [((i * 31 + j * 17) % 13) / 6.0 - 1.0 for j in range(side)]
        for i in range(side)
    ]
    b = [
        [((i * 19 + j * 23) % 11) / 5.0 - 1.0 for j in range(side)]
        for i in range(side)
    ]
    return build_mesh_matmul(a, b)


def _flatten_floats(value) -> List[float]:
    if isinstance(value, (list, tuple)):
        out: List[float] = []
        for v in value:
            out.extend(_flatten_floats(v))
        return out
    return [float(value)] if value is not None else []


def _clocked_diff(a, b) -> float:
    """Worst discrepancy between two ``ClockedRunResult``s: 0.0 only when
    payload, violation list, tick count, and makespan all agree exactly."""
    if a.violations != b.violations or a.ticks != b.ticks:
        return float("inf")
    fa, fb = _flatten_floats(a.result), _flatten_floats(b.result)
    if len(fa) != len(fb):
        return float("inf")
    diff = abs(a.makespan - b.makespan)
    for x, y in zip(fa, fb):
        diff = max(diff, abs(x - y))
    return diff


def bench_sim_kernels(
    side: int, repeats: int = 3, measure_mem: bool = False
) -> List[KernelTiming]:
    """Time the compiled simulation kernels against their scalar oracles
    on the mesh-matmul workload:

    * ``clocked_run`` — the scalar per-(cell, tick) event interpreter vs
      the array-compiled kernel (timing matrix + stream execution), both
      producing the full ``ClockedRunResult``;
    * ``selftimed_makespan`` — the per-cell tandem-recurrence loop vs the
      wavefront array kernel, under the default constant service;
    * ``selftimed_backpressure`` — the same pair at a finite channel
      capacity (2), where both sides additionally carry the marked-graph
      capacity back-edges.

    Both compiled paths are pre-warmed so the one-off structure compile is
    excluded (the steady state of checks, sweeps, and Monte-Carlo — same
    convention as the warm skew rows); ``max_abs_diff`` is computed from
    fully-compared outputs, so any divergence poisons the row.
    """
    from repro.sim.clock_distribution import ClockSchedule
    from repro.sim.clocked import ClockedArraySimulator
    from repro.sim.dataflow import SelfTimedProgramSimulator

    program = _bench_matmul_program(side)
    cells = program.array.comm.nodes()
    n = len(cells)
    results: List[KernelTiming] = []

    schedule = ClockSchedule({c: 0.0 for c in cells}, period=10.0)
    sim = ClockedArraySimulator(program, schedule, delta=1.0)
    compiled_run = sim.run()  # pre-warm: compile + stream plan
    scalar_run = sim.run_scalar()
    results.append(
        _with_mem(
            KernelTiming(
                "clocked_run", n, program.cycles,
                _best_time(lambda: sim.run_scalar(), repeats),
                _best_time(lambda: sim.run(), repeats),
                _clocked_diff(compiled_run, scalar_run),
            ),
            lambda: sim.run(),
            measure_mem,
        )
    )

    selftimed = SelfTimedProgramSimulator(program, wire_delay=0.5)
    compiled_span = selftimed.recurrence_makespan()  # pre-warm the kernel
    scalar_span = selftimed.recurrence_makespan_scalar()
    results.append(
        _with_mem(
            KernelTiming(
                "selftimed_makespan", n, program.cycles,
                _best_time(lambda: selftimed.recurrence_makespan_scalar(), repeats),
                _best_time(lambda: selftimed.recurrence_makespan(), repeats),
                abs(compiled_span - scalar_span),
            ),
            lambda: selftimed.recurrence_makespan(),
            measure_mem,
        )
    )

    bounded = SelfTimedProgramSimulator(
        program, wire_delay=0.5, channel_capacity=2
    )
    bounded_compiled = bounded.recurrence_makespan()  # pre-warm the kernel
    bounded_scalar = bounded.recurrence_makespan_scalar()
    results.append(
        _with_mem(
            KernelTiming(
                "selftimed_backpressure", n, program.cycles,
                _best_time(lambda: bounded.recurrence_makespan_scalar(), repeats),
                _best_time(lambda: bounded.recurrence_makespan(), repeats),
                abs(bounded_compiled - bounded_scalar),
            ),
            lambda: bounded.recurrence_makespan(),
            measure_mem,
        )
    )
    return results


def _drive_engine(sim, n_events: int) -> int:
    from repro.sim.engine import Simulator  # noqa: F401  (typing aid only)

    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < n_events:
            sim.schedule(1.0, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return count[0]


def bench_engine_dispatch(
    n_events: int = 100_000, repeats: int = 3, measure_mem: bool = False
) -> KernelTiming:
    """Time the engine's uninstrumented dispatch fast path against the
    instrumented loop structure (a disabled ``NullTracer`` *instance*
    forces the per-event bookkeeping branch without emitting anything, so
    both sides execute the same callbacks)."""
    from repro.sim.engine import Simulator

    def instrumented() -> int:
        return _drive_engine(Simulator(tracer=NullTracer()), n_events)

    def fast() -> int:
        return _drive_engine(Simulator(), n_events)

    diff = float(abs(instrumented() - fast()))
    return _with_mem(
        KernelTiming(
            "engine_dispatch", n_events, 1,
            _best_time(instrumented, repeats),
            _best_time(fast, repeats),
            diff,
        ),
        fast,
        measure_mem,
    )


def _montecarlo_trial(seed: int) -> float:
    """A seed-deterministic, compute-bound trial: the worst buffered
    skew of a resampled H-tree (module-level so a process pool can
    pickle it; heavy enough that pool startup amortizes away)."""
    array = mesh(16, 16)
    tree = htree_for_array(array)
    buffered = BufferedClockTree(tree)
    buffered.resample(seed)
    return buffered.max_skew(array.communicating_pairs())


def _mc_structure():
    """The seed-independent structure of :func:`_montecarlo_trial`:
    array, pairs, and buffered H-tree (module-level so process pools can
    pickle the context's factory)."""
    array = mesh(16, 16)
    tree = htree_for_array(array)
    return array.communicating_pairs(), BufferedClockTree(tree)


_MC_CONTEXT = CompiledTrialContext(_mc_structure)


def _mc_cached_trial(seed: int) -> float:
    """The cached formulation of :func:`_montecarlo_trial`: structure from
    the per-worker context, only the noise resampled per seed.  Values are
    bit-identical to the uncached trial because ``resample`` rebuilds the
    buffered tree deterministically from the seed alone."""
    pairs, buffered = _MC_CONTEXT.get()
    buffered.resample(seed)
    return buffered.max_skew(pairs)


def bench_montecarlo_cached(
    trials: int = 32, measure_mem: bool = False
) -> KernelTiming:
    """Time ``run_trials`` with the per-trial rebuild-everything
    formulation against the :class:`CompiledTrialContext` cache (compile
    structure once per worker, resample only noise per seed).

    ``max_abs_diff`` compares every summary field; the cached path is
    bit-identical by construction, so any non-zero value is a caching
    bug surfacing as a perf row.
    """
    t0 = time.perf_counter()
    uncached = run_trials(_montecarlo_trial, trials, base_seed=0)
    uncached_s = time.perf_counter() - t0
    _MC_CONTEXT.get()  # pre-warm: the compile belongs to no single trial
    t0 = time.perf_counter()
    cached = run_trials(_mc_cached_trial, trials, base_seed=0)
    cached_s = time.perf_counter() - t0
    # Phase split from the instrumented runner (summary bit-identical to
    # run_trials, so reusing its result for the diff check is sound).
    _, telemetry = run_trials_traced(_mc_cached_trial, trials, base_seed=0)
    diff = max(
        abs(uncached.mean - cached.mean),
        abs(uncached.stdev - cached.stdev),
        abs(uncached.minimum - cached.minimum),
        abs(uncached.maximum - cached.maximum),
        abs(uncached.ci_half_width - cached.ci_half_width),
    )
    return _with_mem(
        KernelTiming(
            "montecarlo_cached", trials, trials, uncached_s, cached_s, diff,
            pickle_s=telemetry.pickle_s,
            compile_s=telemetry.compile_s,
            run_s=telemetry.run_s,
        ),
        lambda: run_trials(_mc_cached_trial, trials, base_seed=0),
        measure_mem,
    )


def _sampler_structure() -> CompiledSkewSampler:
    """The Monte-Carlo workload compiled once: the mesh(16, 16) H-tree
    with its communicating pairs as a :class:`CompiledSkewSampler`."""
    array = mesh(16, 16)
    tree = htree_for_array(array)
    return CompiledSkewSampler.from_tree(tree, array.communicating_pairs())


def _sampler_rebuild_trial(seed: int) -> float:
    """The serial baseline: recompile the structure and walk the trial
    with the scalar per-node loops — the pay-everything-per-seed
    formulation the arena path is measured against."""
    return _sampler_structure().sample_max_skew_scalar(seed)


def _sampler_build(arrays) -> CompiledSkewSampler:
    """Arena ``build`` hook: sampler from attached shared-memory views
    (module-level so :class:`SharedMemoryTrial` stays picklable)."""
    return CompiledSkewSampler.from_arrays(arrays)


def _sampler_run(state: CompiledSkewSampler, seed: int) -> float:
    """Arena ``run`` hook: one vectorized trial on the cached state."""
    return state.sample_max_skew(seed)


def bench_montecarlo(
    trials: int = 32,
    workers: int = 4,
    executor: str = "process",
    measure_mem: bool = False,
) -> KernelTiming:
    """Time the rebuild-per-trial serial Monte-Carlo loop against the
    zero-pickle shared-memory pool.

    The baseline recompiles the H-tree structure and runs the scalar
    sampler per seed; the optimized path ships the compiled arrays once
    through a :class:`SharedTrialArena` and lets worker processes attach
    and run the vectorized sampler.  Both consume the identical seeded
    uniform vector per trial, so ``max_abs_diff`` across all summary
    fields must be exactly 0.0 — any non-zero value is a determinism bug
    surfacing as a perf row.  The arena trial is deliberately *not*
    pre-warmed in the coordinator: under fork that would hand workers a
    built state and hide the attach+build cost the row exists to price.
    """
    t0 = time.perf_counter()
    serial = run_trials(_sampler_rebuild_trial, trials, base_seed=0)
    serial_s = time.perf_counter() - t0
    arena = SharedTrialArena(_sampler_structure().arrays())
    try:
        trial = arena.trial(_sampler_build, _sampler_run)
        t0 = time.perf_counter()
        parallel = run_trials(
            trial, trials, base_seed=0, workers=workers, executor=executor
        )
        parallel_s = time.perf_counter() - t0
        # Phase decomposition of the pooled run (one-time pickle +
        # per-chunk compile/run seconds): the columns that localize a
        # pool regression to its phase instead of leaving one opaque
        # wall-clock number.
        _, telemetry = run_trials_traced(
            trial, trials, base_seed=0, workers=workers, executor=executor
        )
        peak = (
            peak_mem_bytes(
                lambda: run_trials(
                    trial, trials, base_seed=0, workers=workers, executor=executor
                )
            )
            if measure_mem
            else None
        )
    finally:
        arena.close()
    diff = max(
        abs(serial.mean - parallel.mean),
        abs(serial.stdev - parallel.stdev),
        abs(serial.minimum - parallel.minimum),
        abs(serial.maximum - parallel.maximum),
        abs(serial.ci_half_width - parallel.ci_half_width),
    )
    return KernelTiming(
        f"montecarlo_workers_{workers}", trials, workers, serial_s, parallel_s, diff,
        pickle_s=telemetry.pickle_s,
        compile_s=telemetry.compile_s,
        run_s=telemetry.run_s,
        peak_mem_bytes=peak,
    )


def _scale_offsets(n_cells: int, period: float) -> np.ndarray:
    """Deterministic offsets for the scale rows: a bounded gradient (no
    violations on its own — ``96 * 0.002 + lag/period`` stays inside one
    period) plus 16 scattered hot cells pushed past the tolerance so the
    violation machinery streams a small, fixed set of real events."""
    ids = np.arange(n_cells, dtype=np.float64)
    offsets = (ids % 97.0) * (period * 0.002)
    hot = (np.arange(16, dtype=np.int64) * 2654435761) % n_cells
    offsets[hot] += period * 0.6
    return offsets


def bench_scale_timing(
    side: int,
    ticks: int = 4,
    edge_block: int = 65_536,
    repeats: int = 1,
    measure_mem: bool = False,
    include_scalar: Optional[bool] = None,
) -> List[KernelTiming]:
    """Scale rows: static timing on a ``side x side`` grid at sizes the
    object paths cannot reach (65,536 cells and 1,048,576 cells).

    Three rows, each with an in-row equivalence check:

    * ``mesh_csr_build`` — the O(n²)-prone ``CommGraph`` lowering vs the
      closed-form :func:`~repro.graphs.csr.grid_csr` build (structures
      compared exactly; only at sides where the object graph is
      feasible);
    * ``clocked_timing_blocked`` — monolithic tick-matrix timing vs the
      chunked evaluation (``edge_block`` edges per block); violations,
      order, and makespan must match bit for bit, at every side;
    * ``clocked_timing`` — the per-event scalar oracle vs the streamed
      kernel, at the largest co-runnable size (the differential row the
      issue asks for).

    ``include_scalar`` defaults to ``n <= 66_000``: beyond that the
    Python oracle and the object graph are the bottleneck the kernels
    exist to remove, so the million-cell rows are kernels-only.
    """
    n = side * side
    if include_scalar is None:
        include_scalar = n <= 66_000
    period, lag = 1.0, 0.3
    offsets = _scale_offsets(n, period)
    results: List[KernelTiming] = []

    if include_scalar:
        t0 = time.perf_counter()
        comm = mesh(side, side).comm
        object_csr = csr_from_comm(comm)
        object_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        grid = grid_csr(side, side)
        grid_s = time.perf_counter() - t0
        results.append(
            _with_mem(
                KernelTiming(
                    "mesh_csr_build", n, grid.n_edges, object_s, grid_s,
                    0.0 if object_csr.same_structure(grid) else float("inf"),
                ),
                lambda: grid_csr(side, side),
                measure_mem,
            )
        )
    else:
        grid = grid_csr(side, side)

    kernel = CompiledTimingKernel(grid, offsets, period=period, lag=lag)
    mono = kernel.timing(ticks)
    blocked = kernel.timing(ticks, edge_block=edge_block)
    blocked_diff = (
        0.0
        if (
            mono.violations == blocked.violations
            and mono.makespan == blocked.makespan
            and mono.ticks == blocked.ticks
        )
        else float("inf")
    )
    results.append(
        _with_mem(
            KernelTiming(
                "clocked_timing_blocked", n, kernel.n_edges,
                _best_time(lambda: kernel.timing(ticks), repeats),
                _best_time(lambda: kernel.timing(ticks, edge_block=edge_block), repeats),
                blocked_diff,
            ),
            lambda: kernel.timing(ticks, edge_block=edge_block),
            measure_mem,
        )
    )

    if include_scalar:
        t0 = time.perf_counter()
        scalar = kernel.timing_scalar(ticks)
        scalar_s = time.perf_counter() - t0
        scalar_diff = (
            0.0
            if (
                scalar.violations == blocked.violations
                and scalar.makespan == blocked.makespan
                and scalar.ticks == blocked.ticks
            )
            else float("inf")
        )
        results.append(
            _with_mem(
                KernelTiming(
                    "clocked_timing", n, kernel.n_edges, scalar_s,
                    _best_time(
                        lambda: kernel.timing(ticks, edge_block=edge_block), repeats
                    ),
                    scalar_diff,
                ),
                lambda: kernel.timing(ticks, edge_block=edge_block),
                measure_mem,
            )
        )
    return results


def run_perf_suite(
    sides: Sequence[int] = (16, 32, 64),
    trials: int = 32,
    workers: int = 4,
    repeats: int = 3,
    tracer: Optional[Tracer] = None,
    include_montecarlo: bool = True,
    scale_sides: Sequence[int] = (),
    scale_ticks: int = 4,
    edge_block: int = 65_536,
    measure_mem: bool = False,
) -> List[KernelTiming]:
    """The full microbenchmark suite across array sizes.

    ``scale_sides`` appends the large-grid timing rows (65,536 cells at
    side 256, 1,048,576 at side 1024); ``measure_mem`` fills the
    ``peak_mem_bytes`` column on every row.  With a ``tracer``, each
    finished timing emits a ``perf/kernel`` event (``t`` is the row
    index) carrying the whole row.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    results: List[KernelTiming] = []
    for side in sides:
        results.extend(bench_skew_kernels(side, repeats=repeats, measure_mem=measure_mem))
        results.extend(bench_sim_kernels(side, repeats=repeats, measure_mem=measure_mem))
        results.extend(bench_eco(side, repeats=repeats, measure_mem=measure_mem))
        results.extend(bench_flow(side, repeats=repeats, measure_mem=measure_mem))
        tile_row = bench_tiles(side, repeats=repeats, measure_mem=measure_mem)
        if tile_row is not None:
            results.append(tile_row)
    results.append(bench_engine_dispatch(repeats=repeats, measure_mem=measure_mem))
    if include_montecarlo:
        results.append(
            bench_montecarlo(trials=trials, workers=workers, measure_mem=measure_mem)
        )
        results.append(bench_montecarlo_cached(trials=trials, measure_mem=measure_mem))
    for side in scale_sides:
        results.extend(
            bench_scale_timing(
                side,
                ticks=scale_ticks,
                edge_block=edge_block,
                measure_mem=measure_mem,
            )
        )
    if tracer.enabled:
        for i, r in enumerate(results):
            tracer.event(
                float(i), "perf", "kernel",
                kernel=r.kernel, size=r.size, items=r.items,
                baseline_s=r.baseline_s, optimized_s=r.optimized_s,
                speedup=r.speedup, max_abs_diff=r.max_abs_diff,
                pickle_s=r.pickle_s, compile_s=r.compile_s, run_s=r.run_s,
                peak_mem_bytes=r.peak_mem_bytes,
            )
    return results


def write_bench_results(
    results: Sequence[KernelTiming],
    path: str,
    name: str = "BENCH_perf",
    title: str = "Hot-kernel microbenchmarks: scalar/serial baseline vs batched/parallel",
    wall_s: Optional[float] = None,
) -> dict:
    """Serialize timings as a schema-valid benchmark-result JSON.

    The payload is validated against ``BENCHMARK_RESULT_SCHEMA`` before
    anything touches disk; a malformed artifact raises instead of
    poisoning the perf trajectory.
    """
    from repro import __version__  # deferred: repro/__init__ imports this package

    meta: dict = {"emitted_at": time.time(), "repro_version": __version__}
    if wall_s is not None:
        meta["timing"] = {"wall_s": wall_s}
    payload = {
        "name": name,
        "title": title,
        "headers": list(BENCH_HEADERS),
        "rows": [r.row() for r in results],
        "meta": meta,
    }
    errors = validate_benchmark_result(payload)
    if errors:
        raise ValueError(f"BENCH payload failed schema validation: {errors}")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    return payload


def speedup_by_kernel(payload: dict) -> dict:
    """``{kernel: worst observed speedup}`` from a BENCH payload — the
    quantity the CI perf-smoke job compares against its stored baseline."""
    headers = payload["headers"]
    k, sp = headers.index("kernel"), headers.index("speedup")
    out: dict = {}
    for row in payload["rows"]:
        kernel, speedup = row[k], float(row[sp])
        out[kernel] = min(out.get(kernel, float("inf")), speedup)
    return out
