"""End-to-end scheme evaluation: build, bound, measure, and price a scheme.

Bundles the steps the benchmarks repeat: construct a clock tree for an
array, compute the model-bound ``sigma``, the empirical ``sigma`` of a
buffered realization, the A5 period under pipelined and equipotential
``tau``, and the area cost of the tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.arrays.model import ProcessorArray
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.tree import ClockTree
from repro.core.models import SkewModel, max_skew_bound, max_skew_lower_bound
from repro.core.parameters import ClockParameters, equipotential_tau
from repro.core.schemes import build_scheme
from repro.delay.buffer import InverterPairModel
from repro.delay.variation import BoundedUniformVariation
from repro.delay.wire import ElmoreWireModel


@dataclass(frozen=True)
class SchemeEvaluation:
    """Everything one scheme costs and guarantees on one array."""

    scheme: str
    array_name: str
    n_cells: int
    sigma_bound: float
    sigma_floor: float
    sigma_empirical: float
    tau_pipelined: float
    tau_equipotential: float
    clock_wire_length: float
    longest_root_to_leaf: float

    def period(self, delta: float, pipelined: bool = True) -> float:
        tau = self.tau_pipelined if pipelined else self.tau_equipotential
        return ClockParameters(self.sigma_bound, delta, tau).period


def evaluate_scheme(
    array: ProcessorArray,
    scheme: str,
    model: SkewModel,
    m: float = 1.0,
    eps: float = 0.1,
    buffer_spacing: float = 1.0,
    seed: int = 0,
    tree: Optional[ClockTree] = None,
) -> SchemeEvaluation:
    """Build ``scheme`` for ``array`` (or evaluate a pre-built ``tree``) and
    measure bounds, empirical skew, and costs."""
    clock = tree if tree is not None else build_scheme(scheme, array)
    pairs = array.communicating_pairs()
    buffered = BufferedClockTree(
        clock,
        buffer_spacing=buffer_spacing,
        wire_variation=BoundedUniformVariation(m=m, epsilon=eps, seed=seed),
        buffer_model=InverterPairModel(nominal=buffer_spacing * m, seed=seed),
    )
    return SchemeEvaluation(
        scheme=scheme,
        array_name=array.name,
        n_cells=array.size,
        sigma_bound=max_skew_bound(clock, pairs, model),
        sigma_floor=max_skew_lower_bound(clock, pairs, model),
        sigma_empirical=buffered.max_skew(pairs),
        tau_pipelined=buffered.tau(),
        tau_equipotential=equipotential_tau(
            clock, wire_model=ElmoreWireModel(r=m, c=m)
        ),
        clock_wire_length=clock.total_wire_length(),
        longest_root_to_leaf=clock.longest_root_to_leaf(),
    )


def compare_schemes(
    array: ProcessorArray,
    schemes: Sequence[str],
    model: SkewModel,
    **kwargs,
) -> List[SchemeEvaluation]:
    """Evaluate several schemes on the same array, best sigma-bound first."""
    evaluations = [evaluate_scheme(array, s, model, **kwargs) for s in schemes]
    return sorted(evaluations, key=lambda e: e.sigma_bound)
