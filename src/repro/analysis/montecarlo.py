"""Seeded Monte-Carlo harness.

The stochastic experiments (inverter strings, variation build-up,
self-timed service times) report means with confidence intervals over
independently seeded trials; seeds are derived deterministically from a
base seed so every benchmark run is reproducible.

Trials can run serially or fan out over a ``concurrent.futures`` pool
(``workers=N``).  Seeds are partitioned into contiguous chunks and the
per-trial values are reassembled in seed order before summarizing, so
the parallel path produces *bit-identical* summaries to the serial one
— parallelism is purely a wall-clock optimization, never a semantic
change, and the determinism test pins that down.
"""

from __future__ import annotations

import contextlib
import math
import pickle
import statistics
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.profile import Profiler
from repro.obs.spans import SpanTracer
from repro.obs.trace import NULL_TRACER, RecordingTracer, TraceEvent, Tracer

Trial = Callable[[int], float]


@dataclass(frozen=True)
class MonteCarloSummary:
    """Mean, spread, and a normal-approximation confidence interval."""

    trials: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    ci_half_width: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_half_width

    def contains(self, value: float) -> bool:
        return self.ci_low <= value <= self.ci_high


def summarize(values: Sequence[float], z: float = 1.96) -> MonteCarloSummary:
    """Summarize a sample; :func:`run_trials` delegates here, so serial,
    parallel, and pre-collected samples share one construction path."""
    if len(values) < 2:
        raise ValueError("need at least two values")
    mean = statistics.fmean(values)
    stdev = statistics.stdev(values)
    return MonteCarloSummary(
        trials=len(values),
        mean=mean,
        stdev=stdev,
        minimum=min(values),
        maximum=max(values),
        ci_half_width=z * stdev / math.sqrt(len(values)),
    )


class CompiledTrialContext:
    """Compile-once, resample-per-trial structure cache for Monte-Carlo.

    Most trial functions rebuild everything from scratch per seed — array,
    clock tree, compiled simulation kernels — even though only the *noise*
    (wire variation, jitter, service times) depends on the seed.  Wrap the
    structure factory in a ``CompiledTrialContext`` and call :meth:`get`
    inside the trial: the factory runs once per worker (thread-local, and
    process pools rebuild on unpickle), and every seed reuses the result.

    Determinism is unchanged as long as the cached structure's per-seed
    resampling is itself deterministic (e.g.
    ``BufferedClockTree.resample(seed)`` fully rebuilds from the seed):
    trial values then depend only on the seed, exactly as in the uncached
    formulation, so :func:`run_trials` summaries are bit-identical with
    and without the cache — the property tests pin this.

    For ``executor="process"`` the factory must be picklable (a
    module-level function); the built structure itself is never pickled.
    """

    __slots__ = ("_build", "_local")

    def __init__(self, build: Callable[[], Any]) -> None:
        self._build = build
        self._local = threading.local()

    def get(self) -> Any:
        value = getattr(self._local, "value", None)
        if value is None:
            value = self._build()
            self._local.value = value
        return value

    def __getstate__(self) -> Any:
        return self._build  # the cache is per-worker; never ship contents

    def __setstate__(self, state: Any) -> None:
        self._build = state
        self._local = threading.local()


def _seed_chunks(base_seed: int, n_trials: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous ``(first_seed, count)`` chunks covering the seed range.

    The partition depends only on ``(base_seed, n_trials, workers)`` —
    never on scheduling — and chunks are reassembled in order, which is
    what makes the parallel path deterministic.
    """
    chunk = -(-n_trials // workers)  # ceil
    return [
        (base_seed + lo, min(chunk, n_trials - lo))
        for lo in range(0, n_trials, chunk)
    ]


def _run_chunk(trial: Trial, first_seed: int, count: int) -> List[Tuple[float, float]]:
    """Run ``count`` consecutive seeds; returns (value, wall_s) per trial.

    Module-level so the chunk (not the pool plumbing) is what a process
    backend has to pickle.
    """
    out: List[Tuple[float, float]] = []
    for seed in range(first_seed, first_seed + count):
        t0 = time.perf_counter()
        value = trial(seed)
        out.append((value, time.perf_counter() - t0))
    return out


def run_trials(
    trial: Trial,
    n_trials: int,
    base_seed: int = 0,
    z: float = 1.96,
    tracer: Optional[Tracer] = None,
    profiler: Optional[Profiler] = None,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> MonteCarloSummary:
    """Run ``trial(seed)`` for seeds ``base_seed .. base_seed + n - 1``.

    ``z`` is the normal quantile for the CI (1.96 ~ 95%).

    ``workers=N`` (N >= 2) fans the seed range out over a
    ``concurrent.futures`` pool in contiguous chunks; values come back
    in seed order, so the summary is bit-identical to the serial path.
    ``executor`` picks the pool: ``"thread"`` (default — works with any
    callable, pays the GIL for pure-Python trials but wins when trials
    release it) or ``"process"`` (true multi-core, requires ``trial`` to
    be picklable, i.e. a module-level function).

    With a ``tracer``, each trial emits a ``montecarlo/trial`` progress
    event (``t`` is the trial index; the payload carries the seed, the
    trial value, and its wall-clock cost) followed by a final
    ``montecarlo/summary``; parallel runs emit the same events in the
    same seed order once all chunks land.  A ``profiler`` accumulates
    the whole loop under a ``montecarlo`` phase.  Both default to off.
    """
    if n_trials < 2:
        raise ValueError("need at least two trials")
    if workers is not None and workers < 1:
        raise ValueError("workers must be a positive integer")
    tracer = tracer if tracer is not None else NULL_TRACER
    parallel = workers is not None and workers > 1
    values: List[float] = []
    with (profiler.profiled("montecarlo") if profiler is not None
          else contextlib.nullcontext()):
        if parallel:
            if executor == "thread":
                pool_cls = ThreadPoolExecutor
            elif executor == "process":
                pool_cls = ProcessPoolExecutor
            else:
                raise ValueError(f"unknown executor {executor!r}")
            chunks = _seed_chunks(base_seed, n_trials, workers)
            with pool_cls(max_workers=workers) as pool:
                timed = [
                    item
                    for chunk_result in pool.map(
                        _run_chunk,
                        [trial] * len(chunks),
                        [first for first, _ in chunks],
                        [count for _, count in chunks],
                    )
                    for item in chunk_result
                ]
            values = [value for value, _ in timed]
            if tracer.enabled:
                for i, (value, wall_s) in enumerate(timed):
                    tracer.event(
                        float(i), "montecarlo", "trial",
                        seed=base_seed + i, value=value, wall_s=wall_s,
                        completed=i + 1, total=n_trials,
                    )
        else:
            for i in range(n_trials):
                if tracer.enabled:
                    t0 = time.perf_counter()
                    value = trial(base_seed + i)
                    tracer.event(
                        float(i), "montecarlo", "trial",
                        seed=base_seed + i, value=value,
                        wall_s=time.perf_counter() - t0,
                        completed=i + 1, total=n_trials,
                    )
                else:
                    value = trial(base_seed + i)
                values.append(value)
    summary = summarize(values, z=z)
    if tracer.enabled:
        tracer.event(
            float(n_trials), "montecarlo", "summary",
            trials=n_trials, mean=summary.mean, stdev=summary.stdev,
            ci_low=summary.ci_low, ci_high=summary.ci_high,
        )
    return summary


# ----------------------------------------------------------------------
# phase-resolved (span-traced) execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChunkTelemetry:
    """Phase accounting for one worker's chunk of the seed range.

    ``compile_s`` is the first-trial overhead — the cost of building the
    per-worker structure (a :class:`CompiledTrialContext` factory runs
    once per worker), estimated as the excess of the first trial's wall
    time over the cheapest later trial in the same chunk.  ``pickle_s``
    is marshalling work attributable to *this chunk specifically*; the
    coordinator's one-time serialization of the trial callable is
    recorded once on :attr:`MonteCarloTelemetry.pickle_once_s`, not
    smeared across chunks.
    """

    worker: str
    first_seed: int
    trials: int
    pickle_s: float
    compile_s: float
    run_s: float
    wall_s: float


@dataclass
class MonteCarloTelemetry:
    """Per-worker phase timings for one :func:`run_trials_traced` call —
    the view that localizes pool overheads (e.g. the ``workers_4``
    regression row in ``BENCH_perf.json``) to a phase instead of a
    single opaque wall-clock number."""

    executor: str
    workers: int
    wall_s: float = 0.0
    #: One-time cost of serializing the trial callable for a process
    #: pool (paid once by the coordinator, not per chunk).
    pickle_once_s: float = 0.0
    chunks: List[ChunkTelemetry] = field(default_factory=list)

    @property
    def pickle_s(self) -> float:
        """Total marshalling cost: the coordinator's one-time dump plus
        any genuinely per-chunk shares."""
        return self.pickle_once_s + sum(c.pickle_s for c in self.chunks)

    @property
    def compile_s(self) -> float:
        return sum(c.compile_s for c in self.chunks)

    @property
    def run_s(self) -> float:
        return sum(c.run_s for c in self.chunks)


def _split_chunk_phases(walls: Sequence[float]) -> Tuple[float, float]:
    """``(compile_s, run_s)`` from per-trial wall times: the first trial
    pays any per-worker structure build, so its excess over the cheapest
    subsequent trial is attributed to compile."""
    total = sum(walls)
    if len(walls) < 2:
        return 0.0, total
    compile_s = max(0.0, walls[0] - min(walls[1:]))
    return compile_s, total - compile_s


def _run_chunk_spanned(
    trial: Trial,
    first_seed: int,
    count: int,
    worker: str,
    parent_id: Optional[str],
) -> Dict[str, Any]:
    """The worker half of :func:`run_trials_traced`: run a chunk, span
    every trial, and return the spans as JSON objects (a tracer cannot
    cross a process-pool boundary, but its serialized events can).

    ``parent_id`` is the coordinator's map-phase span id — the
    context-propagation handle that grafts this worker's spans onto the
    coordinator's tree when the streams merge.  ``None`` means tracing
    is off and only timings are collected.
    """
    recorder: Optional[RecordingTracer] = None
    spans: Optional[SpanTracer] = None
    if parent_id is not None:
        recorder = RecordingTracer()
        spans = SpanTracer(recorder, worker=worker, parent_id=parent_id)
    wall_t0 = time.time()
    t_chunk = time.perf_counter()
    timed: List[Tuple[float, float]] = []
    ctx = (
        spans.span("montecarlo.chunk", first_seed=first_seed, count=count)
        if spans is not None
        else contextlib.nullcontext()
    )
    with ctx:
        for seed in range(first_seed, first_seed + count):
            if spans is not None:
                with spans.span("montecarlo.trial", seed=seed) as h:
                    t0 = time.perf_counter()
                    value = trial(seed)
                    wall = time.perf_counter() - t0
                    h.annotate(value=value)
            else:
                t0 = time.perf_counter()
                value = trial(seed)
                wall = time.perf_counter() - t0
            timed.append((value, wall))
    return {
        "timed": timed,
        "worker": worker,
        "wall_t0": wall_t0,
        "wall_s": time.perf_counter() - t_chunk,
        "events": (
            [e.to_json_obj() for e in recorder.events]
            if recorder is not None
            else []
        ),
    }


def run_trials_traced(
    trial: Trial,
    n_trials: int,
    base_seed: int = 0,
    z: float = 1.96,
    tracer: Optional[Tracer] = None,
    profiler: Optional[Profiler] = None,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> Tuple[MonteCarloSummary, MonteCarloTelemetry]:
    """:func:`run_trials` with phase-resolved telemetry and causal spans.

    Identical seed partitioning and seed-order reassembly, so the
    returned summary is bit-identical to :func:`run_trials`.  On top,
    the run is decomposed into pickle / map / reduce phases; with an
    enabled ``tracer`` the whole run is one span tree —
    ``montecarlo.run_trials`` at the root, one ``montecarlo.chunk`` per
    worker (propagated across the pool boundary via
    :class:`~repro.obs.spans.SpanContext`-style parent ids), one
    ``montecarlo.trial`` per seed — plus the PR-1 ``montecarlo/trial``
    and ``montecarlo/summary`` progress events, unchanged.
    """
    if n_trials < 2:
        raise ValueError("need at least two trials")
    if workers is not None and workers < 1:
        raise ValueError("workers must be a positive integer")
    tracer = tracer if tracer is not None else NULL_TRACER
    spans = SpanTracer(tracer)
    parallel = workers is not None and workers > 1
    n_workers = workers if parallel else 1
    telemetry = MonteCarloTelemetry(
        executor=executor if parallel else "serial", workers=n_workers
    )
    run_t0 = time.perf_counter()
    with (profiler.profiled("montecarlo") if profiler is not None
          else contextlib.nullcontext()):
        with spans.span(
            "montecarlo.run_trials",
            trials=n_trials, workers=n_workers,
            executor=telemetry.executor,
        ):
            pickle_s = 0.0
            if parallel and executor == "process":
                with spans.span("montecarlo.pickle") as h:
                    t0 = time.perf_counter()
                    payload = pickle.dumps(trial)
                    pickle_s = time.perf_counter() - t0
                    h.annotate(bytes=len(payload))
            chunks = _seed_chunks(base_seed, n_trials, n_workers)
            with spans.span("montecarlo.map") as map_handle:
                parent_id = map_handle.span_id if spans.enabled else None
                if parallel:
                    if executor == "thread":
                        pool_cls = ThreadPoolExecutor
                    elif executor == "process":
                        pool_cls = ProcessPoolExecutor
                    else:
                        raise ValueError(f"unknown executor {executor!r}")
                    with pool_cls(max_workers=n_workers) as pool:
                        results = list(
                            pool.map(
                                _run_chunk_spanned,
                                [trial] * len(chunks),
                                [first for first, _ in chunks],
                                [count for _, count in chunks],
                                [f"w{i}" for i in range(len(chunks))],
                                [parent_id] * len(chunks),
                            )
                        )
                else:
                    results = [
                        _run_chunk_spanned(
                            trial, chunks[0][0], chunks[0][1], "w0", parent_id
                        )
                    ]
            # Merge the workers' span streams into the coordinator's
            # trace; assemble_spans is arrival-order independent, so
            # interleaving per chunk is fine.
            if tracer.enabled:
                for result in results:
                    for obj in result["events"]:
                        tracer.record(TraceEvent.from_json_obj(obj))
            telemetry.pickle_once_s = pickle_s
            for (first, count), result in zip(chunks, results):
                walls = [wall for _, wall in result["timed"]]
                compile_s, run_s = _split_chunk_phases(walls)
                telemetry.chunks.append(
                    ChunkTelemetry(
                        worker=result["worker"],
                        first_seed=first,
                        trials=count,
                        pickle_s=0.0,
                        compile_s=compile_s,
                        run_s=run_s,
                        wall_s=result["wall_s"],
                    )
                )
            with spans.span("montecarlo.reduce"):
                timed = [item for r in results for item in r["timed"]]
                values = [value for value, _ in timed]
                if tracer.enabled:
                    for i, (value, wall_s) in enumerate(timed):
                        tracer.event(
                            float(i), "montecarlo", "trial",
                            seed=base_seed + i, value=value, wall_s=wall_s,
                            completed=i + 1, total=n_trials,
                        )
                summary = summarize(values, z=z)
    telemetry.wall_s = time.perf_counter() - run_t0
    if tracer.enabled:
        tracer.event(
            float(n_trials), "montecarlo", "summary",
            trials=n_trials, mean=summary.mean, stdev=summary.stdev,
            ci_low=summary.ci_low, ci_high=summary.ci_high,
        )
    return summary, telemetry
