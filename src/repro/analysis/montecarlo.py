"""Seeded Monte-Carlo harness.

The stochastic experiments (inverter strings, variation build-up,
self-timed service times) report means with confidence intervals over
independently seeded trials; seeds are derived deterministically from a
base seed so every benchmark run is reproducible.
"""

from __future__ import annotations

import contextlib
import math
import statistics
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.obs.profile import Profiler
from repro.obs.trace import NULL_TRACER, Tracer

Trial = Callable[[int], float]


@dataclass(frozen=True)
class MonteCarloSummary:
    """Mean, spread, and a normal-approximation confidence interval."""

    trials: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    ci_half_width: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_half_width

    def contains(self, value: float) -> bool:
        return self.ci_low <= value <= self.ci_high


def run_trials(
    trial: Trial,
    n_trials: int,
    base_seed: int = 0,
    z: float = 1.96,
    tracer: Optional[Tracer] = None,
    profiler: Optional[Profiler] = None,
) -> MonteCarloSummary:
    """Run ``trial(seed)`` for seeds ``base_seed .. base_seed + n - 1``.

    ``z`` is the normal quantile for the CI (1.96 ~ 95%).

    With a ``tracer``, each trial emits a ``montecarlo/trial`` progress
    event (``t`` is the trial index; the payload carries the seed, the
    trial value, and its wall-clock cost) followed by a final
    ``montecarlo/summary``.  A ``profiler`` accumulates the whole loop
    under a ``montecarlo`` phase.  Both default to off.
    """
    if n_trials < 2:
        raise ValueError("need at least two trials")
    tracer = tracer if tracer is not None else NULL_TRACER
    values: List[float] = []
    with (profiler.profiled("montecarlo") if profiler is not None
          else contextlib.nullcontext()):
        for i in range(n_trials):
            if tracer.enabled:
                t0 = time.perf_counter()
                value = trial(base_seed + i)
                tracer.event(
                    float(i), "montecarlo", "trial",
                    seed=base_seed + i, value=value,
                    wall_s=time.perf_counter() - t0,
                    completed=i + 1, total=n_trials,
                )
            else:
                value = trial(base_seed + i)
            values.append(value)
    mean = statistics.fmean(values)
    stdev = statistics.stdev(values)
    summary = MonteCarloSummary(
        trials=n_trials,
        mean=mean,
        stdev=stdev,
        minimum=min(values),
        maximum=max(values),
        ci_half_width=z * stdev / math.sqrt(n_trials),
    )
    if tracer.enabled:
        tracer.event(
            float(n_trials), "montecarlo", "summary",
            trials=n_trials, mean=mean, stdev=stdev,
            ci_low=summary.ci_low, ci_high=summary.ci_high,
        )
    return summary


def summarize(values: Sequence[float], z: float = 1.96) -> MonteCarloSummary:
    """Summarize an existing sample the same way as :func:`run_trials`."""
    if len(values) < 2:
        raise ValueError("need at least two values")
    mean = statistics.fmean(values)
    stdev = statistics.stdev(values)
    return MonteCarloSummary(
        trials=len(values),
        mean=mean,
        stdev=stdev,
        minimum=min(values),
        maximum=max(values),
        ci_half_width=z * stdev / math.sqrt(len(values)),
    )
