"""Seeded Monte-Carlo harness.

The stochastic experiments (inverter strings, variation build-up,
self-timed service times) report means with confidence intervals over
independently seeded trials; seeds are derived deterministically from a
base seed so every benchmark run is reproducible.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, List, Sequence

Trial = Callable[[int], float]


@dataclass(frozen=True)
class MonteCarloSummary:
    """Mean, spread, and a normal-approximation confidence interval."""

    trials: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    ci_half_width: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_half_width

    def contains(self, value: float) -> bool:
        return self.ci_low <= value <= self.ci_high


def run_trials(
    trial: Trial,
    n_trials: int,
    base_seed: int = 0,
    z: float = 1.96,
) -> MonteCarloSummary:
    """Run ``trial(seed)`` for seeds ``base_seed .. base_seed + n - 1``.

    ``z`` is the normal quantile for the CI (1.96 ~ 95%).
    """
    if n_trials < 2:
        raise ValueError("need at least two trials")
    values: List[float] = [trial(base_seed + i) for i in range(n_trials)]
    mean = statistics.fmean(values)
    stdev = statistics.stdev(values)
    return MonteCarloSummary(
        trials=n_trials,
        mean=mean,
        stdev=stdev,
        minimum=min(values),
        maximum=max(values),
        ci_half_width=z * stdev / math.sqrt(n_trials),
    )


def summarize(values: Sequence[float], z: float = 1.96) -> MonteCarloSummary:
    """Summarize an existing sample the same way as :func:`run_trials`."""
    if len(values) < 2:
        raise ValueError("need at least two values")
    mean = statistics.fmean(values)
    stdev = statistics.stdev(values)
    return MonteCarloSummary(
        trials=len(values),
        mean=mean,
        stdev=stdev,
        minimum=min(values),
        maximum=max(values),
        ci_half_width=z * stdev / math.sqrt(len(values)),
    )
