"""Seeded Monte-Carlo harness.

The stochastic experiments (inverter strings, variation build-up,
self-timed service times) report means with confidence intervals over
independently seeded trials; seeds are derived deterministically from a
base seed so every benchmark run is reproducible.

Trials can run serially or fan out over a ``concurrent.futures`` pool
(``workers=N``).  Seeds are partitioned into contiguous chunks and the
per-trial values are reassembled in seed order before summarizing, so
the parallel path produces *bit-identical* summaries to the serial one
— parallelism is purely a wall-clock optimization, never a semantic
change, and the determinism test pins that down.
"""

from __future__ import annotations

import contextlib
import math
import statistics
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.obs.profile import Profiler
from repro.obs.trace import NULL_TRACER, Tracer

Trial = Callable[[int], float]


@dataclass(frozen=True)
class MonteCarloSummary:
    """Mean, spread, and a normal-approximation confidence interval."""

    trials: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    ci_half_width: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_half_width

    def contains(self, value: float) -> bool:
        return self.ci_low <= value <= self.ci_high


def summarize(values: Sequence[float], z: float = 1.96) -> MonteCarloSummary:
    """Summarize a sample; :func:`run_trials` delegates here, so serial,
    parallel, and pre-collected samples share one construction path."""
    if len(values) < 2:
        raise ValueError("need at least two values")
    mean = statistics.fmean(values)
    stdev = statistics.stdev(values)
    return MonteCarloSummary(
        trials=len(values),
        mean=mean,
        stdev=stdev,
        minimum=min(values),
        maximum=max(values),
        ci_half_width=z * stdev / math.sqrt(len(values)),
    )


class CompiledTrialContext:
    """Compile-once, resample-per-trial structure cache for Monte-Carlo.

    Most trial functions rebuild everything from scratch per seed — array,
    clock tree, compiled simulation kernels — even though only the *noise*
    (wire variation, jitter, service times) depends on the seed.  Wrap the
    structure factory in a ``CompiledTrialContext`` and call :meth:`get`
    inside the trial: the factory runs once per worker (thread-local, and
    process pools rebuild on unpickle), and every seed reuses the result.

    Determinism is unchanged as long as the cached structure's per-seed
    resampling is itself deterministic (e.g.
    ``BufferedClockTree.resample(seed)`` fully rebuilds from the seed):
    trial values then depend only on the seed, exactly as in the uncached
    formulation, so :func:`run_trials` summaries are bit-identical with
    and without the cache — the property tests pin this.

    For ``executor="process"`` the factory must be picklable (a
    module-level function); the built structure itself is never pickled.
    """

    __slots__ = ("_build", "_local")

    def __init__(self, build: Callable[[], Any]) -> None:
        self._build = build
        self._local = threading.local()

    def get(self) -> Any:
        value = getattr(self._local, "value", None)
        if value is None:
            value = self._build()
            self._local.value = value
        return value

    def __getstate__(self) -> Any:
        return self._build  # the cache is per-worker; never ship contents

    def __setstate__(self, state: Any) -> None:
        self._build = state
        self._local = threading.local()


def _seed_chunks(base_seed: int, n_trials: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous ``(first_seed, count)`` chunks covering the seed range.

    The partition depends only on ``(base_seed, n_trials, workers)`` —
    never on scheduling — and chunks are reassembled in order, which is
    what makes the parallel path deterministic.
    """
    chunk = -(-n_trials // workers)  # ceil
    return [
        (base_seed + lo, min(chunk, n_trials - lo))
        for lo in range(0, n_trials, chunk)
    ]


def _run_chunk(trial: Trial, first_seed: int, count: int) -> List[Tuple[float, float]]:
    """Run ``count`` consecutive seeds; returns (value, wall_s) per trial.

    Module-level so the chunk (not the pool plumbing) is what a process
    backend has to pickle.
    """
    out: List[Tuple[float, float]] = []
    for seed in range(first_seed, first_seed + count):
        t0 = time.perf_counter()
        value = trial(seed)
        out.append((value, time.perf_counter() - t0))
    return out


def run_trials(
    trial: Trial,
    n_trials: int,
    base_seed: int = 0,
    z: float = 1.96,
    tracer: Optional[Tracer] = None,
    profiler: Optional[Profiler] = None,
    workers: Optional[int] = None,
    executor: str = "thread",
) -> MonteCarloSummary:
    """Run ``trial(seed)`` for seeds ``base_seed .. base_seed + n - 1``.

    ``z`` is the normal quantile for the CI (1.96 ~ 95%).

    ``workers=N`` (N >= 2) fans the seed range out over a
    ``concurrent.futures`` pool in contiguous chunks; values come back
    in seed order, so the summary is bit-identical to the serial path.
    ``executor`` picks the pool: ``"thread"`` (default — works with any
    callable, pays the GIL for pure-Python trials but wins when trials
    release it) or ``"process"`` (true multi-core, requires ``trial`` to
    be picklable, i.e. a module-level function).

    With a ``tracer``, each trial emits a ``montecarlo/trial`` progress
    event (``t`` is the trial index; the payload carries the seed, the
    trial value, and its wall-clock cost) followed by a final
    ``montecarlo/summary``; parallel runs emit the same events in the
    same seed order once all chunks land.  A ``profiler`` accumulates
    the whole loop under a ``montecarlo`` phase.  Both default to off.
    """
    if n_trials < 2:
        raise ValueError("need at least two trials")
    if workers is not None and workers < 1:
        raise ValueError("workers must be a positive integer")
    tracer = tracer if tracer is not None else NULL_TRACER
    parallel = workers is not None and workers > 1
    values: List[float] = []
    with (profiler.profiled("montecarlo") if profiler is not None
          else contextlib.nullcontext()):
        if parallel:
            if executor == "thread":
                pool_cls = ThreadPoolExecutor
            elif executor == "process":
                pool_cls = ProcessPoolExecutor
            else:
                raise ValueError(f"unknown executor {executor!r}")
            chunks = _seed_chunks(base_seed, n_trials, workers)
            with pool_cls(max_workers=workers) as pool:
                timed = [
                    item
                    for chunk_result in pool.map(
                        _run_chunk,
                        [trial] * len(chunks),
                        [first for first, _ in chunks],
                        [count for _, count in chunks],
                    )
                    for item in chunk_result
                ]
            values = [value for value, _ in timed]
            if tracer.enabled:
                for i, (value, wall_s) in enumerate(timed):
                    tracer.event(
                        float(i), "montecarlo", "trial",
                        seed=base_seed + i, value=value, wall_s=wall_s,
                        completed=i + 1, total=n_trials,
                    )
        else:
            for i in range(n_trials):
                if tracer.enabled:
                    t0 = time.perf_counter()
                    value = trial(base_seed + i)
                    tracer.event(
                        float(i), "montecarlo", "trial",
                        seed=base_seed + i, value=value,
                        wall_s=time.perf_counter() - t0,
                        completed=i + 1, total=n_trials,
                    )
                else:
                    value = trial(base_seed + i)
                values.append(value)
    summary = summarize(values, z=z)
    if tracer.enabled:
        tracer.event(
            float(n_trials), "montecarlo", "summary",
            trials=n_trials, mean=summary.mean, stdev=summary.stdev,
            ci_low=summary.ci_low, ci_high=summary.ci_high,
        )
    return summary
