"""Crossover detection: where one scheme starts beating another.

The evaluation questions the reproduction answers are of the form "who
wins, by what factor, and *where does the crossover fall*" — e.g. the array
size at which pipelined clocking overtakes equipotential clocking, or the
variation magnitude at which the spine overtakes the dissection tree.
:func:`find_crossover` locates the crossing of two sampled curves by linear
interpolation between bracketing sample points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class Crossover:
    """Where curve B drops below curve A (B starts winning).

    Tie semantics: a tie (``B == A``) is *not* a win — B must fall strictly
    below A for a crossover to exist.  But when a run of ties immediately
    precedes the first strict win, the curves first met at the start of that
    run, so ``x`` reports that first touch point.
    """

    x: float
    index: int          # first sample index where B < A (strictly)
    exact: bool         # True when the crossing point x is exactly located
                        # (interpolated zero or a tie sample); False when B
                        # already wins at the first sample, i.e. the true
                        # crossing happened before the sampled range

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "located" if self.exact else "before range"
        return f"Crossover(x={self.x:.4g}, index={self.index}, {kind})"


def find_crossover(
    xs: Sequence[float],
    ys_a: Sequence[float],
    ys_b: Sequence[float],
) -> Optional[Crossover]:
    """The smallest ``x`` at which ``ys_b`` falls strictly below ``ys_a``.

    Returns ``None`` when B never wins in the sampled range (ties alone are
    not wins); a crossover at the first sample means B wins everywhere
    sampled.  Between samples the crossing is located by linear
    interpolation of the difference curve; a tie sample (or a run of them)
    immediately before the first win *is* the crossing point — the curves
    touch there — reported with ``exact=True`` and ``index`` at the first
    strict win.
    """
    if not (len(xs) == len(ys_a) == len(ys_b)):
        raise ValueError("xs, ys_a, ys_b must have equal length")
    if len(xs) < 1:
        raise ValueError("need at least one sample")
    if list(xs) != sorted(xs):
        raise ValueError("xs must be increasing")

    diff = [b - a for a, b in zip(ys_a, ys_b)]
    for i, d in enumerate(diff):
        if d < 0:
            if i == 0:
                # The crossing happened before the sampled range.
                return Crossover(x=xs[0], index=0, exact=False)
            if diff[i - 1] == 0:
                # A tie (or a run of ties) precedes the win: the curves
                # first touched at the start of the run — that sample is
                # the exact crossing point.
                j = i - 1
                while j > 0 and diff[j - 1] == 0:
                    j -= 1
                return Crossover(x=xs[j], index=i, exact=True)
            # Linear interpolation of the sign change.
            d_prev = diff[i - 1]
            frac = d_prev / (d_prev - d)
            x = xs[i - 1] + frac * (xs[i] - xs[i - 1])
            return Crossover(x=x, index=i, exact=True)
    return None


def winning_factor(ys_a: Sequence[float], ys_b: Sequence[float]) -> float:
    """How decisively B wins at the last sample: ``ys_a[-1] / ys_b[-1]``."""
    if not ys_a or not ys_b:
        raise ValueError("need non-empty series")
    if ys_b[-1] == 0:
        raise ValueError("cannot compute a factor against zero")
    return ys_a[-1] / ys_b[-1]
