"""Zero-pickle shipping of compiled structures to process workers.

``run_trials(..., executor="process")`` historically shipped the trial
callable — and everything it closed over — through ``pickle``, so a
process pool paid a structure serialize/deserialize per worker that
dwarfed the trial arithmetic (the ``montecarlo_workers_4`` regression).
This module moves the *data* out of the pickle stream entirely:

* :class:`SharedArena` — one ``multiprocessing.shared_memory`` block
  holding a dict of numpy arrays (64-byte aligned), plus a tiny
  :class:`ArenaHandle` manifest (segment name, dtypes, shapes, offsets).
* :class:`ArenaHandle` — the picklable reference.  ``arrays()`` attaches
  to the segment (cached per process) and returns zero-copy, read-only
  views; handles are a few hundred bytes no matter how large the
  arrays.
* :class:`SharedMemoryTrial` — a picklable trial callable: handle +
  module-level ``build``/``run`` functions.  Each worker process builds
  its state once from the attached views (cached per process) and then
  runs trials at array speed.
* :class:`SharedTrialArena` — the convenience wrapper the benches use:
  arena + ``trial()`` factory.

Lifecycle and caveats
---------------------

The *creator* owns the segment: ``close()`` (or the context manager)
unlinks it.  Attached mappings in workers are dropped when the worker
exits; the attach cache deliberately keeps segments mapped for the
process lifetime so repeated trials stay zero-cost.  POSIX start method
``fork`` (the Linux default) is assumed: forked children share the
parent's resource tracker, so create/attach registrations deduplicate
and the creator's single ``unlink`` retires the name.  Under ``spawn``
each child runs its own tracker, which would unlink the segment when the
first worker exits — do not use this module with spawn-based pools.

If live views still reference the mapping when the creator closes (e.g.
a kernel built in the creating process), the mapping itself is left to
die with the process — the named segment is unlinked regardless, so
nothing leaks system-wide.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

import numpy as np

#: Alignment of every array inside the block, so vector loads never
#: straddle cache lines because of a neighbor's odd byte length.
_ALIGN = 64

_CACHE_LOCK = threading.Lock()
#: Per-process attached segments, by name.  Entries live until the
#: creator closes (its own entry) or the process exits (workers).
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}
#: Per-process built trial states, keyed (segment name, build, run).
_STATES: Dict[Tuple[str, Any, Any], Any] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    with _CACHE_LOCK:
        shm = _ATTACHED.get(name)
        if shm is None:
            shm = shared_memory.SharedMemory(name=name)
            _ATTACHED[name] = shm
        return shm


def _forget(name: str) -> None:
    with _CACHE_LOCK:
        _ATTACHED.pop(name, None)
        for key in [k for k in _STATES if k[0] == name]:
            del _STATES[key]


@dataclass(frozen=True)
class ArraySpec:
    """Manifest entry: where one array lives inside the block."""

    key: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ArenaHandle:
    """Picklable reference to a :class:`SharedArena`'s contents.

    Pickling a handle costs bytes proportional to the *manifest* (a few
    entries), never the arrays — this is the object that crosses the
    process-pool boundary.
    """

    name: str
    specs: Tuple[ArraySpec, ...]

    def arrays(self) -> Dict[str, np.ndarray]:
        """Zero-copy, read-only views of every array (attaches to the
        segment on first use in this process, cached thereafter)."""
        shm = _attach(self.name)
        out: Dict[str, np.ndarray] = {}
        for spec in self.specs:
            view: np.ndarray = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=shm.buf,
                offset=spec.offset,
            )
            view.flags.writeable = False
            out[spec.key] = view
        return out


class SharedArena:
    """One shared-memory block holding a named set of numpy arrays."""

    def __init__(
        self, arrays: Mapping[str, np.ndarray], name: Optional[str] = None
    ) -> None:
        specs = []
        prepared = []
        offset = 0
        for key, value in arrays.items():
            arr = np.ascontiguousarray(value)
            offset = -(-offset // _ALIGN) * _ALIGN
            specs.append(
                ArraySpec(
                    key=key, dtype=arr.dtype.str, shape=arr.shape, offset=offset
                )
            )
            prepared.append((arr, offset))
            offset += arr.nbytes
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(offset, 1), name=name
        )
        for (arr, off), spec in zip(prepared, specs):
            dst: np.ndarray = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=self._shm.buf, offset=off
            )
            dst[...] = arr
        self._handle = ArenaHandle(name=self._shm.name, specs=tuple(specs))
        self._closed = False
        with _CACHE_LOCK:
            # The creator is also a reader; share the same mapping.
            _ATTACHED[self._shm.name] = self._shm

    @property
    def name(self) -> str:
        return self._handle.name

    @property
    def handle(self) -> ArenaHandle:
        return self._handle

    @property
    def nbytes(self) -> int:
        return self._shm.size

    def arrays(self) -> Dict[str, np.ndarray]:
        """Read-only views of the stored arrays (creator-side)."""
        return self._handle.arrays()

    def close(self, unlink: bool = True) -> None:
        """Retire the segment.  ``unlink=True`` (creator's duty) removes
        the name system-wide; attached workers keep their mappings until
        they exit.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        _forget(self.name)
        if unlink:
            self._shm.unlink()
        try:
            self._shm.close()
        except BufferError:
            # Live views (a kernel built in this process) still pin the
            # mapping; it dies with the process, and the name is already
            # unlinked, so nothing leaks system-wide.
            pass

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _trial_state(trial: "SharedMemoryTrial") -> Any:
    key = (trial.handle.name, trial.build, trial.run)
    with _CACHE_LOCK:
        state = _STATES.get(key)
    if state is None:
        built = trial.build(trial.handle.arrays())
        with _CACHE_LOCK:
            state = _STATES.setdefault(key, built)
    return state


@dataclass(frozen=True)
class SharedMemoryTrial:
    """A picklable ``trial(seed)`` whose data rides shared memory.

    ``build`` (module-level function) turns the attached array views
    into the per-process state — e.g.
    ``CompiledSkewSampler.from_arrays`` — and runs once per process;
    ``run`` (module-level function) maps ``(state, seed)`` to the trial
    value.  Pickling ships only the handle and the two function
    references, so process pools pay O(manifest) serialization
    regardless of structure size.
    """

    handle: ArenaHandle
    build: Callable[[Mapping[str, np.ndarray]], Any]
    run: Callable[[Any, int], float]

    def __call__(self, seed: int) -> float:
        return self.run(_trial_state(self), seed)


class SharedTrialArena(SharedArena):
    """A :class:`SharedArena` that mints :class:`SharedMemoryTrial`\\ s.

    The Monte-Carlo pattern in one object::

        arena = SharedTrialArena(sampler.arrays())
        trial = arena.trial(_build_sampler, _run_sampler)
        summary = run_trials(trial, n, workers=4, executor="process")
        arena.close()

    where ``_build_sampler`` / ``_run_sampler`` are module-level
    functions.  Workers attach to the arena instead of unpickling the
    structure; summaries are bit-identical to the serial path because
    only the execution venue changes, never the per-seed arithmetic.
    """

    def trial(
        self,
        build: Callable[[Mapping[str, np.ndarray]], Any],
        run: Callable[[Any, int], float],
    ) -> SharedMemoryTrial:
        return SharedMemoryTrial(handle=self.handle, build=build, run=run)
