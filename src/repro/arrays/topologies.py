"""Generators for the array topologies the paper discusses.

Each generator returns a :class:`~repro.arrays.model.ProcessorArray` whose
layout places cells on the unit grid (satisfying A2 spacing) in the natural
arrangement shown in the paper's figures: a row for linear arrays (Fig. 4),
a grid for square arrays (Fig. 3(b)), a grid with one diagonal for hexagonal
arrays (Fig. 3(c)), and a classical planar drawing for binary trees
(Section VIII).
"""

from __future__ import annotations

from typing import Tuple

from repro.arrays.model import ProcessorArray
from repro.geometry.layout import Layout
from repro.geometry.point import Point
from repro.graphs.comm import CommGraph


def linear_array(
    n: int, spacing: float = 1.0, bidirectional: bool = True
) -> ProcessorArray:
    """A one-dimensional array of ``n`` cells in a row.

    Cells are integers ``0 .. n-1`` placed at ``(i * spacing, 0)``.  With
    ``bidirectional`` data flows both ways (the common systolic case); the
    host sits at cell 0.
    """
    if n < 1:
        raise ValueError("linear array needs at least one cell")
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    comm = CommGraph(nodes=range(n))
    layout = Layout({i: Point(i * spacing, 0.0) for i in range(n)})
    for i in range(n - 1):
        if bidirectional:
            comm.add_bidirectional(i, i + 1)
        else:
            comm.add_edge(i, i + 1)
    return ProcessorArray(comm, layout, name=f"linear-{n}", host=0)


def ring(n: int, bidirectional: bool = True) -> ProcessorArray:
    """A ring of ``n`` cells laid out as a folded (two-row) linear array, so
    all communicating cells stay at bounded distance — the layout the Fig. 5
    folding produces."""
    if n < 3:
        raise ValueError("ring needs at least three cells")
    comm = CommGraph(nodes=range(n))
    half = (n + 1) // 2
    layout = Layout()
    for i in range(n):
        if i < half:
            layout.place(i, Point(float(i), 0.0))
        else:
            layout.place(i, Point(float(n - 1 - i), 1.0))
    for i in range(n):
        j = (i + 1) % n
        if bidirectional:
            comm.add_bidirectional(i, j)
        else:
            comm.add_edge(i, j)
    return ProcessorArray(comm, layout, name=f"ring-{n}", host=0)


def mesh(rows: int, cols: int, bidirectional: bool = True) -> ProcessorArray:
    """An ``rows x cols`` mesh-connected array (Fig. 3(b)); cells are
    ``(r, c)`` tuples placed at ``(c, r)``."""
    if rows < 1 or cols < 1:
        raise ValueError("mesh dimensions must be positive")
    comm = CommGraph(nodes=((r, c) for r in range(rows) for c in range(cols)))
    layout = Layout(
        {(r, c): Point(float(c), float(r)) for r in range(rows) for c in range(cols)}
    )
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                _link(comm, (r, c), (r, c + 1), bidirectional)
            if r + 1 < rows:
                _link(comm, (r, c), (r + 1, c), bidirectional)
    return ProcessorArray(comm, layout, name=f"mesh-{rows}x{cols}", host=(0, 0))


def torus(rows: int, cols: int, bidirectional: bool = True) -> ProcessorArray:
    """A mesh with wraparound edges.  The wrap edges make communicating
    cells far apart under the natural grid layout — a topology for which
    both the skew and the data-delay assumptions get strained, useful in
    Theorem 6 sweeps (bisection width 2n)."""
    if rows < 3 or cols < 3:
        raise ValueError("torus dimensions must be at least 3")
    array = mesh(rows, cols, bidirectional)
    comm = array.comm
    for r in range(rows):
        _link(comm, (r, cols - 1), (r, 0), bidirectional)
    for c in range(cols):
        _link(comm, (rows - 1, c), (0, c), bidirectional)
    return ProcessorArray(comm, array.layout, name=f"torus-{rows}x{cols}", host=(0, 0))


def hex_array(rows: int, cols: int, bidirectional: bool = True) -> ProcessorArray:
    """A hexagonally connected array (Fig. 3(c)): the mesh plus one diagonal
    per cell, giving each interior cell six neighbors."""
    if rows < 1 or cols < 1:
        raise ValueError("hex array dimensions must be positive")
    array = mesh(rows, cols, bidirectional)
    comm = array.comm
    for r in range(rows - 1):
        for c in range(cols - 1):
            _link(comm, (r, c), (r + 1, c + 1), bidirectional)
    return ProcessorArray(comm, array.layout, name=f"hex-{rows}x{cols}", host=(0, 0))


def complete_binary_tree(depth: int, bidirectional: bool = True) -> ProcessorArray:
    """A complete binary tree of the given depth (root = depth 0).

    Cells are ``(level, index)`` tuples.  The default layout is the classical
    planar drawing (leaves evenly spaced on the bottom row, each internal
    node centered over its children); Section VIII's H-tree layout lives in
    :mod:`repro.treemachine.layout`.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    comm = CommGraph(nodes=[(0, 0)])
    layout = Layout()
    leaves = 2**depth
    for level in range(depth + 1):
        count = 2**level
        gap = leaves / count
        for index in range(count):
            x = gap * (index + 0.5)
            layout.place((level, index), Point(x, float(depth - level) * 2.0))
    for level in range(depth):
        for index in range(2**level):
            for child in (2 * index, 2 * index + 1):
                _link(comm, (level, index), (level + 1, child), bidirectional)
    return ProcessorArray(
        comm, layout, name=f"binary-tree-depth-{depth}", host=(0, 0)
    )


def _link(comm: CommGraph, a: Tuple, b: Tuple, bidirectional: bool) -> None:
    if bidirectional:
        comm.add_bidirectional(a, b)
    else:
        comm.add_edge(a, b)
