"""Classical systolic workloads.

These are the computations the paper's arrays exist to run: FIR filtering
and matrix-vector multiplication on one-dimensional arrays ("especially
important in practice" — Section V-A), odd-even transposition sort on a
linear array, and matrix multiplication on a two-dimensional mesh.  Each
builder returns a :class:`SystolicProgram`: the COMM graph (cells plus host
source/sink nodes), a PE per node, a laid-out :class:`ProcessorArray`, the
cycle count needed, and a result extractor.

The same program runs under the ideal lockstep executor and under the
skew-aware clocked simulator; agreement between the two is the functional
definition of "correctly synchronized".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Sequence

from repro.arrays.cells import PE, Inputs, Outputs, RecordingSink, ScriptedSource
from repro.arrays.ideal import LockstepExecutor
from repro.arrays.model import ProcessorArray
from repro.geometry.layout import Layout
from repro.geometry.point import Point
from repro.graphs.comm import CommGraph

CellId = Hashable


@dataclass
class SystolicProgram:
    """A runnable systolic computation.

    ``array`` holds the full laid-out graph including host nodes, so clocking
    schemes can distribute a clock to sources and sinks as well (they latch
    data like any other cell).
    """

    array: ProcessorArray
    pes: Dict[CellId, PE]
    cycles: int
    read_result: Callable[[LockstepExecutor], Any]

    def run_lockstep(self) -> Any:
        """Execute on the ideal lockstep executor and return the result."""
        executor = LockstepExecutor(self.array.comm, self.pes)
        executor.reset()
        executor.run(self.cycles)
        return self.read_result(executor)


def _num(value: Any) -> float:
    """Bubble-tolerant arithmetic: ``None`` reads as 0."""
    return 0.0 if value is None else float(value)


# ----------------------------------------------------------------------
# FIR convolution on a linear array
# ----------------------------------------------------------------------
class FirCell(PE):
    """One tap of the systolic FIR filter.

    Design: results ``y`` move right one stage per tick; inputs ``x`` move
    right through an extra register (two ticks per stage).  The relative
    slip of one tick per stage aligns ``y`` with successively older ``x``
    values, producing ``y_T = sum_j w_j * x_{T'-j}`` at the output.
    """

    def __init__(self, weight: float, left: CellId, right: CellId) -> None:
        self.weight = float(weight)
        self._left = left
        self._right = right
        self._x_reg: Any = None

    def reset(self) -> None:
        self._x_reg = None

    def fire(self, inputs: Inputs) -> Outputs:
        packet = inputs.get(self._left)
        x_in, y_in = packet if packet is not None else (None, None)
        y_out = _num(y_in) + self.weight * _num(x_in)
        x_out = self._x_reg
        self._x_reg = x_in
        return {self._right: (x_out, y_out)}


def build_fir_array(weights: Sequence[float], xs: Sequence[float]) -> SystolicProgram:
    """FIR filter ``y[t] = sum_j w[j] * x[t-j]`` on a linear array.

    One cell per tap; the host feeds ``(x, 0)`` packets from the left, the
    sink collects ``(x, y)`` packets on the right.  The result is the full
    convolution of ``xs`` with ``weights`` (length ``len(xs)+len(weights)-1``),
    matching ``numpy.convolve``.
    """
    k = len(weights)
    if k < 1:
        raise ValueError("need at least one tap")
    n_out = len(xs) + k - 1
    # Pad x so the last outputs flush through the deep (2 ticks/stage) x path.
    script = [(float(x), 0.0) for x in xs] + [(0.0, 0.0)] * (2 * k + 1)
    cycles = len(script) + 2 * k + 2

    comm = CommGraph()
    layout = Layout()
    pes: Dict[CellId, PE] = {}
    layout.place("src", Point(-1.0, 0.0))
    layout.place("snk", Point(float(k), 0.0))
    pes["src"] = ScriptedSource(script, targets=[0])
    sink = RecordingSink()
    pes["snk"] = sink
    for j in range(k):
        layout.place(j, Point(float(j), 0.0))
        left = "src" if j == 0 else j - 1
        right = "snk" if j == k - 1 else j + 1
        comm.add_edge(left, j)
        pes[j] = FirCell(weights[j], left=left, right=right)
    comm.add_edge(k - 1, "snk")

    array = ProcessorArray(comm, layout, name=f"fir-{k}", host="src")

    def read_result(executor: LockstepExecutor) -> List[float]:
        packets = sink.stream_from(k - 1, drop_none=True)
        ys = [y for (_x, y) in packets]
        # The y exiting the last cell at tick T equals
        # sum_i w_i * x_{T - k - i}: the first k entries are pipeline fill
        # (convolution of the implicit zero padding), the next n_out are the
        # full convolution.
        return ys[k : k + n_out]

    return SystolicProgram(array, pes, cycles, read_result)


# ----------------------------------------------------------------------
# Matrix-vector product on a linear array (x stationary)
# ----------------------------------------------------------------------
class MatVecCell(PE):
    """One column cell of the systolic matrix-vector product.

    Holds ``x_j`` stationary; matrix entries ``a_{i,j}`` stream in from a
    per-cell host (skewed by ``j`` ticks) while partial sums ``y_i`` march
    left-to-right, each gaining ``a_{i,j} * x_j`` on the way.
    """

    def __init__(self, x_value: float, left: CellId, right: CellId, feed: CellId) -> None:
        self.x_value = float(x_value)
        self._left = left
        self._right = right
        self._feed = feed

    def fire(self, inputs: Inputs) -> Outputs:
        y_in = inputs.get(self._left)
        a_in = inputs.get(self._feed)
        if y_in is None and a_in is None:
            return {self._right: None}
        y_out = _num(y_in) + _num(a_in) * self.x_value
        return {self._right: y_out}


def build_matvec_array(
    matrix: Sequence[Sequence[float]], x: Sequence[float]
) -> SystolicProgram:
    """Dense ``y = A @ x`` on a linear array of ``n = len(x)`` cells.

    Rows stream through in a wavefront: ``y_i`` is injected as 0 at tick
    ``i`` and exits the array ``n+1`` ticks later fully accumulated.  The
    per-cell feed hosts model the vertical I/O common in practical linear
    systolic machines.
    """
    m = len(matrix)
    n = len(x)
    if m < 1 or n < 1:
        raise ValueError("matrix and vector must be non-empty")
    if any(len(row) != n for row in matrix):
        raise ValueError("matrix width must match len(x)")

    comm = CommGraph()
    layout = Layout()
    pes: Dict[CellId, PE] = {}
    layout.place("ysrc", Point(-1.0, 0.0))
    layout.place("snk", Point(float(n), 0.0))
    pes["ysrc"] = ScriptedSource([0.0] * m, targets=[0])
    sink = RecordingSink()
    pes["snk"] = sink

    for j in range(n):
        layout.place(j, Point(float(j), 0.0))
        feed = ("a", j)
        layout.place(feed, Point(float(j), 1.0))
        # Host j emits a[i][j] at tick i + j so it meets y_i at cell j.
        script: List[Optional[float]] = [None] * j + [float(matrix[i][j]) for i in range(m)]
        pes[feed] = ScriptedSource(script, targets=[j])
        comm.add_edge(feed, j)
        left = "ysrc" if j == 0 else j - 1
        right = "snk" if j == n - 1 else j + 1
        comm.add_edge(left, j)
        pes[j] = MatVecCell(x[j], left=left, right=right, feed=feed)
    comm.add_edge(n - 1, "snk")

    cycles = m + n + 3
    array = ProcessorArray(comm, layout, name=f"matvec-{m}x{n}", host="ysrc")

    def read_result(executor: LockstepExecutor) -> List[float]:
        return sink.stream_from(n - 1, drop_none=True)[:m]

    return SystolicProgram(array, pes, cycles, read_result)


# ----------------------------------------------------------------------
# Odd-even transposition sort on a linear array
# ----------------------------------------------------------------------
class SorterCell(PE):
    """One cell of the odd-even transposition sorter.

    Each tick every cell broadcasts its value to both neighbors; on the next
    tick it pairs with the left or right neighbor according to the round's
    parity and keeps the min (left partner) or max (right partner).
    """

    def __init__(self, index: int, n: int, value: float) -> None:
        self.index = index
        self.n = n
        self.initial = float(value)
        self.value = float(value)
        self._tick = 0

    def reset(self) -> None:
        self.value = self.initial
        self._tick = 0

    def _partner(self, round_number: int) -> Optional[int]:
        if round_number % 2 == 0:
            partner = self.index + 1 if self.index % 2 == 0 else self.index - 1
        else:
            partner = self.index + 1 if self.index % 2 == 1 else self.index - 1
        if 0 <= partner < self.n:
            return partner
        return None

    def fire(self, inputs: Inputs) -> Outputs:
        if self._tick > 0:
            partner = self._partner(self._tick - 1)
            if partner is not None and inputs.get(partner) is not None:
                other = float(inputs[partner])
                if partner > self.index:
                    self.value = min(self.value, other)
                else:
                    self.value = max(self.value, other)
        self._tick += 1
        out: Outputs = {}
        if self.index > 0:
            out[self.index - 1] = self.value
        if self.index < self.n - 1:
            out[self.index + 1] = self.value
        return out


def build_odd_even_sorter(values: Sequence[float]) -> SystolicProgram:
    """Odd-even transposition sort of ``values`` on a linear array.

    ``n`` compare-exchange rounds sort ``n`` values; the result is read from
    the resident cell values, left to right.
    """
    n = len(values)
    if n < 1:
        raise ValueError("need at least one value")
    comm = CommGraph(nodes=range(n))
    layout = Layout({i: Point(float(i), 0.0) for i in range(n)})
    for i in range(n - 1):
        comm.add_bidirectional(i, i + 1)
    pes: Dict[CellId, PE] = {
        i: SorterCell(i, n, values[i]) for i in range(n)
    }
    cycles = n + 1  # n rounds plus the initial broadcast tick
    array = ProcessorArray(comm, layout, name=f"sorter-{n}", host=0)

    def read_result(executor: LockstepExecutor) -> List[float]:
        return [executor.pe(i).value for i in range(n)]  # type: ignore[attr-defined]

    return SystolicProgram(array, pes, cycles, read_result)


# ----------------------------------------------------------------------
# Matrix multiplication on a 2D mesh
# ----------------------------------------------------------------------
class MatMulCell(PE):
    """One cell of the systolic mesh matrix multiplier.

    ``A`` entries stream rightward, ``B`` entries stream downward, and the
    product accumulates in place: cell ``(r, c)`` ends holding ``C[r][c]``.
    """

    def __init__(self, left: CellId, up: CellId, right: Optional[CellId], down: Optional[CellId]) -> None:
        self._left = left
        self._up = up
        self._right = right
        self._down = down
        self.acc = 0.0

    def reset(self) -> None:
        self.acc = 0.0

    def fire(self, inputs: Inputs) -> Outputs:
        a_in = inputs.get(self._left)
        b_in = inputs.get(self._up)
        if a_in is not None and b_in is not None:
            self.acc += float(a_in) * float(b_in)
        out: Outputs = {}
        if self._right is not None:
            out[self._right] = a_in
        if self._down is not None:
            out[self._down] = b_in
        return out


def build_mesh_matmul(
    a: Sequence[Sequence[float]], b: Sequence[Sequence[float]]
) -> SystolicProgram:
    """Dense ``C = A @ B`` on an ``n x n`` mesh (A is n x k, B is k x n is
    restricted here to square ``n x n`` for layout simplicity).

    Row hosts feed ``A`` skewed by row index; column hosts feed ``B`` skewed
    by column index, so ``a[r][k]`` and ``b[k][c]`` meet at cell ``(r, c)``
    at tick ``r + c + k + 1``.
    """
    n = len(a)
    if n < 1 or len(b) != n or any(len(row) != n for row in a) or any(
        len(row) != n for row in b
    ):
        raise ValueError("build_mesh_matmul needs square matrices of equal size")

    comm = CommGraph()
    layout = Layout()
    pes: Dict[CellId, PE] = {}

    for r in range(n):
        host = ("a", r)
        layout.place(host, Point(-1.0, float(r)))
        script: List[Optional[float]] = [None] * r + [float(a[r][k]) for k in range(n)]
        pes[host] = ScriptedSource(script, targets=[(r, 0)])
        comm.add_edge(host, (r, 0))
    for c in range(n):
        host = ("b", c)
        layout.place(host, Point(float(c), -1.0))
        script = [None] * c + [float(b[k][c]) for k in range(n)]
        pes[host] = ScriptedSource(script, targets=[(0, c)])
        comm.add_edge(host, (0, c))

    for r in range(n):
        for c in range(n):
            layout.place((r, c), Point(float(c), float(r)))
            left = ("a", r) if c == 0 else (r, c - 1)
            up = ("b", c) if r == 0 else (r - 1, c)
            right = (r, c + 1) if c + 1 < n else None
            down = (r + 1, c) if r + 1 < n else None
            if right is not None:
                comm.add_edge((r, c), right)
            if down is not None:
                comm.add_edge((r, c), down)
            pes[(r, c)] = MatMulCell(left, up, right, down)

    cycles = 3 * n + 2
    array = ProcessorArray(comm, layout, name=f"matmul-{n}", host=("a", 0))

    def read_result(executor: LockstepExecutor) -> List[List[float]]:
        return [
            [executor.pe((r, c)).acc for c in range(n)]  # type: ignore[attr-defined]
            for r in range(n)
        ]

    return SystolicProgram(array, pes, cycles, read_result)
