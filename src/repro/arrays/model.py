"""The :class:`ProcessorArray` bundle: a COMM graph plus its planar layout.

Assumption A1 ties the communication graph to a layout in the plane; skew
models and clocking schemes need both, so topology generators return them
together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

from repro.geometry.layout import Layout
from repro.graphs.comm import CommGraph

CellId = Hashable


@dataclass
class ProcessorArray:
    """A laid-out processor array.

    ``host`` optionally names the cell through which the array talks to the
    outside world (relevant to the Fig. 5 folding discussion, where skew
    between the host and the array ends matters).
    """

    comm: CommGraph
    layout: Layout
    name: str = "array"
    host: Optional[CellId] = None
    _pairs_cache: Optional[Tuple[int, List[Tuple[CellId, CellId]]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        missing = [cell for cell in self.comm.nodes() if cell not in self.layout]
        if missing:
            raise ValueError(
                f"{len(missing)} cells of {self.name!r} have no layout position "
                f"(first: {missing[0]!r})"
            )

    @property
    def size(self) -> int:
        return self.comm.node_count

    def communicating_pairs(self) -> List[Tuple[CellId, CellId]]:
        """The undirected pair set of ``comm``, cached per graph version.

        Keyed on ``comm.version`` so mutating the graph (``add_edge`` /
        ``add_node``) transparently invalidates it.  The returned list is
        shared across calls — treat it as read-only; copy before mutating.
        """
        if self._pairs_cache is None or self._pairs_cache[0] != self.comm.version:
            self._pairs_cache = (self.comm.version, self.comm.communicating_pairs())
        return self._pairs_cache[1]

    def max_communication_distance(self) -> float:
        """Longest Manhattan distance between communicating cells.

        Bounds the data-propagation component of the cycle (the delta of
        assumption A5) under distance-proportional wire delay.
        """
        return max(
            (self.layout.distance(u, v) for u, v in self.communicating_pairs()),
            default=0.0,
        )

    def validate(self, min_separation: float = 1.0) -> None:
        """Raise if the array violates the layout assumptions (A2)."""
        if not self.comm.is_connected():
            raise ValueError(f"{self.name!r} communication graph is disconnected")
        if not self.layout.is_well_spaced(min_separation):
            raise ValueError(
                f"{self.name!r} layout places cells closer than {min_separation}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessorArray({self.name!r}, {self.size} cells)"
