"""Processing elements (PEs).

A PE is the behavioural content of a cell (A1): at every clock tick it
consumes one value from each in-edge and produces one value for each
out-edge.  The same PE objects run under the ideal lockstep executor
(:mod:`repro.arrays.ideal`) and under the skew-aware discrete-event clocked
simulator (:mod:`repro.sim.clocked`), which is what lets the tests check
that a clocking scheme preserves ideal semantics.

Values travelling on edges may be anything; ``None`` denotes "no data yet"
(pipelines fill gradually) and PEs are expected to treat it as a harmless
bubble.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Mapping, Sequence

CellId = Hashable
Inputs = Mapping[CellId, Any]
Outputs = Dict[CellId, Any]


class PE:
    """Base processing element: latch inputs, compute, drive outputs.

    Subclasses override :meth:`fire`; ``reset`` must restore the initial
    state so one PE instance can be re-run (the tests execute the same
    program under several synchronization schemes).
    """

    def reset(self) -> None:
        """Restore initial state.  Default: stateless."""

    def fire(self, inputs: Inputs) -> Outputs:
        """Consume this tick's inputs, return this tick's outputs.

        ``inputs`` maps each in-neighbor to the value it sent last tick
        (``None`` while the pipeline is filling).  The returned dict maps
        out-neighbors to values; omitted out-neighbors receive ``None``.
        """
        raise NotImplementedError


class ScriptedSource(PE):
    """A host/boundary cell that emits a pre-programmed stream.

    Emits ``script[t]`` on tick ``t`` to every out-neighbor in ``targets``
    (and ``None`` once the script is exhausted).
    """

    def __init__(self, script: Sequence[Any], targets: Sequence[CellId]) -> None:
        self._script = list(script)
        self._targets = list(targets)
        self._t = 0

    def reset(self) -> None:
        self._t = 0

    def fire(self, inputs: Inputs) -> Outputs:
        value = self._script[self._t] if self._t < len(self._script) else None
        self._t += 1
        return {target: value for target in self._targets}


class RecordingSink(PE):
    """A boundary cell that records everything it receives.

    ``received[u]`` is the list of values received from in-neighbor ``u``,
    one per tick, in tick order.
    """

    def __init__(self) -> None:
        self.received: Dict[CellId, List[Any]] = {}

    def reset(self) -> None:
        self.received = {}

    def fire(self, inputs: Inputs) -> Outputs:
        for src, value in inputs.items():
            self.received.setdefault(src, []).append(value)
        return {}

    def stream_from(self, src: CellId, drop_none: bool = True) -> List[Any]:
        """The recorded stream from ``src``, bubbles dropped by default."""
        values = self.received.get(src, [])
        if drop_none:
            return [v for v in values if v is not None]
        return list(values)


class DelayCell(PE):
    """A pure register: forwards each input to a designated target after a
    configurable number of extra ticks (0 = plain systolic register)."""

    def __init__(self, source: CellId, target: CellId, extra_delay: int = 0) -> None:
        if extra_delay < 0:
            raise ValueError("extra_delay must be non-negative")
        self._source = source
        self._target = target
        self._extra = extra_delay
        self._pipe: List[Any] = [None] * extra_delay

    def reset(self) -> None:
        self._pipe = [None] * self._extra

    def fire(self, inputs: Inputs) -> Outputs:
        value = inputs.get(self._source)
        if self._extra == 0:
            return {self._target: value}
        self._pipe.append(value)
        return {self._target: self._pipe.pop(0)}


class ConstantCell(PE):
    """Emits a fixed value to every target on every tick; useful as a
    placeholder cell in clock-distribution-only experiments where data
    content is irrelevant."""

    def __init__(self, value: Any, targets: Sequence[CellId]) -> None:
        self._value = value
        self._targets = list(targets)

    def fire(self, inputs: Inputs) -> Outputs:
        return {target: self._value for target in self._targets}


class FunctionCell(PE):
    """Wraps an arbitrary ``(state, inputs) -> (state, outputs)`` function —
    the quickest way to define a custom PE in examples."""

    def __init__(
        self,
        func: Callable[[Any, Inputs], "tuple[Any, Outputs]"],
        initial_state: Any = None,
    ) -> None:
        self._func = func
        self._initial = initial_state
        self._state = initial_state

    def reset(self) -> None:
        self._state = self._initial

    def fire(self, inputs: Inputs) -> Outputs:
        self._state, outputs = self._func(self._state, inputs)
        return outputs
