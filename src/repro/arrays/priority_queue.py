"""A systolic priority queue on a linear array (Leiserson's classic).

One of the linear-array workloads that make Section V-A's "one-dimensional
arrays are especially important in practice" concrete: a priority queue
with constant-time INSERT and EXTRACT-MIN at the array's left end,
regardless of queue length — provided commands are spaced two ticks apart
so the insertion and refill waves never collide.

Protocol (per cell, per tick):

* rightward channel carries commands: ``("ins", x)`` or ``("ext",)``;
* leftward channel carries values: ``("val", x)`` — extraction answers at
  cell 0, refills everywhere else;
* a cell processes an arriving refill before an arriving command;
* INSERT keeps the smaller of (held, incoming) and forwards an INSERT of
  the larger — the sortedness wave;
* EXTRACT emits the held value leftward, marks itself empty/awaiting, and
  forwards EXTRACT; the refill arrives from the right two ticks later.

The array therefore maintains "each cell's value <= its right neighbor's"
between command waves, so cell 0 always holds the minimum.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.arrays.cells import PE, Inputs, Outputs
from repro.arrays.ideal import LockstepExecutor
from repro.arrays.model import ProcessorArray
from repro.arrays.systolic import SystolicProgram
from repro.geometry.layout import Layout
from repro.geometry.point import Point
from repro.graphs.comm import CommGraph

CellId = Hashable

Op = Tuple[str, Optional[float]]  # ("ins", x) or ("ext", None)


class PriorityQueueCell(PE):
    """One cell of the systolic priority queue."""

    def __init__(self, left: CellId, right: Optional[CellId]) -> None:
        self._left = left
        self._right = right
        self.value: Optional[float] = None
        self._awaiting_refill = False

    def reset(self) -> None:
        self.value = None
        self._awaiting_refill = False

    def fire(self, inputs: Inputs) -> Outputs:
        out: Outputs = {}
        # Refill from the right first (it belongs to the previous command).
        if self._right is not None:
            refill = inputs.get(self._right)
            if refill is not None and refill[0] == "val":
                if self._awaiting_refill:
                    self.value = refill[1]
                    self._awaiting_refill = False
        command = inputs.get(self._left)
        if command is None:
            return out
        kind = command[0]
        if kind == "ins":
            x = command[1]
            if self.value is None:
                self.value = x
            else:
                keep, push = (
                    (self.value, x) if self.value <= x else (x, self.value)
                )
                self.value = keep
                if self._right is not None:
                    out[self._right] = ("ins", push)
        elif kind == "ext":
            out[self._left] = ("val", self.value)
            self.value = None
            self._awaiting_refill = True
            if self._right is not None:
                out[self._right] = ("ext",)
        return out


class _PqHost(PE):
    """Feeds commands every other tick and records extraction answers."""

    def __init__(self, ops: Sequence[Op], first_cell: CellId) -> None:
        self._ops = list(ops)
        self._first = first_cell
        self._tick = 0
        self.answers: List[Optional[float]] = []

    def reset(self) -> None:
        self._tick = 0
        self.answers = []

    def fire(self, inputs: Inputs) -> Outputs:
        reply = inputs.get(self._first)
        if reply is not None and reply[0] == "val":
            self.answers.append(reply[1])
        out: Outputs = {}
        if self._tick % 2 == 0:
            index = self._tick // 2
            if index < len(self._ops):
                kind, x = self._ops[index]
                out[self._first] = ("ins", x) if kind == "ins" else ("ext",)
        self._tick += 1
        return out


def build_priority_queue(ops: Sequence[Op], n_cells: Optional[int] = None) -> SystolicProgram:
    """A priority-queue program executing ``ops`` in order.

    ``n_cells`` defaults to the maximum possible queue occupancy (number of
    inserts), the capacity needed in the worst case.  Extractions from an
    empty queue answer ``None``.
    """
    for kind, _x in ops:
        if kind not in ("ins", "ext"):
            raise ValueError(f"unknown op kind {kind!r}")
    inserts = sum(1 for kind, _x in ops if kind == "ins")
    if n_cells is None:
        n_cells = max(1, inserts)
    if n_cells < 1:
        raise ValueError("need at least one cell")
    if inserts > n_cells:
        raise ValueError("queue capacity below number of inserts")

    comm = CommGraph()
    layout = Layout()
    pes: Dict[CellId, PE] = {}
    layout.place("host", Point(-1.0, 0.0))
    host = _PqHost(ops, first_cell=0)
    pes["host"] = host
    comm.add_bidirectional("host", 0)
    for i in range(n_cells):
        layout.place(i, Point(float(i), 0.0))
        left = "host" if i == 0 else i - 1
        right = i + 1 if i + 1 < n_cells else None
        if right is not None:
            comm.add_bidirectional(i, right)
        pes[i] = PriorityQueueCell(left=left, right=right)

    # Commands are spaced 2 ticks; waves need ~2*n_cells to settle.
    cycles = 2 * len(ops) + 2 * n_cells + 4
    array = ProcessorArray(comm, layout, name=f"pqueue-{n_cells}", host="host")

    def read_result(executor: LockstepExecutor) -> List[Optional[float]]:
        return list(host.answers)

    return SystolicProgram(array, pes, cycles, read_result)


def reference_priority_queue(ops: Sequence[Op]) -> List[Optional[float]]:
    """Heap-based reference semantics for validation."""
    import heapq

    heap: List[float] = []
    out: List[Optional[float]] = []
    for kind, x in ops:
        if kind == "ins":
            heapq.heappush(heap, x)  # type: ignore[arg-type]
        else:
            out.append(heapq.heappop(heap) if heap else None)
    return out
