"""High-bisection-width interconnection networks.

Theorem 6 turns bisection width into a skew lower bound; meshes
(W = Theta(sqrt(N))) are its headline case, but richer networks make the
point harder: butterflies, cube-connected cycles, and shuffle-exchange
graphs have bisection width Theta(N / log N) — *above* the theorem's
``W(N) = O(sqrt(N))`` applicability window.  For such graphs the area
argument caps what the machinery can certify at Theta(sqrt(N)) (a layout of
N unit cells only has Theta(sqrt(N)) diameter to hide skew in), which is
itself unbounded — so they are, a fortiori, unclockable at constant skew.

Layouts here are the natural planar drawings (level-by-level grids for the
butterfly, a ring-of-rings grid for CCC, a single row for shuffle-exchange);
their long wires also illustrate the paper's closing remark that
communication delay grows alongside skew in such graphs.
"""

from __future__ import annotations

from repro.arrays.model import ProcessorArray
from repro.geometry.layout import Layout
from repro.geometry.point import Point
from repro.graphs.comm import CommGraph


def butterfly(k: int, bidirectional: bool = True) -> ProcessorArray:
    """A k-dimensional butterfly: ``(k+1) * 2^k`` nodes ``(level, row)``.

    Node ``(l, r)`` connects to ``(l+1, r)`` (straight) and to
    ``(l+1, r XOR 2^l)`` (cross).  Laid out level by level: level ``l`` is
    drawn as row ``l`` of a grid, rows in natural binary order, so cross
    edges at level ``l`` have horizontal span ``2^l``.
    """
    if k < 1:
        raise ValueError("butterfly dimension must be at least 1")
    rows = 2**k
    comm = CommGraph(nodes=(((l, r) for l in range(k + 1) for r in range(rows))))
    layout = Layout(
        {
            (l, r): Point(float(r), float(l) * 2.0)
            for l in range(k + 1)
            for r in range(rows)
        }
    )
    for l in range(k):
        for r in range(rows):
            straight = (l + 1, r)
            cross = (l + 1, r ^ (1 << l))
            if bidirectional:
                comm.add_bidirectional((l, r), straight)
                comm.add_bidirectional((l, r), cross)
            else:
                comm.add_edge((l, r), straight)
                comm.add_edge((l, r), cross)
    return ProcessorArray(comm, layout, name=f"butterfly-{k}", host=(0, 0))


def cube_connected_cycles(k: int, bidirectional: bool = True) -> ProcessorArray:
    """CCC(k): each hypercube corner becomes a k-cycle; ``k * 2^k`` nodes
    ``(corner, position)``.

    Cycle edges connect ``(c, i)`` to ``(c, (i+1) mod k)``; hypercube edges
    connect ``(c, i)`` to ``(c XOR 2^i, i)``.  Corners are laid out on a
    near-square grid (Gray-code-free, simple row-major), each corner's cycle
    drawn as a small vertical stack.
    """
    if k < 3:
        raise ValueError("CCC needs k >= 3 (a cycle needs three nodes)")
    corners = 2**k
    grid_cols = 2 ** ((k + 1) // 2)
    comm = CommGraph(
        nodes=((c, i) for c in range(corners) for i in range(k))
    )
    layout = Layout()
    for c in range(corners):
        gx = (c % grid_cols) * 2.0
        gy = (c // grid_cols) * float(k + 1)
        for i in range(k):
            layout.place((c, i), Point(gx, gy + i))
    for c in range(corners):
        for i in range(k):
            ring_next = (c, (i + 1) % k)
            cube = (c ^ (1 << i), i)
            if bidirectional:
                comm.add_bidirectional((c, i), ring_next)
                if c < c ^ (1 << i):  # add each cube edge once
                    comm.add_bidirectional((c, i), cube)
            else:
                comm.add_edge((c, i), ring_next)
                if c < c ^ (1 << i):
                    comm.add_edge((c, i), cube)
    return ProcessorArray(comm, layout, name=f"ccc-{k}", host=(0, 0))


def shuffle_exchange(k: int, bidirectional: bool = True) -> ProcessorArray:
    """The shuffle-exchange graph on ``2^k`` nodes, laid out in a row.

    Exchange edges join ``x`` and ``x XOR 1``; shuffle edges join ``x`` to
    ``rot_left(x)``.  The row layout makes shuffle edges long — the layout
    cost Thompson's thesis (the paper's reference [11]) made famous.
    """
    if k < 2:
        raise ValueError("shuffle-exchange needs k >= 2")
    n = 2**k

    def rol(x: int) -> int:
        return ((x << 1) | (x >> (k - 1))) & (n - 1)

    comm = CommGraph(nodes=range(n))
    layout = Layout({x: Point(float(x), 0.0) for x in range(n)})
    for x in range(n):
        exchange = x ^ 1
        if x < exchange:
            if bidirectional:
                comm.add_bidirectional(x, exchange)
            else:
                comm.add_edge(x, exchange)
        shuffled = rol(x)
        if shuffled != x and not comm.has_edge(x, shuffled):
            if bidirectional:
                comm.add_bidirectional(x, shuffled)
            else:
                comm.add_edge(x, shuffled)
    return ProcessorArray(comm, layout, name=f"shuffle-exchange-{k}", host=0)
