"""The ideal lockstep executor (the reference semantics of assumption A1).

In an *ideally synchronized* array every cell fires simultaneously each
cycle, and every communication edge behaves as a register: a value emitted
on cycle ``t`` is consumed on cycle ``t + 1``.  This executor realizes those
semantics exactly; clocked and self-timed simulations are validated against
it (the paper's Theorems 2 and 3 say such simulations *can* match it with a
size-independent clock period).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Mapping, Tuple

from repro.arrays.cells import PE
from repro.graphs.comm import CommGraph

CellId = Hashable
EdgeKey = Tuple[CellId, CellId]


class LockstepExecutor:
    """Runs PEs on a COMM graph in perfect lock step.

    ``pes`` must provide a PE for every node of ``comm``.  Use
    :meth:`run` for a fixed number of cycles; the per-edge value history is
    recorded when ``trace`` is true, which the clocked simulator's
    equivalence checks rely on.
    """

    def __init__(
        self,
        comm: CommGraph,
        pes: Mapping[CellId, PE],
        trace: bool = False,
    ) -> None:
        missing = [n for n in comm.nodes() if n not in pes]
        if missing:
            raise ValueError(f"no PE for cells: {missing[:5]!r}")
        self._comm = comm
        self._pes = dict(pes)
        self._trace_enabled = trace
        self._edge_values: Dict[EdgeKey, Any] = {}
        self._cycle = 0
        self.edge_trace: Dict[EdgeKey, List[Any]] = {}

    @property
    def cycle(self) -> int:
        """Number of completed cycles."""
        return self._cycle

    def reset(self) -> None:
        for pe in self._pes.values():
            pe.reset()
        self._edge_values = {}
        self.edge_trace = {}
        self._cycle = 0

    def step(self) -> None:
        """Execute one global cycle: all cells fire on last cycle's edge
        values, then all edges latch the new outputs."""
        new_values: Dict[EdgeKey, Any] = {}
        for cell in self._comm.nodes():
            inputs = {
                src: self._edge_values.get((src, cell))
                for src in self._comm.predecessors(cell)
            }
            outputs = self._pes[cell].fire(inputs)
            for dst in self._comm.successors(cell):
                value = outputs.get(dst) if outputs else None
                new_values[(cell, dst)] = value
                if self._trace_enabled:
                    self.edge_trace.setdefault((cell, dst), []).append(value)
        self._edge_values = new_values
        self._cycle += 1

    def run(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("cycle count must be non-negative")
        for _ in range(cycles):
            self.step()

    def pe(self, cell: CellId) -> PE:
        return self._pes[cell]

    def edge_value(self, src: CellId, dst: CellId) -> Any:
        """The value currently latched on edge ``(src, dst)``."""
        return self._edge_values.get((src, dst))
