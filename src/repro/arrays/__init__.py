"""Processor arrays: topologies, processing elements, and ideal execution.

An *ideally synchronized* processor array (assumption A1) is a communication
graph whose cells all fire in lock step.  This package provides the array
topologies the paper discusses (linear, mesh, hexagonal, torus, tree), a
small processing-element framework, a lockstep reference executor, and the
classical systolic workloads used by the examples and benchmarks.
"""

from repro.arrays.model import ProcessorArray
from repro.arrays.topologies import (
    complete_binary_tree,
    hex_array,
    linear_array,
    mesh,
    ring,
    torus,
)
from repro.arrays.cells import (
    PE,
    ConstantCell,
    DelayCell,
    RecordingSink,
    ScriptedSource,
)
from repro.arrays.ideal import LockstepExecutor
from repro.arrays.networks import butterfly, cube_connected_cycles, shuffle_exchange
from repro.arrays.priority_queue import build_priority_queue, reference_priority_queue
from repro.arrays.systolic import (
    FirCell,
    MatVecCell,
    build_fir_array,
    build_matvec_array,
    build_odd_even_sorter,
    build_mesh_matmul,
)

__all__ = [
    "ProcessorArray",
    "complete_binary_tree",
    "hex_array",
    "linear_array",
    "mesh",
    "ring",
    "torus",
    "PE",
    "ConstantCell",
    "DelayCell",
    "RecordingSink",
    "ScriptedSource",
    "LockstepExecutor",
    "FirCell",
    "MatVecCell",
    "build_fir_array",
    "build_matvec_array",
    "build_odd_even_sorter",
    "build_mesh_matmul",
    "butterfly",
    "cube_connected_cycles",
    "shuffle_exchange",
    "build_priority_queue",
    "reference_priority_queue",
]
