"""Tree machines under the summation model (Section VIII).

The paper's concluding construction: a complete binary tree COMM, laid out
as an H-tree (area ``O(N)``), clocked along its data paths (legal under the
summation model), with pipeline registers added to the long upper-level
edges so that every wire segment has bounded length — giving a constant
pipeline interval with ``O(sqrt(N))`` through-delay.

* :mod:`repro.treemachine.layout` — H-tree layout of complete binary trees,
  with per-level edge lengths;
* :mod:`repro.treemachine.pipeline` — register insertion on long edges
  (same count per level), segment-length and area accounting;
* :mod:`repro.treemachine.machine` — a Bentley-Kung style searching tree
  machine that runs on the pipelined structure.
"""

from repro.treemachine.layout import htree_tree_layout, level_edge_lengths
from repro.treemachine.pipeline import PipelinedTree, pipeline_tree
from repro.treemachine.machine import SearchTreeMachine

__all__ = [
    "htree_tree_layout",
    "level_edge_lengths",
    "PipelinedTree",
    "pipeline_tree",
    "SearchTreeMachine",
]
