"""Pipeline register insertion on long tree edges (Section VIII).

For an acyclic COMM graph laid out with per-level uniform edge lengths
(the H-tree layout), adding the *same* number of pipeline registers to every
edge of a level keeps the computation's data alignment intact while making
every wire segment's length bounded by a constant — so each cell's
operate-and-forward time becomes independent of tree size, and the machine
achieves a constant pipeline interval with ``O(sqrt(N))`` total latency.
Registers "just make wires thicker": the area grows by at most a constant
factor (accounted below).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List

from repro.arrays.model import ProcessorArray
from repro.arrays.cells import DelayCell, PE
from repro.geometry.layout import Layout
from repro.geometry.point import Point
from repro.graphs.comm import CommGraph

CellId = Hashable


@dataclass
class PipelinedTree:
    """The register-augmented tree and its accounting.

    ``comm``/``layout`` include the register nodes; ``registers_per_level``
    records the uniform per-edge register count at each level, and
    ``extra_latency_per_level`` the added ticks a signal spends crossing
    that level (the same for both children, preserving wavefront alignment).
    """

    array: ProcessorArray
    depth: int
    segment_limit: float
    registers_per_level: Dict[int, int]
    register_cells: List[CellId]

    @property
    def total_registers(self) -> int:
        return len(self.register_cells)

    @property
    def max_segment_length(self) -> float:
        """Longest wire segment after insertion — bounded by the limit."""
        return max(
            (self.array.layout.distance(u, v) for u, v in self.array.communicating_pairs()),
            default=0.0,
        )

    def level_latency(self, level: int) -> int:
        """Ticks to cross one edge of the given level: one per register plus
        the edge itself."""
        return 1 + self.registers_per_level.get(level, 0)

    def root_to_leaf_latency(self) -> int:
        """Total ticks from root to any leaf — Theta(sqrt(N)) for H-tree
        layouts (dominated by the register chains of the top levels)."""
        return sum(self.level_latency(level) for level in range(1, self.depth + 1))

    def register_area(self) -> float:
        """Unit-area registers (A2): the constant-factor area cost."""
        return float(self.total_registers)

    def register_pes(self) -> Dict[CellId, PE]:
        """Ready-made DelayCell PEs for the register nodes (downstream
        direction), for executing programs on the pipelined structure."""
        pes: Dict[CellId, PE] = {}
        for reg in self.register_cells:
            preds = self.array.comm.predecessors(reg)
            succs = self.array.comm.successors(reg)
            if len(preds) != 1 or len(succs) != 1:
                raise AssertionError(f"register {reg!r} is not a 2-port node")
            pes[reg] = DelayCell(source=next(iter(preds)), target=next(iter(succs)))
        return pes


def pipeline_tree(
    array: ProcessorArray,
    depth: int,
    segment_limit: float = 2.0,
) -> PipelinedTree:
    """Insert pipeline registers on the edges of an H-tree-laid-out binary
    tree so that no wire segment exceeds ``segment_limit``.

    Every edge of a level receives the same register count (computed from
    the level's uniform edge length), so sibling paths stay aligned.  The
    original tree's node keys are preserved; register nodes are keyed
    ``("reg", parent, child, i)`` and placed evenly along the edge.
    """
    if segment_limit <= 0:
        raise ValueError("segment limit must be positive")

    # Uniform per-level lengths (validated here rather than assumed).
    level_length: Dict[int, float] = {}
    for u, v in array.communicating_pairs():
        parent, child = (u, v) if u[0] < v[0] else (v, u)
        level = child[0]
        length = array.layout.distance(parent, child)
        if level in level_length:
            if abs(level_length[level] - length) > 1e-6:
                raise ValueError(
                    f"level {level} edge lengths differ "
                    f"({level_length[level]} vs {length}); Section VIII "
                    f"needs bounded same-level ratio"
                )
        else:
            level_length[level] = length

    registers_per_level = {
        level: max(0, math.ceil(length / segment_limit) - 1)
        for level, length in level_length.items()
    }

    comm = CommGraph()
    layout = Layout(array.layout.positions())
    register_cells: List[CellId] = []
    for node in array.comm.nodes():
        comm.add_node(node)

    seen_pairs = set()
    for u, v in array.communicating_pairs():
        parent, child = (u, v) if u[0] < v[0] else (v, u)
        key = (parent, child)
        if key in seen_pairs:
            continue
        seen_pairs.add(key)
        count = registers_per_level[child[0]]
        forward = array.comm.has_edge(parent, child)
        backward = array.comm.has_edge(child, parent)
        p0 = array.layout[parent]
        p1 = array.layout[child]
        if count == 0:
            if forward:
                comm.add_edge(parent, child)
            if backward:
                comm.add_edge(child, parent)
            continue
        # Chain of registers evenly spaced along the edge, one chain per
        # direction (registers are unidirectional storage).
        for direction, active in (("down", forward), ("up", backward)):
            if not active:
                continue
            src, dst = (parent, child) if direction == "down" else (child, parent)
            previous = src
            for i in range(count):
                fraction = (i + 1) / (count + 1)
                if direction == "up":
                    fraction = 1.0 - fraction
                pos = Point(
                    p0.x + (p1.x - p0.x) * fraction,
                    p0.y + (p1.y - p0.y) * fraction,
                )
                reg: CellId = ("reg", parent, child, direction, i)
                layout.place(reg, pos)
                comm.add_edge(previous, reg)
                register_cells.append(reg)
                previous = reg
            comm.add_edge(previous, dst)

    out = ProcessorArray(
        comm, layout, name=f"{array.name}-pipelined", host=array.host
    )
    return PipelinedTree(
        array=out,
        depth=depth,
        segment_limit=segment_limit,
        registers_per_level=registers_per_level,
        register_cells=register_cells,
    )
