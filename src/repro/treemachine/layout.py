"""H-tree layout of a complete binary tree (Section VIII, Mead & Rem).

A complete binary tree of ``N`` nodes embeds in ``O(N)`` area by recursive
halving: the root sits at the center of a square, its children at the
centers of the two halves, alternating horizontal and vertical splits.
Edges at tree level ``l`` all have the *same* length, roughly
``sqrt(N) / 2^(l/2)`` — long near the root, constant near the leaves.
That uniformity per level is exactly the precondition for the Section VIII
pipelining transformation ("the ratio between lengths of any two edges at
the same level ... is bounded").
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.arrays.model import ProcessorArray
from repro.arrays.topologies import complete_binary_tree
from repro.geometry.layout import Layout
from repro.geometry.point import Point

NodeKey = Tuple[int, int]  # (level, index)


def htree_tree_layout(depth: int, leaf_spacing: float = 1.0) -> ProcessorArray:
    """A complete binary tree of the given depth, laid out as an H-tree.

    Node keys match :func:`repro.arrays.topologies.complete_binary_tree`:
    ``(level, index)`` with the root at ``(0, 0)``.  The bounding box side is
    ``Theta(sqrt(N))`` and the area ``O(N)`` (asserted in tests).
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    base = complete_binary_tree(depth)

    layout = Layout()
    # Region (cx, cy, w, h): node at center; split alternates with level.
    leaves = 2**depth
    # Arrange leaves on a near-square grid: 2^ceil(d/2) x 2^floor(d/2).
    width = float(2 ** ((depth + 1) // 2)) * leaf_spacing
    height = float(2 ** (depth // 2)) * leaf_spacing

    stack: List[Tuple[NodeKey, float, float, float, float]] = [
        ((0, 0), width / 2.0, height / 2.0, width, height)
    ]
    while stack:
        (level, index), cx, cy, w, h = stack.pop()
        layout.place((level, index), Point(cx, cy))
        if level == depth:
            continue
        if w >= h:  # split horizontally: children side by side
            child_dims = (w / 2.0, h)
            offsets = ((-w / 4.0, 0.0), (w / 4.0, 0.0))
        else:  # split vertically: children stacked
            child_dims = (w, h / 2.0)
            offsets = ((0.0, -h / 4.0), (0.0, h / 4.0))
        for i, (dx, dy) in enumerate(offsets):
            child = (level + 1, 2 * index + i)
            stack.append((child, cx + dx, cy + dy, child_dims[0], child_dims[1]))

    return ProcessorArray(
        base.comm, layout, name=f"htree-tree-depth-{depth}", host=(0, 0)
    )


def level_edge_lengths(array: ProcessorArray, depth: int) -> Dict[int, float]:
    """Edge length per tree level (level ``l`` = edges from level ``l-1``
    parents to level ``l`` children).  For the H-tree layout all edges of a
    level share one length (tested), so a single value per level suffices.
    """
    lengths: Dict[int, float] = {}
    for level in range(1, depth + 1):
        sample_child = (level, 0)
        sample_parent = (level - 1, 0)
        lengths[level] = array.layout.distance(sample_parent, sample_child)
    return lengths
