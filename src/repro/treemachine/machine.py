"""A Bentley-Kung style searching tree machine (Section VIII's workload).

Queries enter at the root, broadcast down to all leaves, each leaf answers
membership against its resident keys, and answers OR-combine on the way
back up — one query per tick in steady state (constant pipeline interval),
with latency proportional to twice the tree's tick-depth.

The machine runs on either the plain complete binary tree or the
register-pipelined H-tree structure from :mod:`repro.treemachine.pipeline`;
packets are self-describing, so pipeline registers (plain delays) forward
them unchanged, and the per-level-uniform register counts keep sibling
answers aligned at every combine node (asserted at runtime).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.arrays.cells import PE, Inputs, Outputs
from repro.arrays.ideal import LockstepExecutor
from repro.arrays.model import ProcessorArray
from repro.arrays.topologies import complete_binary_tree
from repro.graphs.comm import CommGraph
from repro.treemachine.pipeline import PipelinedTree

CellId = Hashable
NodeKey = Tuple[int, int]


def _resolve_hop(comm: CommGraph, node: CellId, logical_target: NodeKey) -> CellId:
    """Physical next hop from ``node`` toward a logical tree neighbor: the
    neighbor itself, or the first register of the chain leading to it."""
    if comm.has_edge(node, logical_target):
        return logical_target
    for succ in comm.successors(node):
        if isinstance(succ, tuple) and len(succ) == 5 and succ[0] == "reg":
            _tag, parent, child, _direction, _i = succ
            if logical_target in (parent, child):
                return succ
    raise ValueError(f"no route from {node!r} to {logical_target!r}")


class _InternalCell(PE):
    """Broadcast queries down; OR-combine the two child answers up."""

    def __init__(self, down_hops: Sequence[CellId], up_hop: Optional[CellId]) -> None:
        self._down = list(down_hops)
        self._up = up_hop

    def fire(self, inputs: Inputs) -> Outputs:
        out: Outputs = {}
        answers: List[Tuple[int, bool]] = []
        for value in inputs.values():
            if value is None:
                continue
            kind = value[0]
            if kind in ("q", "ins"):
                for hop in self._down:
                    out[hop] = value
            elif kind == "a":
                answers.append((value[1], bool(value[2])))
        if answers and self._up is not None:
            qids = {qid for qid, _hit in answers}
            if len(qids) != 1:
                raise AssertionError(
                    f"misaligned answers at combine node: qids {sorted(qids)}"
                )
            if len(answers) != len(self._down):
                raise AssertionError(
                    f"expected {len(self._down)} child answers, got {len(answers)}"
                )
            qid = answers[0][0]
            out[self._up] = ("a", qid, any(hit for _qid, hit in answers))
        return out


class _LeafCell(PE):
    """Hold a key shard; answer queries; accept routed inserts."""

    def __init__(self, index: int, n_leaves: int, up_hop: CellId) -> None:
        self._index = index
        self._n_leaves = n_leaves
        self._up = up_hop
        self.store: set = set()

    def reset(self) -> None:
        self.store = set()

    def _owns(self, key: Any) -> bool:
        return hash(key) % self._n_leaves == self._index

    def fire(self, inputs: Inputs) -> Outputs:
        for value in inputs.values():
            if value is None:
                continue
            kind = value[0]
            if kind == "q":
                _tag, qid, key = value
                return {self._up: ("a", qid, key in self.store)}
            if kind == "ins":
                _tag, qid, key = value
                if self._owns(key):
                    self.store.add(key)
                return {self._up: ("a", qid, True)}
        return {}


class _IoCell(PE):
    """The host: injects the command script and records answers."""

    def __init__(self, script: Sequence[Any], root_hop: CellId) -> None:
        self._script = list(script)
        self._root_hop = root_hop
        self._t = 0
        self.answers: List[Tuple[int, bool]] = []

    def reset(self) -> None:
        self._t = 0
        self.answers = []

    def fire(self, inputs: Inputs) -> Outputs:
        for value in inputs.values():
            if value is not None and value[0] == "a":
                self.answers.append((value[1], bool(value[2])))
        command = self._script[self._t] if self._t < len(self._script) else None
        self._t += 1
        return {self._root_hop: command} if command is not None else {}


class SearchTreeMachine:
    """A complete-binary-tree search machine, optionally register-pipelined.

    ``load`` distributes keys to leaf shards (by hash); ``run`` feeds one
    command per tick (``("ins", key)`` or ``("q", key)``) and returns the
    query results in order, plus the measured latency and steady-state
    interval (one answer per tick once the pipeline fills — the Section VIII
    constant-pipeline-interval claim).
    """

    def __init__(self, depth: int, pipelined: Optional[PipelinedTree] = None) -> None:
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self.depth = depth
        if pipelined is not None:
            base = pipelined.array
            self._register_pes = pipelined.register_pes()
        else:
            base = complete_binary_tree(depth)
            self._register_pes = {}
        # Attach the host above the root.
        comm = base.comm
        root: NodeKey = (0, 0)
        io: CellId = "io"
        comm.add_bidirectional(io, root)
        layout = base.layout
        layout.place(io, layout[root].translated(0.0, 1.0))
        self.array = ProcessorArray(comm, layout, name=f"search-machine-{depth}", host=io)
        self._io_node = io
        self._root = root

    # ------------------------------------------------------------------
    def _build_pes(self, script: Sequence[Any]) -> Tuple[Dict[CellId, PE], _IoCell]:
        comm = self.array.comm
        pes: Dict[CellId, PE] = dict(self._register_pes)
        n_leaves = 2**self.depth
        io = _IoCell(script, root_hop=_resolve_hop(comm, self._io_node, self._root))
        pes[self._io_node] = io
        for level in range(self.depth + 1):
            for index in range(2**level):
                node: NodeKey = (level, index)
                if level == self.depth:
                    up_target = (level - 1, index // 2)
                    pes[node] = _LeafCell(
                        index, n_leaves, up_hop=_resolve_hop(comm, node, up_target)
                    )
                else:
                    up_target = (level - 1, index // 2) if level > 0 else None
                    down = [
                        _resolve_hop(comm, node, (level + 1, 2 * index + i))
                        for i in (0, 1)
                    ]
                    up_hop = (
                        _resolve_hop(comm, node, up_target)
                        if up_target is not None
                        else self._io_node
                        if comm.has_edge(node, self._io_node)
                        else _resolve_hop(comm, node, (0, 0))
                    )
                    if level == 0:
                        up_hop = self._io_node
                    pes[node] = _InternalCell(down, up_hop)
        return pes, io

    def run(
        self, commands: Sequence[Tuple[str, Any]], extra_ticks: Optional[int] = None
    ) -> "SearchRunResult":
        """Feed one command per tick; commands are ``("ins", key)`` or
        ``("q", key)``.  Returns per-query hits in submission order."""
        script = [
            (kind, qid, key) for qid, (kind, key) in enumerate(commands)
        ]
        round_trip = 2 * (self._tick_depth() + 1)
        ticks = len(script) + round_trip + (extra_ticks or 4)
        pes, io = self._build_pes(script)
        executor = LockstepExecutor(self.array.comm, pes)
        executor.reset()
        executor.run(ticks)
        hits = {qid: hit for qid, hit in io.answers}
        results = [
            hits.get(qid, False)
            for qid, (kind, _key) in enumerate(commands)
            if kind == "q"
        ]
        latency = round_trip
        return SearchRunResult(
            results=results,
            answers=len(io.answers),
            latency_ticks=latency,
            interval_ticks=1,
        )

    def _tick_depth(self) -> int:
        """Ticks from root to a leaf (registers add one tick each)."""
        if not self._register_pes:
            return self.depth
        # Count hops along the leftmost root-to-leaf path.
        comm = self.array.comm
        ticks = 0
        node: CellId = self._root
        for level in range(self.depth):
            target: NodeKey = (level + 1, 0)
            hop = _resolve_hop(comm, node, target)
            while hop != target:
                ticks += 1
                hop = next(iter(comm.successors(hop)))
            ticks += 1
            node = target
        return ticks


class SearchRunResult:
    """Results of one tree-machine run."""

    def __init__(
        self, results: List[bool], answers: int, latency_ticks: int, interval_ticks: int
    ) -> None:
        self.results = results
        self.answers = answers
        self.latency_ticks = latency_ticks
        self.interval_ticks = interval_ticks
