"""Executable forms of the paper's theorems.

Each sweep builds concrete arrays and clock trees over a range of sizes and
returns :class:`SweepRecord` rows; the tests assert the theorem's growth
claim on the rows (constant vs. linear), and the benchmarks print them as
the regenerated figure series.

* :func:`theorem2_sweep` — H-tree under the difference model: constant
  ``sigma`` and period for linear/square/hex arrays (Theorem 2, Fig. 3).
* :func:`theorem3_sweep` — spine clock on linear arrays under the summation
  model: constant ``sigma`` and period (Theorem 3, Fig. 4).
* :func:`fig3a_counterexample_sweep` — the Fig. 3(a) dissection tree on
  linear arrays under the summation model: ``sigma`` grows linearly.
* :func:`theorem6_sweep` — measured best-scheme ``sigma`` against bisection
  width across graph families (Theorem 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.arrays.model import ProcessorArray
from repro.arrays.topologies import complete_binary_tree, hex_array, linear_array, mesh
from repro.clocktree.builders import comm_tree_clock, kdtree_clock, serpentine_clock
from repro.clocktree.htree import dissection_tree_for_linear, htree_for_array
from repro.clocktree.spine import spine_clock
from repro.clocktree.tree import ClockTree
from repro.core.models import (
    DifferenceModel,
    SummationModel,
    max_skew_bound,
    max_skew_lower_bound,
)
from repro.core.parameters import ClockParameters
from repro.graphs.bisection import bisection_width_upper_bound


@dataclass(frozen=True)
class SweepRecord:
    """One point of a theorem sweep: an array size and its clock metrics."""

    label: str
    size: int
    n_cells: int
    sigma: float
    delta: float
    tau: float
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def period(self) -> float:
        return ClockParameters(self.sigma, self.delta, self.tau).period


def theorem2_sweep(
    sizes: Sequence[int],
    topology: str = "mesh",
    m: float = 1.0,
    delta: float = 1.0,
    tau: float = 1.0,
) -> List[SweepRecord]:
    """Theorem 2: H-tree clocking under the difference model.

    ``topology`` is one of ``linear``, ``mesh``, ``hex``.  With equidistant
    leaves, every communicating pair has ``d = 0``, so ``sigma = f(0) = 0``
    and the period is ``delta + tau`` — independent of size.
    """
    model = DifferenceModel(m=m)
    records = []
    for n in sizes:
        array = _build_topology(topology, n)
        tree = htree_for_array(array)
        sigma = max_skew_bound(tree, array.communicating_pairs(), model)
        records.append(
            SweepRecord(
                label=f"htree-{topology}",
                size=n,
                n_cells=array.size,
                sigma=sigma,
                delta=delta,
                tau=tau,
                extra={"P": tree.longest_root_to_leaf()},
            )
        )
    return records


def theorem3_sweep(
    sizes: Sequence[int],
    m: float = 1.0,
    eps: float = 0.1,
    delta: float = 1.0,
    tau: float = 1.0,
    spacing: float = 1.0,
) -> List[SweepRecord]:
    """Theorem 3: spine clocking of linear arrays under the summation model.

    Neighbors tap the clock wire ``spacing`` apart, so ``s = spacing`` for
    every communicating pair: ``sigma = g(spacing)``, constant in size.
    """
    model = SummationModel(m=m, eps=eps)
    records = []
    for n in sizes:
        array = linear_array(n, spacing=spacing)
        tree = spine_clock(array)
        sigma = max_skew_bound(tree, array.communicating_pairs(), model)
        records.append(
            SweepRecord(
                label="spine-linear",
                size=n,
                n_cells=array.size,
                sigma=sigma,
                delta=delta,
                tau=tau,
                extra={"max_s": _max_s(tree, array)},
            )
        )
    return records


def fig3a_counterexample_sweep(
    sizes: Sequence[int],
    m: float = 1.0,
    eps: float = 0.1,
    delta: float = 1.0,
    tau: float = 1.0,
) -> List[SweepRecord]:
    """The Section V opening remark: the Fig. 3(a) dissection tree fails
    under the summation model — the two middle neighbors are connected by a
    tree path spanning the whole array, so ``sigma`` grows linearly."""
    model = SummationModel(m=m, eps=eps)
    records = []
    for n in sizes:
        array = linear_array(n)
        tree = dissection_tree_for_linear(array)
        sigma = max_skew_bound(tree, array.communicating_pairs(), model)
        records.append(
            SweepRecord(
                label="dissection-linear",
                size=n,
                n_cells=array.size,
                sigma=sigma,
                delta=delta,
                tau=tau,
                extra={"max_s": _max_s(tree, array)},
            )
        )
    return records


def theorem6_bound(bisection_width: float, beta: float, capacity_per_radius: float = 8.0) -> float:
    """Theorem 6: ``sigma = Omega(W(N))`` — the concrete constant from the
    bisection branch of the proof: ``beta * W / capacity``."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    if bisection_width < 0:
        raise ValueError("bisection width must be non-negative")
    return beta * bisection_width / capacity_per_radius


def theorem6_sweep(
    sizes: Sequence[int],
    families: Optional[Sequence[str]] = None,
    beta: float = 0.1,
) -> List[SweepRecord]:
    """Measured best-scheme ``sigma`` (under A11: ``beta * max s``) against
    estimated bisection width, across graph families.

    Families: ``linear`` (W = 1), ``tree`` (W = 1), ``mesh`` (W = Theta(n)).
    For each size the best of the applicable schemes is taken — the point of
    Theorem 6 being that for high-W graphs *no* scheme escapes the bound.
    """
    families = list(families) if families is not None else ["linear", "mesh", "tree"]
    records = []
    for family in families:
        for n in sizes:
            array, schemes = _family_instance(family, n)
            best_sigma = math.inf
            best_scheme = "?"
            for name, builder in schemes:
                tree = builder(array)
                sigma = max_skew_lower_bound(
                    tree, array.communicating_pairs(), SummationModel(beta=beta, eps=beta)
                )
                if sigma < best_sigma:
                    best_sigma, best_scheme = sigma, name
            width = bisection_width_upper_bound(array.comm).cut_size
            records.append(
                SweepRecord(
                    label=f"t6-{family}",
                    size=n,
                    n_cells=array.size,
                    sigma=best_sigma,
                    delta=0.0,
                    tau=0.0,
                    extra={
                        "bisection_width": float(width),
                        "theorem6_floor": theorem6_bound(width, beta),
                        "best_scheme": best_scheme,
                    },
                )
            )
    return records


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _build_topology(topology: str, n: int) -> ProcessorArray:
    if topology == "linear":
        return linear_array(n)
    if topology == "mesh":
        return mesh(n, n)
    if topology == "hex":
        return hex_array(n, n)
    raise ValueError(f"unknown topology {topology!r}")


def _max_s(tree: ClockTree, array: ProcessorArray) -> float:
    return max(tree.path_length(a, b) for a, b in array.communicating_pairs())


def _family_instance(family: str, n: int):
    if family == "linear":
        array = linear_array(n)
        return array, [("spine", spine_clock), ("kdtree", kdtree_clock)]
    if family == "mesh":
        array = mesh(n, n)
        return array, [
            ("htree", htree_for_array),
            ("serpentine", serpentine_clock),
            ("kdtree", kdtree_clock),
        ]
    if family == "tree":
        depth = max(1, int(math.log2(max(2, n))))
        array = complete_binary_tree(depth)
        return array, [("comm-tree", comm_tree_clock), ("kdtree", kdtree_clock)]
    raise ValueError(f"unknown family {family!r}")
