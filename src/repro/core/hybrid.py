"""Hybrid synchronization (Section VI, Fig. 8).

When pipelined clocking fails (A8 broken) or the summation-model lower
bound bites (2D arrays), the paper proposes a Seitz-style hybrid: cut the
layout into bounded-size *elements*, give each a local clock distribution
node (controller), and let controllers synchronize with their neighbors by
a self-timed handshake.  All synchronization paths are then local —
constant cycle time as the system grows — while cells inside an element are
designed as if globally clocked.  Stopping an element's clock synchronously
and restarting it asynchronously avoids flip-flop metastability at the
interface.

:func:`build_hybrid` constructs the scheme over any laid-out array;
:class:`HybridScheme` exposes the analytic cycle-time model (all terms
bounded by the element size, hence constant) and feeds the event-driven
simulation in :mod:`repro.sim.hybrid_sim`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from repro.arrays.model import ProcessorArray
from repro.clocktree.tree import ClockTree
from repro.geometry.point import Point
from repro.graphs.comm import CommGraph

CellId = Hashable
ElementId = Tuple[int, int]


def partition_into_elements(
    array: ProcessorArray, element_size: float
) -> Dict[ElementId, List[CellId]]:
    """Cut the layout into ``element_size x element_size`` blocks.

    Returns element id (block grid coordinates) -> member cells.  Every
    element's diameter is bounded by ``2 * element_size`` regardless of
    array size — the property the whole scheme rests on.
    """
    if element_size <= 0:
        raise ValueError("element size must be positive")
    elements: Dict[ElementId, List[CellId]] = {}
    for cell in array.comm.nodes():
        p = array.layout[cell]
        eid = (int(math.floor(p.x / element_size)), int(math.floor(p.y / element_size)))
        elements.setdefault(eid, []).append(cell)
    return elements


@dataclass
class HybridScheme:
    """The element partition, controller network, and local clock trees."""

    array: ProcessorArray
    element_size: float
    elements: Dict[ElementId, List[CellId]]
    element_of: Dict[CellId, ElementId]
    controllers: Dict[ElementId, Point]
    element_graph: CommGraph
    local_trees: Dict[ElementId, ClockTree]

    # ------------------------------------------------------------------
    # analytic cycle-time model
    # ------------------------------------------------------------------
    def max_local_distribution(self) -> float:
        """Longest controller-to-cell clock path over all elements; bounded
        by the element diameter, not the array size."""
        return max(
            (tree.longest_root_to_leaf() for tree in self.local_trees.values()),
            default=0.0,
        )

    def max_controller_distance(self) -> float:
        """Longest distance between handshaking (adjacent) controllers."""
        return max(
            (
                self.controllers[a].manhattan(self.controllers[b])
                for a, b in self.element_graph.communicating_pairs()
            ),
            default=0.0,
        )

    def cycle_time(self, delta: float, m: float = 1.0) -> float:
        """Analytic steady-state cycle time.

        One global step = handshake round trip between the farthest adjacent
        controllers (request + acknowledge: ``2 * m * d_ctrl``), plus local
        clock distribution down and the cells' compute-and-propagate time
        ``delta``, plus the local skew budget (twice the local distribution
        depth, covering a sender and a receiver in adjacent elements).  All
        four terms depend only on the element size.
        """
        if delta < 0:
            raise ValueError("delta must be non-negative")
        if m <= 0:
            raise ValueError("per-unit delay must be positive")
        handshake = 2.0 * m * self.max_controller_distance()
        distribution = m * self.max_local_distribution()
        local_skew = 2.0 * m * self.max_local_distribution()
        return handshake + distribution + local_skew + delta

    def element_count(self) -> int:
        return len(self.elements)

    def largest_element(self) -> int:
        return max((len(cells) for cells in self.elements.values()), default=0)


def build_hybrid(array: ProcessorArray, element_size: float = 4.0) -> HybridScheme:
    """Partition ``array`` into elements and build the hybrid scheme.

    Controllers sit at their block's cell centroid; each element gets a
    serpentine local clock (a spine through its cells, in scanline order) —
    any local scheme works since element size is bounded.  Controllers of
    elements whose member cells communicate become handshake neighbors.
    """
    elements = partition_into_elements(array, element_size)
    element_of: Dict[CellId, ElementId] = {}
    controllers: Dict[ElementId, Point] = {}
    local_trees: Dict[ElementId, ClockTree] = {}

    for eid, cells in elements.items():
        for cell in cells:
            element_of[cell] = eid
        xs = [array.layout[c].x for c in cells]
        ys = [array.layout[c].y for c in cells]
        controllers[eid] = Point(sum(xs) / len(xs), sum(ys) / len(ys))
        local_trees[eid] = _local_spine(array, eid, cells, controllers[eid])

    element_graph = CommGraph(nodes=elements.keys())
    for u, v in array.communicating_pairs():
        eu, ev = element_of[u], element_of[v]
        if eu != ev and not element_graph.has_edge(eu, ev):
            element_graph.add_bidirectional(eu, ev)

    return HybridScheme(
        array=array,
        element_size=element_size,
        elements=elements,
        element_of=element_of,
        controllers=controllers,
        element_graph=element_graph,
        local_trees=local_trees,
    )


def _local_spine(
    array: ProcessorArray, eid: ElementId, cells: List[CellId], controller: Point
) -> ClockTree:
    """A spine from the controller through the element's cells in scanline
    order.  Local tree node ids are namespaced by element to keep them
    unique across the scheme."""
    ordered = sorted(cells, key=lambda c: (array.layout[c].y, array.layout[c].x))
    tree = ClockTree(("ctrl", eid), controller)
    previous: CellId = ("ctrl", eid)
    for i, cell in enumerate(ordered):
        station = ("ltap", eid, i)
        tree.add_child(previous, station, array.layout[cell])
        tree.add_child(station, cell, array.layout[cell], length=0.0)
        previous = station
    return tree
