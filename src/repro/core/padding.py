"""Automatic hold-fixing by data-path delay padding.

Section I: "synchronization errors due to clock skews can be avoided by
lowering clock rates and/or **adding delay to circuits**."  Lowering the
rate fixes setup (stale-read) errors; *hold* errors — a sender whose clock
leads the receiver's by more than the data path delay, so new data overruns
the latch — are period-independent and need added delay on the data path.

Given a concrete clock schedule, the required padding per directed edge is
closed-form::

    offset(u) + delta + wire + pad  >  offset(v)        (hold)
    period  >=  offset(u) - offset(v) + delta + wire + pad   (setup)

:func:`compute_hold_padding` solves the first for the minimum ``pad``;
:func:`plan_safe_clocking` returns the padding plus the resulting minimum
safe period (padding an edge raises its setup requirement — the classic
skew trade-off, visible in the returned plan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.arrays.model import ProcessorArray
from repro.delay.wire import LinearWireModel, WireDelayModel
from repro.sim.clock_distribution import ClockSchedule

CellId = Hashable
EdgeKey = Tuple[CellId, CellId]


@dataclass(frozen=True)
class ClockingPlan:
    """A padding assignment and the period it implies."""

    padding: Dict[EdgeKey, float]
    min_safe_period: float
    delta: float
    margin: float

    @property
    def total_padding(self) -> float:
        return sum(self.padding.values())

    @property
    def padded_edges(self) -> int:
        return sum(1 for v in self.padding.values() if v > 0)


def _edge_delays(
    array: ProcessorArray, wire_model: Optional[WireDelayModel]
) -> Dict[EdgeKey, float]:
    model = wire_model or LinearWireModel(m=1e-12)
    return {
        (u, v): model.delay(array.layout.distance(u, v))
        for u, v in array.comm.edges()
    }


def compute_hold_padding(
    array: ProcessorArray,
    schedule: ClockSchedule,
    delta: float,
    wire_model: Optional[WireDelayModel] = None,
    margin: float = 0.0,
) -> Dict[EdgeKey, float]:
    """Minimum extra data delay per directed edge so no edge races through.

    ``margin`` adds guard band (a hold margin in circuit terms).  Edges that
    are already safe get zero padding.
    """
    if delta < 0 or margin < 0:
        raise ValueError("delta and margin must be non-negative")
    padding: Dict[EdgeKey, float] = {}
    for (u, v), wire in _edge_delays(array, wire_model).items():
        need = schedule.offset(v) - schedule.offset(u) - delta - wire + margin
        padding[(u, v)] = max(0.0, need)
    return padding


def plan_safe_clocking(
    array: ProcessorArray,
    schedule: ClockSchedule,
    delta: float,
    wire_model: Optional[WireDelayModel] = None,
    margin: float = 1e-6,
) -> ClockingPlan:
    """Pad every racing edge, then compute the resulting minimum safe period.

    The period covers the setup side on every edge *including* the padding
    just added, so the plan is self-consistent: running at
    ``plan.min_safe_period`` with ``plan.padding`` is violation-free
    (integration-tested against the clocked simulator).
    """
    padding = compute_hold_padding(array, schedule, delta, wire_model, margin)
    worst = 0.0
    for (u, v), wire in _edge_delays(array, wire_model).items():
        need = (
            schedule.offset(u)
            - schedule.offset(v)
            + delta
            + wire
            + padding[(u, v)]
            + margin
        )
        worst = max(worst, need)
    return ClockingPlan(
        padding=padding, min_safe_period=worst, delta=delta, margin=margin
    )
