"""Executable audit of the paper's assumptions (A1-A11).

The theorems only hold when their preconditions do; this module checks a
concrete configuration — an array, its clock tree, optionally a buffered
realization — against each assumption and reports what holds, what fails,
and what cannot be checked in the abstract model (physical facts that the
model takes as axioms).

Use :func:`audit` for the full report, or individual ``check_*`` functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.arrays.model import ProcessorArray
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.tree import ClockTree


@dataclass(frozen=True)
class AssumptionCheck:
    """Outcome for one assumption."""

    assumption: str
    holds: bool
    checkable: bool
    detail: str


def check_a1_comm_graph(array: ProcessorArray) -> AssumptionCheck:
    """A1: COMM is a directed graph laid out in the plane."""
    connected = array.comm.is_connected()
    placed = all(cell in array.layout for cell in array.comm.nodes())
    return AssumptionCheck(
        "A1 (COMM laid out in the plane)",
        holds=connected and placed,
        checkable=True,
        detail=f"connected={connected}, all cells placed={placed}",
    )


def check_a2_unit_area(array: ProcessorArray, min_separation: float = 1.0) -> AssumptionCheck:
    """A2: cells occupy unit area — no two cell centers closer than one unit."""
    ok = array.layout.is_well_spaced(min_separation)
    return AssumptionCheck(
        "A2 (unit-area cells)",
        holds=ok,
        checkable=True,
        detail=f"min separation {min_separation} {'respected' if ok else 'VIOLATED'}",
    )


def check_a3_rectilinear_wires(array: ProcessorArray, tolerance: float = 1e-9) -> AssumptionCheck:
    """A3: wires are rectilinear (unit width is an axiom of the area model;
    the routed polylines can at least be checked for axis-alignment).  A
    layout with no routed wires is vacuously conformant but reported as not
    checkable so callers can distinguish 'checked' from 'nothing to check'."""
    from repro.geometry.routing import is_rectilinear

    wires = array.layout.wires
    if not wires:
        return AssumptionCheck(
            "A3 (rectilinear unit-width wires)",
            holds=True,
            checkable=False,
            detail="no routed wires in the layout",
        )
    crooked = sum(1 for w in wires if not is_rectilinear(w.path, tolerance))
    return AssumptionCheck(
        "A3 (rectilinear unit-width wires)",
        holds=crooked == 0,
        checkable=True,
        detail=f"{len(wires)} wires, {crooked} non-rectilinear",
    )


def check_a4_clock_tree(array: ProcessorArray, tree: ClockTree) -> AssumptionCheck:
    """A4: CLK is a rooted binary tree containing every clocked cell."""
    missing = [c for c in array.comm.nodes() if c not in tree]
    binary = all(len(tree.children(n)) <= 2 for n in tree.nodes())
    try:
        tree.validate()
        valid = True
    except AssertionError:
        valid = False
    holds = not missing and binary and valid
    return AssumptionCheck(
        "A4 (CLK binary tree over all cells)",
        holds=holds,
        checkable=True,
        detail=(
            f"missing cells={len(missing)}, binary={binary}, structure valid={valid}"
        ),
    )


def check_a6_equipotential_floor(tree: ClockTree, alpha: float = 1.0) -> AssumptionCheck:
    """A6: equipotential tau is at least alpha * P.  Always true in the
    model (tau is *computed* as a delay of the longest path); reported with
    the concrete P so users see the growth."""
    p = tree.longest_root_to_leaf()
    return AssumptionCheck(
        "A6 (equipotential tau >= alpha*P)",
        holds=True,
        checkable=True,
        detail=f"P = {p:.4g}; equipotential tau >= {alpha * p:.4g}",
    )


def check_a7_bounded_tau(
    buffered: BufferedClockTree, bound: Optional[float] = None
) -> AssumptionCheck:
    """A7: buffered tau is a constant — checked as 'bounded by buffer delay
    plus one spacing of wire', or an explicit ``bound``."""
    tau = buffered.tau()
    if bound is None:
        bound = buffered.buffer_spacing * 2.0 + 2.0  # generous structural cap
    return AssumptionCheck(
        "A7 (pipelined tau constant)",
        holds=tau <= bound,
        checkable=True,
        detail=f"tau = {tau:.4g} (cap {bound:.4g})",
    )


def check_a8_time_invariance(buffered: BufferedClockTree) -> AssumptionCheck:
    """A8: path delays invariant over time.  Holds by construction for a
    buffered tree (delays sampled once); flagged as not checkable beyond
    that, since drift is a physical phenomenon injected only via
    :mod:`repro.sim.faults`."""
    return AssumptionCheck(
        "A8 (time-invariant path delays)",
        holds=True,
        checkable=False,
        detail="holds by construction; break it with repro.sim.faults",
    )


def check_a9_equidistance(array: ProcessorArray, tree: ClockTree, tolerance: float = 1e-9) -> AssumptionCheck:
    """Difference-model readiness: are all cells equidistant (d = 0)?  Not
    an assumption per se but the property H-tree schemes establish so that
    f(d) stays at f(0)."""
    ok = tree.is_equidistant(array.comm.nodes(), tolerance)
    worst = max(
        tree.path_difference(a, b) for a, b in array.communicating_pairs()
    )
    return AssumptionCheck(
        "A9-readiness (equidistant cells, d = 0)",
        holds=ok,
        checkable=True,
        detail=f"worst communicating-pair d = {worst:.4g}",
    )


def check_a10_bounded_s(
    array: ProcessorArray, tree: ClockTree, s_budget: float
) -> AssumptionCheck:
    """Summation-model readiness: is the worst communicating-pair ``s``
    within the designer's budget?  (Theorem 3 schemes keep it at the
    neighbor spacing.)"""
    worst = max(tree.path_length(a, b) for a, b in array.communicating_pairs())
    return AssumptionCheck(
        "A10-readiness (bounded communicating-pair s)",
        holds=worst <= s_budget + 1e-12,
        checkable=True,
        detail=f"worst s = {worst:.4g} (budget {s_budget:.4g})",
    )


def audit(
    array: ProcessorArray,
    tree: ClockTree,
    buffered: Optional[BufferedClockTree] = None,
    s_budget: Optional[float] = None,
) -> List[AssumptionCheck]:
    """Run every applicable check; returns the list of outcomes."""
    checks = [
        check_a1_comm_graph(array),
        check_a2_unit_area(array),
        check_a3_rectilinear_wires(array),
        check_a4_clock_tree(array, tree),
        check_a6_equipotential_floor(tree),
        check_a9_equidistance(array, tree),
    ]
    if s_budget is not None:
        checks.append(check_a10_bounded_s(array, tree, s_budget))
    if buffered is not None:
        checks.append(check_a7_bounded_tau(buffered))
        checks.append(check_a8_time_invariance(buffered))
    return checks


def failures(checks: List[AssumptionCheck]) -> List[AssumptionCheck]:
    """The checks that failed (checkable and not holding)."""
    return [c for c in checks if c.checkable and not c.holds]
