"""The paper's clock skew models (Section III).

Given a clock tree ``CLK`` and two of its nodes, let

* ``d`` = positive difference of the nodes' path lengths from the root, and
* ``s`` = length of the tree path connecting the nodes
  (``s = h1 + h2``, ``d = h1 - h2`` for distances ``h1 >= h2`` to the LCA).

Then the models are:

* **Difference model** (A9): skew ``<= f(d)`` for monotone increasing ``f``.
  Matches discrete-component systems with delay-tuned clock trees.
* **Summation model** (A10/A11): ``beta * s <= skew <= g(s)`` for monotone
  increasing ``g`` and constant ``beta > 0``.  Matches on-chip reality where
  variation accumulates along the whole connecting path.
* **Physical model** (the Section III derivation): with per-unit delay in
  ``[m - eps, m + eps]``, worst-case skew is exactly
  ``sigma = m*d + eps*s``, bracketed by ``eps*s <= sigma <= (m+eps)*s``;
  the difference model is the ``eps -> 0`` limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.clocktree.tree import ClockTree

NodeId = Hashable


def _as_pair_list(
    pairs: Iterable[Tuple[NodeId, NodeId]]
) -> Sequence[Tuple[NodeId, NodeId]]:
    return pairs if isinstance(pairs, (list, tuple)) else list(pairs)


class SkewModel:
    """Upper (and optionally lower) bounds on clock skew between tree nodes."""

    def skew_bound(self, tree: ClockTree, a: NodeId, b: NodeId) -> float:
        """Upper bound on the skew between ``a`` and ``b`` on ``tree``."""
        raise NotImplementedError

    def skew_lower_bound(self, tree: ClockTree, a: NodeId, b: NodeId) -> float:
        """Lower bound on the *worst-case achievable* skew (0 if the model
        asserts none)."""
        return 0.0

    # ------------------------------------------------------------------
    # batched evaluation
    # ------------------------------------------------------------------
    # Subclasses with closed-form bounds override these with pure array
    # arithmetic on the tree's batched (d, s) metrics; the generic
    # fallback loops over the scalar methods so any custom model gets
    # the batch API (and the O(1)-LCA pair metrics) for free.

    def skew_bound_batch(
        self, tree: ClockTree, pairs: Sequence[Tuple[NodeId, NodeId]]
    ) -> np.ndarray:
        """``skew_bound`` for every pair at once, as a float64 array."""
        pairs = _as_pair_list(pairs)
        return np.fromiter(
            (self.skew_bound(tree, a, b) for a, b in pairs),
            dtype=np.float64,
            count=len(pairs),
        )

    def skew_lower_bound_batch(
        self, tree: ClockTree, pairs: Sequence[Tuple[NodeId, NodeId]]
    ) -> np.ndarray:
        """``skew_lower_bound`` for every pair at once, as a float64 array."""
        pairs = _as_pair_list(pairs)
        return np.fromiter(
            (self.skew_lower_bound(tree, a, b) for a, b in pairs),
            dtype=np.float64,
            count=len(pairs),
        )


def _apply_elementwise(
    func: Callable[[float], float], values: np.ndarray
) -> np.ndarray:
    """Map a user-supplied scalar ``f``/``g`` over an array.

    The callables are opaque (monotonicity is all we require), so they
    are applied per element with plain floats — custom-function models
    keep exact scalar semantics at scalar speed, while the default
    linear forms take the vectorized paths above.
    """
    return np.fromiter(
        (func(float(v)) for v in values), dtype=np.float64, count=len(values)
    )


@dataclass(frozen=True)
class DifferenceModel(SkewModel):
    """A9: skew bounded by ``f(d)``.

    ``f`` must be monotone increasing; the default is linear, ``f(d) = m*d``,
    the Section III physical model with ``eps = 0``.
    """

    f: Optional[Callable[[float], float]] = None
    m: float = 1.0

    def _f(self, d: float) -> float:
        return self.f(d) if self.f is not None else self.m * d

    def skew_bound(self, tree: ClockTree, a: NodeId, b: NodeId) -> float:
        return self._f(tree.path_difference(a, b))

    def skew_bound_batch(
        self, tree: ClockTree, pairs: Sequence[Tuple[NodeId, NodeId]]
    ) -> np.ndarray:
        d, _ = tree.path_metrics_batch(pairs)
        if self.f is not None:
            return _apply_elementwise(self.f, d)
        return self.m * d


@dataclass(frozen=True)
class SummationModel(SkewModel):
    """A10/A11: ``beta * s <= skew <= g(s)``.

    Defaults model the Section III bracket: ``g(s) = (m + eps) * s`` and
    ``beta = eps``.
    """

    g: Optional[Callable[[float], float]] = None
    m: float = 1.0
    eps: float = 0.1
    beta: Optional[float] = None

    def __post_init__(self) -> None:
        if self.beta is not None and self.beta < 0:
            raise ValueError("beta must be non-negative")
        if self.eps < 0:
            raise ValueError("eps must be non-negative")

    def _g(self, s: float) -> float:
        return self.g(s) if self.g is not None else (self.m + self.eps) * s

    @property
    def beta_value(self) -> float:
        return self.beta if self.beta is not None else self.eps

    def skew_bound(self, tree: ClockTree, a: NodeId, b: NodeId) -> float:
        return self._g(tree.path_length(a, b))

    def skew_lower_bound(self, tree: ClockTree, a: NodeId, b: NodeId) -> float:
        return self.beta_value * tree.path_length(a, b)

    def skew_bound_batch(
        self, tree: ClockTree, pairs: Sequence[Tuple[NodeId, NodeId]]
    ) -> np.ndarray:
        _, s = tree.path_metrics_batch(pairs)
        if self.g is not None:
            return _apply_elementwise(self.g, s)
        return (self.m + self.eps) * s

    def skew_lower_bound_batch(
        self, tree: ClockTree, pairs: Sequence[Tuple[NodeId, NodeId]]
    ) -> np.ndarray:
        _, s = tree.path_metrics_batch(pairs)
        return self.beta_value * s


@dataclass(frozen=True)
class PhysicalModel(SkewModel):
    """The exact Section III worst case: ``sigma = m*d + eps*s``.

    Derivation: with the two cells at distances ``h1 >= h2`` from their LCA
    and per-unit delay in ``[m - eps, m + eps]``, the extreme skew is
    ``h1*(m+eps) - h2*(m-eps) = (h1-h2)*m + (h1+h2)*eps = m*d + eps*s``.
    """

    m: float = 1.0
    eps: float = 0.1

    def __post_init__(self) -> None:
        if self.m <= 0:
            raise ValueError("m must be positive")
        if not 0 <= self.eps <= self.m:
            raise ValueError("eps must satisfy 0 <= eps <= m")

    def skew_bound(self, tree: ClockTree, a: NodeId, b: NodeId) -> float:
        d = tree.path_difference(a, b)
        s = tree.path_length(a, b)
        return self.m * d + self.eps * s

    def skew_lower_bound(self, tree: ClockTree, a: NodeId, b: NodeId) -> float:
        """The ``eps * s`` lower bracket — exactly A11 with beta = eps."""
        return self.eps * tree.path_length(a, b)

    def skew_bound_batch(
        self, tree: ClockTree, pairs: Sequence[Tuple[NodeId, NodeId]]
    ) -> np.ndarray:
        d, s = tree.path_metrics_batch(pairs)
        return self.m * d + self.eps * s

    def skew_lower_bound_batch(
        self, tree: ClockTree, pairs: Sequence[Tuple[NodeId, NodeId]]
    ) -> np.ndarray:
        _, s = tree.path_metrics_batch(pairs)
        return self.eps * s

    def as_difference(self) -> DifferenceModel:
        """The difference-model reading (valid when eps-terms are ignored)."""
        return DifferenceModel(m=self.m)

    def as_summation(self) -> SummationModel:
        """The summation-model bracket ``eps*s <= sigma <= (m+eps)*s``."""
        return SummationModel(m=self.m, eps=self.eps, beta=self.eps)


def max_skew_bound(
    tree: ClockTree,
    pairs: Iterable[Tuple[NodeId, NodeId]],
    model: SkewModel,
) -> float:
    """``sigma``: the worst-case skew over communicating pairs (A5's sigma).

    Evaluates through the model's batched kernel (O(1)-LCA pair metrics
    plus array arithmetic); results match the scalar per-pair path
    exactly, as the property tests and ``benchmarks/perf`` enforce.
    """
    pairs = _as_pair_list(pairs)
    if not pairs:
        return 0.0
    return float(model.skew_bound_batch(tree, pairs).max())


def max_skew_lower_bound(
    tree: ClockTree,
    pairs: Iterable[Tuple[NodeId, NodeId]],
    model: SkewModel,
) -> float:
    """The model's guaranteed worst-case skew over communicating pairs —
    under A11 no tuning can bring max skew below this."""
    pairs = _as_pair_list(pairs)
    if not pairs:
        return 0.0
    return float(model.skew_lower_bound_batch(tree, pairs).max())


def max_skew_bound_scalar(
    tree: ClockTree,
    pairs: Iterable[Tuple[NodeId, NodeId]],
    model: SkewModel,
) -> float:
    """Reference implementation of :func:`max_skew_bound` via per-pair
    scalar calls — kept as the equivalence oracle and the baseline the
    perf-regression suite measures the batch kernels against."""
    return max((model.skew_bound(tree, a, b) for a, b in pairs), default=0.0)


def max_skew_lower_bound_scalar(
    tree: ClockTree,
    pairs: Iterable[Tuple[NodeId, NodeId]],
    model: SkewModel,
) -> float:
    """Scalar reference for :func:`max_skew_lower_bound` (see above)."""
    return max((model.skew_lower_bound(tree, a, b) for a, b in pairs), default=0.0)
