"""Registry of clocking schemes.

A *clocking scheme* maps a laid-out processor array to a clock tree.  The
registry gives benchmarks and the lower-bound search a uniform way to
enumerate candidate schemes; users can register their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.arrays.model import ProcessorArray
from repro.clocktree.builders import (
    comm_tree_clock,
    kdtree_clock,
    serpentine_clock,
    star_clock,
)
from repro.clocktree.htree import dissection_tree_for_linear, htree_for_array
from repro.clocktree.spine import spine_clock
from repro.clocktree.tree import ClockTree

SchemeBuilder = Callable[[ProcessorArray], ClockTree]


@dataclass(frozen=True)
class ClockingScheme:
    """A named clock tree construction."""

    name: str
    builder: SchemeBuilder
    description: str

    def build(self, array: ProcessorArray) -> ClockTree:
        return self.builder(array)


_REGISTRY: Dict[str, ClockingScheme] = {}


def register_scheme(name: str, builder: SchemeBuilder, description: str) -> ClockingScheme:
    """Register a scheme; raises on duplicate names."""
    if name in _REGISTRY:
        raise ValueError(f"scheme {name!r} is already registered")
    scheme = ClockingScheme(name, builder, description)
    _REGISTRY[name] = scheme
    return scheme


def build_scheme(name: str, array: ProcessorArray) -> ClockTree:
    if name not in _REGISTRY:
        raise KeyError(f"unknown scheme {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[name].build(array)


def available_schemes() -> List[ClockingScheme]:
    return list(_REGISTRY.values())


register_scheme(
    "htree",
    htree_for_array,
    "Equidistant H-tree over the layout grid (Fig. 3; optimal under the difference model)",
)
register_scheme(
    "dissection-1d",
    dissection_tree_for_linear,
    "Balanced binary dissection of a linear array (Fig. 3(a); fails under the summation model)",
)
register_scheme(
    "spine",
    spine_clock,
    "Clock wire along a one-dimensional array (Fig. 4; Theorem 3 scheme)",
)
register_scheme(
    "serpentine",
    serpentine_clock,
    "Single spine threading the cells in boustrophedon order of the layout",
)
register_scheme(
    "kdtree",
    kdtree_clock,
    "Balanced recursive bisection by alternating axes (H-tree-like, any cell set)",
)
register_scheme(
    "star",
    star_clock,
    "Direct wire from a central hub to every cell (idealized equipotential; non-binary)",
)
register_scheme(
    "comm-tree",
    comm_tree_clock,
    "Clock distributed along the data paths of a tree-structured COMM (Section VIII)",
)
