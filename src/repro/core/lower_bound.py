"""The Section V-B lower bound, executed as a checkable certificate.

The paper proves: for any clock tree ``CLK`` over an ``n x n`` mesh, the
maximum clock skew ``sigma`` between communicating cells is ``Omega(n)``
under the summation model's lower bound A11 (skew >= beta * s).  The proof
is constructive, and :func:`prove_skew_lower_bound` *runs* it on a concrete
``(tree, array)`` instance:

1. **Separator** (Lemma 5): split CLK by one edge into subtrees holding cell
   sets ``A`` and ``B``, neither side above ~2/3 of the cells.  Let ``u`` be
   the root of the ``A``-side subtree.
2. **Circle**: take the circle of radius ``sigma / beta`` around ``u``
   (``sigma`` = the instance's minimum possible max skew under A11, i.e.
   ``beta * max s`` over communicating pairs).  Any A-cell outside the
   circle is farther than ``sigma/beta`` from ``u`` along CLK (edge lengths
   dominate Euclidean displacement), so by A11 it cannot communicate with
   any B-cell — its skew to any B-cell would exceed ``sigma``.
3. **Case (a)** — many cells inside the circle: unit-area cells (A2) can
   pack at most ``pi * (r + 1)^2`` centers into radius ``r``, so
   ``sigma >= beta * (sqrt(count / pi) - 1)``; with ``count >= n^2 / 10``
   this is ``Omega(n)``.
4. **Case (b)** — few cells inside: move the circle cells from ``B`` to
   ``A``; the new partition is still balanced (each side at most the
   separator fraction plus 1/10), and every edge between the parts must
   straddle the circle boundary.  Unit-width wires (A3) cap the crossings
   linearly in the radius; Lemma 4 forces ``Omega(n)`` crossings — so
   ``sigma = Omega(n)``.

Where the paper invokes the geometric packing facts (A2 area, A3 boundary
capacity) with the Euclidean constants ``pi r^2`` and ``2 pi r``, the
certificate *verifies* the corresponding inequality on the concrete
instance, using a rectilinear-layout capacity model (a circle of radius
``r`` on a unit grid is straddled by at most ``capacity_per_radius * r +
capacity_slack`` unit-length edges; 8 per unit radius for 4-neighbor
meshes — slightly looser than the paper's ``2 pi``, same ``Omega(n)``).
Every claim checkable in the abstract model is checked and recorded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Set

from repro.arrays.model import ProcessorArray
from repro.clocktree.tree import ClockTree
from repro.graphs.separators import tree_edge_separator

NodeId = Hashable

#: Max straddling edges per unit radius for a unit-spaced 4-neighbor mesh:
#: each of the ~2r columns contributes at most 2 straddling vertical edges
#: (top and bottom of the circle) and likewise for rows — about ``8r``.
MESH_CAPACITY_PER_RADIUS = 8.0
#: Additive slack absorbing boundary effects at small radii.
MESH_CAPACITY_SLACK = 12.0


@dataclass(frozen=True)
class LowerBoundCertificate:
    """The record of one executed lower-bound proof.

    ``sigma`` is the instance's minimum possible max skew under A11
    (``beta * max s``); ``bound`` is the value the executed proof branch
    yields, so ``sigma >= bound`` must hold (asserted in :meth:`check`,
    along with the branch's verified packing inequality).
    """

    n_cells: int
    beta: float
    sigma: float
    branch: str  # "circle" or "bisection"
    separator_fraction: float
    radius: float
    cells_in_circle: int
    crossing_edges: int
    straddle_verified: bool
    packing_verified: bool
    balance_fraction: float
    bound: float

    def check(self) -> None:
        """Assert the certificate's conclusion against the instance."""
        if not self.packing_verified:
            raise AssertionError(
                "packing inequality failed on the instance (capacity model too tight)"
            )
        if self.branch == "bisection" and not self.straddle_verified:
            raise AssertionError("a crossing edge failed to straddle the circle")
        if self.sigma + 1e-9 < self.bound:
            raise AssertionError(
                f"lower-bound violation: sigma={self.sigma} < bound={self.bound}"
            )


def lower_bound_value(
    n: int,
    beta: float,
    separator_fraction: float = 2.0 / 3.0,
    circle_fraction: float = 0.1,
    capacity_per_radius: float = MESH_CAPACITY_PER_RADIUS,
) -> float:
    """The tree-independent Omega(n) floor for an ``n x n`` mesh.

    ``min`` of the two proof branches: the circle branch gives
    ``beta * (sqrt(circle_fraction / pi) * n - 1)``; the bisection branch
    gives ``beta * (1 - separator_fraction - circle_fraction) * n /
    capacity_per_radius`` (Lemma 4 at balance ``separator_fraction +
    circle_fraction``, divided by the boundary capacity).
    """
    if n < 2:
        raise ValueError("mesh lower bound needs n >= 2")
    if beta <= 0:
        raise ValueError("beta must be positive (A11)")
    circle = beta * max(0.0, math.sqrt(circle_fraction / math.pi) * n - 1.0)
    slack = 1.0 - separator_fraction - circle_fraction
    if slack <= 0:
        raise ValueError("separator_fraction + circle_fraction must stay below 1")
    bisect = beta * slack * n / capacity_per_radius
    return min(circle, bisect)


def prove_skew_lower_bound(
    tree: ClockTree,
    array: ProcessorArray,
    beta: float,
    circle_fraction: float = 0.1,
    capacity_per_radius: float = MESH_CAPACITY_PER_RADIUS,
    capacity_slack: float = MESH_CAPACITY_SLACK,
) -> LowerBoundCertificate:
    """Execute the Section V-B proof on a concrete clock tree over an array.

    The array need not be a mesh — the proof steps run on any instance;
    for non-4-neighbor graphs (hex, torus) pass a larger
    ``capacity_per_radius`` reflecting their edge density.
    """
    if beta <= 0:
        raise ValueError("beta must be positive (A11)")
    cells: Set[NodeId] = set(array.comm.nodes())
    for cell in cells:
        if cell not in tree:
            raise ValueError(f"cell {cell!r} is not a node of CLK (A4)")
    pairs = array.communicating_pairs()
    if not pairs:
        raise ValueError("array has no communicating pairs")

    # sigma: the smallest max skew this tree can exhibit under A11.
    sigma = max(beta * tree.path_length(a, b) for a, b in pairs)

    # Step 1: Lemma 5 separator on CLK with the cells marked.
    sep = tree_edge_separator(tree.children_map(), tree.root, cells)
    part_a: Set[NodeId] = set(sep.below)   # cells in the detached subtree
    part_b: Set[NodeId] = set(sep.above)
    u = sep.edge[1]  # root of the subtree containing A
    center = tree.position(u)

    # Step 2: the circle of radius sigma / beta around u.
    radius = sigma / beta
    in_circle = {
        cell for cell in cells
        if array.layout[cell].euclidean(center) <= radius + 1e-9
    }

    n_cells = len(cells)
    threshold = circle_fraction * n_cells

    if len(in_circle) >= threshold:
        # Case (a): verify the area packing (A2) on the instance, then
        # conclude sigma >= beta * (sqrt(count/pi) - 1).
        packing_ok = math.pi * (radius + 1.0) ** 2 + 1e-9 >= len(in_circle)
        bound = beta * max(0.0, math.sqrt(len(in_circle) / math.pi) - 1.0)
        cert = LowerBoundCertificate(
            n_cells=n_cells,
            beta=beta,
            sigma=sigma,
            branch="circle",
            separator_fraction=sep.worst_fraction,
            radius=radius,
            cells_in_circle=len(in_circle),
            crossing_edges=0,
            straddle_verified=True,
            packing_verified=packing_ok,
            balance_fraction=sep.worst_fraction,
            bound=bound,
        )
        cert.check()
        return cert

    # Case (b): move circle cells from B to A.
    bar_a = part_a | in_circle
    bar_b = part_b - in_circle
    if not bar_b:
        raise AssertionError("degenerate partition: B-bar is empty")
    balance = max(len(bar_a), len(bar_b)) / n_cells

    # Claim check: every bar-A/bar-B edge straddles the circle.  (An A-cell
    # outside the circle is farther than sigma/beta from u along CLK, and
    # every path to a B-cell passes u, so its skew to any B-cell would
    # exceed sigma — such edges cannot exist.)
    crossing = array.comm.crossing_edges(bar_a, bar_b)
    straddle_ok = True
    for a_cell, b_cell in crossing:
        inner, outer = (a_cell, b_cell) if a_cell in bar_a else (b_cell, a_cell)
        inner_in = array.layout[inner].euclidean(center) <= radius + 1e-9
        outer_out = array.layout[outer].euclidean(center) > radius - 1e-9
        if not (inner_in and outer_out):
            straddle_ok = False

    # Boundary capacity (A3 analogue), verified on the instance:
    # crossings <= capacity_per_radius * r + capacity_slack, hence
    # sigma >= beta * (crossings - slack) / capacity.
    capacity = capacity_per_radius * radius + capacity_slack
    packing_ok = len(crossing) <= capacity + 1e-9
    bound = beta * max(0.0, len(crossing) - capacity_slack) / capacity_per_radius
    cert = LowerBoundCertificate(
        n_cells=n_cells,
        beta=beta,
        sigma=sigma,
        branch="bisection",
        separator_fraction=sep.worst_fraction,
        radius=radius,
        cells_in_circle=len(in_circle),
        crossing_edges=len(crossing),
        straddle_verified=straddle_ok,
        packing_verified=packing_ok,
        balance_fraction=balance,
        bound=bound,
    )
    cert.check()
    return cert
