"""Clock period accounting (assumptions A5-A7).

A clocked system runs with period ``sigma + delta + tau`` (A5):

* ``sigma`` — maximum skew between communicating cells (from a skew model
  or measured on a buffered tree);
* ``delta`` — maximum compute-plus-propagate time of a cell;
* ``tau`` — time to distribute one clocking event:
  - *equipotential* (A6): at least ``alpha * P`` with ``P`` the longest
    root-to-leaf path — grows with the layout diameter.  With an Elmore RC
    wire model it grows quadratically, which is the practical motivation
    for buffering.
  - *pipelined* (A7): the worst single buffer-plus-segment delay — a
    constant for fixed buffer spacing.

The paper notes an exact formula would look like ``max(tau, 2*sigma+delta)``
but has the same growth behaviour; we implement the simple sum (and provide
the alternative for sensitivity checks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional, Tuple

from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.tree import ClockTree
from repro.core.models import SkewModel, max_skew_bound
from repro.delay.wire import LinearWireModel, WireDelayModel

NodeId = Hashable


@dataclass(frozen=True)
class ClockParameters:
    """The (sigma, delta, tau) triple and the period they imply."""

    sigma: float
    delta: float
    tau: float

    def __post_init__(self) -> None:
        if self.sigma < 0 or self.delta < 0 or self.tau < 0:
            raise ValueError("clock parameters must be non-negative")

    @property
    def period(self) -> float:
        """A5's clock period ``sigma + delta + tau``."""
        return self.sigma + self.delta + self.tau

    @property
    def period_exact_form(self) -> float:
        """The paper's example alternative ``max(tau, 2*sigma + delta)`` —
        same asymptotics, used for sensitivity tests."""
        return max(self.tau, 2.0 * self.sigma + self.delta)

    @property
    def frequency(self) -> float:
        if self.period <= 0:
            raise ValueError("zero period has no frequency")
        return 1.0 / self.period


def clock_period(sigma: float, delta: float, tau: float) -> float:
    """Convenience wrapper for A5."""
    return ClockParameters(sigma, delta, tau).period


def equipotential_tau(
    tree: ClockTree,
    wire_model: Optional[WireDelayModel] = None,
    alpha: float = 1.0,
) -> float:
    """A6: distribution time of an equipotential tree.

    With the default linear wire model this is ``alpha * P``; pass an
    :class:`~repro.delay.wire.ElmoreWireModel` to capture the realistic
    quadratic growth of an unbuffered RC line.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    model = wire_model or LinearWireModel(m=alpha)
    return model.delay(tree.longest_root_to_leaf())


def pipelined_tau(buffered: BufferedClockTree) -> float:
    """A7: distribution time across one unbuffered segment — constant."""
    return buffered.tau()


def scheme_parameters(
    tree: ClockTree,
    pairs: Iterable[Tuple[NodeId, NodeId]],
    model: SkewModel,
    delta: float,
    tau: float,
) -> ClockParameters:
    """Assemble A5 parameters for a scheme: sigma from the skew model over
    the communicating pairs, delta and tau supplied by the caller."""
    sigma = max_skew_bound(tree, pairs, model)
    return ClockParameters(sigma=sigma, delta=delta, tau=tau)
