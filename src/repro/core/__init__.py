"""Core theory: skew models, clock period, theorems, and the lower bound.

This package is the paper's contribution proper, built on the substrates:

* :mod:`repro.core.models` — the difference (A9), summation (A10/A11) and
  physical (Section III, ``m*d + eps*s``) skew models;
* :mod:`repro.core.parameters` — the clock period ``sigma + delta + tau``
  (A5) with equipotential (A6) and pipelined (A7) distribution time;
* :mod:`repro.core.schemes` — a registry of clocking schemes;
* :mod:`repro.core.theorems` — executable forms of Theorems 2, 3 and 6 and
  the Fig. 3(a) counterexample;
* :mod:`repro.core.lower_bound` — the Section V-B proof run as a checkable
  certificate on concrete instances;
* :mod:`repro.core.hybrid` — the Section VI hybrid synchronization scheme.
"""

from repro.core.models import (
    DifferenceModel,
    PhysicalModel,
    SkewModel,
    SummationModel,
    max_skew_bound,
)
from repro.core.parameters import (
    ClockParameters,
    clock_period,
    equipotential_tau,
    pipelined_tau,
    scheme_parameters,
)
from repro.core.schemes import ClockingScheme, available_schemes, build_scheme, register_scheme
from repro.core.theorems import (
    SweepRecord,
    fig3a_counterexample_sweep,
    theorem2_sweep,
    theorem3_sweep,
    theorem6_bound,
    theorem6_sweep,
)
from repro.core.lower_bound import (
    LowerBoundCertificate,
    lower_bound_value,
    prove_skew_lower_bound,
)
from repro.core.hybrid import HybridScheme, build_hybrid, partition_into_elements
from repro.core.padding import ClockingPlan, compute_hold_padding, plan_safe_clocking
from repro.core.disciplines import (
    DisciplineReport,
    PulseModeDiscipline,
    SinglePhaseDiscipline,
    TwoPhaseDiscipline,
)
from repro.core.assumptions import AssumptionCheck, audit, failures
from repro.core.advisor import Recommendation, classify_structure, recommend

__all__ = [
    "SkewModel",
    "DifferenceModel",
    "SummationModel",
    "PhysicalModel",
    "max_skew_bound",
    "ClockParameters",
    "clock_period",
    "equipotential_tau",
    "pipelined_tau",
    "scheme_parameters",
    "ClockingScheme",
    "available_schemes",
    "build_scheme",
    "register_scheme",
    "SweepRecord",
    "theorem2_sweep",
    "theorem3_sweep",
    "fig3a_counterexample_sweep",
    "theorem6_bound",
    "theorem6_sweep",
    "LowerBoundCertificate",
    "prove_skew_lower_bound",
    "lower_bound_value",
    "HybridScheme",
    "build_hybrid",
    "partition_into_elements",
    "ClockingPlan",
    "compute_hold_padding",
    "plan_safe_clocking",
    "DisciplineReport",
    "SinglePhaseDiscipline",
    "TwoPhaseDiscipline",
    "PulseModeDiscipline",
    "AssumptionCheck",
    "audit",
    "failures",
    "Recommendation",
    "classify_structure",
    "recommend",
]
