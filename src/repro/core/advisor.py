"""A synchronization design advisor.

Automates the paper's decision tree for a concrete array:

1. classify the communication structure (one-dimensional, tree, or
   two-dimensional/other);
2. pick the clocking scheme the theory prescribes — spine for 1D under the
   summation model (Theorem 3), H-tree under the difference model
   (Theorem 2), clock-along-data for trees (Section VIII) — confirmed by
   *measuring* the registered schemes rather than trusting the rule;
3. when no clocked scheme scales (a 2D array under the summation model,
   Section V-B), recommend the hybrid scheme and report its constant cycle
   time next to the best clocked alternative;
4. attach the A5 period and a discipline note (padding needs or a two-phase
   non-overlap) for the winning configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.skew import SchemeEvaluation, evaluate_scheme
from repro.arrays.model import ProcessorArray
from repro.core.hybrid import build_hybrid
from repro.core.models import DifferenceModel, SkewModel, SummationModel
from repro.sim.hybrid_sim import simulate_hybrid


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict for one array."""

    structure: str                      # "one-dimensional" | "tree" | "two-dimensional"
    scheme: str                         # winning clocked scheme (or "hybrid")
    sigma: float
    period: float
    scales_with_size: bool              # does the recommendation stay flat?
    rationale: List[str] = field(default_factory=list)
    evaluations: List[SchemeEvaluation] = field(default_factory=list)
    hybrid_cycle: Optional[float] = None


def classify_structure(array: ProcessorArray) -> str:
    """One-dimensional (path/ring: max degree <= 2), tree, or 2D/other."""
    comm = array.comm
    max_deg = comm.max_degree()
    pairs = len(array.communicating_pairs())
    n = comm.node_count
    if max_deg <= 2:
        return "one-dimensional"
    if pairs == n - 1 and comm.is_connected():
        return "tree"
    return "two-dimensional"


def _candidate_schemes(structure: str) -> List[str]:
    if structure == "one-dimensional":
        return ["spine", "dissection-1d", "kdtree"]
    if structure == "tree":
        return ["comm-tree", "kdtree"]
    return ["htree", "serpentine", "kdtree"]


def recommend(
    array: ProcessorArray,
    model: SkewModel,
    delta: float = 1.0,
    hybrid_threshold: float = 5.0,
    element_size: float = 4.0,
) -> Recommendation:
    """Advise a synchronization design for ``array`` under ``model``.

    ``hybrid_threshold``: if the best clocked scheme's sigma exceeds this
    multiple of ``delta``, the advisor switches to the hybrid scheme (the
    skew budget has outgrown the computation itself).
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    structure = classify_structure(array)
    rationale = [f"communication structure: {structure}"]

    candidates = _candidate_schemes(structure)
    evaluations: List[SchemeEvaluation] = []
    for name in candidates:
        try:
            evaluations.append(evaluate_scheme(array, name, model))
        except (ValueError, KeyError) as exc:
            rationale.append(f"scheme {name!r} not applicable: {exc}")
    if not evaluations:
        raise ValueError("no clocking scheme applies to this array")
    evaluations.sort(key=lambda e: e.sigma_bound)
    best = evaluations[0]
    rationale.append(
        f"best clocked scheme: {best.scheme!r} with sigma = {best.sigma_bound:.4g}"
    )

    if isinstance(model, DifferenceModel):
        rationale.append(
            "difference model: equidistant (H-tree style) clocking is optimal "
            "when the clock tree can be delay-tuned (Theorem 2)"
        )
    if isinstance(model, SummationModel) and structure == "one-dimensional":
        rationale.append(
            "summation model + 1D: the spine keeps sigma at the neighbor "
            "spacing at any size (Theorem 3)"
        )

    scales = True
    hybrid_cycle: Optional[float] = None
    scheme = best.scheme
    sigma = best.sigma_bound
    period = best.period(delta)

    needs_hybrid = (
        isinstance(model, SummationModel)
        and structure == "two-dimensional"
        and best.sigma_bound > hybrid_threshold * delta
    )
    if needs_hybrid:
        scales = False
        rationale.append(
            f"sigma ({best.sigma_bound:.4g}) exceeds {hybrid_threshold:g}x delta: "
            "the Section V-B lower bound is biting — no clock tree will stay "
            "bounded as this array grows"
        )
        scheme_obj = build_hybrid(array, element_size=element_size)
        hybrid_cycle = simulate_hybrid(scheme_obj, steps=20, delta=delta).cycle_time
        if hybrid_cycle < period:
            scheme = "hybrid"
            sigma = 0.0
            period = hybrid_cycle
            rationale.append(
                f"hybrid scheme (element size {element_size:g}) cycles at "
                f"{hybrid_cycle:.4g} < clocked period — recommended (Section VI)"
            )
            scales = True
        else:
            rationale.append(
                f"hybrid cycle {hybrid_cycle:.4g} not yet better at this size; "
                "clocked scheme retained, expect the hybrid to win as it grows"
            )
    elif isinstance(model, SummationModel) and structure == "two-dimensional":
        scales = False
        rationale.append(
            "two-dimensional under the summation model: sigma grows Omega(n) "
            "with array size (Section V-B); fine at this size, plan for hybrid"
        )

    return Recommendation(
        structure=structure,
        scheme=scheme,
        sigma=sigma,
        period=period,
        scales_with_size=scales,
        rationale=rationale,
        evaluations=evaluations,
        hybrid_cycle=hybrid_cycle,
    )
