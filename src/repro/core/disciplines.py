"""Clocking disciplines: single-phase, two-phase, and pulse-mode.

Assumption A5 abstracts over "the exact clocking method used"; the paper
notes the detailed period formula depends on flip-flop setup/hold times and
sketches circuit options in Section VII (superbuffers, one-shot pulse
generators, inverter strings).  This module makes those methods concrete as
*disciplines*: given a skew budget and cell timing, each discipline reports
its minimum period and its race (hold) immunity.

* :class:`SinglePhaseDiscipline` — edge-triggered registers on one clock.
  Setup: ``T >= sigma + delta + tau + t_setup``.  Hold: data must take at
  least ``sigma + t_hold`` to cross an edge whose sender's clock leads —
  fixed by padding (:mod:`repro.core.padding`), not by slowing down.
* :class:`TwoPhaseDiscipline` — master-slave latching on non-overlapping
  phases (the standard nMOS discipline of Mead & Conway).  A transfer is
  race-immune when the non-overlap gap exceeds the skew plus hold time, at
  the price of a longer period (the gap is dead time twice per cycle).
* :class:`PulseModeDiscipline` — Section VII's one-shot scheme: each buffer
  fires a self-timed pulse off the rising edge.  The pulse must stay wider
  than the latch's minimum over the whole distribution path, so the width
  budget has to absorb the worst accumulated rise/fall distortion.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DisciplineReport:
    """What a discipline concludes for a given skew/timing budget."""

    discipline: str
    min_period: float
    race_immune: bool
    detail: str


@dataclass(frozen=True)
class SinglePhaseDiscipline:
    """One clock, edge-triggered registers."""

    t_setup: float = 0.0
    t_hold: float = 0.0

    def __post_init__(self) -> None:
        if self.t_setup < 0 or self.t_hold < 0:
            raise ValueError("setup/hold times must be non-negative")

    def min_period(self, sigma: float, delta: float, tau: float) -> float:
        """A5 plus the register's setup window."""
        return sigma + delta + tau + self.t_setup

    def min_contamination_delay(self, sigma: float) -> float:
        """Fastest allowed data path: anything quicker than ``sigma +
        t_hold`` can race through when the sender's clock leads by the full
        skew.  This is the quantity padding must top up to."""
        return sigma + self.t_hold

    def evaluate(self, sigma: float, delta: float, tau: float, min_data_delay: float) -> DisciplineReport:
        immune = min_data_delay >= self.min_contamination_delay(sigma) - 1e-12
        return DisciplineReport(
            discipline="single-phase",
            min_period=self.min_period(sigma, delta, tau),
            race_immune=immune,
            detail=(
                f"needs data contamination delay >= {self.min_contamination_delay(sigma):.3g}; "
                f"have {min_data_delay:.3g}"
            ),
        )


@dataclass(frozen=True)
class TwoPhaseDiscipline:
    """Master-slave latching on two non-overlapping phases.

    ``nonoverlap`` is the dead gap between phase-1 falling and phase-2
    rising (and vice versa).  Data launched on phase 2 cannot reach a
    phase-1 latch of a skewed neighbor within the same phase as long as the
    gap covers the skew — race immunity *by clocking*, no padding needed.
    """

    nonoverlap: float
    t_setup: float = 0.0
    t_hold: float = 0.0

    def __post_init__(self) -> None:
        if self.nonoverlap < 0 or self.t_setup < 0 or self.t_hold < 0:
            raise ValueError("timing parameters must be non-negative")

    def min_period(self, sigma: float, delta: float, tau: float) -> float:
        """The A5 sum plus two dead gaps per cycle."""
        return sigma + delta + tau + self.t_setup + 2.0 * self.nonoverlap

    def race_immune(self, sigma: float) -> bool:
        return self.nonoverlap >= sigma + self.t_hold - 1e-12

    def required_nonoverlap(self, sigma: float) -> float:
        """Smallest gap that makes transfers at skew ``sigma`` race-free."""
        return sigma + self.t_hold

    def evaluate(self, sigma: float, delta: float, tau: float, min_data_delay: float = 0.0) -> DisciplineReport:
        return DisciplineReport(
            discipline="two-phase",
            min_period=self.min_period(sigma, delta, tau),
            race_immune=self.race_immune(sigma),
            detail=(
                f"nonoverlap {self.nonoverlap:.3g} vs required "
                f"{self.required_nonoverlap(sigma):.3g}"
            ),
        )


@dataclass(frozen=True)
class PulseModeDiscipline:
    """Section VII's one-shot pulse clocking.

    Buffers respond only to rising edges and regenerate the falling edge
    locally with a one-shot, so rise/fall asymmetry cannot accumulate — at
    the cost that the ``pulse_width`` is "wired into the circuit or
    programmable".  The pulse must stay above the latch minimum after
    absorbing residual distortion, and successive pulses must not merge.
    """

    pulse_width: float
    min_latch_pulse: float = 0.0

    def __post_init__(self) -> None:
        if self.pulse_width <= 0:
            raise ValueError("pulse width must be positive")
        if self.min_latch_pulse < 0:
            raise ValueError("min latch pulse must be non-negative")

    def pulse_survives(self, max_distortion: float) -> bool:
        return self.pulse_width - max_distortion >= self.min_latch_pulse - 1e-12

    def min_period(self, sigma: float, delta: float, tau: float) -> float:
        """Pulses must be separated by at least a width (no merging) on top
        of the A5 sum."""
        return sigma + delta + tau + self.pulse_width

    def max_absorbable_distortion(self) -> float:
        return self.pulse_width - self.min_latch_pulse

    def evaluate(
        self, sigma: float, delta: float, tau: float, max_distortion: float = 0.0
    ) -> DisciplineReport:
        return DisciplineReport(
            discipline="pulse-mode",
            min_period=self.min_period(sigma, delta, tau),
            race_immune=self.pulse_survives(max_distortion),
            detail=(
                f"pulse {self.pulse_width:.3g} absorbs distortion up to "
                f"{self.max_absorbable_distortion():.3g}; worst seen "
                f"{max_distortion:.3g}"
            ),
        )
