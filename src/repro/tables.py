"""Plain-text table rendering shared by the CLI, the benchmark harness,
and the trace replay command.

One renderer, two float formatters: :func:`format_value` is the CLI's
fixed ``%.4g`` style (CLI output is golden — byte-stable across runs);
:func:`format_value_sci` switches to ``%.3g`` for very small or very
large magnitudes, which the benchmark tables prefer.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence


def format_value(value) -> str:
    """CLI-style cell formatting: floats as ``%.4g``, all else ``str``."""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_value_sci(value) -> str:
    """Benchmark-style cell formatting: extreme magnitudes tighten to
    ``%.3g`` so columns stay narrow."""
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    fmt: Callable[[object], str] = format_value,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Headers are left-justified, cells right-justified (numeric tables read
    best that way).  With ``title`` the table gains a heading and an
    underline, matching the benchmark artifact layout.  Returns the text
    without a trailing newline.
    """
    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in text_rows), default=0))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title is not None:
        lines.append(title)
        lines.append("-" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in text_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)
