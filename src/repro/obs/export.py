"""Metrics exposition: JSON snapshots and Prometheus text format.

A :class:`~repro.obs.metrics.MetricsRegistry` lives and dies inside one
process; this module gets its contents *out* — the exposition half of
the observability layer (ROADMAP item 1 wants the repro service to
scrape these).  Two formats:

* :func:`metrics_snapshot` — the registry's ``to_dict()`` wrapped with
  the repo-standard ``meta`` block and validated against
  :data:`~repro.obs.schema.METRICS_SNAPSHOT_SCHEMA`;
  :func:`snapshot_delta` diffs two snapshots (counter increments, new
  histogram observations) for before/after accounting;
* :func:`render_prometheus` — the text exposition format: counters as
  ``_total``, gauges with their min/max envelope, histograms as
  cumulative ``_bucket{le=...}`` series.  Label sets registered via the
  ``labels=`` option come through as proper Prometheus labels.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.obs.metrics import Histogram, LabelPairs, MetricsRegistry
from repro.obs.schema import validate_metrics_snapshot

__all__ = [
    "metrics_snapshot",
    "render_prometheus",
    "snapshot_delta",
    "write_metrics_json",
    "write_metrics_prometheus",
]


def metrics_snapshot(
    registry: MetricsRegistry, emitted_at: Optional[float] = None
) -> Dict[str, Any]:
    """A schema-valid JSON snapshot of everything registered."""
    from repro import __version__  # deferred: repro/__init__ imports obs

    snapshot = registry.to_dict()
    snapshot["meta"] = {
        "emitted_at": float(emitted_at) if emitted_at is not None else time.time(),
        "repro_version": __version__,
    }
    errors = validate_metrics_snapshot(snapshot)
    if errors:  # a registry cannot produce this; guards future drift
        raise ValueError(f"snapshot failed its own schema: {errors}")
    return snapshot


def snapshot_delta(
    before: Dict[str, Any], after: Dict[str, Any]
) -> Dict[str, Any]:
    """What happened between two snapshots of the *same* registry:
    counter increments, gauge movement, and new histogram observations.
    Series absent from ``before`` are treated as starting from zero."""
    counters = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0)
        if delta:
            counters[name] = delta
    gauges = {}
    for name, g in after.get("gauges", {}).items():
        prev = before.get("gauges", {}).get(name, {})
        if g.get("samples", 0) != prev.get("samples", 0):
            gauges[name] = {
                "value": g.get("value"),
                "new_samples": g.get("samples", 0) - prev.get("samples", 0),
            }
    histograms = {}
    for name, h in after.get("histograms", {}).items():
        prev = before.get("histograms", {}).get(name, {})
        new_total = h.get("total", 0) - prev.get("total", 0)
        if new_total:
            prev_counts = prev.get("counts", [0] * len(h.get("counts", [])))
            histograms[name] = {
                "new_total": new_total,
                "counts": [
                    c - p for c, p in zip(h.get("counts", []), prev_counts)
                ],
            }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _prom_name(namespace: str, name: str) -> str:
    out = []
    for ch in f"{namespace}_{name}" if namespace else name:
        out.append(ch if ch.isalnum() or ch in "_:" else "_")
    return "".join(out)


def _escape(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _prom_labels(pairs: LabelPairs, extra: Optional[List[tuple]] = None) -> str:
    items = list(pairs) + list(extra or [])
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    return repr(float(value))


def _histogram_lines(base: str, h: Histogram) -> List[str]:
    lines = [f"# TYPE {base} histogram"]
    cumulative = 0
    for edge, count in zip(h.edges, h.counts):
        cumulative += count
        lines.append(
            f"{base}_bucket{_prom_labels(h.labels, [('le', _fmt(edge))])} "
            f"{cumulative}"
        )
    lines.append(
        f"{base}_bucket{_prom_labels(h.labels, [('le', '+Inf')])} {h.total}"
    )
    lines.append(f"{base}_sum{_prom_labels(h.labels)} {_fmt(h.sum)}")
    lines.append(f"{base}_count{_prom_labels(h.labels)} {h.total}")
    return lines


def render_prometheus(
    registry: MetricsRegistry, namespace: str = "repro"
) -> str:
    """The registry in Prometheus text exposition format (one scrape)."""
    lines: List[str] = []
    typed: set = set()
    for c in registry.counters().values():
        base = _prom_name(namespace, c.name) + "_total"
        if base not in typed:
            lines.append(f"# TYPE {base[: -len('_total')]} counter")
            typed.add(base)
        lines.append(f"{base}{_prom_labels(c.labels)} {c.value}")
    for g in registry.gauges().values():
        base = _prom_name(namespace, g.name)
        if base not in typed:
            lines.append(f"# TYPE {base} gauge")
            typed.add(base)
        if g.samples:
            lines.append(f"{base}{_prom_labels(g.labels)} {_fmt(g.value or 0.0)}")
            lines.append(f"{base}_min{_prom_labels(g.labels)} {_fmt(g.minimum or 0.0)}")
            lines.append(f"{base}_max{_prom_labels(g.labels)} {_fmt(g.maximum or 0.0)}")
    for h in registry.histograms().values():
        base = _prom_name(namespace, h.name)
        if base not in typed:
            lines.extend(_histogram_lines(base, h))
            typed.add(base)
        else:  # same metric, another label set: skip the TYPE line
            lines.extend(_histogram_lines(base, h)[1:])
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# file helpers (the CLI's --metrics-json / --metrics-prom)
# ----------------------------------------------------------------------
def write_metrics_json(registry: MetricsRegistry, path: str) -> Dict[str, Any]:
    import json

    snapshot = metrics_snapshot(registry)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return snapshot


def write_metrics_prometheus(registry: MetricsRegistry, path: str) -> str:
    text = render_prometheus(registry)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text
