"""Lightweight wall-clock phase profiling for analysis pipelines.

A :class:`Profiler` accumulates time per *phase path*: nested
``profiled()`` blocks produce slash-joined paths (``"sweep"``,
``"sweep/evaluate"``), so a report reads like a call tree without any
interpreter-level tracing.  Monte-Carlo loops, parameter sweeps, and the
CLI wrap their stages in ``profiled()`` and print the report when asked.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass
class PhaseStat:
    """Accumulated wall-clock time for one phase path."""

    path: str
    calls: int = 0
    total_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


class Profiler:
    """Accumulates nested wall-clock phase timings."""

    def __init__(self) -> None:
        self._stats: Dict[str, PhaseStat] = {}
        self._stack: List[str] = []

    @contextmanager
    def profiled(self, name: str):
        """Time a phase; nesting joins names into a path with ``/``."""
        if "/" in name:
            raise ValueError("phase names must not contain '/'")
        path = "/".join(self._stack + [name])
        self._stack.append(name)
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - t0
            self._stack.pop()
            stat = self._stats.get(path)
            if stat is None:
                stat = self._stats[path] = PhaseStat(path=path)
            stat.calls += 1
            stat.total_s += elapsed

    @property
    def current_path(self) -> str:
        return "/".join(self._stack)

    def report(self) -> List[PhaseStat]:
        """Phase stats sorted by path — parents sort before children."""
        return [self._stats[p] for p in sorted(self._stats)]

    def total_s(self, path: str) -> float:
        return self._stats[path].total_s

    def render_rows(self) -> List[Tuple[str, int, float, float]]:
        """``(phase, calls, total s, mean s)`` rows for a text table."""
        return [(s.path, s.calls, s.total_s, s.mean_s) for s in self.report()]

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            s.path: {"calls": s.calls, "total_s": s.total_s, "mean_s": s.mean_s}
            for s in self.report()
        }


@contextmanager
def profiled(name: str, profiler: "Profiler" = None):
    """Convenience wrapper: ``profiled(name, p)`` is ``p.profiled(name)``;
    with ``profiler=None`` it times nothing (the disabled path, mirroring
    ``NullTracer``)."""
    if profiler is None:
        yield None
        return
    with profiler.profiled(name):
        yield profiler
