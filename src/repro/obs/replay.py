"""Replay and summarise recorded traces.

``python -m repro trace FILE`` funnels through :func:`summarize_trace`:
given the events of one run it produces

* per-``(cat, kind)`` counts with first/last event times;
* a **skew histogram** — for every tick (clocked runs: ``tick/fire``
  events) or global step (hybrid runs: ``hybrid/step`` events) the spread
  between the earliest and latest firing across cells, bucketed;
* a **violation timeline** — stale/race counts per receiver tick, the
  time-resolved view of an A8-breakage experiment that the flat
  violation list hides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.obs.metrics import Histogram
from repro.obs.trace import TraceEvent


@dataclass
class TraceSummary:
    """Everything the trace replay command prints."""

    events: int
    t_min: float
    t_max: float
    #: (cat, kind, count, first t, last t), sorted by cat then kind.
    category_rows: List[Tuple[str, str, int, float, float]] = field(default_factory=list)
    #: (bucket label, count) over per-tick firing spreads.
    skew_histogram: List[Tuple[str, int]] = field(default_factory=list)
    skew_samples: int = 0
    max_skew: float = 0.0
    #: (tick, stale, race) rows, sorted by tick.
    violation_timeline: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def total_violations(self) -> int:
        return sum(s + r for _t, s, r in self.violation_timeline)


def _as_int(value: object) -> "int | None":
    """A lenient integer read: ints (not bools) and integral floats/strings
    pass; anything else — including a missing key's ``None`` — is ``None``.
    Replay must digest traces from other versions, so malformed payloads
    degrade to "not part of this view" instead of crashing the command."""
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return value
    try:
        f = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None
    return int(f) if f.is_integer() else None


def _as_float(value: object) -> "float | None":
    if isinstance(value, bool):
        return None
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def _firing_groups(events: Iterable[TraceEvent]) -> Dict[Tuple[str, int], List[float]]:
    """Group firing times by tick/step so per-group spread is the skew.
    Events missing the expected payload keys are skipped, not fatal."""
    groups: Dict[Tuple[str, int], List[float]] = {}
    for e in events:
        if e.cat == "tick" and e.kind == "fire":
            tick = _as_int(e.data.get("tick"))
            if tick is not None:
                groups.setdefault(("tick", tick), []).append(e.t)
        elif e.cat == "hybrid" and e.kind == "step":
            step = _as_int(e.data.get("step"))
            start = _as_float(e.data.get("start"))
            if step is not None and start is not None:
                groups.setdefault(("step", step), []).append(start)
    return groups


def summarize_trace(events: List[TraceEvent], skew_buckets: int = 8) -> TraceSummary:
    """Collapse one run's events into the replay report."""
    if skew_buckets < 1:
        raise ValueError("need at least one skew bucket")
    counts: Dict[Tuple[str, str], List] = {}
    for e in events:
        row = counts.get((e.cat, e.kind))
        if row is None:
            counts[(e.cat, e.kind)] = [1, e.t, e.t]
        else:
            row[0] += 1
            row[1] = min(row[1], e.t)
            row[2] = max(row[2], e.t)
    category_rows = [
        (cat, kind, n, first, last)
        for (cat, kind), (n, first, last) in sorted(counts.items())
    ]

    # Skew distribution: spread of firing times within each tick/step.
    spreads = [
        max(times) - min(times)
        for times in _firing_groups(events).values()
        if len(times) >= 2
    ]
    skew_rows: List[Tuple[str, int]] = []
    max_skew = max(spreads) if spreads else 0.0
    if spreads:
        # Linear display buckets sized to the data (the metrics layer's
        # fixed buckets target live collection; replay knows the range).
        top = max_skew if max_skew > 0 else 1.0
        edges = [top * (i + 1) / skew_buckets for i in range(skew_buckets)]
        hist = Histogram("trace.skew", edges)
        hist.observe_many(spreads)
        skew_rows = list(zip(hist.bucket_labels(), hist.counts))

    # Violation timeline: stale/race per receiver tick.
    timeline: Dict[int, List[int]] = {}
    for e in events:
        if e.cat != "violation":
            continue
        tick = _as_int(e.data.get("receiver_tick", e.data.get("tick", -1)))
        if tick is None:
            tick = -1  # malformed payload: bucket under the sentinel tick
        row = timeline.setdefault(tick, [0, 0])
        if e.kind == "race":
            row[1] += 1
        else:
            row[0] += 1
    violation_rows = [
        (tick, stale, race) for tick, (stale, race) in sorted(timeline.items())
    ]

    return TraceSummary(
        events=len(events),
        t_min=min((e.t for e in events), default=0.0),
        t_max=max((e.t for e in events), default=0.0),
        category_rows=category_rows,
        skew_histogram=skew_rows,
        skew_samples=len(spreads),
        max_skew=max_skew,
        violation_timeline=violation_rows,
    )
