"""A small stdlib-only JSON validator plus the schemas the repo emits.

Two machine-readable artifact families need to stay well-formed for the
perf-trajectory tooling of later PRs:

* ``benchmarks/results/<name>.json`` — benchmark tables with timing
  metadata (:data:`BENCHMARK_RESULT_SCHEMA`);
* JSONL trace lines from :class:`~repro.obs.trace.JsonlTracer`
  (:data:`TRACE_EVENT_SCHEMA`).

The validator speaks a deliberately tiny dialect of JSON Schema —
``type`` (string or list of strings), ``properties`` + ``required`` for
objects, ``items`` for arrays — enough to pin the shapes down without a
dependency.
"""

from __future__ import annotations

from typing import Any, Dict, List

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(obj: Any, schema: Dict[str, Any], path: str = "$") -> List[str]:
    """Validate ``obj`` against the mini-schema; returns error strings
    (empty list means valid)."""
    errors: List[str] = []
    types = schema.get("type")
    if types is not None:
        allowed = [types] if isinstance(types, str) else list(types)
        for t in allowed:
            if t not in _TYPE_CHECKS:
                raise ValueError(f"unsupported schema type {t!r}")
        if not any(_TYPE_CHECKS[t](obj) for t in allowed):
            errors.append(
                f"{path}: expected {'/'.join(allowed)}, got {type(obj).__name__}"
            )
            return errors
    if isinstance(obj, dict):
        for key in schema.get("required", []):
            if key not in obj:
                errors.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in obj:
                errors.extend(validate(obj[key], subschema, f"{path}.{key}"))
    if isinstance(obj, list) and "items" in schema:
        for i, item in enumerate(obj):
            errors.extend(validate(item, schema["items"], f"{path}[{i}]"))
    return errors


_SCALAR = {"type": ["string", "number", "boolean", "null"]}

#: Shape of one JSONL trace line (a serialised TraceEvent).
TRACE_EVENT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["t", "cat", "kind", "cell", "data"],
    "properties": {
        "t": {"type": "number"},
        "cat": {"type": "string"},
        "kind": {"type": "string"},
        "data": {"type": "object"},
    },
}

#: Shape of ``benchmarks/results/<name>.json``.
BENCHMARK_RESULT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["name", "title", "headers", "rows", "meta"],
    "properties": {
        "name": {"type": "string"},
        "title": {"type": "string"},
        "headers": {"type": "array", "items": {"type": "string"}},
        "rows": {"type": "array", "items": {"type": "array", "items": _SCALAR}},
        "meta": {
            "type": "object",
            "required": ["emitted_at", "repro_version"],
            "properties": {
                "emitted_at": {"type": "number"},
                "repro_version": {"type": "string"},
                "timing": {"type": "object"},
            },
        },
    },
}


#: Shape of the report ``python -m repro check --json FILE`` writes.
CHECK_REPORT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["suite", "seed", "passed", "counts", "checks", "meta"],
    "properties": {
        "suite": {"type": "string"},
        "seed": {"type": "integer"},
        "passed": {"type": "boolean"},
        "counts": {
            "type": "object",
            "required": ["total", "passed", "failed"],
            "properties": {
                "total": {"type": "integer"},
                "passed": {"type": "integer"},
                "failed": {"type": "integer"},
            },
        },
        "checks": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "kind", "passed", "duration_s", "details"],
                "properties": {
                    "name": {"type": "string"},
                    "kind": {"type": "string"},
                    "passed": {"type": "boolean"},
                    "duration_s": {"type": "number"},
                    "error": {"type": ["string", "null"]},
                    "details": {"type": "object"},
                },
            },
        },
        "meta": {
            "type": "object",
            "required": ["emitted_at", "repro_version"],
            "properties": {
                "emitted_at": {"type": "number"},
                "repro_version": {"type": "string"},
            },
        },
    },
}

#: Shape of the report ``python -m repro sta --json FILE`` writes.
STA_REPORT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "design", "period", "verdict", "robust",
        "counts", "slack", "edges", "drc", "empirical", "meta",
    ],
    "properties": {
        "design": {"type": "string"},
        "period": {"type": "number"},
        "verdict": {"type": "string"},
        "robust": {"type": "boolean"},
        "counts": {
            "type": "object",
            "required": [
                "edges", "stale", "race", "stale_possible",
                "race_possible", "race_floor", "drc_fail", "drc_warn",
            ],
            "properties": {
                "edges": {"type": "integer"},
                "stale": {"type": "integer"},
                "race": {"type": "integer"},
                "stale_possible": {"type": "integer"},
                "race_possible": {"type": "integer"},
                "race_floor": {"type": "integer"},
                "drc_fail": {"type": "integer"},
                "drc_warn": {"type": "integer"},
            },
        },
        "slack": {
            "type": "object",
            "required": [
                "worst_setup_slack", "worst_hold_slack",
                "min_feasible_period_exact", "min_feasible_period_bound",
            ],
            "properties": {
                "worst_setup_slack": {"type": "number"},
                "worst_hold_slack": {"type": "number"},
                "min_feasible_period_exact": {"type": "number"},
                "min_feasible_period_bound": {"type": "number"},
            },
        },
        "edges": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "edge", "lag", "sigma_ub", "sigma_lb", "offset_lead",
                    "setup_slack", "hold_slack",
                    "setup_slack_bound", "hold_slack_bound", "flags",
                ],
                "properties": {
                    "edge": {"type": "array", "items": {"type": "string"}},
                    "lag": {"type": "number"},
                    "sigma_ub": {"type": "number"},
                    "sigma_lb": {"type": "number"},
                    "offset_lead": {"type": "number"},
                    "setup_slack": {"type": "number"},
                    "hold_slack": {"type": "number"},
                    "setup_slack_bound": {"type": "number"},
                    "hold_slack_bound": {"type": "number"},
                    "flags": {"type": "array", "items": {"type": "string"}},
                },
            },
        },
        "drc": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["rule", "title", "status", "detail"],
                "properties": {
                    "rule": {"type": "string"},
                    "title": {"type": "string"},
                    "status": {"type": "string"},
                    "detail": {"type": "string"},
                },
            },
        },
        "empirical": {
            "type": ["object", "null"],
            "required": ["max_skew", "model_sigma_ub_max", "within_model"],
            "properties": {
                "max_skew": {"type": "number"},
                "model_sigma_ub_max": {"type": "number"},
                "within_model": {"type": "boolean"},
                "tree_version": {"type": "integer"},
            },
        },
        "meta": {
            "type": "object",
            "required": ["emitted_at", "repro_version"],
            "properties": {
                "emitted_at": {"type": "number"},
                "repro_version": {"type": "string"},
            },
        },
        # Present only on ECO edit-script step reports (optional: not in
        # the required list above).
        "eco": {
            "type": "object",
            "required": ["edit", "target", "dirty_rows", "reuse_fraction"],
            "properties": {
                "edit": {"type": "string"},
                "target": {"type": "string"},
                "dirty_rows": {"type": "integer"},
                "reuse_fraction": {"type": "number"},
            },
        },
    },
}


#: Shape of one serialised span event (a TraceEvent with ``cat ==
#: "span"``); the per-kind payload requirements live in
#: :func:`validate_span_event` (the mini-schema has no conditionals).
SPAN_EVENT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["t", "cat", "kind", "cell", "data"],
    "properties": {
        "t": {"type": "number"},
        "cat": {"type": "string"},
        "kind": {"type": "string"},
        "data": {
            "type": "object",
            "required": ["id"],
            "properties": {
                "id": {"type": "string"},
                "parent": {"type": ["string", "null"]},
                "name": {"type": "string"},
                "worker": {"type": "string"},
                "wall_t0": {"type": "number"},
                "wall_s": {"type": "number"},
                "status": {"type": "string"},
                "attrs": {"type": "object"},
            },
        },
    },
}

#: Shape of :func:`repro.obs.export.metrics_snapshot` output; the
#: per-series payload requirements live in
#: :func:`validate_metrics_snapshot`.
METRICS_SNAPSHOT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["counters", "gauges", "histograms", "meta"],
    "properties": {
        "counters": {"type": "object"},
        "gauges": {"type": "object"},
        "histograms": {"type": "object"},
        "meta": {
            "type": "object",
            "required": ["emitted_at", "repro_version"],
            "properties": {
                "emitted_at": {"type": "number"},
                "repro_version": {"type": "string"},
            },
        },
    },
}


#: Shape of ``ViolationSummary.to_dict()`` (repro.sim.faults).
VIOLATION_SUMMARY_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "total", "stale", "race", "edges_affected",
        "first_failure_tick", "last_failure_tick",
        "worst_edge", "worst_edge_count", "per_cell",
    ],
    "properties": {
        "total": {"type": "integer"},
        "stale": {"type": "integer"},
        "race": {"type": "integer"},
        "edges_affected": {"type": "integer"},
        "first_failure_tick": {"type": "integer"},
        "last_failure_tick": {"type": "integer"},
        "worst_edge": {"type": "array"},
        "worst_edge_count": {"type": "integer"},
        "per_cell": {"type": "object"},
    },
}


def validate_trace_event(obj: Any) -> List[str]:
    return validate(obj, TRACE_EVENT_SCHEMA)


def validate_span_event(obj: Any) -> List[str]:
    """Schema check for one span start/end event, including the per-kind
    payload the mini-schema cannot express: starts need ``parent``,
    ``name``, ``worker``, ``wall_t0``, and ``attrs``; ends need
    ``wall_s``, a known ``status``, and ``attrs``."""
    errors = validate(obj, SPAN_EVENT_SCHEMA)
    if errors:
        return errors
    if obj["cat"] != "span":
        errors.append(f"$.cat: expected 'span', got {obj['cat']!r}")
    kind = obj["kind"]
    data = obj["data"]
    if kind == "start":
        for key, types in (
            ("parent", (str, type(None))),
            ("name", (str,)),
            ("worker", (str,)),
            ("wall_t0", (int, float)),
            ("attrs", (dict,)),
        ):
            if key not in data:
                errors.append(f"$.data: missing required key {key!r}")
            elif not isinstance(data[key], types) or isinstance(data[key], bool):
                errors.append(
                    f"$.data.{key}: wrong type {type(data[key]).__name__}"
                )
    elif kind == "end":
        for key, types in (
            ("wall_s", (int, float)),
            ("status", (str,)),
            ("attrs", (dict,)),
        ):
            if key not in data:
                errors.append(f"$.data: missing required key {key!r}")
            elif not isinstance(data[key], types) or isinstance(data[key], bool):
                errors.append(
                    f"$.data.{key}: wrong type {type(data[key]).__name__}"
                )
        if isinstance(data.get("status"), str) and data["status"] not in (
            "ok",
            "error",
        ):
            errors.append(f"$.data.status: unknown status {data['status']!r}")
    else:
        errors.append(f"$.kind: expected 'start' or 'end', got {kind!r}")
    return errors


def validate_metrics_snapshot(obj: Any) -> List[str]:
    """Schema check for a metrics snapshot, including the per-series
    invariants: counters are non-bool integers, gauges carry their
    value/min/max/samples envelope, and each histogram has exactly one
    more count than it has edges."""
    errors = validate(obj, METRICS_SNAPSHOT_SCHEMA)
    if errors:
        return errors
    for name, value in obj["counters"].items():
        if not isinstance(value, int) or isinstance(value, bool):
            errors.append(f"$.counters.{name}: expected integer")
    for name, g in obj["gauges"].items():
        if not isinstance(g, dict):
            errors.append(f"$.gauges.{name}: expected object")
            continue
        missing = [k for k in ("value", "min", "max", "samples") if k not in g]
        if missing:
            errors.append(f"$.gauges.{name}: missing {missing}")
    for name, h in obj["histograms"].items():
        if not isinstance(h, dict):
            errors.append(f"$.histograms.{name}: expected object")
            continue
        missing = [k for k in ("edges", "counts", "total", "mean") if k not in h]
        if missing:
            errors.append(f"$.histograms.{name}: missing {missing}")
            continue
        if not isinstance(h["edges"], list) or not isinstance(h["counts"], list):
            errors.append(f"$.histograms.{name}: edges/counts must be arrays")
        elif len(h["counts"]) != len(h["edges"]) + 1:
            errors.append(
                f"$.histograms.{name}: {len(h['counts'])} counts for "
                f"{len(h['edges'])} edges (expected edges + 1)"
            )
    return errors


def validate_check_report(obj: Any) -> List[str]:
    """Schema check plus the cross-field consistency the mini-schema can't
    express: the counts must agree with the per-check rows, and the overall
    verdict must agree with the failure count."""
    errors = validate(obj, CHECK_REPORT_SCHEMA)
    if not errors:
        failed = sum(1 for c in obj["checks"] if not c["passed"])
        counts = obj["counts"]
        if counts["total"] != len(obj["checks"]):
            errors.append(
                f"$.counts.total: {counts['total']} != "
                f"{len(obj['checks'])} check rows"
            )
        if counts["failed"] != failed:
            errors.append(
                f"$.counts.failed: {counts['failed']} != {failed} failing rows"
            )
        if counts["passed"] != counts["total"] - failed:
            errors.append(
                f"$.counts.passed: {counts['passed']} != "
                f"{counts['total'] - failed}"
            )
        if obj["passed"] != (failed == 0):
            errors.append(
                f"$.passed: {obj['passed']} disagrees with {failed} failures"
            )
    return errors


def validate_sta_report(obj: Any) -> List[str]:
    """Schema check plus the cross-field invariants of an STA report: the
    verdict must agree with the violation counts, the counts must agree
    with the per-edge rows, and DRC statuses must be from the fixed set."""
    errors = validate(obj, STA_REPORT_SCHEMA)
    if not errors:
        counts = obj["counts"]
        if counts["edges"] != len(obj["edges"]):
            errors.append(
                f"$.counts.edges: {counts['edges']} != {len(obj['edges'])} rows"
            )
        for key, flag in (
            ("stale", "stale"), ("race", "race"),
            ("stale_possible", "stale-possible"),
            ("race_possible", "race-possible"),
            ("race_floor", "race-floor"),
        ):
            seen = sum(1 for e in obj["edges"] if flag in e["flags"])
            if counts[key] != seen:
                errors.append(
                    f"$.counts.{key}: {counts[key]} != {seen} flagged rows"
                )
        drc_fail = sum(1 for r in obj["drc"] if r["status"] == "fail")
        if counts["drc_fail"] != drc_fail:
            errors.append(
                f"$.counts.drc_fail: {counts['drc_fail']} != {drc_fail} fail rows"
            )
        for i, r in enumerate(obj["drc"]):
            if r["status"] not in ("pass", "fail", "warn", "skip"):
                errors.append(f"$.drc[{i}].status: unknown status {r['status']!r}")
        dirty = counts["stale"] + counts["race"] + counts["drc_fail"] > 0
        if obj["verdict"] not in ("clean", "violations"):
            errors.append(f"$.verdict: unknown verdict {obj['verdict']!r}")
        elif (obj["verdict"] == "violations") != dirty:
            errors.append(
                f"$.verdict: {obj['verdict']!r} disagrees with counts "
                f"(stale {counts['stale']}, race {counts['race']}, "
                f"drc_fail {counts['drc_fail']})"
            )
        if obj["robust"] and obj["verdict"] != "clean":
            errors.append("$.robust: true on a non-clean report")
        eco = obj.get("eco")
        if eco is not None:
            if not 0.0 <= eco["reuse_fraction"] <= 1.0:
                errors.append(
                    f"$.eco.reuse_fraction: {eco['reuse_fraction']} outside [0, 1]"
                )
            if eco["dirty_rows"] > counts["edges"]:
                errors.append(
                    f"$.eco.dirty_rows: {eco['dirty_rows']} exceeds "
                    f"{counts['edges']} edges"
                )
    return errors


def validate_violation_summary(obj: Any) -> List[str]:
    """Schema check plus the arithmetic invariants of a violation summary:
    stale + race = total, and the per-cell counts sum to the total."""
    errors = validate(obj, VIOLATION_SUMMARY_SCHEMA)
    if not errors:
        if obj["stale"] + obj["race"] != obj["total"]:
            errors.append(
                f"$.total: stale ({obj['stale']}) + race ({obj['race']}) "
                f"!= total ({obj['total']})"
            )
        per_cell_sum = sum(obj["per_cell"].values())
        if per_cell_sum != obj["total"]:
            errors.append(
                f"$.per_cell: counts sum to {per_cell_sum}, "
                f"expected total {obj['total']}"
            )
        if obj["total"] > 0 and obj["first_failure_tick"] > obj["last_failure_tick"]:
            errors.append(
                "$.first_failure_tick: exceeds last_failure_tick"
            )
    return errors


#: Shape of the report ``python -m repro flow --json FILE`` (and
#: ``python -m repro sta --flow FILE``) writes: the static max-plus
#: analysis of a self-timed array — deadlock verdict, maximum cycle
#: mean with its critical-cycle blame rows, the agreement block against
#: the scalar oracle and the simulator, transient bounds, and (when a
#: target was given) the minimal buffer sizing.
FLOW_REPORT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "design", "cells", "comm_edges", "wire_delay", "capacity",
        "deadlock", "mcm", "agreement", "transient", "sizing", "meta",
    ],
    "properties": {
        "design": {"type": "string"},
        "cells": {"type": "integer"},
        "comm_edges": {"type": "integer"},
        "wire_delay": {"type": "number"},
        "capacity": {"type": "string"},
        "deadlock": {
            "type": "object",
            "required": ["dead", "cycle"],
            "properties": {
                "dead": {"type": "boolean"},
                "cycle": {
                    "type": "array",
                    "items": {"type": "array", "items": {"type": "string"}},
                },
            },
        },
        "mcm": {
            "type": ["object", "null"],
            "required": [
                "cycle_time", "throughput", "weight", "tokens",
                "iterations", "critical_cycle",
            ],
            "properties": {
                "cycle_time": {"type": "number"},
                "throughput": {"type": "number"},
                "weight": {"type": "number"},
                "tokens": {"type": "integer"},
                "iterations": {"type": "integer"},
                "critical_cycle": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["label", "kind", "seconds", "share"],
                        "properties": {
                            "label": {"type": "string"},
                            "kind": {"type": "string"},
                            "seconds": {"type": "number"},
                            "share": {"type": "number"},
                        },
                    },
                },
            },
        },
        "agreement": {
            "type": ["object", "null"],
            "required": [
                "karp_cycle_time", "simulated_cycle_time", "max_abs_diff",
                "exact",
            ],
            "properties": {
                "karp_cycle_time": {"type": ["number", "null"]},
                "simulated_cycle_time": {"type": ["number", "null"]},
                "max_abs_diff": {"type": "number"},
                "exact": {"type": "boolean"},
            },
        },
        "transient": {
            "type": ["object", "null"],
            "required": [
                "period", "waves_run", "c_lo", "c_hi",
                "makespan_checks", "makespan_max_err",
            ],
            "properties": {
                "period": {"type": "integer"},
                "waves_run": {"type": "integer"},
                "c_lo": {"type": "number"},
                "c_hi": {"type": "number"},
                "makespan_checks": {"type": "integer"},
                "makespan_max_err": {"type": "number"},
            },
        },
        "sizing": {
            "type": ["object", "null"],
            "required": [
                "target", "cycle_time", "total_capacity", "mcm_calls",
                "capacities",
            ],
            "properties": {
                "target": {"type": "number"},
                "cycle_time": {"type": "number"},
                "total_capacity": {"type": "integer"},
                "mcm_calls": {"type": "integer"},
                "capacities": {
                    "type": "array",
                    "items": {"type": "array", "items": _SCALAR},
                },
            },
        },
        "meta": {
            "type": "object",
            "required": ["emitted_at", "repro_version"],
            "properties": {
                "emitted_at": {"type": "number"},
                "repro_version": {"type": "string"},
            },
        },
    },
}


def validate_flow_report(obj: Any) -> List[str]:
    """Schema check plus the cross-field invariants of a flow report:
    a deadlocked design has no MCM/agreement/transient blocks (and vice
    versa), the deadlock cycle is non-empty exactly when dead, blame
    shares lie in [0, 1], agreement ``exact`` means a zero diff, and a
    sizing block (when present) meets its own target."""
    errors = validate(obj, FLOW_REPORT_SCHEMA)
    if errors:
        return errors
    dead = obj["deadlock"]["dead"]
    if dead != bool(obj["deadlock"]["cycle"]):
        errors.append(
            f"$.deadlock.cycle: {'empty' if dead else 'non-empty'} "
            f"disagrees with dead={dead}"
        )
    if dead and obj["mcm"] is not None:
        errors.append("$.mcm: present on a deadlocked design")
    if not dead and obj["mcm"] is None:
        errors.append("$.mcm: missing on a live design")
    mcm = obj["mcm"]
    if mcm is not None:
        for i, step in enumerate(mcm["critical_cycle"]):
            if not 0.0 <= step["share"] <= 1.0:
                errors.append(
                    f"$.mcm.critical_cycle[{i}].share: "
                    f"{step['share']} outside [0, 1]"
                )
        if mcm["cycle_time"] > 0 and mcm["tokens"] <= 0:
            errors.append("$.mcm.tokens: must be positive on a finite MCM")
    agreement = obj["agreement"]
    if agreement is not None:
        if dead:
            errors.append("$.agreement: present on a deadlocked design")
        elif agreement["exact"] and agreement["max_abs_diff"] != 0.0:
            errors.append(
                f"$.agreement.exact: true with max_abs_diff "
                f"{agreement['max_abs_diff']}"
            )
    sizing = obj["sizing"]
    if sizing is not None and sizing["cycle_time"] > sizing["target"]:
        errors.append(
            f"$.sizing.cycle_time: {sizing['cycle_time']} exceeds "
            f"target {sizing['target']}"
        )
    return errors


def validate_benchmark_result(obj: Any) -> List[str]:
    """Schema check plus the cross-field invariant a mini-schema can't
    express: every row is as wide as the header."""
    errors = validate(obj, BENCHMARK_RESULT_SCHEMA)
    if not errors:
        width = len(obj["headers"])
        for i, row in enumerate(obj["rows"]):
            if len(row) != width:
                errors.append(
                    f"$.rows[{i}]: has {len(row)} cells, expected {width}"
                )
    return errors
