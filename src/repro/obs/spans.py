"""Hierarchical spans layered on the flat :class:`TraceEvent` stream.

PR 1 gave the repo a flat, append-only JSONL trace; this module adds
*causality* on top of it without changing the wire format.  A span is a
named interval with a parent, so a recorded trace can be reassembled into
a forest: ``run_trials`` > per-worker chunk > per-trial, or ``check.suite``
> one span per oracle.  Each span is encoded as exactly two ordinary
trace events that any PR-1 consumer can already read (and skip):

* ``("span", "start")`` with ``data = {id, parent, name, worker, wall_t0,
  attrs}`` — ``t`` is the simulated/logical start time;
* ``("span", "end")`` with ``data = {id, wall_s, status, attrs}`` —
  ``t`` is the logical end time (defaults to the start time for spans
  that measure wall clock only).

Span ids are ``"{worker}:{n}"`` with a per-tracer counter, so streams
from independent workers never collide and :func:`assemble_spans` can
merge them into one forest regardless of arrival order — the property
the multi-worker ``run_trials`` trace relies on.  A
:class:`SpanContext` is a frozen, picklable handle that carries the
current span id across a process-pool boundary; the worker side builds
its own :class:`SpanTracer` from it and every span it emits parents
correctly into the coordinator's tree.

Everything here follows the PR-1 opt-in discipline: a ``SpanTracer``
wrapping :data:`~repro.obs.trace.NULL_TRACER` is ``enabled == False``
and its ``span()`` context manager is a no-op that allocates nothing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.obs.trace import NULL_TRACER, TraceEvent, Tracer

__all__ = [
    "Span",
    "SpanContext",
    "SpanHandle",
    "SpanTracer",
    "assemble_spans",
    "iter_spans",
    "span_index",
]


# ----------------------------------------------------------------------
# emission
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpanContext:
    """A picklable capture of "where we are" in a span tree.

    Ship one of these to a worker process, rebuild a tracer with
    ``SpanTracer(local_tracer, worker="w3", parent_id=ctx.parent_id)``,
    and the worker's spans graft onto the coordinator's tree when the
    two event streams are merged.
    """

    parent_id: Optional[str]
    worker: str


class SpanHandle:
    """What ``SpanTracer.span(...)`` yields: the live span's identity plus
    an escape hatch to attach attributes discovered mid-span."""

    __slots__ = ("span_id", "_attrs", "_end_t")

    def __init__(self, span_id: str) -> None:
        self.span_id = span_id
        self._attrs: Dict[str, Any] = {}
        self._end_t: Optional[float] = None

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the span's *end* event (e.g. a result
        computed inside the span)."""
        self._attrs.update(attrs)

    def set_end_t(self, t: float) -> None:
        """Record a logical (simulated-time) end distinct from the start."""
        self._end_t = float(t)


class _NullSpanHandle:
    """Shared no-op handle yielded when tracing is disabled."""

    __slots__ = ()
    span_id = ""

    def annotate(self, **attrs: Any) -> None:
        pass

    def set_end_t(self, t: float) -> None:
        pass


_NULL_HANDLE = _NullSpanHandle()


class SpanTracer:
    """Emit hierarchical spans through any PR-1 :class:`Tracer`.

    Purely additive: the underlying tracer still accepts ordinary
    ``event()`` calls, and the span machinery only runs when the tracer
    is enabled.  Nesting is tracked with an explicit stack, so
    ``current_id`` always names the innermost open span and
    ``context()`` can be captured at any depth.
    """

    __slots__ = ("tracer", "worker", "_root_parent", "_stack", "_next")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        worker: str = "main",
        parent_id: Optional[str] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.worker = worker
        self._root_parent = parent_id
        self._stack: List[str] = []
        self._next = 0

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    @property
    def current_id(self) -> Optional[str]:
        """The innermost open span id (or the inherited parent, if none)."""
        return self._stack[-1] if self._stack else self._root_parent

    def context(self) -> SpanContext:
        """Freeze the current position for propagation (picklable)."""
        return SpanContext(parent_id=self.current_id, worker=self.worker)

    @contextmanager
    def span(
        self,
        name: str,
        t: float = 0.0,
        cell: Optional[Hashable] = None,
        **attrs: Any,
    ) -> Iterator["SpanHandle | _NullSpanHandle"]:
        """Open a span; emits the start event now and the end event on
        exit (status ``"error"`` if the body raised).  No-op when the
        underlying tracer is disabled."""
        if not self.tracer.enabled:
            yield _NULL_HANDLE
            return
        span_id = f"{self.worker}:{self._next}"
        self._next += 1
        self.tracer.event(
            t,
            "span",
            "start",
            cell=cell,
            id=span_id,
            parent=self.current_id,
            name=name,
            worker=self.worker,
            wall_t0=time.time(),
            attrs=dict(attrs),
        )
        self._stack.append(span_id)
        handle = SpanHandle(span_id)
        wall_start = time.perf_counter()
        status = "ok"
        try:
            yield handle
        except BaseException:
            status = "error"
            raise
        finally:
            wall_s = time.perf_counter() - wall_start
            self._stack.pop()
            end_t = handle._end_t if handle._end_t is not None else t
            self.tracer.event(
                end_t,
                "span",
                "end",
                cell=cell,
                id=span_id,
                wall_s=wall_s,
                status=status,
                attrs=dict(handle._attrs),
            )


# ----------------------------------------------------------------------
# reassembly
# ----------------------------------------------------------------------
@dataclass
class Span:
    """One reassembled span: identity, interval, and children."""

    span_id: str
    parent_id: Optional[str]
    name: str
    worker: str
    t_start: float
    t_end: float
    wall_t0: float
    wall_s: Optional[float] = None
    status: str = "open"
    cell: Optional[Hashable] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def open(self) -> bool:
        """True when the trace holds a start but no matching end (a
        crashed or truncated recording)."""
        return self.wall_s is None

    def walk(self) -> Iterator["Span"]:
        """Depth-first over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()


def _seq(span_id: str) -> Tuple[str, int]:
    """Sort key component: split ``"worker:7"`` into its worker and
    counter so ordering is numeric, not lexicographic."""
    worker, _, n = span_id.rpartition(":")
    try:
        return (worker, int(n))
    except ValueError:
        return (span_id, -1)


def assemble_spans(events: Iterable[TraceEvent]) -> List[Span]:
    """Reassemble span start/end events into a forest of root spans.

    Deliberately forgiving: non-span events are skipped, an end without
    a start is dropped, a start without an end yields an *open* span,
    and a child whose parent never appears is promoted to a root.  The
    result is a pure function of the event *set* — interleaved
    multi-worker streams produce the same forest regardless of arrival
    order, because children are sorted by ``(t_start, wall_t0, id)``
    rather than stream position.
    """
    # Two passes: all starts first, then all ends.  A merged multi-worker
    # stream can deliver an end before its start; matching ends against
    # the complete start set keeps the forest a function of the event set.
    span_events = [
        e
        for e in events
        if e.cat == "span" and isinstance(e.data.get("id"), str)
    ]
    by_id: Dict[str, Span] = {}
    order: List[Span] = []
    for e in span_events:
        if e.kind != "start":
            continue
        data = e.data
        span_id = data["id"]
        if span_id in by_id:  # duplicate start: keep the first
            continue
        raw_attrs = data.get("attrs")
        span = Span(
            span_id=span_id,
            parent_id=data.get("parent"),
            name=str(data.get("name", "")),
            worker=str(data.get("worker", "")),
            t_start=float(e.t),
            t_end=float(e.t),
            wall_t0=float(data.get("wall_t0", 0.0)),
            cell=e.cell,
            attrs=dict(raw_attrs) if isinstance(raw_attrs, dict) else {},
        )
        by_id[span_id] = span
        order.append(span)
    for e in span_events:
        if e.kind != "end":
            continue
        data = e.data
        span = by_id.get(data["id"])
        if span is None or span.wall_s is not None:
            continue  # orphan or duplicate end
        span.wall_s = float(data.get("wall_s", 0.0))
        span.status = str(data.get("status", "ok"))
        span.t_end = float(e.t)
        end_attrs = data.get("attrs")
        if isinstance(end_attrs, dict):
            span.attrs.update(end_attrs)
    roots: List[Span] = []
    for span in order:
        parent = by_id.get(span.parent_id) if span.parent_id is not None else None
        if parent is None or parent is span:
            roots.append(span)
        else:
            parent.children.append(span)
    key = lambda s: (s.t_start, s.wall_t0, _seq(s.span_id))  # noqa: E731
    for span in by_id.values():
        span.children.sort(key=key)
    roots.sort(key=key)
    return roots


def iter_spans(roots: Iterable[Span]) -> Iterator[Span]:
    """Depth-first over a forest."""
    for root in roots:
        yield from root.walk()


def span_index(roots: Iterable[Span]) -> Dict[str, Span]:
    """Flat ``id -> span`` lookup over a forest."""
    return {s.span_id: s for s in iter_spans(roots)}
