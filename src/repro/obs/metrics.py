"""Counters, gauges, and fixed-bucket histograms for simulator runs.

A :class:`MetricsRegistry` is the single handle instrumented code takes
(``metrics=None`` everywhere by default — the ``None`` check is the
zero-overhead switch).  Registered instruments:

* :class:`Counter` — monotone event counts (events dispatched, runaway
  guards tripped, violations seen);
* :class:`Gauge` — a last-value-plus-extremes sample (queue depth, cycle
  time);
* :class:`Histogram` — fixed-bucket distribution (skew per tick, service
  times, handshake stall times).  Buckets are inclusive upper edges: a
  value ``v`` lands in the first bucket whose edge satisfies ``v <=
  edge``; values beyond the last edge land in the overflow bucket.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Sorted ``(key, value)`` label pairs, as carried by every instrument.
LabelPairs = Tuple[Tuple[str, str], ...]


def _labelled_key(name: str, labels: Optional[Mapping[str, str]]) -> str:
    """The registry key for a (name, labels) series: the bare name when
    unlabelled (so pre-existing flat names are untouched), else the
    Prometheus-style ``name{k="v",...}`` with keys sorted."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


def _label_pairs(labels: Optional[Mapping[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple((k, str(labels[k])) for k in sorted(labels))

#: Geometric default edges spanning the time scales the simulators emit
#: (sub-millisecond handshake wires up to 1e4-unit makespans).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 10000.0,
)


class Counter:
    """A monotone counter."""

    __slots__ = ("name", "value", "labels")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.value = 0
        self.labels: LabelPairs = labels

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """Last set value, with the min/max envelope seen so far."""

    __slots__ = ("name", "value", "minimum", "maximum", "samples", "labels")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.value: Optional[float] = None
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.samples = 0
        self.labels: LabelPairs = labels

    def set(self, value: float) -> None:
        self.value = value
        self.samples += 1
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)


class Histogram:
    """A fixed-bucket histogram with an overflow bucket.

    ``edges`` are sorted inclusive upper bounds.  ``counts`` has
    ``len(edges) + 1`` entries; the last is the overflow count for values
    strictly above the final edge.
    """

    __slots__ = ("name", "edges", "counts", "total", "sum", "labels")

    def __init__(
        self, name: str, edges: Sequence[float], labels: LabelPairs = ()
    ) -> None:
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        ordered = list(edges)
        if ordered != sorted(ordered) or len(set(ordered)) != len(ordered):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.edges: List[float] = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.total = 0
        self.sum = 0.0
        self.labels: LabelPairs = labels

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.total += 1
        self.sum += value

    def observe_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def bucket_labels(self) -> List[str]:
        labels = []
        lo = None
        for edge in self.edges:
            labels.append(f"<= {edge:g}" if lo is None else f"({lo:g}, {edge:g}]")
            lo = edge
        labels.append(f"> {self.edges[-1]:g}")
        return labels

    def nonzero_buckets(self) -> List[Tuple[str, int]]:
        return [
            (label, count)
            for label, count in zip(self.bucket_labels(), self.counts)
            if count
        ]


class MetricsRegistry:
    """Create-or-get registry for the three instrument kinds.

    Names are namespaced by convention (``"engine.queue_depth"``,
    ``"handshake.stall_time"``); re-requesting a name returns the same
    instrument, so producers never need to coordinate setup.  An optional
    ``labels`` mapping makes a distinct series per label set (stored
    under the Prometheus-style ``name{k="v"}`` key); unlabelled series
    keep their bare name, so PR-1 snapshot consumers are unaffected.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        key = _labelled_key(name, labels)
        if key not in self._counters:
            self._counters[key] = Counter(name, _label_pairs(labels))
        return self._counters[key]

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        key = _labelled_key(name, labels)
        if key not in self._gauges:
            self._gauges[key] = Gauge(name, _label_pairs(labels))
        return self._gauges[key]

    def histogram(
        self,
        name: str,
        edges: Sequence[float] = DEFAULT_TIME_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        key = _labelled_key(name, labels)
        if key not in self._histograms:
            self._histograms[key] = Histogram(name, edges, _label_pairs(labels))
        return self._histograms[key]

    def counters(self) -> Dict[str, Counter]:
        """``series key -> Counter`` (keys carry the label suffix)."""
        return dict(self._counters)

    def gauges(self) -> Dict[str, Gauge]:
        return dict(self._gauges)

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._histograms)

    def to_dict(self) -> Dict[str, Dict]:
        """A JSON-serialisable snapshot of everything registered."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {
                n: {
                    "value": g.value,
                    "min": g.minimum,
                    "max": g.maximum,
                    "samples": g.samples,
                }
                for n, g in sorted(self._gauges.items())
            },
            "histograms": {
                n: {
                    # Copies, not the live lists: a snapshot must stay
                    # frozen when the instrument keeps observing.
                    "edges": list(h.edges),
                    "counts": list(h.counts),
                    "total": h.total,
                    "mean": h.mean,
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def render_rows(self) -> List[Tuple[str, str, str]]:
        """``(name, type, summary)`` rows for a plain-text metrics table."""
        rows: List[Tuple[str, str, str]] = []
        for name, c in sorted(self._counters.items()):
            rows.append((name, "counter", str(c.value)))
        for name, g in sorted(self._gauges.items()):
            rows.append(
                (
                    name,
                    "gauge",
                    f"last={g.value:g} min={g.minimum:g} max={g.maximum:g}"
                    if g.samples
                    else "no samples",
                )
            )
        for name, h in sorted(self._histograms.items()):
            rows.append(
                (name, "histogram", f"n={h.total} mean={h.mean:.4g}")
            )
        return rows
